//! Umbrella crate for the `congest-sssp` workspace.
//!
//! This crate simply re-exports the member crates so that the repo-level
//! `examples/` and `tests/` directories can use a single dependency:
//!
//! * [`graph`] — graph representation, generators, and sequential reference
//!   algorithms ([`congest_graph`]).
//! * [`sim`] — the synchronous CONGEST + sleeping-model simulator
//!   ([`congest_sim`]).
//! * [`cover`] — deterministic network decomposition and sparse neighborhood
//!   covers ([`congest_cover`]).
//! * [`oracle`] — the sublinear-space point-to-point distance oracle built on
//!   sparse covers ([`congest_oracle`]).
//! * [`sssp`] — the paper's algorithms: low-congestion CSSP/SSSP, low-energy
//!   BFS/CSSP, APSP, and the baselines ([`congest_sssp`]).
//!
//! # Example
//!
//! ```
//! use congest_sssp_suite::graph::{generators, NodeId};
//! use congest_sssp_suite::sssp::{Algorithm, Solver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::path(8, 1);
//! let run = Solver::on(&g).algorithm(Algorithm::Cssp).source(NodeId(0)).run()?;
//! assert_eq!(run.distance(NodeId(7)).finite(), Some(7));
//! # Ok(())
//! # }
//! ```
//!
//! `congest_sssp_suite::sssp::registry()` enumerates every algorithm the
//! [`sssp::Solver`] facade can run, with capability flags (weighted /
//! multi-source / sleeping-model / approximate / all-pairs / thresholded /
//! queryable) for generic iteration.

#![forbid(unsafe_code)]

pub use congest_cover as cover;
pub use congest_graph as graph;
pub use congest_oracle as oracle;
pub use congest_sim as sim;
pub use congest_sssp as sssp;
