//! Energy-constrained scenario (the paper's sensor-network motivation): a
//! large, high-diameter network of battery-powered nodes needs a BFS tree
//! from a gateway. Compare the always-awake BFS (every node awake for the
//! whole run, energy Θ(D)) with the paper's low-energy BFS (every node awake
//! only poly(log n) rounds, coordinated through deterministic sparse covers)
//! — both reached uniformly through the `Solver` facade by iterating the
//! registry's BFS-family solvers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use congest_sssp_suite::graph::{generators, properties, NodeId};
use congest_sssp_suite::sssp::{registry, Solver, SolverRun};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 20x10 grid of sensors: high hop diameter, low degree.
    let g = generators::grid(20, 10, 1);
    let gateway = NodeId(0);
    let diameter = properties::hop_diameter(&g);

    println!(
        "sensor grid: {} nodes, {} links, hop diameter {}",
        g.node_count(),
        g.edge_count(),
        diameter
    );

    // Every unweighted (BFS-family) solver in the registry: the always-awake
    // baseline and the paper's sleeping-model BFS.
    let mut runs: Vec<(bool, SolverRun)> = Vec::new();
    for info in registry().iter().filter(|i| !i.weighted) {
        let mut req = Solver::on(&g).algorithm(info.algorithm).source(gateway);
        if info.sleeping_model {
            // The low-energy BFS builds wake schedules for the wavefront
            // horizon, so it is thresholded at the diameter.
            req = req.threshold(diameter);
        }
        let run = req.run()?;
        println!("\n{}:", info.label);
        println!("  rounds:          {}", run.report.rounds);
        println!("  max node energy: {} awake rounds", run.report.max_energy);
        println!("  mean node energy: {:.1} awake rounds", run.report.mean_energy);
        if let Some(s) = run.report.sleeping {
            println!(
                "  slowdown {}, megaround {}, layered-cover levels {}",
                s.slowdown, s.megaround, s.cover_levels
            );
        }
        runs.push((info.sleeping_model, run));
    }

    // Pick the comparison pair by capability flag, so additional BFS-family
    // registry entries extend the printout without breaking the example.
    let naive = &runs.iter().find(|(sleeping, _)| !sleeping).expect("an always-awake BFS").1;
    let low = &runs.iter().find(|(sleeping, _)| *sleeping).expect("a sleeping-model BFS").1;
    assert_eq!(low.output.distances, naive.output.distances, "both compute the same BFS");
    println!(
        "\nThe always-awake energy grows with the diameter; the low-energy bound \
         grows only with poly(log n) times the measured cover constants \
         (see EXPERIMENTS.md, experiment E5, for the scaling tables)."
    );
    Ok(())
}
