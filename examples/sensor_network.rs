//! Energy-constrained scenario (the paper's sensor-network motivation): a
//! large, high-diameter network of battery-powered nodes needs a BFS tree
//! from a gateway. Compare the always-awake BFS (every node awake for the
//! whole run, energy Θ(D)) with the paper's low-energy BFS (every node awake
//! only poly(log n) rounds, coordinated through deterministic sparse covers).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use congest_sssp_suite::graph::{generators, properties, NodeId};
use congest_sssp_suite::sssp::{bfs, energy, AlgoConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 20x10 grid of sensors: high hop diameter, low degree.
    let g = generators::grid(20, 10, 1);
    let gateway = NodeId(0);
    let diameter = properties::hop_diameter(&g);
    let cfg = AlgoConfig::default();

    println!(
        "sensor grid: {} nodes, {} links, hop diameter {}",
        g.node_count(),
        g.edge_count(),
        diameter
    );

    let naive = bfs::bfs(&g, &[gateway], &cfg)?;
    println!("\nalways-awake BFS baseline:");
    println!("  rounds:          {}", naive.metrics.rounds);
    println!("  max node energy: {} awake rounds", naive.metrics.max_energy());
    println!("  mean node energy: {:.1} awake rounds", naive.metrics.mean_energy());

    let low = energy::low_energy_bfs(&g, &[gateway], diameter, &cfg)?;
    assert_eq!(low.output.distances, naive.output.distances, "both compute the same BFS");
    println!("\nlow-energy BFS (paper, Theorem 3.13):");
    println!(
        "  rounds:          {} (slowdown {}, megaround {})",
        low.metrics.rounds, low.slowdown, low.megaround
    );
    println!("  max node energy: {} awake rounds", low.metrics.max_energy());
    println!("  mean node energy: {:.1} awake rounds", low.metrics.mean_energy());
    println!("  layered-cover levels: {}", low.cover_levels);
    println!(
        "\nThe always-awake energy grows with the diameter; the low-energy bound \
         grows only with poly(log n) times the measured cover constants \
         (see EXPERIMENTS.md, experiment E5, for the scaling tables)."
    );
    Ok(())
}
