//! Anatomy of one level of the paper's recursion (Section 2.3): run the
//! approximate cutter on a weighted graph, show which nodes land in `V₁`
//! (the overestimated half), solve the first half, and show the cut sources
//! ("imaginary nodes") that seed the second half.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cutter_anatomy
//! ```

use congest_sssp_suite::graph::{generators, sequential, Distance, NodeId};
use congest_sssp_suite::sssp::{Algorithm, Solver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A weighted path makes the geometry of the cut easy to see.
    let g = generators::path(16, 4); // distances 0, 4, 8, ..., 60
    let source = NodeId(0);

    let d = 32u64; // the current threshold of the recursion
    let d1 = d / 2;

    println!("threshold D = {d}, cutting at D/2 = {d1}\n");
    let cut =
        Solver::on(&g).algorithm(Algorithm::ApproximateCssp).source(source).threshold(d).run()?;
    let error_bound = cut.report.error_bound.expect("the cutter reports its error bound");
    let truth = sequential::dijkstra(&g, &[source]);

    println!("{:>6} {:>8} {:>10} {:>6} {:>6}", "node", "dist", "estimate", "in V1", "in V2");
    // A node is included in V₁ when its estimate is at most D + error bound
    // (every node with true distance ≤ D qualifies).
    let include = Distance::Finite(d + error_bound);
    for v in g.nodes() {
        let est = cut.distance(v);
        let in_v1 = est <= include;
        let in_v2 = truth.distance(v) <= Distance::Finite(d1);
        println!(
            "{:>6} {:>8} {:>10} {:>6} {:>6}",
            v.to_string(),
            truth.distance(v).to_string(),
            est.to_string(),
            in_v1,
            in_v2
        );
    }
    println!("\ncutter guarantees (Lemma 2.1): estimates overshoot by at most {error_bound}");
    println!(
        "cutter cost: {} rounds, max {} messages per edge",
        cut.report.rounds, cut.report.max_congestion
    );

    // The cut sources of the second half: nodes just outside V2 adjacent to V2,
    // with offsets measuring how far past the D/2 frontier the boundary edge
    // reaches (the paper's imaginary nodes).
    println!("\ncut sources for the second half (distance offsets past D/2):");
    for v in g.nodes() {
        let dist_v = truth.distance(v);
        if dist_v > Distance::Finite(d1) {
            continue;
        }
        for adj in g.neighbors(v) {
            let du = truth.distance(adj.neighbor);
            if du > Distance::Finite(d1) {
                let offset = dist_v.expect_finite() + adj.weight - d1;
                println!("  {} becomes a source with offset {}", adj.neighbor, offset);
            }
        }
    }
    Ok(())
}
