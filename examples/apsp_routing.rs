//! Routing with a distance-oracle query service (the paper's APSP
//! ramification, without materializing the matrix).
//!
//! A routing layer rarely needs all `n²` distances at once — it needs to
//! *answer* point-to-point queries as they arrive. This example builds the
//! sparse-cover distance oracle once (its per-cluster preprocessing runs the
//! paper's CSSP through the ordinary solver facade), then serves a batch of
//! random queries, comparing the oracle's memory footprint against the exact
//! all-pairs matrix and cross-checking both backends:
//!
//! * Small network: construction takes the exact-APSP fallback (the paper's
//!   random-delay composition), so every answer is exact — verified against
//!   sequential Dijkstra.
//! * Larger network: construction builds the cover hierarchy; every answer
//!   stays within the oracle's proven stretch bound in a fraction of the
//!   matrix's memory.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example apsp_routing
//! ```

use congest_sssp_suite::graph::{generators, sequential, Distance, Graph, NodeId};
use congest_sssp_suite::sssp::apsp::ApspConfig;
use congest_sssp_suite::sssp::{build_oracle, AlgoConfig, OracleConfig};

/// Deterministic seeded pair sampler (the demo must replay identically).
fn random_pairs(n: u32, count: usize, mut state: u64) -> Vec<(NodeId, NodeId)> {
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 11
    };
    (0..count)
        .map(|_| (NodeId((next() % n as u64) as u32), NodeId((next() % n as u64) as u32)))
        .collect()
}

fn network(n: u32, seed: u64) -> Graph {
    let base = generators::random_connected(n, 2 * n as u64, seed);
    generators::with_random_weights(&base, 16, seed)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Small network: the exact-APSP fallback -----------------------------
    let g = network(32, 9);
    println!("small network: {} nodes, {} links", g.node_count(), g.edge_count());
    let build = build_oracle(
        &g,
        &AlgoConfig::default(),
        &OracleConfig::default(),
        &ApspConfig { seed: 4, ..ApspConfig::default() },
    )?;
    assert!(build.oracle.is_exact(), "32 nodes sits below the fallback threshold");
    println!(
        "construction fell back to exact APSP ({} simulated rounds, stretch bound 1)",
        build.rounds
    );
    // Cross-check every entry the service can answer against Dijkstra.
    let truth = sequential::all_pairs(&g);
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(build.oracle.query(u, v), truth[u.index()][v.index()]);
        }
    }
    println!("all {n}x{n} query answers verified exact against Dijkstra", n = g.node_count());

    // --- Larger network: the sparse-cover hierarchy --------------------------
    let g = network(192, 23);
    println!("\nlarge network: {} nodes, {} links", g.node_count(), g.edge_count());
    let build =
        build_oracle(&g, &AlgoConfig::default(), &OracleConfig::default(), &ApspConfig::default())?;
    let report = &build.report;
    assert!(!build.oracle.is_exact(), "192 nodes builds the cover hierarchy");
    println!(
        "oracle built: {} levels, {} clusters, proven stretch <= {} \
         ({} simulated preprocessing rounds)",
        report.levels, report.clusters, report.stretch_bound, build.rounds
    );
    println!(
        "memory: {} bytes vs {} bytes for the exact matrix ({:.1}% of n^2)",
        report.bytes,
        report.exact_matrix_bytes,
        100.0 * report.bytes as f64 / report.exact_matrix_bytes as f64
    );
    assert!(report.bytes < report.exact_matrix_bytes, "sublinear space must win here");

    // Serve a batch of random queries: slice in, slice out, no per-query
    // allocation, sharded over 4 query threads.
    let pairs = random_pairs(g.node_count(), 50_000, 0xBEEF);
    let mut answers = vec![Distance::Infinite; pairs.len()];
    // simlint::allow(wall-clock: queries/sec is the demo's service metric, not simulated time)
    let start = std::time::Instant::now();
    build.oracle.query_into(&pairs, &mut answers, 4);
    let secs = start.elapsed().as_secs_f64();
    println!(
        "served {} queries in {:.1} ms ({:.2e} queries/s on 4 threads)",
        pairs.len(),
        secs * 1e3,
        pairs.len() as f64 / secs.max(1e-9)
    );

    // Every answer stays within the proven stretch of the true distance
    // (spot-checked against Dijkstra from each queried source).
    let mut truth: Vec<Option<Vec<Distance>>> = vec![None; g.node_count() as usize];
    let mut worst = 1.0f64;
    for (&(u, v), est) in pairs.iter().zip(&answers) {
        let row = truth[u.index()].get_or_insert_with(|| sequential::dijkstra(&g, &[u]).distances);
        let (est, t) = (est.expect_finite(), row[v.index()].expect_finite());
        assert!(t <= est && est <= t * report.stretch_bound, "({u},{v}): {est} vs {t}");
        worst = worst.max(est as f64 / t.max(1) as f64);
    }
    println!(
        "observed stretch <= {:.2} on every sampled pair (proven bound: {})",
        worst, report.stretch_bound
    );
    Ok(())
}
