//! Routing-table construction (the paper's APSP ramification): every node
//! needs its distance to every other node. Running the `n` SSSP instances one
//! after another costs the *sum* of their times; because each instance of the
//! paper's SSSP sends only poly(log n) messages per edge, all `n` instances
//! can run concurrently under random-delay scheduling and finish in `Õ(n)`
//! rounds.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example apsp_routing
//! ```

use congest_sssp_suite::graph::{generators, sequential};
use congest_sssp_suite::sssp::apsp::ApspConfig;
use congest_sssp_suite::sssp::{Algorithm, Solver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = generators::random_connected(32, 64, 9);
    let g = generators::with_random_weights(&base, 16, 9);
    println!("network: {} nodes, {} links", g.node_count(), g.edge_count());

    let run = Solver::on(&g)
        .algorithm(Algorithm::Apsp)
        .apsp_config(ApspConfig { seed: 4, ..ApspConfig::default() })
        .run()?;

    // Routing tables are correct: cross-check every entry against Dijkstra.
    let truth = sequential::all_pairs(&g);
    let tables = run.all_pairs.as_ref().expect("APSP returns the full matrix");
    for s in g.nodes() {
        assert_eq!(tables[s.index()], truth[s.index()]);
    }
    println!(
        "all {}x{} routing-table entries verified against Dijkstra",
        g.node_count(),
        g.node_count()
    );

    let sched = run.report.schedule.expect("APSP reports its schedule");
    println!("\nper-instance SSSP congestion (max over edges): {}", sched.max_instance_congestion);
    println!(
        "sequential composition of {} instances: {} rounds",
        g.node_count(),
        sched.sequential_rounds
    );
    println!(
        "random-delay concurrent schedule:          {} rounds ({} messages/edge/round budget)",
        sched.makespan, sched.edge_budget
    );
    println!("speedup from scheduling: {:.1}x", sched.speedup());
    println!(
        "randomness used: only the {} start delays (the SSSPs themselves are deterministic)",
        g.node_count()
    );
    Ok(())
}
