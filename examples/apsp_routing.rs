//! Routing-table construction (the paper's APSP ramification): every node
//! needs its distance to every other node. Running the `n` SSSP instances one
//! after another costs the *sum* of their times; because each instance of the
//! paper's SSSP sends only poly(log n) messages per edge, all `n` instances
//! can run concurrently under random-delay scheduling and finish in `Õ(n)`
//! rounds.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example apsp_routing
//! ```

use congest_sssp_suite::graph::{generators, sequential};
use congest_sssp_suite::sssp::apsp::{apsp, ApspConfig};
use congest_sssp_suite::sssp::AlgoConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = generators::random_connected(32, 64, 9);
    let g = generators::with_random_weights(&base, 16, 9);
    println!("network: {} nodes, {} links", g.node_count(), g.edge_count());

    let run = apsp(&g, &AlgoConfig::default(), &ApspConfig { seed: 4, ..ApspConfig::default() })?;

    // Routing tables are correct: cross-check a few entries against Dijkstra.
    let truth = sequential::all_pairs(&g);
    for s in g.nodes() {
        assert_eq!(run.distances[s.index()], truth[s.index()]);
    }
    println!(
        "all {}x{} routing-table entries verified against Dijkstra",
        g.node_count(),
        g.node_count()
    );

    println!("\nper-instance SSSP congestion (max over edges): {}", run.max_instance_congestion);
    println!(
        "sequential composition of {} instances: {} rounds",
        g.node_count(),
        run.sequential_rounds
    );
    println!(
        "random-delay concurrent schedule:          {} rounds ({} messages/edge/round budget)",
        run.schedule.makespan,
        run.schedule.model_rounds / run.schedule.makespan.max(1)
    );
    println!(
        "speedup from scheduling: {:.1}x",
        run.sequential_rounds as f64 / run.schedule.makespan.max(1) as f64
    );
    println!(
        "randomness used: only the {} start delays (the SSSPs themselves are deterministic)",
        run.schedule.delays.len()
    );
    Ok(())
}
