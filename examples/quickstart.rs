//! Quickstart: build a small weighted network, run the paper's low-congestion
//! SSSP on it through the unified `Solver` facade, and print the distances
//! together with the complexity metrics the paper bounds (rounds, messages,
//! per-edge congestion).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use congest_sssp_suite::graph::{generators, sequential, NodeId};
use congest_sssp_suite::sssp::{Algorithm, Solver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6x6 grid with random integer weights in [1, 10].
    let grid = generators::grid(6, 6, 1);
    let g = generators::with_random_weights(&grid, 10, 42);
    let source = NodeId(0);

    let run = Solver::on(&g).algorithm(Algorithm::Cssp).source(source).run()?;

    // Cross-check against sequential Dijkstra (always passes; shown here so
    // the example doubles as a correctness demo).
    let truth = sequential::dijkstra(&g, &[source]);
    assert_eq!(run.output.distances, truth.distances);

    println!("single-source shortest paths from {source} on a 6x6 weighted grid");
    println!("{:>6} {:>10}", "node", "distance");
    for v in g.nodes() {
        println!("{:>6} {:>10}", v.to_string(), run.distance(v).to_string());
    }
    println!();
    println!("complexity of the distributed execution:");
    println!("  rounds (time):        {}", run.report.rounds);
    println!("  messages:             {}", run.report.messages);
    println!("  max per-edge traffic:  {}", run.report.max_congestion);
    let rec = run.report.recursion.expect("the recursion reports its structure");
    println!("  recursion subproblems: {}", rec.subproblems);
    println!("  max node participation: {}", rec.max_participation);
    Ok(())
}
