//! Quickstart: build a small weighted network, run the paper's low-congestion
//! SSSP on it, and print the distances together with the complexity metrics
//! the paper bounds (rounds, messages, per-edge congestion).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use congest_sssp_suite::graph::{generators, sequential, NodeId};
use congest_sssp_suite::sssp::cssp::sssp;
use congest_sssp_suite::sssp::AlgoConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6x6 grid with random integer weights in [1, 10].
    let grid = generators::grid(6, 6, 1);
    let g = generators::with_random_weights(&grid, 10, 42);
    let source = NodeId(0);

    let run = sssp(&g, source, &AlgoConfig::default())?;

    // Cross-check against sequential Dijkstra (always passes; shown here so
    // the example doubles as a correctness demo).
    let truth = sequential::dijkstra(&g, &[source]);
    assert_eq!(run.output.distances, truth.distances);

    println!("single-source shortest paths from {source} on a 6x6 weighted grid");
    println!("{:>6} {:>10}", "node", "distance");
    for v in g.nodes() {
        println!("{:>6} {:>10}", v.to_string(), run.distance(v).to_string());
    }
    println!();
    println!("complexity of the distributed execution:");
    println!("  rounds (time):        {}", run.metrics.rounds);
    println!("  messages:             {}", run.metrics.messages);
    println!("  max per-edge traffic:  {}", run.metrics.max_congestion());
    println!("  recursion subproblems: {}", run.stats.subproblems);
    println!("  max node participation: {}", run.stats.max_participation());
    Ok(())
}
