//! The `simlint` CLI: lint the workspace, print findings, gate CI.
//!
//! ```text
//! simlint [--root <path>] [--json] [--out <file>]
//! ```
//!
//! Exit codes: `0` clean, `1` unallowed findings, `2` usage or I/O error.
//! `--json` prints the machine-readable report to stdout instead of the
//! human one; `--out <file>` additionally writes the JSON report to a file
//! (written *before* the exit status is decided, so CI can archive it even
//! when the gate fails).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut out_file: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root requires a path"),
            },
            "--out" => match args.next() {
                Some(p) => out_file = Some(PathBuf::from(p)),
                None => return usage("--out requires a file path"),
            },
            "--help" | "-h" => {
                println!(
                    "simlint: workspace determinism / zero-alloc / safety linter\n\n\
                     usage: simlint [--root <path>] [--json] [--out <file>]\n\n\
                     Walks crates/*/{{src,tests,benches,examples}}, src/, tests/, examples/,\n\
                     benches/ (never vendor/ or target/). Exits 0 when clean, 1 on any\n\
                     unallowed finding. Suppress with a justified inline pragma:\n\
                     // simlint::allow(<rule>: <reason>)\n\n\
                     Rules: {}\n\nSee docs/DETERMINISM.md for the full catalogue.",
                    congest_lint::rules::ALL_RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match congest_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if report.files_scanned == 0 {
        // A gate that scans nothing is a gate that silently passes from the
        // wrong working directory; refuse instead.
        eprintln!("simlint: no .rs files found under {} — wrong --root?", root.display());
        return ExitCode::from(2);
    }

    if let Some(path) = &out_file {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("simlint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        println!(
            "simlint: {} finding{} — {} file{} scanned, {} pragma-allowed exception{}",
            report.findings.len(),
            if report.findings.len() == 1 { "" } else { "s" },
            report.files_scanned,
            if report.files_scanned == 1 { "" } else { "s" },
            report.allowed.len(),
            if report.allowed.len() == 1 { "" } else { "s" },
        );
    }

    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("simlint: {msg}\nusage: simlint [--root <path>] [--json] [--out <file>]");
    ExitCode::from(2)
}
