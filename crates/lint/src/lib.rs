//! `simlint` — a static determinism / zero-allocation / safety linter for
//! this workspace.
//!
//! Every replay guarantee the reproduction makes — bit-identical
//! sharded-vs-sequential engine runs, seeded fault schedules, zero-allocation
//! steady-state rounds — is enforced dynamically by differential harnesses
//! and a counting allocator. This crate enforces the *source-level* hazard
//! class statically, before any test runs: one stray `HashMap` iteration or
//! `thread_rng()` in a merge path is caught at the token it appears on.
//!
//! The scanner ([`scanner`]) is a hand-rolled comment/string/char-aware Rust
//! tokenizer (no dependencies); the rule engine ([`rules`]) layers six
//! path-scoped rules plus an inline suppression pragma grammar on top. The
//! `simlint` binary walks `crates/*/{src,tests,benches,examples}`, `src/`,
//! `tests/`, `examples/`, and `benches/` (never `vendor/` or `target/`),
//! exits nonzero on any unallowed finding, and `--json` emits a
//! machine-readable report. `docs/DETERMINISM.md` catalogues the invariants,
//! the rules, and the pragma syntax.

#![forbid(unsafe_code)]

pub mod rules;
pub mod scanner;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{lint_source, AllowedUse, FileReport, Finding};

/// The lint outcome for a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Unallowed findings, sorted by (file, line, rule). Empty means the
    /// gate passes.
    pub findings: Vec<Finding>,
    /// Pragma-suppressed findings, kept auditable.
    pub allowed: Vec<AllowedUse>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when the workspace is clean (exit code 0).
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// The machine-readable report (hand-rolled JSON — this crate is
    /// dependency-free by design).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"tool\": \"simlint\",\n");
        s.push_str(&format!("  \"ok\": {},\n", self.ok()));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.rule,
                json_escape(&f.message)
            ));
        }
        s.push_str(if self.findings.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"allowed\": [");
        for (i, a) in self.allowed.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}",
                json_escape(&a.file),
                a.line,
                a.rule,
                json_escape(&a.reason)
            ));
        }
        s.push_str(if self.allowed.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The source directories `simlint` walks, relative to the workspace root.
/// `vendor/` (API stand-ins we do not own) and `target/` are never scanned.
fn walk_roots(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut dirs: Vec<PathBuf> =
        ["src", "tests", "examples", "benches"].iter().map(|d| root.join(d)).collect();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let path = entry?.path();
            if path.is_dir() {
                for sub in ["src", "tests", "examples", "benches"] {
                    dirs.push(path.join(sub));
                }
            }
        }
    }
    Ok(dirs)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every `.rs` file `simlint` scans under `root`, sorted for deterministic
/// reports.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for dir in walk_roots(root)? {
        collect_rs_files(&dir, &mut files)?;
    }
    files.sort();
    Ok(files)
}

/// Lints the workspace rooted at `root`.
///
/// # Errors
///
/// Returns any I/O error from walking or reading the source tree.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for path in workspace_files(root)? {
        let rel: String = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        let file_report = lint_source(&rel, &src);
        report.findings.extend(file_report.findings);
        report.allowed.extend(file_report.allowed);
        report.files_scanned += 1;
    }
    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.allowed.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}
