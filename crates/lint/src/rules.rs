//! The rule engine: path-scoped determinism / zero-allocation / safety rules
//! over one file's token scan, with inline suppression pragmas.
//!
//! # Pragma syntax
//!
//! A finding is suppressed by a line comment of the form
//!
//! ```text
//! // simlint::allow(<rule>: <reason>)
//! ```
//!
//! either trailing on the offending line or on a line of its own immediately
//! above it (more precisely: an own-line pragma covers the next line that
//! carries any code token). The reason is mandatory — a pragma with an
//! unknown rule name, an empty reason, or no matching finding is itself
//! reported as an [`INVALID_PRAGMA`] finding, so suppressions can never rot
//! silently.

use crate::scanner::{scan, ScanResult, Tok};

/// Iterating `HashMap`/`HashSet` leaks the hasher's order into metrics,
/// traces, and merge paths — the exact hazard that breaks bit-identical
/// engine replay. Scoped to the determinism-bearing crates.
pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
/// `Instant::now` / `SystemTime` outside `crates/bench`: simulated time must
/// come from the round counter, never the host clock.
pub const WALL_CLOCK: &str = "wall-clock";
/// `thread_rng` / `rand::random` / `from_entropy`: all randomness must be
/// ChaCha-seeded (like `FaultPlan`) so every run replays bit-identically.
pub const AMBIENT_RANDOMNESS: &str = "ambient-randomness";
/// Allocation constructs inside a module carrying a `//! simlint: hot-path`
/// header — the static complement of `tests/alloc_regression.rs`.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Crate roots must carry `#![forbid(unsafe_code)]`, and any `unsafe` token
/// needs a `// SAFETY:` comment on the same line or within three lines above.
pub const FORBID_UNSAFE: &str = "forbid-unsafe";
/// `Ordering::Relaxed` in `crates/sim` always requires a pragma arguing why
/// it cannot perturb merge determinism.
pub const RELAXED_ORDERING: &str = "relaxed-ordering";
/// Meta-rule for malformed / unknown / unused pragmas; not itself
/// suppressible.
pub const INVALID_PRAGMA: &str = "invalid-pragma";

/// Every suppressible rule, in reporting order.
pub const ALL_RULES: [&str; 6] = [
    NONDETERMINISTIC_ITERATION,
    WALL_CLOCK,
    AMBIENT_RANDOMNESS,
    HOT_PATH_ALLOC,
    FORBID_UNSAFE,
    RELAXED_ORDERING,
];

/// The module-header comment that opts a file into [`HOT_PATH_ALLOC`].
pub const HOT_PATH_HEADER: &str = "simlint: hot-path";

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (one of the `pub const` rule slugs).
    pub rule: &'static str,
    pub message: String,
}

/// A finding that was suppressed by a pragma — kept for the JSON report so
/// every accepted exception stays auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowedUse {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub reason: String,
}

/// The lint outcome for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub allowed: Vec<AllowedUse>,
}

struct Pragma {
    rule: &'static str,
    reason: String,
    /// The pragma's own line.
    line: u32,
    /// The code line it covers (its own line for trailing pragmas, the next
    /// code line for own-line pragmas).
    target: u32,
    used: bool,
}

/// Lints one file's source. `rel_path` is the workspace-relative path with
/// `/` separators — rule scoping is purely path-prefix based.
pub fn lint_source(rel_path: &str, src: &str) -> FileReport {
    let sc = scan(src);
    let mut report = FileReport::default();
    let mut pragmas = collect_pragmas(rel_path, &sc, &mut report.findings);

    let mut raw: Vec<Finding> = Vec::new();
    check_nondeterministic_iteration(rel_path, &sc, &mut raw);
    check_wall_clock(rel_path, &sc, &mut raw);
    check_ambient_randomness(rel_path, &sc, &mut raw);
    check_hot_path_alloc(rel_path, &sc, &mut raw);
    check_forbid_unsafe(rel_path, &sc, &mut raw);
    check_relaxed_ordering(rel_path, &sc, &mut raw);
    raw.sort_by_key(|f| (f.line, f.rule));

    for f in raw {
        let hit = pragmas
            .iter_mut()
            .find(|p| p.rule == f.rule && (p.target == f.line || p.line == f.line));
        if let Some(p) = hit {
            p.used = true;
            report.allowed.push(AllowedUse {
                file: f.file,
                line: f.line,
                rule: f.rule,
                reason: p.reason.clone(),
            });
        } else {
            report.findings.push(f);
        }
    }

    // A pragma that suppresses nothing is stale: either the violation was
    // fixed (delete the pragma) or the pragma is mis-placed (move it).
    for p in pragmas.iter().filter(|p| !p.used) {
        report.findings.push(Finding {
            file: rel_path.to_string(),
            line: p.line,
            rule: INVALID_PRAGMA,
            message: format!(
                "pragma `simlint::allow({}: …)` matches no finding on line {} — \
                 delete it or move it next to the code it covers",
                p.rule, p.target
            ),
        });
    }
    report.findings.sort_by_key(|f| (f.line, f.rule));
    report
}

fn collect_pragmas(rel_path: &str, sc: &ScanResult, findings: &mut Vec<Finding>) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for c in &sc.comments {
        let content = c.content();
        let Some(rest) = content.strip_prefix("simlint::allow") else { continue };
        let bad = |msg: String| Finding {
            file: rel_path.to_string(),
            line: c.line,
            rule: INVALID_PRAGMA,
            message: msg,
        };
        let Some(inner) = rest.trim().strip_prefix('(').and_then(|r| r.strip_suffix(')')) else {
            findings.push(bad(format!(
                "malformed pragma `{content}` — expected `simlint::allow(<rule>: <reason>)`"
            )));
            continue;
        };
        let Some((rule_name, reason)) = inner.split_once(':') else {
            findings.push(bad(format!(
                "pragma `{content}` is missing a reason — use `simlint::allow(<rule>: <reason>)`"
            )));
            continue;
        };
        let rule_name = rule_name.trim();
        let reason = reason.trim();
        let Some(rule) = ALL_RULES.iter().find(|r| **r == rule_name).copied() else {
            findings.push(bad(format!(
                "pragma names unknown rule `{rule_name}` (known: {})",
                ALL_RULES.join(", ")
            )));
            continue;
        };
        if reason.is_empty() {
            findings.push(bad(format!(
                "pragma for `{rule_name}` carries no reason — every exception must say why"
            )));
            continue;
        }
        let target = if sc.has_code_on(c.line) {
            c.line
        } else {
            sc.next_code_line(c.line).unwrap_or(c.line)
        };
        pragmas.push(Pragma {
            rule,
            reason: reason.to_string(),
            line: c.line,
            target,
            used: false,
        });
    }
    pragmas
}

fn finding(rel_path: &str, line: u32, rule: &'static str, message: String) -> Finding {
    Finding { file: rel_path.to_string(), line, rule, message }
}

fn ident_at(sc: &ScanResult, i: usize) -> Option<&str> {
    sc.tokens.get(i).and_then(Tok::ident)
}

fn punct_at(sc: &ScanResult, i: usize) -> Option<char> {
    sc.tokens.get(i).and_then(Tok::punct)
}

/// `true` when tokens `i..` spell `::<name>`.
fn path_seg(sc: &ScanResult, i: usize, name: &str) -> bool {
    punct_at(sc, i) == Some(':')
        && punct_at(sc, i + 1) == Some(':')
        && ident_at(sc, i + 2) == Some(name)
}

/// Marks which token indices sit inside a `use …;` declaration, where naming
/// `HashMap` is an import, not an iteration hazard.
fn use_statement_mask(sc: &ScanResult) -> Vec<bool> {
    let mut mask = vec![false; sc.tokens.len()];
    let mut active = false;
    for (i, t) in sc.tokens.iter().enumerate() {
        if t.ident() == Some("use") {
            active = true;
        }
        mask[i] = active;
        if t.punct() == Some(';') {
            active = false;
        }
    }
    mask
}

/// The line of the first `#[cfg(test)] mod …` item, if any: hot-path alloc
/// scanning stops there — in-file unit tests may allocate freely.
fn cfg_test_mod_line(sc: &ScanResult) -> u32 {
    for i in 0..sc.tokens.len() {
        if punct_at(sc, i) == Some('#')
            && punct_at(sc, i + 1) == Some('[')
            && ident_at(sc, i + 2) == Some("cfg")
            && punct_at(sc, i + 3) == Some('(')
            && ident_at(sc, i + 4) == Some("test")
            && punct_at(sc, i + 5) == Some(')')
            && punct_at(sc, i + 6) == Some(']')
            && ident_at(sc, i + 7) == Some("mod")
        {
            return sc.tokens[i].line();
        }
    }
    u32::MAX
}

const DETERMINISM_CRATES: [&str; 5] =
    ["crates/sim/", "crates/core/", "crates/cover/", "crates/graph/", "crates/oracle/"];

fn check_nondeterministic_iteration(rel_path: &str, sc: &ScanResult, out: &mut Vec<Finding>) {
    if !DETERMINISM_CRATES.iter().any(|p| rel_path.starts_with(p)) {
        return;
    }
    let in_use = use_statement_mask(sc);
    for (i, t) in sc.tokens.iter().enumerate() {
        let Some(name @ ("HashMap" | "HashSet")) = t.ident() else { continue };
        if in_use[i] {
            continue;
        }
        out.push(finding(
            rel_path,
            t.line(),
            NONDETERMINISTIC_ITERATION,
            format!(
                "`{name}` in a determinism-scoped crate: hasher order leaks into any \
                 iteration — use `BTreeMap`/`BTreeSet` or a `Vec`-indexed map, or pragma a \
                 provably lookup-only use"
            ),
        ));
    }
}

fn check_wall_clock(rel_path: &str, sc: &ScanResult, out: &mut Vec<Finding>) {
    if rel_path.starts_with("crates/bench/") {
        return;
    }
    for (i, t) in sc.tokens.iter().enumerate() {
        match t.ident() {
            Some("Instant") if path_seg(sc, i + 1, "now") => out.push(finding(
                rel_path,
                t.line(),
                WALL_CLOCK,
                "`Instant::now()` outside `crates/bench`: wall-clock time is \
                 nondeterministic — simulated time is the round counter"
                    .to_string(),
            )),
            Some("SystemTime") => out.push(finding(
                rel_path,
                t.line(),
                WALL_CLOCK,
                "`SystemTime` outside `crates/bench`: wall-clock time is nondeterministic"
                    .to_string(),
            )),
            _ => {}
        }
    }
}

fn check_ambient_randomness(rel_path: &str, sc: &ScanResult, out: &mut Vec<Finding>) {
    for (i, t) in sc.tokens.iter().enumerate() {
        let hit = match t.ident() {
            Some(name @ ("thread_rng" | "from_entropy")) => Some(format!("`{name}`")),
            Some("rand") if path_seg(sc, i + 1, "random") => Some("`rand::random`".to_string()),
            _ => None,
        };
        if let Some(what) = hit {
            out.push(finding(
                rel_path,
                t.line(),
                AMBIENT_RANDOMNESS,
                format!(
                    "{what}: ambient entropy breaks seeded replay — thread a \
                     ChaCha-seeded generator from an explicit seed (as `FaultPlan` does)"
                ),
            ));
        }
    }
}

fn check_hot_path_alloc(rel_path: &str, sc: &ScanResult, out: &mut Vec<Finding>) {
    if !sc.comments.iter().any(|c| c.content() == HOT_PATH_HEADER) {
        return;
    }
    let cutoff = cfg_test_mod_line(sc);
    let mut hit = |line: u32, what: &str| {
        if line < cutoff {
            out.push(finding(
                rel_path,
                line,
                HOT_PATH_ALLOC,
                format!(
                    "{what} in a `{HOT_PATH_HEADER}` module: steady-state rounds must not \
                     allocate (see `tests/alloc_regression.rs`) — reuse a buffer, or pragma \
                     one-time setup / diagnostic-mode allocations"
                ),
            ));
        }
    };
    for (i, t) in sc.tokens.iter().enumerate() {
        match t.ident() {
            Some(m @ ("vec" | "format")) if punct_at(sc, i + 1) == Some('!') => {
                hit(t.line(), &format!("`{m}!`"));
            }
            Some(ty @ ("Vec" | "Box")) if path_seg(sc, i + 1, "new") => {
                hit(t.line(), &format!("`{ty}::new`"));
            }
            Some(m @ ("collect" | "to_vec")) if i > 0 && punct_at(sc, i - 1) == Some('.') => {
                hit(t.line(), &format!("`.{m}()`"));
            }
            _ => {}
        }
    }
}

/// `true` for files that are crate roots of workspace packages — the files
/// where `#![forbid(unsafe_code)]` must live.
fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || rel_path == "src/main.rs"
        || (rel_path.starts_with("crates/")
            && (rel_path.ends_with("/src/lib.rs")
                || rel_path.ends_with("/src/main.rs")
                || rel_path.contains("/src/bin/")))
}

fn check_forbid_unsafe(rel_path: &str, sc: &ScanResult, out: &mut Vec<Finding>) {
    if is_crate_root(rel_path) {
        let has_forbid = (0..sc.tokens.len()).any(|i| {
            ident_at(sc, i) == Some("forbid")
                && punct_at(sc, i + 1) == Some('(')
                && ident_at(sc, i + 2) == Some("unsafe_code")
        });
        if !has_forbid {
            out.push(finding(
                rel_path,
                1,
                FORBID_UNSAFE,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            ));
        }
    }
    for t in &sc.tokens {
        if t.ident() != Some("unsafe") {
            continue;
        }
        let line = t.line();
        let justified = sc
            .comments
            .iter()
            .any(|c| c.content().starts_with("SAFETY:") && c.line <= line && line - c.line <= 3);
        if !justified {
            out.push(finding(
                rel_path,
                line,
                FORBID_UNSAFE,
                "`unsafe` without a `// SAFETY:` comment on the same line or within three \
                 lines above"
                    .to_string(),
            ));
        }
    }
}

fn check_relaxed_ordering(rel_path: &str, sc: &ScanResult, out: &mut Vec<Finding>) {
    if !rel_path.starts_with("crates/sim/") {
        return;
    }
    for (i, t) in sc.tokens.iter().enumerate() {
        if t.ident() == Some("Ordering") && path_seg(sc, i + 1, "Relaxed") {
            out.push(finding(
                rel_path,
                t.line(),
                RELAXED_ORDERING,
                "`Ordering::Relaxed` in `crates/sim` requires a pragma justifying why it \
                 cannot perturb merge determinism"
                    .to_string(),
            ));
        }
    }
}
