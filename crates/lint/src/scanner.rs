//! A comment/string/char-aware Rust token scanner.
//!
//! This is deliberately *not* a full Rust lexer: the rule engine only needs
//! identifiers, punctuation, and line numbers, with everything that could hide
//! a trigger token — string literals (plain, raw, byte, raw-byte), char
//! literals, line comments, and (nested) block comments — either skipped or
//! captured as an opaque [`Tok::Literal`] / [`Comment`]. Lifetimes are
//! recognised so that `'a` is never mistaken for an unterminated char literal.
//!
//! Line comments are captured (with their text) because the rule engine reads
//! three comment conventions out of them: `// simlint::allow(<rule>: <reason>)`
//! pragmas, `// SAFETY:` justifications, and the `//! simlint: hot-path`
//! module header. Block comments are skipped entirely — the pragma grammar is
//! line-comment only, which keeps suppression visually adjacent to the code
//! it covers.

/// One scanned token. Literals carry no text: the scanner's job is precisely
/// to make their *contents* invisible to the rule engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`HashMap`, `unsafe`, `use`, …).
    Ident { text: String, line: u32 },
    /// A single punctuation character (`::` is two `:` tokens).
    Punct { ch: char, line: u32 },
    /// A string / raw-string / byte-string / char / numeric literal.
    Literal { line: u32 },
}

impl Tok {
    /// The 1-based line the token starts on.
    pub fn line(&self) -> u32 {
        match self {
            Tok::Ident { line, .. } | Tok::Punct { line, .. } | Tok::Literal { line } => *line,
        }
    }

    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident { text, .. } => Some(text),
            _ => None,
        }
    }

    /// The punctuation character, if this is punctuation.
    pub fn punct(&self) -> Option<char> {
        match self {
            Tok::Punct { ch, .. } => Some(*ch),
            _ => None,
        }
    }
}

/// A captured `//` line comment.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text after the `//`, trimmed. Doc comments keep their marker:
    /// `//! x` scans as `"! x"` and `/// x` as `"/ x"`; use
    /// [`Comment::content`] for the marker-stripped text.
    pub text: String,
    /// The 1-based line the comment is on.
    pub line: u32,
}

impl Comment {
    /// The comment text with at most one leading doc marker (`!` or `/`)
    /// stripped, trimmed. Exactly one, so a commented-out pragma example in a
    /// doc comment (`//! // simlint::allow(…)`) stays inert.
    pub fn content(&self) -> &str {
        let t = self.text.as_str();
        let t = t.strip_prefix('!').or_else(|| t.strip_prefix('/')).unwrap_or(t);
        t.trim()
    }
}

/// The scan of one source file.
#[derive(Debug, Default)]
pub struct ScanResult {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

impl ScanResult {
    /// The smallest line `> after` on which any token starts, if any. Used to
    /// resolve which code line an own-line pragma covers.
    pub fn next_code_line(&self, after: u32) -> Option<u32> {
        self.tokens.iter().map(Tok::line).filter(|&l| l > after).min()
    }

    /// `true` if any token starts on `line`.
    pub fn has_code_on(&self, line: u32) -> bool {
        self.tokens.iter().any(|t| t.line() == line)
    }
}

/// Scans `src`, producing tokens and line comments. Never fails: unterminated
/// literals or comments simply consume to end of input (rustc will reject the
/// file anyway; the linter must not panic on it).
pub fn scan(src: &str) -> ScanResult {
    let chars: Vec<char> = src.chars().collect();
    let mut out = ScanResult::default();
    let mut line: u32 = 1;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                out.comments.push(Comment { text: text.trim().to_string(), line });
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comments nest in Rust.
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let lit_line = line;
                i = consume_string(&chars, i + 1, &mut line);
                out.tokens.push(Tok::Literal { line: lit_line });
            }
            '\'' => {
                let lit_line = line;
                match chars.get(i + 1) {
                    Some('\\') => {
                        // Escaped char literal: consume to the closing quote.
                        let mut j = i + 3;
                        while j < chars.len() && chars[j] != '\'' {
                            if chars[j] == '\n' {
                                line += 1;
                            }
                            j += 1;
                        }
                        i = j + 1;
                        out.tokens.push(Tok::Literal { line: lit_line });
                    }
                    Some(_) if chars.get(i + 2) == Some(&'\'') => {
                        // Plain char literal 'x'.
                        i += 3;
                        out.tokens.push(Tok::Literal { line: lit_line });
                    }
                    _ => {
                        // A lifetime ('a, 'static): skip its identifier, emit
                        // nothing — rule patterns never involve lifetimes.
                        let mut j = i + 1;
                        while j < chars.len() && (chars[j] == '_' || chars[j].is_alphanumeric()) {
                            j += 1;
                        }
                        i = j;
                    }
                }
            }
            _ if c == '_' || c.is_alphabetic() => {
                let start = i;
                let id_line = line;
                while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                // Literal prefixes: r"…", r#"…"#, b"…", br"…", br#"…"#.
                if (text == "r" || text == "br") && raw_string_starts(&chars, i) {
                    i = consume_raw_string(&chars, i, &mut line);
                    out.tokens.push(Tok::Literal { line: id_line });
                } else if text == "b" && chars.get(i) == Some(&'"') {
                    i = consume_string(&chars, i + 1, &mut line);
                    out.tokens.push(Tok::Literal { line: id_line });
                } else {
                    out.tokens.push(Tok::Ident { text, line: id_line });
                }
            }
            _ if c.is_ascii_digit() => {
                let lit_line = line;
                // Numbers (incl. hex/suffixes); `.` is left out so tuple
                // indexing and method calls keep their own tokens.
                while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Tok::Literal { line: lit_line });
            }
            _ => {
                out.tokens.push(Tok::Punct { ch: c, line });
                i += 1;
            }
        }
    }
    out
}

/// Consumes a (byte-)string body starting just after the opening `"`; returns
/// the index just past the closing quote.
fn consume_string(chars: &[char], mut j: usize, line: &mut u32) -> usize {
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// `true` if, at `j` (just after an `r`/`br` prefix), a raw string follows:
/// zero or more `#` then `"`.
fn raw_string_starts(chars: &[char], mut j: usize) -> bool {
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Consumes a raw string starting at `j` (just after the `r`/`br` prefix);
/// returns the index just past the closing delimiter.
fn consume_raw_string(chars: &[char], mut j: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(chars.get(j), Some(&'"'));
    j += 1;
    while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
        } else if chars[j] == '"'
            && chars[j + 1..].iter().take(hashes).filter(|&&c| c == '#').count() == hashes
        {
            return j + 1 + hashes;
        } else {
            j += 1;
        }
    }
    j
}
