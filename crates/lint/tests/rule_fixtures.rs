//! Fixture self-tests for every `simlint` rule: for each rule a positive
//! (flagged), a negative (clean), and a pragma-suppressed variant, plus the
//! pragma-grammar error cases and the scanner edge cases that make literal
//! contents invisible to the rule engine.
//!
//! All fixture sources live in raw strings, so the trigger tokens they
//! contain are themselves invisible when `simlint` scans this test file.

use congest_lint::rules::{
    AMBIENT_RANDOMNESS, FORBID_UNSAFE, HOT_PATH_ALLOC, INVALID_PRAGMA, NONDETERMINISTIC_ITERATION,
    RELAXED_ORDERING, WALL_CLOCK,
};
use congest_lint::{lint_source, FileReport};

/// `(line, rule)` pairs of the unallowed findings for `src` at `path`.
fn findings(path: &str, src: &str) -> Vec<(u32, &'static str)> {
    lint_source(path, src).findings.iter().map(|f| (f.line, f.rule)).collect()
}

fn report(path: &str, src: &str) -> FileReport {
    lint_source(path, src)
}

// ---------------------------------------------------------------- rule scopes

#[test]
fn hashmap_in_a_determinism_crate_is_flagged() {
    let src = r#"
fn tally() {
    let mut m = std::collections::HashMap::new();
    m.insert(1u32, 2u32);
}
"#;
    assert_eq!(findings("crates/sim/src/foo.rs", src), vec![(3, NONDETERMINISTIC_ITERATION)]);
    assert_eq!(findings("crates/core/src/foo.rs", src), vec![(3, NONDETERMINISTIC_ITERATION)]);
    // Out of the determinism scope: clean.
    assert_eq!(findings("crates/sssp/src/foo.rs", src), vec![]);
    assert_eq!(findings("crates/bench/src/foo.rs", src), vec![]);
}

#[test]
fn hashset_is_flagged_like_hashmap() {
    let src = "fn f() { let s: std::collections::HashSet<u32> = Default::default(); }";
    assert_eq!(findings("crates/graph/src/foo.rs", src), vec![(1, NONDETERMINISTIC_ITERATION)]);
}

#[test]
fn use_statements_naming_hashmap_are_imports_not_hazards() {
    let src = "use std::collections::{HashMap, HashSet};\n";
    assert_eq!(findings("crates/sim/src/foo.rs", src), vec![]);
}

#[test]
fn btreemap_is_the_clean_replacement() {
    let src = "fn f() { let mut m = std::collections::BTreeMap::new(); m.insert(1u32, 2u32); }";
    assert_eq!(findings("crates/sim/src/foo.rs", src), vec![]);
}

#[test]
fn wall_clock_is_flagged_outside_bench() {
    let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }";
    assert_eq!(findings("crates/sim/src/foo.rs", src), vec![(1, WALL_CLOCK)]);
    assert_eq!(findings("src/util.rs", src), vec![(1, WALL_CLOCK)]);
    // The bench crate is the one place wall-clock time is legitimate.
    assert_eq!(findings("crates/bench/src/foo.rs", src), vec![]);
}

#[test]
fn system_time_is_flagged_even_without_a_method_call() {
    let src = "fn f(t: std::time::SystemTime) { let _ = t; }";
    assert_eq!(findings("crates/sssp/src/foo.rs", src), vec![(1, WALL_CLOCK)]);
}

#[test]
fn a_bare_instant_type_without_now_is_clean() {
    let src = "fn f(t: std::time::Instant, u: std::time::Instant) -> bool { t < u }";
    assert_eq!(findings("crates/sim/src/foo.rs", src), vec![]);
}

#[test]
fn ambient_randomness_is_flagged_everywhere() {
    assert_eq!(
        findings("crates/sssp/src/foo.rs", "fn f() -> u64 { rand::thread_rng().gen() }"),
        vec![(1, AMBIENT_RANDOMNESS)]
    );
    assert_eq!(
        findings("tests/foo.rs", "fn f() { let g = SmallRng::from_entropy(); }"),
        vec![(1, AMBIENT_RANDOMNESS)]
    );
    assert_eq!(
        findings("examples/foo.rs", "fn f() -> f64 { rand::random() }"),
        vec![(1, AMBIENT_RANDOMNESS)]
    );
    // `random` as a plain identifier (or a field) is not `rand::random`.
    assert_eq!(findings("src/util.rs", "fn f(random: u64) -> u64 { random }"), vec![]);
}

#[test]
fn hot_path_alloc_requires_the_module_header() {
    let body = r#"
fn per_round(xs: &[u32]) -> Vec<u32> {
    xs.iter().copied().collect()
}
"#;
    // No header: the rule does not apply.
    assert_eq!(findings("crates/sim/src/engine/foo.rs", body), vec![]);
    // With the header every allocation construct is flagged.
    let hot = format!("//! The hot loop.\n//!\n//! simlint: hot-path\n{body}");
    assert_eq!(findings("crates/sim/src/engine/foo.rs", &hot), vec![(6, HOT_PATH_ALLOC)]);
}

#[test]
fn hot_path_alloc_flags_each_construct() {
    let src = r#"//! simlint: hot-path
fn f() -> String {
    let a = vec![0u8; 4];
    let b: Vec<u8> = Vec::new();
    let c = Box::new(3u32);
    let d = a.to_vec();
    format!("{:?}{:?}{:?}{:?}", a, b, c, d)
}
"#;
    assert_eq!(
        findings("crates/sim/src/foo.rs", src),
        vec![
            (3, HOT_PATH_ALLOC),
            (4, HOT_PATH_ALLOC),
            (5, HOT_PATH_ALLOC),
            (6, HOT_PATH_ALLOC),
            (7, HOT_PATH_ALLOC),
        ]
    );
}

#[test]
fn hot_path_alloc_stops_at_the_unit_test_module() {
    let src = r#"//! simlint: hot-path
fn steady(buf: &mut Vec<u32>) {
    buf.clear();
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch() {
        let v = vec![1, 2, 3];
        assert_eq!(v.len(), 3);
    }
}
"#;
    assert_eq!(findings("crates/sim/src/foo.rs", src), vec![]);
}

#[test]
fn with_capacity_is_deliberately_not_a_hot_path_construct() {
    // Pre-sizing a reused buffer is the *fix* for per-round allocation, so
    // `Vec::with_capacity` stays legal in hot-path modules.
    let src = "//! simlint: hot-path\nfn f() -> Vec<u32> { Vec::with_capacity(8) }";
    assert_eq!(findings("crates/sim/src/foo.rs", src), vec![]);
}

#[test]
fn crate_roots_must_forbid_unsafe() {
    let bare = "pub fn f() {}\n";
    for root in ["src/lib.rs", "src/main.rs", "crates/sim/src/lib.rs", "crates/x/src/bin/y.rs"] {
        assert_eq!(findings(root, bare), vec![(1, FORBID_UNSAFE)], "{root}");
    }
    // Non-root modules are not where the attribute lives.
    assert_eq!(findings("crates/sim/src/engine/mod.rs", bare), vec![]);
    assert_eq!(findings("src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n"), vec![]);
}

#[test]
fn unsafe_needs_a_nearby_safety_comment() {
    let naked = r#"
fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    assert_eq!(findings("crates/sim/src/foo.rs", naked), vec![(3, FORBID_UNSAFE)]);

    let same_line = r#"
fn f(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: caller guarantees p is valid.
}
"#;
    assert_eq!(findings("crates/sim/src/foo.rs", same_line), vec![]);

    let above = r#"
fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid.
    unsafe { *p }
}
"#;
    assert_eq!(findings("crates/sim/src/foo.rs", above), vec![]);

    // A SAFETY comment more than three lines up no longer covers the token.
    let too_far = r#"
// SAFETY: far away.



fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    assert_eq!(findings("crates/sim/src/foo.rs", too_far), vec![(7, FORBID_UNSAFE)]);
}

#[test]
fn relaxed_ordering_is_scoped_to_the_sim_crate() {
    let src =
        "fn f(c: &std::sync::atomic::AtomicU64) { c.load(std::sync::atomic::Ordering::Relaxed); }";
    assert_eq!(findings("crates/sim/src/foo.rs", src), vec![(1, RELAXED_ORDERING)]);
    assert_eq!(findings("crates/sim/tests/foo.rs", src), vec![(1, RELAXED_ORDERING)]);
    // Other crates: the engine merge path is not at stake.
    assert_eq!(findings("crates/core/src/foo.rs", src), vec![]);
}

// -------------------------------------------------------------------- pragmas

#[test]
fn a_trailing_pragma_suppresses_and_is_recorded() {
    let src = "fn f() { let m = std::collections::HashMap::<u32, u32>::new(); let _ = m.get(&1); } // simlint::allow(nondeterministic-iteration: lookup-only fixture)";
    let r = report("crates/sim/src/foo.rs", src);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.allowed.len(), 1);
    assert_eq!(r.allowed[0].rule, NONDETERMINISTIC_ITERATION);
    assert_eq!(r.allowed[0].reason, "lookup-only fixture");
}

#[test]
fn an_own_line_pragma_covers_the_next_code_line() {
    let src = r#"
fn f() -> u64 {
    // simlint::allow(ambient-randomness: fixture demonstrating own-line coverage)

    rand::thread_rng().gen()
}
"#;
    let r = report("crates/sssp/src/foo.rs", src);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.allowed.len(), 1);
    assert_eq!(r.allowed[0].line, 5, "recorded at the finding's line, not the pragma's");
}

#[test]
fn a_pragma_for_the_wrong_rule_suppresses_nothing() {
    let src =
        "fn f() -> u64 { rand::thread_rng().gen() } // simlint::allow(wall-clock: wrong rule)";
    let got = findings("crates/sssp/src/foo.rs", src);
    // The real finding survives, and the mismatched pragma is reported stale.
    assert!(got.contains(&(1, AMBIENT_RANDOMNESS)), "{got:?}");
    assert!(got.contains(&(1, INVALID_PRAGMA)), "{got:?}");
}

#[test]
fn pragma_grammar_errors_are_findings() {
    // Unknown rule name.
    let got = findings("src/util.rs", "// simlint::allow(no-such-rule: reason)\nfn f() {}\n");
    assert!(got.contains(&(1, INVALID_PRAGMA)), "{got:?}");
    // Missing reason separator.
    let got = findings("src/util.rs", "// simlint::allow(wall-clock)\nfn f() {}\n");
    assert!(got.contains(&(1, INVALID_PRAGMA)), "{got:?}");
    // Empty reason.
    let got = findings("src/util.rs", "// simlint::allow(wall-clock:   )\nfn f() {}\n");
    assert!(got.contains(&(1, INVALID_PRAGMA)), "{got:?}");
    // Malformed parentheses.
    let got = findings("src/util.rs", "// simlint::allow wall-clock: reason\nfn f() {}\n");
    assert!(got.contains(&(1, INVALID_PRAGMA)), "{got:?}");
}

#[test]
fn an_unused_pragma_is_stale_and_reported() {
    let src = "// simlint::allow(wall-clock: nothing here uses the clock)\nfn f() {}\n";
    assert_eq!(findings("src/util.rs", src), vec![(1, INVALID_PRAGMA)]);
}

#[test]
fn a_doc_comment_pragma_example_is_inert() {
    // `//! // simlint::allow(…)` is documentation *about* pragmas; it must
    // neither suppress anything nor count as a stale pragma.
    let src = "//! Example: `// simlint::allow(wall-clock: reason)`.\n//! // simlint::allow(wall-clock: reason)\nfn f() {}\n";
    assert_eq!(findings("src/util.rs", src), vec![]);
}

// ------------------------------------------------------------- scanner edges

#[test]
fn trigger_tokens_inside_string_literals_are_invisible() {
    let src = r##"
fn f() -> &'static str {
    "thread_rng() and HashMap and Instant::now() and unsafe"
}
fn g() -> &'static str {
    r#"SystemTime and Ordering::Relaxed and vec![]"#
}
fn h() -> &'static [u8] {
    b"from_entropy"
}
"##;
    assert_eq!(findings("crates/sim/src/foo.rs", src), vec![]);
}

#[test]
fn raw_strings_with_hashes_terminate_at_the_matching_delimiter() {
    // The first `"#` inside the body must not close an `r##"…"##` string; if
    // it did, the trailing tokens would leak out of the literal and the
    // `thread_rng` *after* the string must still be seen.
    let src = r####"
fn f() -> &'static str {
    r##"quote-hash inside: "# still inside "##
}
fn g() -> u64 { rand::thread_rng().gen() }
"####;
    assert_eq!(findings("crates/sim/src/foo.rs", src), vec![(5, AMBIENT_RANDOMNESS)]);
}

#[test]
fn comments_hide_triggers_and_nested_block_comments_balance() {
    let src = r#"
// thread_rng() in a line comment
/* outer /* nested thread_rng() */ still a comment */
fn f() -> u64 { rand::thread_rng().gen() }
"#;
    assert_eq!(findings("crates/sim/src/foo.rs", src), vec![(4, AMBIENT_RANDOMNESS)]);
}

#[test]
fn lifetimes_are_not_char_literals() {
    // A naive scanner treats `'a` as an unterminated char literal and eats
    // the rest of the file; the finding after it proves `'a` was skipped.
    let src = r#"
fn first<'a>(xs: &'a [u64]) -> &'a u64 { &xs[0] }
fn g() -> u64 { rand::thread_rng().gen() }
"#;
    assert_eq!(findings("crates/sim/src/foo.rs", src), vec![(3, AMBIENT_RANDOMNESS)]);
}

#[test]
fn char_literals_and_escapes_are_opaque() {
    let src = r#"
fn f() -> (char, char, char) { ('"', '\\', '\n') }
fn g() -> u64 { rand::thread_rng().gen() }
"#;
    assert_eq!(findings("crates/sim/src/foo.rs", src), vec![(3, AMBIENT_RANDOMNESS)]);
}

#[test]
fn multiline_strings_keep_line_numbers_right() {
    let src = "fn f() -> &'static str {\n    \"line\n    spanning\n    literal\"\n}\nfn g() -> u64 { rand::thread_rng().gen() }\n";
    assert_eq!(findings("crates/sim/src/foo.rs", src), vec![(6, AMBIENT_RANDOMNESS)]);
}
