//! The gate `simlint` exists for, applied to itself: this workspace must lint
//! clean, and the `simlint` binary's exit codes and JSON report must behave
//! as CI relies on them to.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

#[test]
fn the_workspace_lints_clean() {
    let report = congest_lint::lint_workspace(&workspace_root()).expect("workspace walk");
    assert!(report.ok(), "the workspace must be simlint-clean, found: {:#?}", report.findings);
    assert!(report.files_scanned >= 80, "scanned only {} files", report.files_scanned);
    // Every accepted exception carries a written reason (the pragma grammar
    // enforces this per pragma; this pins it end to end).
    assert!(!report.allowed.is_empty(), "the workspace documents its known exceptions");
    for a in &report.allowed {
        assert!(!a.reason.is_empty(), "{}:{} has an empty reason", a.file, a.line);
    }
}

/// A scratch tree shaped like a workspace, torn down on drop.
struct ScratchTree {
    root: PathBuf,
}

impl ScratchTree {
    fn new(tag: &str) -> ScratchTree {
        let root = std::env::temp_dir().join(format!("simlint-{tag}-{}", std::process::id()));
        // A stale tree from an interrupted earlier run must not leak files in.
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/sim/src")).expect("scratch tree");
        ScratchTree { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, contents).expect("write fixture");
    }
}

impl Drop for ScratchTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn simlint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_simlint")).args(args).output().expect("run simlint")
}

#[test]
fn injected_ambient_randomness_fails_the_gate() {
    let tree = ScratchTree::new("dirty");
    tree.write(
        "crates/sim/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn roll() -> u64 { rand::thread_rng().gen() }\n",
    );
    let out = simlint(&["--root", tree.root.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1), "findings must exit nonzero");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("ambient-randomness"), "human report names the rule: {stdout}");
    assert!(stdout.contains("crates/sim/src/lib.rs:2"), "…and the location: {stdout}");
}

#[test]
fn json_report_is_written_even_when_the_gate_fails() {
    let tree = ScratchTree::new("json");
    tree.write(
        "crates/sim/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let json_path = tree.root.join("simlint.json");
    let out = simlint(&[
        "--root",
        tree.root.to_str().expect("utf8 path"),
        "--json",
        "--out",
        json_path.to_str().expect("utf8 path"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    // `--json` streams the report to stdout…
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("\"ok\": false"), "{stdout}");
    assert!(stdout.contains("\"rule\": \"wall-clock\""), "{stdout}");
    // …and `--out` persists the same report for the CI artifact, findings or
    // not (the artifact must exist precisely when the gate fails).
    let on_disk = fs::read_to_string(&json_path).expect("artifact written");
    assert_eq!(on_disk, stdout);
}

#[test]
fn a_clean_tree_exits_zero() {
    let tree = ScratchTree::new("clean");
    tree.write(
        "crates/sim/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn double(x: u64) -> u64 { x * 2 }\n",
    );
    let out = simlint(&["--root", tree.root.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("0 findings"), "{stdout}");
}

#[test]
fn a_missing_root_is_a_usage_error_not_a_pass() {
    let out = simlint(&["--root", "/nonexistent/simlint-no-such-dir"]);
    assert_eq!(out.status.code(), Some(2));
}
