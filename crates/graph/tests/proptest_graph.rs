//! Property-based tests for the graph substrate: structural invariants of
//! generators and agreement between independent shortest-path algorithms.

use congest_graph::{generators, properties, sequential, Distance, Graph, NodeId};
use proptest::prelude::*;

/// Strategy producing a connected random graph plus an arbitrary source node.
fn connected_graph_and_source() -> impl Strategy<Value = (Graph, NodeId, u64)> {
    (2u32..60, 0u64..200, 0u64..1_000_000, 1u64..64).prop_map(|(n, extra, seed, max_w)| {
        let g = generators::random_connected(n, extra, seed);
        let g = generators::with_random_weights(&g, max_w, seed ^ 0xabcdef);
        let src = NodeId((seed % n as u64) as u32);
        (g, src, max_w)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dijkstra and Bellman–Ford are independent implementations; they must
    /// agree on every node's distance.
    #[test]
    fn dijkstra_agrees_with_bellman_ford((g, src, _w) in connected_graph_and_source()) {
        let a = sequential::dijkstra(&g, &[src]);
        let b = sequential::bellman_ford(&g, &[src]);
        prop_assert_eq!(a.distances, b.distances);
    }

    /// The triangle inequality holds for the computed distance function:
    /// `dist(s, v) <= dist(s, u) + w(u, v)` for every edge `{u, v}`.
    #[test]
    fn distances_satisfy_triangle_inequality((g, src, _w) in connected_graph_and_source()) {
        let sp = sequential::dijkstra(&g, &[src]);
        for e in g.edges() {
            let du = sp.distance(e.u);
            let dv = sp.distance(e.v);
            prop_assert!(dv <= du.saturating_add(e.w));
            prop_assert!(du <= dv.saturating_add(e.w));
        }
    }

    /// Every shortest-path tree edge is tight: `dist(parent) + w == dist(child)`.
    #[test]
    fn parent_pointers_are_tight((g, src, _w) in connected_graph_and_source()) {
        let sp = sequential::dijkstra(&g, &[src]);
        for v in g.nodes() {
            if let Some(p) = sp.parents[v.index()] {
                let w = g.edge_weight(p, v).expect("parent edge exists");
                prop_assert_eq!(sp.distance(p).saturating_add(w), sp.distance(v));
            }
        }
    }

    /// Multi-source distances equal the pointwise minimum of per-source runs.
    #[test]
    fn multi_source_is_pointwise_min((g, src, _w) in connected_graph_and_source()) {
        let other = NodeId((src.0 + 1) % g.node_count());
        let multi = sequential::dijkstra(&g, &[src, other]);
        let a = sequential::dijkstra(&g, &[src]);
        let b = sequential::dijkstra(&g, &[other]);
        for v in g.nodes() {
            prop_assert_eq!(multi.distance(v), a.distance(v).min(b.distance(v)));
        }
    }

    /// BFS distances are a lower bound on weighted distances when all weights
    /// are >= 1, and equal them when all weights are exactly 1.
    #[test]
    fn bfs_lower_bounds_weighted((g, src, _w) in connected_graph_and_source()) {
        let hops = sequential::bfs(&g, &[src]);
        let weighted = sequential::dijkstra(&g, &[src]);
        for v in g.nodes() {
            prop_assert!(hops.distance(v) <= weighted.distance(v));
        }
    }

    /// Generators produce graphs whose adjacency structure is internally
    /// consistent (symmetric adjacency, degree sum = 2m).
    #[test]
    fn generator_adjacency_is_consistent(n in 1u32..80, p in 0.0f64..1.0, seed in 0u64..1000) {
        let g = generators::erdos_renyi_gnp(n, p, seed);
        let stats = properties::degree_stats(&g);
        prop_assert_eq!(stats.total, 2 * g.edge_count() as usize);
        for e in g.edges() {
            prop_assert!(g.neighbors(e.u).iter().any(|a| a.neighbor == e.v));
            prop_assert!(g.neighbors(e.v).iter().any(|a| a.neighbor == e.u));
            prop_assert_ne!(e.u, e.v);
        }
    }

    /// `random_connected` always yields a connected graph with at least a
    /// spanning tree's worth of edges.
    #[test]
    fn random_connected_is_connected(n in 1u32..80, extra in 0u64..100, seed in 0u64..1000) {
        let g = generators::random_connected(n, extra, seed);
        prop_assert!(properties::is_connected(&g));
        prop_assert!(g.edge_count() >= n - 1);
    }

    /// The hop diameter of a connected graph is at most n - 1 and at least the
    /// eccentricity of node 0.
    #[test]
    fn hop_diameter_bounds(n in 2u32..40, extra in 0u64..60, seed in 0u64..500) {
        let g = generators::random_connected(n, extra, seed);
        let d = properties::hop_diameter(&g);
        prop_assert!(d <= (n - 1) as u64);
        prop_assert!(d >= properties::hop_eccentricity(&g, NodeId(0)) as u64);
    }

    /// Induced subgraphs preserve distances measured inside the kept set when
    /// the kept set is "distance-closed" (here: a ball around the source).
    #[test]
    fn induced_ball_preserves_distances((g, src, _w) in connected_graph_and_source()) {
        let sp = sequential::dijkstra(&g, &[src]);
        let radius = properties::weighted_radius_from(&g, &[src]);
        let Some(radius) = radius.finite() else { return Ok(()); };
        let half = radius / 2;
        let keep: std::collections::BTreeSet<NodeId> = g
            .nodes()
            .filter(|&v| sp.distance(v) <= Distance::Finite(half))
            .collect();
        let (sub, map) = g.induced_subgraph(&keep);
        let new_src = map.iter().position(|&v| v == src).expect("source kept") as u32;
        let sub_sp = sequential::dijkstra(&sub, &[NodeId(new_src)]);
        for (new_id, &old_id) in map.iter().enumerate() {
            // Distances in the subgraph can only be >= the true distance, and
            // they agree for nodes whose shortest path stays inside the ball.
            prop_assert!(sub_sp.distances[new_id] >= sp.distance(old_id));
        }
    }
}
