//! Differential pinning of the radix-heap truth oracle: on *every* generator
//! family — friendly, killer, zero-weight, and disconnected — the default
//! [`sequential::dijkstra`] (monotone radix heap) must return distances *and*
//! parent pointers bit-identical to the retained binary-heap reference
//! [`sequential::dijkstra_binary_heap`], and the parents must reconstruct
//! valid shortest paths.

use congest_graph::{generators, sequential, Distance, Graph, NodeId};
use proptest::prelude::*;

/// Every generator family in the crate, indexed so proptest shrinks toward
/// the simple deterministic topologies. Sizes are kept small because the
/// dense families are quadratic.
const FAMILIES: usize = 16;

fn family(idx: usize, n: u32, seed: u64) -> Graph {
    let n = n.max(2);
    match idx {
        0 => generators::path(n, 1 + seed % 7),
        1 => generators::cycle(n.max(3), 1 + seed % 7),
        2 => generators::star(n, 1 + seed % 7),
        3 => generators::complete(n, 1 + seed % 7),
        4 => generators::grid(2 + n % 5, 2 + (n / 5) % 5, 1 + seed % 7),
        5 => generators::binary_tree(n, 1 + seed % 7),
        6 => generators::random_tree(n, seed),
        7 => generators::with_random_weights(
            &generators::random_connected(n, 2 * n as u64, seed),
            60,
            seed,
        ),
        // Zero-weight edges on a random topology.
        8 => generators::with_random_weights_zero(
            &generators::random_connected(n, 2 * n as u64, seed),
            9,
            seed,
        ),
        // Disconnected: several weighted components.
        9 => generators::disjoint_copies(
            &generators::with_random_weights_zero(
                &generators::random_connected(n / 2 + 2, n as u64, seed),
                11,
                seed,
            ),
            2 + (seed % 3) as u32,
        ),
        10 => generators::with_random_weights(&generators::barbell(n / 3 + 1, n % 5, 1), 30, seed),
        11 => generators::broom(n / 2 + 1, n / 2, 1 + seed % 9),
        // Killer families.
        12 => generators::wrong_dijkstra_killer(n),
        13 => generators::spfa_killer(n / 2 + 1),
        14 => generators::grid_swirl(2 + n % 6),
        15 => generators::almost_line(n.max(4), seed),
        _ => unreachable!(),
    }
}

/// The max-dense variants take their own strategy: they are quadratic *and*
/// heavy-keyed, so sizes stay extra small.
fn dense_variant(idx: usize, n: u32, seed: u64) -> Graph {
    let n = n.clamp(2, 24);
    if idx == 0 {
        generators::max_dense(n, seed)
    } else {
        generators::max_dense_zero(n, seed)
    }
}

/// Radix and binary agree bit-for-bit and the parents reconstruct paths whose
/// (minimum-parallel-edge) weight sum equals the reported distance.
fn assert_oracles_identical(g: &Graph, sources: &[NodeId]) {
    let radix = sequential::dijkstra(g, sources);
    let binary = sequential::dijkstra_binary_heap(g, sources);
    assert_eq!(radix, binary, "radix vs binary heap diverged (distances or parents)");
    for v in g.nodes() {
        match radix.path_to(v) {
            None => assert!(radix.distance(v).is_infinite()),
            Some(path) => {
                assert_eq!(path.last(), Some(&v));
                assert!(sources.contains(&path[0]), "paths start at a source");
                let mut total = 0;
                for w in path.windows(2) {
                    total += g.edge_weight(w[0], w[1]).expect("path edges exist");
                }
                assert_eq!(Distance::Finite(total), radix.distance(v), "path weight = distance");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-source agreement across every family.
    #[test]
    fn radix_matches_binary_on_every_family(
        idx in 0usize..FAMILIES,
        n in 4u32..28,
        seed in 0u64..10_000,
    ) {
        let g = family(idx, n, seed);
        let src = NodeId((seed % g.node_count() as u64) as u32);
        assert_oracles_identical(&g, &[src]);
    }

    /// Multi-source agreement (the CSSP shape every distributed algorithm is
    /// checked against) across every family.
    #[test]
    fn radix_matches_binary_multi_source(
        idx in 0usize..FAMILIES,
        n in 4u32..24,
        seed in 0u64..10_000,
    ) {
        let g = family(idx, n, seed);
        let n = g.node_count() as u64;
        let a = NodeId((seed % n) as u32);
        let b = NodeId(((seed / 3 + 1) % n) as u32);
        assert_oracles_identical(&g, &[a, b]);
    }

    /// The max-dense variants: near-`MAX_WEIGHT` keys and all-zero-ish keys.
    #[test]
    fn radix_matches_binary_on_max_dense_variants(
        idx in 0usize..2,
        n in 2u32..24,
        seed in 0u64..10_000,
    ) {
        let g = dense_variant(idx, n, seed);
        let src = NodeId((seed % g.node_count() as u64) as u32);
        assert_oracles_identical(&g, &[src]);
    }
}

/// A deterministic (non-proptest) sweep so a plain `cargo test` exercises
/// every family even with proptest's case budget reduced.
#[test]
fn radix_matches_binary_fixed_sweep() {
    for idx in 0..FAMILIES {
        for seed in 0..3 {
            let g = family(idx, 12 + seed as u32, seed);
            assert_oracles_identical(&g, &[NodeId(0)]);
        }
    }
    for idx in 0..2 {
        let g = dense_variant(idx, 16, 7);
        assert_oracles_identical(&g, &[NodeId(0)]);
    }
}
