//! The [`Graph`] type: an undirected, weighted multigraph.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::GraphError;

/// Edge weights are non-negative integers, as in the paper (`w(e) ∈ [0, poly(n)]`).
pub type Weight = u64;

/// A handle to a node of a [`Graph`]. Node ids are dense: `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A handle to an undirected edge of a [`Graph`]. Edge ids are dense: `0..m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected edge `{u, v}` with weight `w`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Non-negative integer weight.
    pub w: Weight,
}

impl Edge {
    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("{x} is not an endpoint of edge {{{}, {}}}", self.u, self.v)
        }
    }
}

/// One entry of a node's adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Adjacency {
    /// The neighbouring node.
    pub neighbor: NodeId,
    /// The id of the connecting edge.
    pub edge: EdgeId,
    /// The weight of the connecting edge.
    pub weight: Weight,
}

/// An undirected, weighted multigraph with `n` nodes (ids `0..n`) and `m`
/// edges (ids `0..m`).
///
/// Parallel edges are allowed (they occur naturally when contracting graphs);
/// self-loops are rejected. The maximum supported weight is
/// [`Graph::MAX_WEIGHT`], mirroring the paper's `poly(n)` weight assumption.
///
/// Adjacency is stored in CSR (compressed sparse row) form: one flat
/// [`Adjacency`] array holding every node's entries back to back, plus an
/// `n + 1` offset table. [`Graph::neighbors`] is a slice of the flat array,
/// so iterating a whole node range walks memory linearly — the layout the
/// simulator's sharded engine sweeps — instead of chasing `n` separate heap
/// vectors. Within a node, entries keep edge-insertion order (the order
/// `Vec<Vec<_>>` adjacency used to expose), which broadcast order and the
/// send-path tie rules depend on.
///
/// ```
/// use congest_graph::{Graph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Graph::builder(3);
/// b.add_edge(0, 1, 5)?;
/// b.add_edge(1, 2, 7)?;
/// let g = b.build();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.degree(NodeId(1)), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    node_count: u32,
    edges: Vec<Edge>,
    /// CSR offsets: node `v`'s adjacency entries live at
    /// `adjacency[adj_offsets[v] .. adj_offsets[v + 1]]`. Length `n + 1`.
    adj_offsets: Vec<u32>,
    /// All adjacency entries (`2m` of them), grouped by node, each node's
    /// run in edge-insertion order.
    adjacency: Vec<Adjacency>,
    max_weight: Weight,
}

impl Graph {
    /// The largest supported edge weight (`2^40`), comfortably `poly(n)` for
    /// any graph size this workspace simulates.
    pub const MAX_WEIGHT: Weight = 1 << 40;

    /// Creates an empty graph (no edges) on `n` nodes.
    pub fn empty(n: u32) -> Graph {
        Graph {
            node_count: n,
            edges: Vec::new(),
            adj_offsets: vec![0; n as usize + 1],
            adjacency: Vec::new(),
            max_weight: 0,
        }
    }

    /// Starts building a graph with `n` nodes.
    pub fn builder(n: u32) -> GraphBuilder {
        GraphBuilder {
            node_count: n,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n as usize],
            max_weight: 0,
        }
    }

    /// Builds a graph on `n` nodes from `(u, v, w)` edge triples.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, an edge is a
    /// self-loop, or a weight exceeds [`Graph::MAX_WEIGHT`].
    pub fn from_edges(
        n: u32,
        edges: impl IntoIterator<Item = (u32, u32, Weight)>,
    ) -> Result<Graph, GraphError> {
        let mut b = Graph::builder(n);
        for (u, v, w) in edges {
            b.add_edge(u, v, w)?;
        }
        Ok(b.build())
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Number of edges `m`.
    pub fn edge_count(&self) -> u32 {
        self.edges.len() as u32
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count).map(NodeId)
    }

    /// Iterator over all edge ids `0..m`.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// All edges, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.index()]
    }

    /// The adjacency list of `v`: a slice of the flat CSR adjacency array, in
    /// edge-insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[Adjacency] {
        let lo = self.adj_offsets[v.index()] as usize;
        let hi = self.adj_offsets[v.index() + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// The degree (number of incident edges) of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        (self.adj_offsets[v.index() + 1] - self.adj_offsets[v.index()]) as usize
    }

    /// The largest edge weight, or 0 for an edgeless graph.
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// Returns `true` if `v` is a valid node id of this graph.
    pub fn contains_node(&self, v: NodeId) -> bool {
        v.0 < self.node_count
    }

    /// Returns `true` if some edge directly connects `u` and `v`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).iter().any(|a| a.neighbor == v)
    }

    /// The minimum weight among edges directly connecting `u` and `v`, if any.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.neighbors(u).iter().filter(|a| a.neighbor == v).map(|a| a.weight).min()
    }

    /// An upper bound `n * max_weight` on any finite shortest-path distance,
    /// used as the initial threshold `D` of the recursion in the paper
    /// (Section 2.2: "Let D = n · max w_e").
    pub fn distance_upper_bound(&self) -> Weight {
        (self.node_count as Weight).saturating_mul(self.max_weight.max(1))
    }

    /// Builds the subgraph induced by `keep`, returning the new graph and, for
    /// each new node id, the original node id it corresponds to.
    ///
    /// Nodes are renumbered densely in increasing order of their original id;
    /// edges keep their weights. Edges with an endpoint outside `keep` are
    /// dropped.
    pub fn induced_subgraph(&self, keep: &BTreeSet<NodeId>) -> (Graph, Vec<NodeId>) {
        let mut old_to_new = vec![u32::MAX; self.node_count as usize];
        let mut new_to_old = Vec::with_capacity(keep.len());
        for (new_idx, &old) in keep.iter().enumerate() {
            assert!(self.contains_node(old), "node {old} not in graph");
            old_to_new[old.index()] = new_idx as u32;
            new_to_old.push(old);
        }
        let mut builder = Graph::builder(keep.len() as u32);
        for e in &self.edges {
            let (nu, nv) = (old_to_new[e.u.index()], old_to_new[e.v.index()]);
            if nu != u32::MAX && nv != u32::MAX {
                builder
                    .add_edge(nu, nv, e.w)
                    .expect("re-adding an existing valid edge cannot fail");
            }
        }
        (builder.build(), new_to_old)
    }

    /// Total size of the graph representation, `n + m`, a convenient proxy for
    /// work bounds in tests.
    pub fn size(&self) -> usize {
        self.node_count as usize + self.edges.len()
    }
}

/// Incremental builder for [`Graph`] (see [`Graph::builder`]).
///
/// The builder keeps per-node `Vec`s so edge insertion stays `O(1)`;
/// [`GraphBuilder::build`] flattens them into the graph's CSR layout in one
/// `O(n + m)` pass, preserving each node's edge-insertion order.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_count: u32,
    edges: Vec<Edge>,
    adjacency: Vec<Vec<Adjacency>>,
    max_weight: Weight,
}

impl GraphBuilder {
    /// Adds an undirected edge `{u, v}` with weight `w`.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, `u == v`, or the
    /// weight exceeds [`Graph::MAX_WEIGHT`].
    pub fn add_edge(&mut self, u: u32, v: u32, w: Weight) -> Result<EdgeId, GraphError> {
        let n = self.node_count;
        if u >= n {
            return Err(GraphError::NodeOutOfRange { node: u, node_count: n });
        }
        if v >= n {
            return Err(GraphError::NodeOutOfRange { node: v, node_count: n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if w > Graph::MAX_WEIGHT {
            return Err(GraphError::WeightOutOfRange { weight: w, max: Graph::MAX_WEIGHT });
        }
        let id = EdgeId(self.edges.len() as u32);
        let (u, v) = (NodeId(u), NodeId(v));
        self.edges.push(Edge { u, v, w });
        self.adjacency[u.index()].push(Adjacency { neighbor: v, edge: id, weight: w });
        self.adjacency[v.index()].push(Adjacency { neighbor: u, edge: id, weight: w });
        self.max_weight = self.max_weight.max(w);
        Ok(id)
    }

    /// Finishes building and returns the graph, flattening the per-node
    /// adjacency lists into the CSR layout.
    pub fn build(self) -> Graph {
        let mut adj_offsets = Vec::with_capacity(self.node_count as usize + 1);
        let mut adjacency = Vec::with_capacity(2 * self.edges.len());
        adj_offsets.push(0);
        for row in &self.adjacency {
            adjacency.extend_from_slice(row);
            adj_offsets.push(adjacency.len() as u32);
        }
        Graph {
            node_count: self.node_count,
            edges: self.edges,
            adj_offsets,
            adjacency,
            max_weight: self.max_weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1, 1), (1, 2, 2), (0, 2, 10)]).unwrap()
    }

    #[test]
    fn basic_counts_and_degrees() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.max_weight(), 10);
        assert_eq!(g.distance_upper_bound(), 30);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = triangle();
        for e in g.edges() {
            assert!(g.neighbors(e.u).iter().any(|a| a.neighbor == e.v && a.weight == e.w));
            assert!(g.neighbors(e.v).iter().any(|a| a.neighbor == e.u && a.weight == e.w));
        }
    }

    #[test]
    fn rejects_bad_edges() {
        let mut b = Graph::builder(2);
        assert!(matches!(
            b.add_edge(0, 5, 1),
            Err(GraphError::NodeOutOfRange { node: 5, node_count: 2 })
        ));
        assert!(matches!(b.add_edge(1, 1, 1), Err(GraphError::SelfLoop { node: 1 })));
        assert!(matches!(
            b.add_edge(0, 1, Graph::MAX_WEIGHT + 1),
            Err(GraphError::WeightOutOfRange { .. })
        ));
        // The builder remains usable after errors.
        b.add_edge(0, 1, 3).unwrap();
        assert_eq!(b.build().edge_count(), 1);
    }

    #[test]
    fn parallel_edges_are_allowed_and_edge_weight_takes_min() {
        let g = Graph::from_edges(2, [(0, 1, 5), (0, 1, 3)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(3));
        assert!(g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn zero_weight_edges_are_allowed() {
        let g = Graph::from_edges(2, [(0, 1, 0)]).unwrap();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(0));
        assert_eq!(g.max_weight(), 0);
        // The distance upper bound is still positive.
        assert!(g.distance_upper_bound() >= 1);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge { u: NodeId(3), v: NodeId(7), w: 1 };
        assert_eq!(e.other(NodeId(3)), NodeId(7));
        assert_eq!(e.other(NodeId(7)), NodeId(3));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let e = Edge { u: NodeId(3), v: NodeId(7), w: 1 };
        let _ = e.other(NodeId(0));
    }

    #[test]
    fn induced_subgraph_renumbers_and_keeps_internal_edges() {
        let g =
            Graph::from_edges(5, [(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 4, 4), (0, 4, 5)]).unwrap();
        let keep: BTreeSet<NodeId> = [NodeId(1), NodeId(2), NodeId(3)].into_iter().collect();
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2); // edges (1,2) and (2,3)
        assert_eq!(map, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(sub.has_edge(NodeId(0), NodeId(1)));
        assert!(sub.has_edge(NodeId(1), NodeId(2)));
        assert!(!sub.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_weight(), 0);
        assert_eq!(g.nodes().count(), 4);
        assert_eq!(g.edge_ids().count(), 0);
    }

    #[test]
    fn csr_adjacency_preserves_insertion_order_and_is_contiguous() {
        // Parallel edges and interleaved insertion: each node's slice must
        // list its entries in the order its edges were added.
        let g = Graph::from_edges(3, [(0, 1, 9), (1, 2, 1), (0, 1, 2), (2, 0, 5)]).unwrap();
        let order: Vec<EdgeId> = g.neighbors(NodeId(1)).iter().map(|a| a.edge).collect();
        assert_eq!(order, vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
        let order: Vec<EdgeId> = g.neighbors(NodeId(0)).iter().map(|a| a.edge).collect();
        assert_eq!(order, vec![EdgeId(0), EdgeId(2), EdgeId(3)]);
        // The flat array holds exactly 2m entries, grouped by node id.
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(total, 2 * g.edge_count() as usize);
        let flat: Vec<Adjacency> = g.nodes().flat_map(|v| g.neighbors(v).iter().copied()).collect();
        assert_eq!(flat.len(), total);
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(NodeId(4).to_string(), "v4");
        assert_eq!(EdgeId(2).to_string(), "e2");
    }
}
