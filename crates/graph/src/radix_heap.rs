//! simlint: hot-path
//!
//! A monotone radix heap over `(u64 distance, u32 node)` entries — the
//! priority queue behind the default sequential Dijkstra truth oracle
//! ([`crate::sequential::dijkstra`]).
//!
//! # Layout
//!
//! Entries live in 65 buckets indexed by the position of the highest bit in
//! which a key differs from `last`, the distance most recently popped:
//! bucket `0` holds keys equal to `last`, bucket `i ≥ 1` holds keys whose
//! highest differing bit (1-based) is `i`. Because Dijkstra only ever pushes
//! keys `≥ last` (edge weights are non-negative), every bucket's contents
//! agree with `last` on all bits above its index — so when bucket `i` is the
//! first non-empty one, advancing `last` to that bucket's minimum and
//! rebucketing its entries lands every one of them in a *strictly lower*
//! bucket. Each entry therefore moves O(64) times total, and `pop` is
//! amortized O(64) plus the bucket-0 scan.
//!
//! # Tie-break
//!
//! Bucket 0 holds exactly the entries whose distance equals `last`, so a
//! linear scan for the minimum node id reproduces the lexicographic
//! `(dist, node)` pop order of `BinaryHeap<Reverse<(Weight, u32)>>`
//! bit-for-bit — see `docs/SEQ_BASELINES.md` for why this matters to every
//! differential harness in the workspace.
//!
//! # Allocation discipline
//!
//! The 65 bucket spines are allocated once in [`RadixHeap::new`]; pushes
//! reuse bucket capacity and redistribution recycles the drained bucket's
//! allocation via `std::mem::take` + put-back, so the steady state after
//! warm-up allocates only when a bucket grows past its high-water mark.

/// Number of buckets: one per possible highest-differing-bit position of a
/// `u64` key (1..=64), plus bucket 0 for keys equal to `last`.
const BUCKETS: usize = 65;

/// A monotone priority queue of `(distance, node)` entries: pops must be
/// non-decreasing in distance, which Dijkstra guarantees. Pop order is
/// lexicographic on `(distance, node)`, matching the binary-heap oracle.
#[derive(Debug, Clone)]
pub struct RadixHeap {
    /// `buckets[i]` holds entries whose key differs from `last` first at
    /// (1-based) bit `i`; `buckets[0]` holds entries equal to `last`.
    buckets: Vec<Vec<(u64, u32)>>,
    /// The distance of the most recent pop (0 before the first pop). Every
    /// entry in the heap is `≥ last`.
    last: u64,
    /// Total live entries across all buckets.
    len: usize,
}

impl RadixHeap {
    /// Creates an empty heap. This is the only place that allocates the
    /// bucket spines; [`RadixHeap::clear`] resets for reuse without freeing.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        for _ in 0..BUCKETS {
            buckets.push(Vec::with_capacity(0));
        }
        RadixHeap { buckets, last: 0, len: 0 }
    }

    /// Number of entries currently queued (including stale duplicates).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The monotone floor: the distance of the most recent pop (0 before the
    /// first pop). Pushing below this value is a logic error.
    pub fn last(&self) -> u64 {
        self.last
    }

    /// Empties the heap and resets the monotone floor to 0, keeping every
    /// bucket's capacity so a reused heap (e.g. across the `n` runs of
    /// [`crate::sequential::all_pairs`]) stays allocation-free.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.last = 0;
        self.len = 0;
    }

    /// The bucket for key `d` relative to the current `last`: 0 when equal,
    /// otherwise the 1-based index of the highest differing bit.
    fn bucket_of(&self, d: u64) -> usize {
        if d == self.last {
            0
        } else {
            64 - (d ^ self.last).leading_zeros() as usize
        }
    }

    /// Queues `(dist, node)`.
    ///
    /// # Panics
    ///
    /// Debug-asserts the monotone invariant `dist >= self.last()`.
    pub fn push(&mut self, dist: u64, node: u32) {
        debug_assert!(
            dist >= self.last,
            "monotone violation: push {dist} below last {}",
            self.last
        );
        let b = self.bucket_of(dist);
        self.buckets[b].push((dist, node));
        self.len += 1;
    }

    /// Removes and returns the minimum entry in `(distance, node)` order, or
    /// `None` when empty.
    pub fn pop(&mut self) -> Option<(u64, u32)> {
        if self.len == 0 {
            return None;
        }
        if self.buckets[0].is_empty() {
            self.refill();
        }
        // Bucket 0 entries all carry distance == last; the minimum entry is
        // the one with the smallest node id.
        let bucket = &mut self.buckets[0];
        let mut at = 0;
        for (i, e) in bucket.iter().enumerate().skip(1) {
            if e.1 < bucket[at].1 {
                at = i;
            }
        }
        let entry = bucket.swap_remove(at);
        self.len -= 1;
        Some(entry)
    }

    /// Advances `last` to the minimum queued distance and redistributes the
    /// first non-empty bucket; on return bucket 0 is non-empty.
    fn refill(&mut self) {
        let first = self
            .buckets
            .iter()
            .position(|b| !b.is_empty())
            .expect("refill called on a non-empty heap");
        debug_assert!(first > 0, "refill with bucket 0 already populated");
        let mut drained = std::mem::take(&mut self.buckets[first]);
        let min = drained.iter().map(|e| e.0).min().expect("non-empty bucket");
        self.last = min;
        for &(d, v) in &drained {
            let b = self.bucket_of(d);
            debug_assert!(b < first, "redistribution must land strictly lower");
            self.buckets[b].push((d, v));
        }
        // Put the drained spine back so its capacity is reused next time.
        drained.clear();
        self.buckets[first] = drained;
    }
}

impl Default for RadixHeap {
    fn default() -> Self {
        RadixHeap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_heap_pops_none() {
        let mut h = RadixHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.pop(), None);
        assert_eq!(h.last(), 0);
    }

    #[test]
    fn pops_in_distance_then_node_order() {
        let mut h = RadixHeap::new();
        for &(d, v) in &[(5u64, 2u32), (1, 9), (5, 0), (1, 3), (0, 7), (5, 1)] {
            h.push(d, v);
        }
        let mut out = Vec::new();
        while let Some(e) = h.pop() {
            out.push(e);
        }
        assert_eq!(out, [(0, 7), (1, 3), (1, 9), (5, 0), (5, 1), (5, 2)]);
    }

    #[test]
    fn interleaved_monotone_pushes_match_binary_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut radix = RadixHeap::new();
        let mut binary: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        let mut floor = 0u64;
        for _ in 0..2000 {
            if rng.gen_bool(0.6) || radix.is_empty() {
                let d = floor + rng.gen_range(0u64..1 << 20);
                let v = rng.gen_range(0u32..64);
                radix.push(d, v);
                binary.push(Reverse((d, v)));
            } else {
                let a = radix.pop().unwrap();
                let Reverse(b) = binary.pop().unwrap();
                assert_eq!(a, b);
                floor = a.0;
            }
        }
        while let Some(a) = radix.pop() {
            let Reverse(b) = binary.pop().unwrap();
            assert_eq!(a, b);
        }
        assert!(binary.is_empty());
    }

    #[test]
    fn handles_extreme_keys() {
        let mut h = RadixHeap::new();
        h.push(0, 1);
        h.push(u64::MAX, 2);
        h.push(u64::MAX - 1, 3);
        assert_eq!(h.pop(), Some((0, 1)));
        assert_eq!(h.pop(), Some((u64::MAX - 1, 3)));
        assert_eq!(h.pop(), Some((u64::MAX, 2)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn clear_resets_floor_for_reuse() {
        let mut h = RadixHeap::new();
        h.push(100, 1);
        assert_eq!(h.pop(), Some((100, 1)));
        assert_eq!(h.last(), 100);
        h.push(200, 2);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.last(), 0);
        // After clear, small keys are legal again.
        h.push(3, 4);
        assert_eq!(h.pop(), Some((3, 4)));
    }

    #[test]
    fn duplicate_entries_survive() {
        let mut h = RadixHeap::new();
        h.push(7, 5);
        h.push(7, 5);
        h.push(7, 5);
        assert_eq!(h.len(), 3);
        assert_eq!(h.pop(), Some((7, 5)));
        assert_eq!(h.pop(), Some((7, 5)));
        assert_eq!(h.pop(), Some((7, 5)));
        assert_eq!(h.pop(), None);
    }
}
