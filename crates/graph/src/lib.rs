//! Graph substrate for the `congest-sssp` workspace.
//!
//! This crate provides the data structures shared by every other crate in the
//! workspace:
//!
//! * [`Graph`] — an undirected, weighted multigraph with stable [`NodeId`] and
//!   [`EdgeId`] handles, the network topology over which the distributed
//!   algorithms run.
//! * [`Distance`] — a saturating "finite or infinite" distance value.
//! * [`generators`] — deterministic and seeded-random workload generators
//!   (paths, grids, Erdős–Rényi graphs, trees, barbells, …).
//! * [`sequential`] — classical *sequential* shortest-path algorithms
//!   (Dijkstra, Bellman–Ford, BFS, connected components, spanning forests)
//!   used as ground truth when testing the distributed algorithms. The
//!   default Dijkstra runs on a monotone [`RadixHeap`]; the binary-heap
//!   implementation is retained as `dijkstra_binary_heap` and pinned
//!   bit-identical by `tests/radix_differential.rs`.
//! * [`properties`] — structural queries (diameter, eccentricities, degrees).
//!
//! # Example
//!
//! ```
//! use congest_graph::{generators, sequential, NodeId};
//!
//! let g = generators::grid(4, 4, 1);
//! let sp = sequential::dijkstra(&g, &[NodeId(0)]);
//! // Manhattan distance to the opposite corner of a 4x4 unit grid.
//! assert_eq!(sp.distances[15].finite(), Some(6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distance;
mod error;
mod graph;
mod radix_heap;

pub mod generators;
pub mod properties;
pub mod sequential;

pub use distance::Distance;
pub use error::GraphError;
pub use graph::{Adjacency, Edge, EdgeId, Graph, GraphBuilder, NodeId, Weight};
pub use radix_heap::RadixHeap;
