//! Error types for graph construction and queries.

use std::error::Error;
use std::fmt;

/// Errors produced while building or querying a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An endpoint referred to a node index that does not exist.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// The number of nodes in the graph.
        node_count: u32,
    },
    /// A self-loop edge `(v, v)` was supplied; the CONGEST model in the paper
    /// assumes a simple network graph, so self-loops are rejected.
    SelfLoop {
        /// The node at both endpoints.
        node: u32,
    },
    /// An edge weight was outside the supported range.
    WeightOutOfRange {
        /// The offending weight.
        weight: u64,
        /// The maximum allowed weight.
        max: u64,
    },
    /// A source set was empty where at least one source is required.
    EmptySourceSet,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} is out of range for a graph with {node_count} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at node {node} is not allowed")
            }
            GraphError::WeightOutOfRange { weight, max } => {
                write!(f, "edge weight {weight} exceeds the maximum supported weight {max}")
            }
            GraphError::EmptySourceSet => write!(f, "the source set must be non-empty"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { node: 9, node_count: 4 };
        assert!(e.to_string().contains("node 9"));
        let e = GraphError::SelfLoop { node: 3 };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::WeightOutOfRange { weight: 10, max: 5 };
        assert!(e.to_string().contains("10"));
        assert!(GraphError::EmptySourceSet.to_string().contains("non-empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
