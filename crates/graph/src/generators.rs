//! Workload generators: deterministic topologies and seeded random graphs.
//!
//! All random generators take an explicit `seed` and use a counter-mode PRNG
//! ([`rand_chacha::ChaCha8Rng`]), so every workload in the test and benchmark
//! suites is reproducible bit-for-bit.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{Graph, Weight};

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A path `0 - 1 - ... - (n-1)` with uniform edge weight `w`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: u32, w: Weight) -> Graph {
    assert!(n > 0, "a path needs at least one node");
    let mut b = Graph::builder(n);
    for i in 0..n.saturating_sub(1) {
        b.add_edge(i, i + 1, w).expect("path edges are always valid");
    }
    b.build()
}

/// A cycle on `n >= 3` nodes with uniform edge weight `w`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: u32, w: Weight) -> Graph {
    assert!(n >= 3, "a cycle needs at least three nodes");
    let mut b = Graph::builder(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n, w).expect("cycle edges are always valid");
    }
    b.build()
}

/// A star: node 0 connected to nodes `1..n`, uniform weight `w`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: u32, w: Weight) -> Graph {
    assert!(n > 0, "a star needs at least one node");
    let mut b = Graph::builder(n);
    for i in 1..n {
        b.add_edge(0, i, w).expect("star edges are always valid");
    }
    b.build()
}

/// The complete graph `K_n` with uniform weight `w`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: u32, w: Weight) -> Graph {
    assert!(n > 0, "a complete graph needs at least one node");
    let mut b = Graph::builder(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i, j, w).expect("complete-graph edges are always valid");
        }
    }
    b.build()
}

/// A `rows x cols` 2-D grid with uniform weight `w`. Node `(r, c)` has id
/// `r * cols + c`.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
pub fn grid(rows: u32, cols: u32, w: Weight) -> Graph {
    assert!(rows > 0 && cols > 0, "a grid needs positive dimensions");
    let mut b = Graph::builder(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                b.add_edge(id, id + 1, w).expect("grid edges are always valid");
            }
            if r + 1 < rows {
                b.add_edge(id, id + cols, w).expect("grid edges are always valid");
            }
        }
    }
    b.build()
}

/// A complete binary tree with `n` nodes (node `i` has children `2i+1`,
/// `2i+2`), uniform weight `w`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_tree(n: u32, w: Weight) -> Graph {
    assert!(n > 0, "a tree needs at least one node");
    let mut b = Graph::builder(n);
    for i in 1..n {
        b.add_edge(i, (i - 1) / 2, w).expect("tree edges are always valid");
    }
    b.build()
}

/// A uniformly random labelled tree on `n` nodes (random Prüfer-like
/// attachment), unit weights, seeded.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: u32, seed: u64) -> Graph {
    assert!(n > 0, "a tree needs at least one node");
    let mut r = rng(seed);
    let mut b = Graph::builder(n);
    // Random attachment: node i attaches to a uniformly random earlier node.
    for i in 1..n {
        let parent = r.gen_range(0..i);
        b.add_edge(i, parent, 1).expect("tree edges are always valid");
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: each of the `n(n-1)/2` possible edges is present
/// independently with probability `p`, unit weights, seeded.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn erdos_renyi_gnp(n: u32, p: f64, seed: u64) -> Graph {
    assert!(n > 0, "G(n, p) needs at least one node");
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut r = rng(seed);
    let mut b = Graph::builder(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if r.gen_bool(p) {
                b.add_edge(i, j, 1).expect("G(n, p) edges are always valid");
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly at
/// random (capped at `n(n-1)/2`), unit weights, seeded.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn erdos_renyi_gnm(n: u32, m: u64, seed: u64) -> Graph {
    assert!(n > 0, "G(n, m) needs at least one node");
    let mut r = rng(seed);
    let all_pairs = (n as u64) * (n as u64 - 1) / 2;
    let m = m.min(all_pairs);
    let mut chosen = std::collections::BTreeSet::new();
    let mut b = Graph::builder(n);
    while (chosen.len() as u64) < m {
        let u = r.gen_range(0..n);
        let v = r.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            b.add_edge(key.0, key.1, 1).expect("G(n, m) edges are always valid");
        }
    }
    b.build()
}

/// A connected random graph: a random spanning tree plus `extra_edges`
/// additional uniformly random non-duplicate edges, unit weights, seeded.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_connected(n: u32, extra_edges: u64, seed: u64) -> Graph {
    assert!(n > 0, "a connected graph needs at least one node");
    let mut r = rng(seed);
    let mut b = Graph::builder(n);
    let mut present = std::collections::BTreeSet::new();
    // Spanning tree by random attachment over a random permutation of labels,
    // so that the tree is not biased toward small ids.
    let mut order: Vec<u32> = (0..n).collect();
    order.shuffle(&mut r);
    for i in 1..n as usize {
        let parent = order[r.gen_range(0..i)];
        let child = order[i];
        let key = (parent.min(child), parent.max(child));
        present.insert(key);
        b.add_edge(key.0, key.1, 1).expect("tree edges are always valid");
    }
    let all_pairs = (n as u64) * (n as u64 - 1) / 2;
    let target = (present.len() as u64 + extra_edges).min(all_pairs);
    let mut guard = 0u64;
    while (present.len() as u64) < target && guard < 100 * target + 1000 {
        guard += 1;
        let u = r.gen_range(0..n);
        let v = r.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if present.insert(key) {
            b.add_edge(key.0, key.1, 1).expect("extra edges are always valid");
        }
    }
    b.build()
}

/// A barbell: two cliques `K_k` joined through a path of `bridge_nodes`
/// intermediate nodes (a direct edge if `bridge_nodes == 0`), uniform weight
/// `w`. A classic high-congestion / bottleneck topology.
///
/// Nodes `0..k` form the left clique, nodes `k..k+bridge_nodes` form the
/// bridge, and the remaining `k` nodes form the right clique.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn barbell(k: u32, bridge_nodes: u32, w: Weight) -> Graph {
    assert!(k > 0, "a barbell needs non-empty cliques");
    let n = 2 * k + bridge_nodes;
    let right_start = k + bridge_nodes;
    let mut b = Graph::builder(n);
    for i in 0..k {
        for j in (i + 1)..k {
            b.add_edge(i, j, w).expect("clique edges are always valid");
            b.add_edge(right_start + i, right_start + j, w).expect("clique edges are always valid");
        }
    }
    // Bridge path from the last left-clique node to the first right-clique node.
    let mut prev = k - 1;
    for x in k..=right_start {
        if x != prev {
            b.add_edge(prev, x, w).expect("bridge edges are always valid");
            prev = x;
        }
    }
    b.build()
}

/// A "broom": a path of length `handle_len` whose last node fans out to
/// `bristles` leaves. Useful as a high-diameter, uneven-degree workload.
///
/// # Panics
///
/// Panics if `handle_len == 0`.
pub fn broom(handle_len: u32, bristles: u32, w: Weight) -> Graph {
    assert!(handle_len > 0, "a broom needs a handle");
    let n = handle_len + bristles;
    let mut b = Graph::builder(n);
    for i in 0..handle_len - 1 {
        b.add_edge(i, i + 1, w).expect("handle edges are always valid");
    }
    for j in 0..bristles {
        b.add_edge(handle_len - 1, handle_len + j, w).expect("bristle edges are always valid");
    }
    b.build()
}

/// Replaces every edge weight with a uniform random integer in
/// `[1, max_weight]`, seeded. Topology is preserved.
///
/// # Panics
///
/// Panics if `max_weight == 0`.
pub fn with_random_weights(g: &Graph, max_weight: Weight, seed: u64) -> Graph {
    assert!(max_weight >= 1, "max_weight must be at least 1");
    let mut r = rng(seed);
    let mut b = Graph::builder(g.node_count());
    for e in g.edges() {
        let w = r.gen_range(1..=max_weight);
        b.add_edge(e.u.0, e.v.0, w).expect("re-weighted edges are always valid");
    }
    b.build()
}

/// Replaces every edge weight with a uniform random integer in
/// `[0, max_weight]` (zero allowed), seeded. Topology is preserved.
pub fn with_random_weights_zero(g: &Graph, max_weight: Weight, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut b = Graph::builder(g.node_count());
    for e in g.edges() {
        let w = r.gen_range(0..=max_weight);
        b.add_edge(e.u.0, e.v.0, w).expect("re-weighted edges are always valid");
    }
    b.build()
}

// ---------------------------------------------------------------------------
// Killer families: adversarial topologies engineered to punish specific
// shortest-path strategies. Used by the differential proptests, the chaos
// campaign, and the E17 sequential-solver gate — see `docs/SEQ_BASELINES.md`
// for the gallery and the attack each family mounts.
// ---------------------------------------------------------------------------

/// A decrease-key storm: the complete graph on `n` nodes with
/// `w(i, j) = n·(j-i) - i` for `i < j` (all weights positive and pairwise
/// distinct). From source 0 the settle order is `0, 1, 2, …`, and every
/// settled node `i` improves the tentative distance of *every* later node by
/// exactly `i` — so a Dijkstra run performs `Θ(n²)` distance improvements and
/// queues `Θ(n²)` entries. This is the dense family behind the E17 radix- vs
/// binary-heap speedup gate, and the classic counterexample to "greedy
/// without a priority queue" (hence the name).
///
/// # Panics
///
/// Panics if `n < 2` or the largest weight `n·(n-1)` exceeds
/// [`Graph::MAX_WEIGHT`].
pub fn wrong_dijkstra_killer(n: u32) -> Graph {
    assert!(n >= 2, "the killer needs at least two nodes");
    let c = n as Weight;
    assert!(
        c * (c - 1) <= Graph::MAX_WEIGHT,
        "n too large: weights would exceed Graph::MAX_WEIGHT"
    );
    let mut b = Graph::builder(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let w = c * (j - i) as Weight - i as Weight;
            b.add_edge(i, j, w).expect("killer edges are always valid");
        }
    }
    b.build()
}

/// A Bellman–Ford / SPFA worst case on `2k` nodes: a unit-weight path
/// `0 - 1 - … - (2k-1)` whose edges are *inserted in reverse order*, so each
/// relaxation sweep over the edge list advances the frontier by exactly one
/// hop (`Θ(n)` sweeps, `Θ(n·m)` work, defeating the early-exit), plus one
/// shortcut `(0, i)` of weight `i + k` for every node `i` in the far half —
/// finite overestimates that arrive instantly and then must be improved hop
/// by hop, sweep after sweep.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn spfa_killer(k: u32) -> Graph {
    assert!(k > 0, "the SPFA killer needs a positive half-length");
    let n = 2 * k;
    let mut b = Graph::builder(n);
    for i in (0..n - 1).rev() {
        b.add_edge(i, i + 1, 1).expect("path edges are always valid");
    }
    for i in k..n {
        b.add_edge(0, i, (i + k) as Weight).expect("shortcut edges are always valid");
    }
    b.build()
}

/// A `side × side` grid whose shortest paths spiral: edges between two nodes
/// of the same ring (ring = distance to the nearest border) cost 1, edges
/// that cross rings cost `side²`. Geometrically adjacent nodes can be very
/// far apart distance-wise, so any heuristic that trusts grid locality (or a
/// heap that likes shallow keys) is punished; node `(r, c)` has id
/// `r·side + c` as in [`grid`].
///
/// # Panics
///
/// Panics if `side == 0`.
pub fn grid_swirl(side: u32) -> Graph {
    assert!(side > 0, "a grid needs a positive side");
    let ring = |r: u32, c: u32| r.min(c).min(side - 1 - r).min(side - 1 - c);
    let cross = (side as Weight) * (side as Weight);
    let mut b = Graph::builder(side * side);
    for r in 0..side {
        for c in 0..side {
            let id = r * side + c;
            if c + 1 < side {
                let w = if ring(r, c) == ring(r, c + 1) { 1 } else { cross };
                b.add_edge(id, id + 1, w).expect("grid edges are always valid");
            }
            if r + 1 < side {
                let w = if ring(r, c) == ring(r + 1, c) { 1 } else { cross };
                b.add_edge(id, id + side, w).expect("grid edges are always valid");
            }
        }
    }
    b.build()
}

/// An almost-line: a path `0 - 1 - … - (n-1)` with seeded random weights in
/// `[1, 16]`, plus `n/32 + 1` seeded random long-range chords of weight in
/// `[1, 1024]` (possibly parallel to existing edges — this is a multigraph).
/// Maximal diameter with just enough shortcuts that tentative distances keep
/// being revised long after the frontier passed by.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn almost_line(n: u32, seed: u64) -> Graph {
    assert!(n >= 2, "an almost-line needs at least two nodes");
    let mut r = rng(seed);
    let mut b = Graph::builder(n);
    for i in 0..n - 1 {
        let w = r.gen_range(1..=16);
        b.add_edge(i, i + 1, w).expect("path edges are always valid");
    }
    for _ in 0..(n / 32 + 1) {
        let u = r.gen_range(0..n);
        let v = loop {
            let v = r.gen_range(0..n);
            if v != u {
                break v;
            }
        };
        let w = r.gen_range(1..=1024);
        b.add_edge(u, v, w).expect("chord edges are always valid");
    }
    b.build()
}

/// Max-dense: the complete graph on `n` nodes with seeded random weights in
/// `[1, Graph::MAX_WEIGHT]`. The near-max weight range spreads keys across
/// the full 41-bit distance spectrum, stressing every level of the radix
/// heap's bucket hierarchy.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn max_dense(n: u32, seed: u64) -> Graph {
    assert!(n > 0, "a complete graph needs at least one node");
    let mut r = rng(seed);
    let mut b = Graph::builder(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let w = r.gen_range(1..=Graph::MAX_WEIGHT);
            b.add_edge(i, j, w).expect("complete-graph edges are always valid");
        }
    }
    b.build()
}

/// Max-dense with zeros: the complete graph on `n` nodes with seeded random
/// weights in `[0, 3]`. Almost every relaxation ties or near-ties, so the
/// `(dist, node)` tie-break rule carries the entire determinism burden —
/// the sharpest test that the radix heap's bucket-0 scan reproduces the
/// binary heap's pop order.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn max_dense_zero(n: u32, seed: u64) -> Graph {
    assert!(n > 0, "a complete graph needs at least one node");
    let mut r = rng(seed);
    let mut b = Graph::builder(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let w = r.gen_range(0..=3);
            b.add_edge(i, j, w).expect("complete-graph edges are always valid");
        }
    }
    b.build()
}

/// A disjoint union of `parts` copies of `g` (no edges between copies); useful
/// for exercising multi-component behaviour (maximal *forests*, per-component
/// coordination).
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn disjoint_copies(g: &Graph, parts: u32) -> Graph {
    assert!(parts > 0, "need at least one copy");
    let n = g.node_count();
    let mut b = Graph::builder(n * parts);
    for p in 0..parts {
        let off = p * n;
        for e in g.edges() {
            b.add_edge(e.u.0 + off, e.v.0 + off, e.w).expect("copied edges are always valid");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;

    #[test]
    fn path_shape() {
        let g = path(5, 2);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(crate::NodeId(0)), 1);
        assert_eq!(g.degree(crate::NodeId(2)), 2);
    }

    #[test]
    fn single_node_path() {
        let g = path(1, 1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6, 1);
        assert_eq!(g.edge_count(), 6);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(7, 1);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(crate::NodeId(0)), 6);
        assert_eq!(g.degree(crate::NodeId(3)), 1);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5, 1);
        assert_eq!(g.edge_count(), 10);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn grid_shape_and_distances() {
        let g = grid(3, 4, 1);
        assert_eq!(g.node_count(), 12);
        // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17
        assert_eq!(g.edge_count(), 17);
        let d = sequential::bfs(&g, &[crate::NodeId(0)]);
        assert_eq!(d.distances[11].finite(), Some(5)); // (2,3): 2 + 3
    }

    #[test]
    fn binary_tree_is_a_tree() {
        let g = binary_tree(15, 1);
        assert_eq!(g.edge_count(), 14);
        assert_eq!(sequential::connected_components(&g).component_count, 1);
    }

    #[test]
    fn random_tree_is_connected_tree() {
        for seed in 0..5 {
            let g = random_tree(40, seed);
            assert_eq!(g.edge_count(), 39);
            assert_eq!(sequential::connected_components(&g).component_count, 1);
        }
    }

    #[test]
    fn gnp_edge_count_reasonable_and_reproducible() {
        let a = erdos_renyi_gnp(50, 0.2, 7);
        let b = erdos_renyi_gnp(50, 0.2, 7);
        assert_eq!(a, b, "same seed gives identical graph");
        let c = erdos_renyi_gnp(50, 0.2, 8);
        assert_ne!(a, c, "different seeds differ (overwhelmingly likely)");
        // Expected 0.2 * 1225 = 245; allow wide tolerance.
        assert!(a.edge_count() > 120 && a.edge_count() < 400);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi_gnp(10, 0.0, 1).edge_count(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, 1).edge_count(), 45);
    }

    #[test]
    fn gnm_has_exactly_m_edges() {
        let g = erdos_renyi_gnm(30, 100, 3);
        assert_eq!(g.edge_count(), 100);
        // Requesting more than the max is capped.
        let g = erdos_renyi_gnm(5, 1000, 3);
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let g = random_connected(64, 100, seed);
            assert_eq!(sequential::connected_components(&g).component_count, 1);
            assert!(g.edge_count() >= 63);
        }
    }

    #[test]
    fn barbell_is_connected_with_bottleneck() {
        let g = barbell(5, 4, 1);
        assert_eq!(sequential::connected_components(&g).component_count, 1);
        // Two K_5s => 2 * 10 clique edges, plus a bridge.
        assert!(g.edge_count() >= 21);
    }

    #[test]
    fn broom_shape() {
        let g = broom(10, 6, 1);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.degree(crate::NodeId(9)), 7); // end of handle + 6 bristles
    }

    #[test]
    fn random_weights_preserve_topology() {
        let g = grid(4, 4, 1);
        let w = with_random_weights(&g, 100, 11);
        assert_eq!(g.node_count(), w.node_count());
        assert_eq!(g.edge_count(), w.edge_count());
        assert!(w.max_weight() <= 100);
        assert!(w.edges().iter().all(|e| e.w >= 1));
        let wz = with_random_weights_zero(&g, 10, 11);
        assert_eq!(wz.edge_count(), g.edge_count());
    }

    #[test]
    fn disjoint_copies_multiplies_components() {
        let g = cycle(5, 1);
        let h = disjoint_copies(&g, 3);
        assert_eq!(h.node_count(), 15);
        assert_eq!(h.edge_count(), 15);
        assert_eq!(sequential::connected_components(&h).component_count, 3);
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1]")]
    fn gnp_rejects_bad_probability() {
        let _ = erdos_renyi_gnp(10, 1.5, 0);
    }

    // --- killer-family self-checks ------------------------------------------

    #[test]
    fn wrong_dijkstra_killer_shape_and_storm() {
        let n = 32;
        let g = wrong_dijkstra_killer(n);
        assert_eq!(g.node_count(), n);
        assert_eq!(g.edge_count(), n * (n - 1) / 2);
        assert_eq!(sequential::connected_components(&g).component_count, 1);
        assert_eq!(g, wrong_dijkstra_killer(n), "deterministic construction");
        // All weights positive; settle order from 0 is 0, 1, 2, … with the
        // shortest path to i being the chain 0 → 1 → … → i.
        assert!(g.edges().iter().all(|e| e.w >= 1));
        let sp = sequential::dijkstra(&g, &[crate::NodeId(0)]);
        let c = n as Weight;
        let mut expected = 0;
        for i in 1..n as usize {
            expected += c - (i as Weight - 1); // w(i-1, i) = c·1 - (i-1)
            assert_eq!(sp.distances[i].finite(), Some(expected), "chain distance to {i}");
            assert_eq!(sp.parents[i], Some(crate::NodeId(i as u32 - 1)), "chain parent of {i}");
        }
    }

    #[test]
    fn spfa_killer_shape_and_sweep_blowup() {
        let k = 16;
        let g = spfa_killer(k);
        assert_eq!(g.node_count(), 2 * k);
        assert_eq!(g.edge_count(), (2 * k - 1) + k);
        assert_eq!(sequential::connected_components(&g).component_count, 1);
        assert_eq!(g, spfa_killer(k), "deterministic construction");
        // True distances are the unit path; shortcuts are always overestimates.
        let sp = sequential::dijkstra(&g, &[crate::NodeId(0)]);
        for i in 0..2 * k as usize {
            assert_eq!(sp.distances[i].finite(), Some(i as Weight));
        }
        assert_eq!(sequential::bellman_ford(&g, &[crate::NodeId(0)]).distances, sp.distances);
    }

    #[test]
    fn grid_swirl_shape_and_spiraling_paths() {
        let side = 8;
        let g = grid_swirl(side);
        assert_eq!(g.node_count(), side * side);
        assert_eq!(g.edge_count(), 2 * side * (side - 1));
        assert_eq!(sequential::connected_components(&g).component_count, 1);
        assert_eq!(g, grid_swirl(side), "deterministic construction");
        // Crossing from the outer ring inward costs side², so the geometric
        // neighbor (1, 1) is far while the whole outer ring is near.
        let sp = sequential::dijkstra(&g, &[crate::NodeId(0)]);
        let far_corner = side * side - 1;
        let inner = side + 1; // (1, 1), one ring in
        assert!(sp.distances[far_corner as usize] < sp.distances[inner as usize]);
    }

    #[test]
    fn almost_line_shape_and_determinism() {
        let n = 100;
        let g = almost_line(n, 5);
        assert_eq!(g.node_count(), n);
        assert_eq!(g.edge_count(), (n - 1) + (n / 32 + 1));
        assert_eq!(sequential::connected_components(&g).component_count, 1);
        assert_eq!(g, almost_line(n, 5), "same seed gives identical graph");
        assert_ne!(g, almost_line(n, 6), "different seeds differ");
    }

    #[test]
    fn max_dense_variants_shape_and_determinism() {
        let n = 20;
        let g = max_dense(n, 3);
        assert_eq!(g.node_count(), n);
        assert_eq!(g.edge_count(), n * (n - 1) / 2);
        assert_eq!(sequential::connected_components(&g).component_count, 1);
        assert_eq!(g, max_dense(n, 3), "same seed gives identical graph");
        assert_ne!(g, max_dense(n, 4), "different seeds differ");
        assert!(g.edges().iter().all(|e| e.w >= 1 && e.w <= Graph::MAX_WEIGHT));

        let z = max_dense_zero(n, 3);
        assert_eq!(z.edge_count(), n * (n - 1) / 2);
        assert_eq!(z, max_dense_zero(n, 3), "same seed gives identical graph");
        assert!(z.edges().iter().all(|e| e.w <= 3));
        assert!(z.edges().iter().any(|e| e.w == 0), "zero weights present");
    }
}
