//! Sequential reference algorithms used as ground truth for the distributed
//! implementations: Dijkstra, Bellman–Ford, BFS, connected components, and
//! spanning forests.
//!
//! Everything in this module is *centralized* — it sees the whole graph at
//! once — and exists so that tests can check the distributed algorithms
//! against an independent implementation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{Distance, EdgeId, Graph, NodeId, RadixHeap, Weight};

/// The result of a single-source / closest-source shortest-path computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortestPaths {
    /// `distances[v]` is the distance from the closest source to node `v`.
    pub distances: Vec<Distance>,
    /// `parents[v]` is the predecessor of `v` on a shortest path from the
    /// closest source (or `None` for sources and unreachable nodes).
    pub parents: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// The distance to node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn distance(&self, v: NodeId) -> Distance {
        self.distances[v.index()]
    }

    /// Reconstructs a shortest path from a source to `v` by following parent
    /// pointers, returning `None` if `v` is unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if self.distances[v.index()].is_infinite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parents[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Number of nodes with a finite distance.
    pub fn reached_count(&self) -> usize {
        self.distances.iter().filter(|d| d.is_finite()).count()
    }
}

/// Closest-source shortest paths by Dijkstra's algorithm on a monotone
/// [`RadixHeap`] — the workspace's default truth oracle.
///
/// Works for any non-negative integer weights (including zero). With a single
/// source this is ordinary SSSP; with several sources it computes
/// `dist(S, v) = min_{s in S} dist(s, v)` — the CSSP problem of the paper.
/// Pop order (and therefore parent pointers) is bit-identical to the retained
/// binary-heap reference [`dijkstra_binary_heap`]: both settle in
/// lexicographic `(dist, node)` order. The equivalence is pinned across every
/// generator family by `tests/radix_differential.rs`.
///
/// # Panics
///
/// Panics if any source id is out of range.
pub fn dijkstra(g: &Graph, sources: &[NodeId]) -> ShortestPaths {
    let n = g.node_count() as usize;
    let mut dist = vec![Distance::Infinite; n];
    let mut parent = vec![None; n];
    let mut heap = RadixHeap::new();
    dijkstra_into(g, sources, &mut heap, &mut dist, &mut parent);
    ShortestPaths { distances: dist, parents: parent }
}

/// The radix-heap Dijkstra core over caller-owned buffers, so [`all_pairs`]
/// can reuse one heap and one distance/parent workspace across its `n` runs.
/// Expects `dist` all-`Infinite`, `parent` all-`None`, and `heap` empty.
fn dijkstra_into(
    g: &Graph,
    sources: &[NodeId],
    heap: &mut RadixHeap,
    dist: &mut [Distance],
    parent: &mut [Option<NodeId>],
) {
    for &s in sources {
        assert!(g.contains_node(s), "source {s} out of range");
        dist[s.index()] = Distance::ZERO;
        heap.push(0, s.0);
    }
    while let Some((d, v)) = heap.pop() {
        let v = NodeId(v);
        if Distance::Finite(d) > dist[v.index()] {
            continue;
        }
        for adj in g.neighbors(v) {
            // Monotone invariant: nd >= d, the heap's floor after this pop.
            let nd = d.saturating_add(adj.weight);
            if Distance::Finite(nd) < dist[adj.neighbor.index()] {
                dist[adj.neighbor.index()] = Distance::Finite(nd);
                parent[adj.neighbor.index()] = Some(v);
                heap.push(nd, adj.neighbor.0);
            }
        }
    }
}

/// The retained binary-heap Dijkstra reference implementation.
///
/// [`dijkstra`] (the radix-heap default) must stay bit-identical to this —
/// distances *and* parents — on every input; `tests/radix_differential.rs`
/// pins that across all generator families, including zero weights and
/// disconnected graphs.
///
/// # Panics
///
/// Panics if any source id is out of range.
pub fn dijkstra_binary_heap(g: &Graph, sources: &[NodeId]) -> ShortestPaths {
    let n = g.node_count() as usize;
    let mut dist = vec![Distance::Infinite; n];
    let mut parent = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(Weight, u32)>> = BinaryHeap::new();
    for &s in sources {
        assert!(g.contains_node(s), "source {s} out of range");
        dist[s.index()] = Distance::ZERO;
        heap.push(Reverse((0, s.0)));
    }
    while let Some(Reverse((d, v))) = heap.pop() {
        let v = NodeId(v);
        if Distance::Finite(d) > dist[v.index()] {
            continue;
        }
        for adj in g.neighbors(v) {
            let nd = d.saturating_add(adj.weight);
            if Distance::Finite(nd) < dist[adj.neighbor.index()] {
                dist[adj.neighbor.index()] = Distance::Finite(nd);
                parent[adj.neighbor.index()] = Some(v);
                heap.push(Reverse((nd, adj.neighbor.0)));
            }
        }
    }
    ShortestPaths { distances: dist, parents: parent }
}

/// Closest-source shortest paths by Bellman–Ford (`n - 1` relaxation sweeps).
///
/// Provided as an *independent* reference implementation so tests can
/// cross-check Dijkstra; also mirrors the distributed Bellman–Ford baseline.
///
/// # Panics
///
/// Panics if any source id is out of range.
pub fn bellman_ford(g: &Graph, sources: &[NodeId]) -> ShortestPaths {
    let n = g.node_count() as usize;
    let mut dist = vec![Distance::Infinite; n];
    let mut parent = vec![None; n];
    for &s in sources {
        assert!(g.contains_node(s), "source {s} out of range");
        dist[s.index()] = Distance::ZERO;
    }
    for _ in 0..n.saturating_sub(1).max(1) {
        let mut changed = false;
        for e in g.edges() {
            let du = dist[e.u.index()];
            let dv = dist[e.v.index()];
            if du.saturating_add(e.w) < dv {
                dist[e.v.index()] = du.saturating_add(e.w);
                parent[e.v.index()] = Some(e.u);
                changed = true;
            }
            let du = dist[e.u.index()];
            let dv = dist[e.v.index()];
            if dv.saturating_add(e.w) < du {
                dist[e.u.index()] = dv.saturating_add(e.w);
                parent[e.u.index()] = Some(e.v);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    ShortestPaths { distances: dist, parents: parent }
}

/// Multi-source BFS: hop distances, ignoring edge weights.
///
/// # Panics
///
/// Panics if any source id is out of range.
pub fn bfs(g: &Graph, sources: &[NodeId]) -> ShortestPaths {
    let n = g.node_count() as usize;
    let mut dist = vec![Distance::Infinite; n];
    let mut parent = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    for &s in sources {
        assert!(g.contains_node(s), "source {s} out of range");
        if dist[s.index()].is_infinite() {
            dist[s.index()] = Distance::ZERO;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()].expect_finite();
        for adj in g.neighbors(v) {
            if dist[adj.neighbor.index()].is_infinite() {
                dist[adj.neighbor.index()] = Distance::Finite(dv + 1);
                parent[adj.neighbor.index()] = Some(v);
                queue.push_back(adj.neighbor);
            }
        }
    }
    ShortestPaths { distances: dist, parents: parent }
}

/// All-pairs shortest paths: `result[u][v]` is `dist(u, v)`. Runs one
/// radix-heap Dijkstra per node — reusing a single heap and distance/parent
/// workspace across all `n` runs — so it is the reference for the distributed
/// APSP experiments.
pub fn all_pairs(g: &Graph) -> Vec<Vec<Distance>> {
    let n = g.node_count() as usize;
    let mut heap = RadixHeap::new();
    let mut dist = vec![Distance::Infinite; n];
    let mut parent = vec![None; n];
    let mut rows = Vec::with_capacity(n);
    for s in g.nodes() {
        heap.clear();
        dist.fill(Distance::Infinite);
        parent.fill(None);
        dijkstra_into(g, &[s], &mut heap, &mut dist, &mut parent);
        rows.push(dist.clone());
    }
    rows
}

/// The result of a connected-components computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` is the component index of node `v`, in `0..component_count`.
    pub labels: Vec<usize>,
    /// Number of connected components.
    pub component_count: usize,
}

impl Components {
    /// Returns the nodes of component `c`.
    pub fn members(&self, c: usize) -> Vec<NodeId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Returns `true` if `u` and `v` are in the same component.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.labels[u.index()] == self.labels[v.index()]
    }
}

/// Connected components by repeated BFS.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.node_count() as usize;
    let mut labels = vec![usize::MAX; n];
    let mut count = 0;
    for start in g.nodes() {
        if labels[start.index()] != usize::MAX {
            continue;
        }
        let mut queue = std::collections::VecDeque::from([start]);
        labels[start.index()] = count;
        while let Some(v) = queue.pop_front() {
            for adj in g.neighbors(v) {
                if labels[adj.neighbor.index()] == usize::MAX {
                    labels[adj.neighbor.index()] = count;
                    queue.push_back(adj.neighbor);
                }
            }
        }
        count += 1;
    }
    Components { labels, component_count: count }
}

/// A maximal spanning forest: one spanning tree per connected component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningForest {
    /// The edges included in the forest.
    pub edges: Vec<EdgeId>,
    /// `parent[v]` is `v`'s parent in its rooted tree, or `None` for roots.
    pub parents: Vec<Option<NodeId>>,
    /// `root[v]` is the root node of `v`'s tree.
    pub roots: Vec<NodeId>,
    /// `depth[v]` is the depth of `v` in its rooted tree (roots have depth 0).
    pub depths: Vec<u32>,
}

impl SpanningForest {
    /// The maximum tree depth over all nodes.
    pub fn max_depth(&self) -> u32 {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    /// The children of `v` in the rooted forest.
    pub fn children(&self, v: NodeId) -> Vec<NodeId> {
        self.parents
            .iter()
            .enumerate()
            .filter(|&(_, p)| *p == Some(v))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// Computes a maximal spanning forest (BFS trees, one per component), rooted
/// at the smallest node id of each component.
pub fn spanning_forest(g: &Graph) -> SpanningForest {
    let n = g.node_count() as usize;
    let mut parents = vec![None; n];
    let mut roots = vec![NodeId(0); n];
    let mut depths = vec![0u32; n];
    let mut visited = vec![false; n];
    let mut edges = Vec::new();
    for start in g.nodes() {
        if visited[start.index()] {
            continue;
        }
        visited[start.index()] = true;
        roots[start.index()] = start;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for adj in g.neighbors(v) {
                if !visited[adj.neighbor.index()] {
                    visited[adj.neighbor.index()] = true;
                    parents[adj.neighbor.index()] = Some(v);
                    roots[adj.neighbor.index()] = start;
                    depths[adj.neighbor.index()] = depths[v.index()] + 1;
                    edges.push(adj.edge);
                    queue.push_back(adj.neighbor);
                }
            }
        }
    }
    SpanningForest { edges, parents, roots, depths }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dijkstra_on_weighted_triangle() {
        let g = Graph::from_edges(3, [(0, 1, 1), (1, 2, 2), (0, 2, 10)]).unwrap();
        let sp = dijkstra(&g, &[NodeId(0)]);
        assert_eq!(sp.distance(NodeId(0)), Distance::ZERO);
        assert_eq!(sp.distance(NodeId(1)).finite(), Some(1));
        assert_eq!(sp.distance(NodeId(2)).finite(), Some(3), "goes via node 1, not the heavy edge");
        assert_eq!(sp.path_to(NodeId(2)), Some(vec![NodeId(0), NodeId(1), NodeId(2)]));
    }

    #[test]
    fn dijkstra_handles_zero_weights() {
        let g = Graph::from_edges(4, [(0, 1, 0), (1, 2, 0), (2, 3, 5)]).unwrap();
        let sp = dijkstra(&g, &[NodeId(0)]);
        assert_eq!(sp.distance(NodeId(2)).finite(), Some(0));
        assert_eq!(sp.distance(NodeId(3)).finite(), Some(5));
    }

    #[test]
    fn dijkstra_multi_source_is_min_over_sources() {
        let g = generators::path(10, 3);
        let sp = dijkstra(&g, &[NodeId(0), NodeId(9)]);
        assert_eq!(sp.distance(NodeId(4)).finite(), Some(12)); // 4 hops from 0
        assert_eq!(sp.distance(NodeId(6)).finite(), Some(9)); // 3 hops from 9
    }

    #[test]
    fn dijkstra_disconnected_nodes_are_infinite() {
        let g = generators::disjoint_copies(&generators::path(3, 1), 2);
        let sp = dijkstra(&g, &[NodeId(0)]);
        assert!(sp.distance(NodeId(5)).is_infinite());
        assert_eq!(sp.path_to(NodeId(5)), None);
        assert_eq!(sp.reached_count(), 3);
    }

    #[test]
    fn radix_and_binary_heap_dijkstra_are_bit_identical() {
        for seed in 0..4 {
            let g = generators::with_random_weights_zero(
                &generators::random_connected(50, 90, seed),
                40,
                seed,
            );
            let a = dijkstra(&g, &[NodeId(0)]);
            let b = dijkstra_binary_heap(&g, &[NodeId(0)]);
            assert_eq!(a, b, "seed {seed}: distances and parents must match bit-for-bit");
        }
    }

    #[test]
    fn bellman_ford_matches_dijkstra_on_random_graphs() {
        for seed in 0..6 {
            let g = generators::with_random_weights(
                &generators::random_connected(40, 60, seed),
                50,
                seed,
            );
            let a = dijkstra(&g, &[NodeId(0)]);
            let b = bellman_ford(&g, &[NodeId(0)]);
            assert_eq!(a.distances, b.distances, "seed {seed}");
        }
    }

    #[test]
    fn bellman_ford_multi_source_matches_dijkstra() {
        let g = generators::with_random_weights(&generators::grid(6, 6, 1), 9, 2);
        let sources = [NodeId(0), NodeId(20), NodeId(35)];
        assert_eq!(dijkstra(&g, &sources).distances, bellman_ford(&g, &sources).distances);
    }

    #[test]
    fn bfs_counts_hops_not_weights() {
        let g = Graph::from_edges(3, [(0, 1, 100), (1, 2, 100)]).unwrap();
        let sp = bfs(&g, &[NodeId(0)]);
        assert_eq!(sp.distance(NodeId(2)).finite(), Some(2));
    }

    #[test]
    fn bfs_on_unit_weights_equals_dijkstra() {
        let g = generators::erdos_renyi_gnp(40, 0.15, 5);
        assert_eq!(bfs(&g, &[NodeId(0)]).distances, dijkstra(&g, &[NodeId(0)]).distances);
    }

    #[test]
    fn all_pairs_is_symmetric() {
        let g = generators::with_random_weights(&generators::random_connected(20, 30, 1), 20, 1);
        let apsp = all_pairs(&g);
        for (u, row) in apsp.iter().enumerate() {
            assert_eq!(row[u], Distance::ZERO);
            for (v, &d) in row.iter().enumerate() {
                assert_eq!(d, apsp[v][u], "undirected distances are symmetric");
            }
        }
    }

    #[test]
    fn components_of_disjoint_union() {
        let g = generators::disjoint_copies(&generators::cycle(4, 1), 3);
        let cc = connected_components(&g);
        assert_eq!(cc.component_count, 3);
        assert_eq!(cc.members(0).len(), 4);
        assert!(cc.same_component(NodeId(0), NodeId(3)));
        assert!(!cc.same_component(NodeId(0), NodeId(4)));
    }

    #[test]
    fn spanning_forest_properties() {
        let g = generators::disjoint_copies(&generators::random_connected(20, 30, 3), 2);
        let f = spanning_forest(&g);
        // A maximal forest has n - (#components) edges.
        assert_eq!(f.edges.len(), 40 - 2);
        let cc = connected_components(&g);
        for v in g.nodes() {
            assert!(cc.same_component(v, f.roots[v.index()]));
            if let Some(p) = f.parents[v.index()] {
                assert_eq!(f.depths[v.index()], f.depths[p.index()] + 1);
                assert!(g.has_edge(v, p));
            } else {
                assert_eq!(f.roots[v.index()], v);
                assert_eq!(f.depths[v.index()], 0);
            }
        }
        assert!(f.max_depth() > 0);
        // Children relation is consistent with parents.
        let root = f.roots[0];
        for c in f.children(root) {
            assert_eq!(f.parents[c.index()], Some(root));
        }
    }

    #[test]
    fn path_to_source_is_trivial() {
        let g = generators::path(4, 1);
        let sp = dijkstra(&g, &[NodeId(2)]);
        assert_eq!(sp.path_to(NodeId(2)), Some(vec![NodeId(2)]));
    }

    #[test]
    fn path_reconstruction_has_correct_length() {
        for seed in 0..4 {
            let g = generators::with_random_weights(
                &generators::random_connected(30, 50, seed),
                9,
                seed,
            );
            let sp = dijkstra(&g, &[NodeId(0)]);
            for v in g.nodes() {
                let path = sp.path_to(v).expect("connected graph");
                let mut total = 0;
                for w in path.windows(2) {
                    total += g.edge_weight(w[0], w[1]).expect("path edges exist");
                }
                // The reconstructed path weight can only match the distance
                // (parent pointers follow relaxed edges).
                assert_eq!(Distance::Finite(total), sp.distance(v));
            }
        }
    }
}
