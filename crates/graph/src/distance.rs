//! The [`Distance`] type: a finite weighted distance or infinity.

use std::fmt;
use std::ops::Add;

use serde::{Deserialize, Serialize};

use crate::Weight;

/// A shortest-path distance: either a finite non-negative integer or infinity.
///
/// Infinity compares greater than every finite value, and addition saturates
/// at infinity, so `Distance` can be used directly in relaxation loops:
///
/// ```
/// use congest_graph::Distance;
///
/// let d = Distance::from(3) + 4;
/// assert_eq!(d, Distance::Finite(7));
/// assert!(d < Distance::Infinite);
/// assert_eq!(Distance::Infinite + 10, Distance::Infinite);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Distance {
    /// A finite distance value.
    Finite(Weight),
    /// Unreachable / not yet reached.
    #[default]
    Infinite,
}

impl Distance {
    /// The zero distance.
    pub const ZERO: Distance = Distance::Finite(0);

    /// Returns the finite value, or `None` if this is [`Distance::Infinite`].
    ///
    /// ```
    /// use congest_graph::Distance;
    /// assert_eq!(Distance::Finite(5).finite(), Some(5));
    /// assert_eq!(Distance::Infinite.finite(), None);
    /// ```
    pub fn finite(self) -> Option<Weight> {
        match self {
            Distance::Finite(d) => Some(d),
            Distance::Infinite => None,
        }
    }

    /// Returns `true` if the distance is finite.
    pub fn is_finite(self) -> bool {
        matches!(self, Distance::Finite(_))
    }

    /// Returns `true` if the distance is infinite.
    pub fn is_infinite(self) -> bool {
        matches!(self, Distance::Infinite)
    }

    /// Returns the finite value, panicking on infinity.
    ///
    /// # Panics
    ///
    /// Panics if the distance is [`Distance::Infinite`].
    pub fn expect_finite(self) -> Weight {
        match self {
            Distance::Finite(d) => d,
            Distance::Infinite => panic!("expected a finite distance, found infinity"),
        }
    }

    /// Saturating addition of a finite weight.
    pub fn saturating_add(self, w: Weight) -> Distance {
        match self {
            Distance::Finite(d) => Distance::Finite(d.saturating_add(w)),
            Distance::Infinite => Distance::Infinite,
        }
    }

    /// The minimum of two distances.
    pub fn min(self, other: Distance) -> Distance {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The maximum of two distances.
    pub fn max(self, other: Distance) -> Distance {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl From<Weight> for Distance {
    fn from(w: Weight) -> Self {
        Distance::Finite(w)
    }
}

impl PartialOrd for Distance {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Distance {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use Distance::*;
        match (self, other) {
            (Finite(a), Finite(b)) => a.cmp(b),
            (Finite(_), Infinite) => std::cmp::Ordering::Less,
            (Infinite, Finite(_)) => std::cmp::Ordering::Greater,
            (Infinite, Infinite) => std::cmp::Ordering::Equal,
        }
    }
}

impl Add<Weight> for Distance {
    type Output = Distance;

    fn add(self, rhs: Weight) -> Distance {
        self.saturating_add(rhs)
    }
}

impl Add<Distance> for Distance {
    type Output = Distance;

    fn add(self, rhs: Distance) -> Distance {
        match (self, rhs) {
            (Distance::Finite(a), Distance::Finite(b)) => Distance::Finite(a.saturating_add(b)),
            _ => Distance::Infinite,
        }
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distance::Finite(d) => write!(f, "{d}"),
            Distance::Infinite => write!(f, "inf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_puts_infinity_last() {
        assert!(Distance::Finite(0) < Distance::Finite(1));
        assert!(Distance::Finite(u64::MAX) < Distance::Infinite);
        assert_eq!(Distance::Infinite, Distance::Infinite);
    }

    #[test]
    fn addition_saturates() {
        assert_eq!(Distance::Finite(2) + 3, Distance::Finite(5));
        assert_eq!(Distance::Infinite + 3, Distance::Infinite);
        assert_eq!(
            Distance::Finite(u64::MAX) + 1,
            Distance::Finite(u64::MAX),
            "finite addition saturates instead of overflowing"
        );
        assert_eq!(Distance::Finite(1) + Distance::Infinite, Distance::Infinite);
    }

    #[test]
    fn min_max() {
        assert_eq!(Distance::Finite(3).min(Distance::Infinite), Distance::Finite(3));
        assert_eq!(Distance::Finite(3).max(Distance::Infinite), Distance::Infinite);
        assert_eq!(Distance::Finite(3).min(Distance::Finite(2)), Distance::Finite(2));
    }

    #[test]
    fn finite_accessors() {
        assert_eq!(Distance::from(7).finite(), Some(7));
        assert!(Distance::from(7).is_finite());
        assert!(Distance::Infinite.is_infinite());
        assert_eq!(Distance::from(7).expect_finite(), 7);
    }

    #[test]
    #[should_panic(expected = "expected a finite distance")]
    fn expect_finite_panics_on_infinity() {
        let _ = Distance::Infinite.expect_finite();
    }

    #[test]
    fn default_is_infinite() {
        assert_eq!(Distance::default(), Distance::Infinite);
    }

    #[test]
    fn display() {
        assert_eq!(Distance::Finite(12).to_string(), "12");
        assert_eq!(Distance::Infinite.to_string(), "inf");
    }
}
