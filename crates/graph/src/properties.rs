//! Structural graph properties: diameters, eccentricities, degree statistics.
//!
//! These are used by the experiment harness (e.g. to report `D`, the hop
//! diameter that appears in the paper's `Õ(D)` BFS bounds) and by tests.

use crate::{sequential, Distance, Graph, NodeId, Weight};

/// Returns `true` if the graph is connected (or has at most one node).
pub fn is_connected(g: &Graph) -> bool {
    sequential::connected_components(g).component_count <= 1
}

/// The hop eccentricity of `v`: the maximum hop distance from `v` to any node
/// reachable from it.
pub fn hop_eccentricity(g: &Graph, v: NodeId) -> u64 {
    sequential::bfs(g, &[v]).distances.iter().filter_map(|d| d.finite()).max().unwrap_or(0)
}

/// The hop diameter `D` of the graph: the maximum hop eccentricity over all
/// nodes. For a disconnected graph this is the maximum over components.
///
/// This is the `D` of the paper's `Õ(D)`-time BFS bounds.
pub fn hop_diameter(g: &Graph) -> u64 {
    g.nodes().map(|v| hop_eccentricity(g, v)).max().unwrap_or(0)
}

/// The weighted eccentricity of `v` (maximum finite weighted distance).
pub fn weighted_eccentricity(g: &Graph, v: NodeId) -> Weight {
    sequential::dijkstra(g, &[v]).distances.iter().filter_map(|d| d.finite()).max().unwrap_or(0)
}

/// The weighted diameter (maximum weighted eccentricity over all nodes).
pub fn weighted_diameter(g: &Graph) -> Weight {
    g.nodes().map(|v| weighted_eccentricity(g, v)).max().unwrap_or(0)
}

/// The maximum finite weighted distance from any node in `sources` (the
/// quantity the thresholded recursion must cover).
pub fn weighted_radius_from(g: &Graph, sources: &[NodeId]) -> Distance {
    sequential::dijkstra(g, sources)
        .distances
        .iter()
        .copied()
        .filter(|d| d.is_finite())
        .max()
        .unwrap_or(Distance::ZERO)
}

/// Summary statistics of the degree distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Sum of all degrees (`2m`).
    pub total: usize,
}

/// Computes [`DegreeStats`] for the graph.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    DegreeStats {
        min: degrees.iter().copied().min().unwrap_or(0),
        max: degrees.iter().copied().max().unwrap_or(0),
        total: degrees.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_diameters() {
        let g = generators::path(10, 3);
        assert!(is_connected(&g));
        assert_eq!(hop_diameter(&g), 9);
        assert_eq!(weighted_diameter(&g), 27);
        assert_eq!(hop_eccentricity(&g, NodeId(5)), 5);
    }

    #[test]
    fn cycle_diameter_is_half() {
        let g = generators::cycle(10, 1);
        assert_eq!(hop_diameter(&g), 5);
    }

    #[test]
    fn star_diameter_is_two() {
        let g = generators::star(20, 4);
        assert_eq!(hop_diameter(&g), 2);
        assert_eq!(weighted_diameter(&g), 8);
    }

    #[test]
    fn disconnected_graph_reports_per_component_diameter() {
        let g = generators::disjoint_copies(&generators::path(4, 1), 2);
        assert!(!is_connected(&g));
        assert_eq!(hop_diameter(&g), 3);
    }

    #[test]
    fn degree_stats_of_grid() {
        let g = generators::grid(3, 3, 1);
        let s = degree_stats(&g);
        assert_eq!(s.min, 2); // corners
        assert_eq!(s.max, 4); // center
        assert_eq!(s.total, 2 * g.edge_count() as usize);
    }

    #[test]
    fn weighted_radius_from_sources() {
        let g = generators::path(8, 2);
        let r = weighted_radius_from(&g, &[NodeId(0)]);
        assert_eq!(r.finite(), Some(14));
        let r = weighted_radius_from(&g, &[NodeId(0), NodeId(7)]);
        assert_eq!(r.finite(), Some(6)); // middle nodes are 3 hops * 2 from the nearer end
    }

    #[test]
    fn single_node_graph_properties() {
        let g = Graph::empty(1);
        assert!(is_connected(&g));
        assert_eq!(hop_diameter(&g), 0);
        assert_eq!(weighted_diameter(&g), 0);
        let s = degree_stats(&g);
        assert_eq!((s.min, s.max, s.total), (0, 0, 0));
    }
}
