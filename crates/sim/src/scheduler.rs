//! Random-delay scheduling of many protocol instances over one network.
//!
//! The paper obtains APSP by running `n` SSSP instances — each with only
//! `poly(log n)` congestion per edge — *concurrently*, using the classic
//! random-delays scheduling idea of Leighton, Maggs, and Rao (LMR94) as
//! packaged for CONGEST by Ghaffari (Gha15): give every instance a uniformly
//! random start delay, then run them together; with high probability each edge
//! only has to carry a small number of messages per round, so the makespan is
//! `O(congestion + dilation · log n)` instead of the trivial
//! `instances × dilation`.
//!
//! This module implements the *scheduling* part as a queueing simulation over
//! recorded per-instance edge-usage traces ([`crate::EdgeUsageTrace`]): each
//! instance is first executed alone (which preserves its correctness and
//! records when it uses which edge), then the traces are superimposed with
//! random delays and a per-round per-edge capacity, and messages that exceed
//! the capacity queue up. The resulting makespan is what the experiments
//! report. This mirrors the paper's own use of scheduling as a black box on
//! top of independently-correct low-congestion instances.

use std::collections::HashMap;

use congest_graph::EdgeId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::EdgeUsageTrace;

/// Configuration of the random-delay scheduler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleConfig {
    /// How many messages one edge can carry per round, totalled over all
    /// instances and both directions. The CONGEST model allows one `O(log n)`
    /// bit message per direction per round; a capacity of `c` here corresponds
    /// to grouping `c` model rounds into one "megaround", which the reported
    /// makespan accounts for via [`ScheduleOutcome::model_rounds`].
    pub edge_capacity_per_round: u32,
    /// Delays are drawn uniformly from `0..max_delay` (0 means "no delays").
    pub max_delay: u64,
    /// PRNG seed for the delays.
    pub seed: u64,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig { edge_capacity_per_round: 1, max_delay: 0, seed: 0 }
    }
}

/// The outcome of scheduling a set of instance traces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Rounds until every instance's last message has been served, in
    /// scheduler rounds (each carrying up to `edge_capacity_per_round`
    /// messages per edge).
    pub makespan: u64,
    /// The makespan converted to model rounds: `makespan * edge_capacity`,
    /// i.e. charging the megaround width as the paper does (Section 3.1.3).
    pub model_rounds: u64,
    /// Sum of the individual instance lengths — the cost of running the
    /// instances one after another (the trivial sequential schedule).
    pub sequential_rounds: u64,
    /// The longest individual instance (the schedule's dilation).
    pub dilation: u64,
    /// The maximum total number of messages any edge carries across all
    /// instances (the schedule's congestion).
    pub congestion: u64,
    /// Total messages over all instances.
    pub total_messages: u64,
    /// The largest backlog observed on any edge during the schedule.
    pub max_edge_backlog: u64,
    /// The random start delay assigned to each instance.
    pub delays: Vec<u64>,
}

/// Superimposes the given instance traces with random start delays and a
/// per-round edge capacity, and returns the realized makespan.
///
/// Returns a zero outcome if `traces` is empty.
pub fn random_delay_schedule(
    traces: &[EdgeUsageTrace],
    config: &ScheduleConfig,
) -> ScheduleOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let delays: Vec<u64> = traces
        .iter()
        .map(|_| if config.max_delay == 0 { 0 } else { rng.gen_range(0..config.max_delay) })
        .collect();
    schedule_with_delays(traces, &delays, config.edge_capacity_per_round)
}

/// Like [`random_delay_schedule`] but with caller-chosen delays (useful for
/// testing the best/worst case and for the "no delays" baseline).
///
/// # Panics
///
/// Panics if `delays.len() != traces.len()` or the capacity is zero.
pub fn schedule_with_delays(
    traces: &[EdgeUsageTrace],
    delays: &[u64],
    edge_capacity_per_round: u32,
) -> ScheduleOutcome {
    assert_eq!(traces.len(), delays.len(), "one delay per instance required");
    assert!(edge_capacity_per_round > 0, "edge capacity must be positive");
    let capacity = edge_capacity_per_round as u64;

    let sequential_rounds: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let dilation: u64 = traces.iter().map(|t| t.len() as u64).max().unwrap_or(0);
    let total_messages: u64 = traces.iter().map(|t| t.total_messages()).sum();

    // Congestion: total load per edge across all instances.
    let mut per_edge_total: HashMap<EdgeId, u64> = HashMap::new();
    for t in traces {
        for round in &t.rounds {
            for &(e, c) in round {
                *per_edge_total.entry(e).or_insert(0) += c as u64;
            }
        }
    }
    let congestion = per_edge_total.values().copied().max().unwrap_or(0);

    if traces.is_empty() || total_messages == 0 {
        return ScheduleOutcome {
            makespan: traces
                .iter()
                .zip(delays)
                .map(|(t, &d)| t.len() as u64 + d)
                .max()
                .unwrap_or(0),
            model_rounds: 0,
            sequential_rounds,
            dilation,
            congestion,
            total_messages,
            max_edge_backlog: 0,
            delays: delays.to_vec(),
        };
    }

    let horizon: u64 =
        traces.iter().zip(delays).map(|(t, &d)| t.len() as u64 + d).max().unwrap_or(0);

    let mut backlog: HashMap<EdgeId, u64> = HashMap::new();
    let mut max_backlog = 0u64;
    let mut last_service_round = 0u64;
    let mut round = 0u64;
    loop {
        // Arrivals from every instance active at this scheduler round.
        for (t, &d) in traces.iter().zip(delays) {
            if round < d {
                continue;
            }
            let local = (round - d) as usize;
            if let Some(entry) = t.rounds.get(local) {
                for &(e, c) in entry {
                    *backlog.entry(e).or_insert(0) += c as u64;
                }
            }
        }
        let current_max = backlog.values().copied().max().unwrap_or(0);
        max_backlog = max_backlog.max(current_max);
        // Serve up to `capacity` messages per edge.
        let mut any_served = false;
        backlog.retain(|_, b| {
            if *b > 0 {
                let served = (*b).min(capacity);
                *b -= served;
                any_served = true;
            }
            *b > 0
        });
        if any_served {
            last_service_round = round;
        }
        if round >= horizon && backlog.is_empty() {
            break;
        }
        round += 1;
        // Safety net: the backlog strictly decreases once arrivals stop, so
        // this terminates; guard anyway against pathological inputs.
        if round > horizon + total_messages + 1 {
            break;
        }
    }

    let makespan = (last_service_round + 1).max(horizon);
    ScheduleOutcome {
        makespan,
        model_rounds: makespan.saturating_mul(capacity),
        sequential_rounds,
        dilation,
        congestion,
        total_messages,
        max_edge_backlog: max_backlog,
        delays: delays.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trace that uses edge `e` once per round for `len` rounds.
    fn uniform_trace(e: u32, len: usize) -> EdgeUsageTrace {
        EdgeUsageTrace { rounds: vec![vec![(EdgeId(e), 1)]; len] }
    }

    #[test]
    fn empty_input_gives_zero_outcome() {
        let out = random_delay_schedule(&[], &ScheduleConfig::default());
        assert_eq!(out.makespan, 0);
        assert_eq!(out.total_messages, 0);
        assert_eq!(out.congestion, 0);
    }

    #[test]
    fn single_instance_keeps_its_length() {
        let t = uniform_trace(0, 10);
        let out = schedule_with_delays(&[t], &[0], 1);
        assert_eq!(out.makespan, 10);
        assert_eq!(out.dilation, 10);
        assert_eq!(out.sequential_rounds, 10);
        assert_eq!(out.congestion, 10);
        assert_eq!(out.max_edge_backlog, 1);
    }

    #[test]
    fn disjoint_instances_run_fully_in_parallel() {
        // Ten instances, each using a different edge: contention-free.
        let traces: Vec<_> = (0..10).map(|e| uniform_trace(e, 20)).collect();
        let delays = vec![0; 10];
        let out = schedule_with_delays(&traces, &delays, 1);
        assert_eq!(out.makespan, 20, "no contention, makespan = dilation");
        assert_eq!(out.sequential_rounds, 200);
    }

    #[test]
    fn contending_instances_queue_up() {
        // Ten instances all hammering edge 0 with no delays: the edge must
        // carry 10 messages per round at capacity 1, so makespan ~ 10 * 20.
        let traces: Vec<_> = (0..10).map(|_| uniform_trace(0, 20)).collect();
        let delays = vec![0; 10];
        let out = schedule_with_delays(&traces, &delays, 1);
        assert!(out.makespan >= 200, "makespan {} should reflect full serialization", out.makespan);
        assert_eq!(out.congestion, 200);
        assert!(out.max_edge_backlog >= 9);
    }

    #[test]
    fn random_delays_spread_bursty_instances() {
        // Each instance sends a burst of 1 message on edge 0 in its first
        // round only. With no delays they all collide; with random delays in a
        // large window, queueing is much smaller.
        let traces: Vec<_> =
            (0..50).map(|_| EdgeUsageTrace { rounds: vec![vec![(EdgeId(0), 1)]] }).collect();
        let no_delay = schedule_with_delays(&traces, &vec![0; 50], 1);
        let spread = random_delay_schedule(
            &traces,
            &ScheduleConfig { edge_capacity_per_round: 1, max_delay: 500, seed: 42 },
        );
        assert!(no_delay.max_edge_backlog >= 49);
        assert!(
            spread.max_edge_backlog < no_delay.max_edge_backlog,
            "delays should reduce the peak backlog ({} vs {})",
            spread.max_edge_backlog,
            no_delay.max_edge_backlog
        );
    }

    #[test]
    fn higher_capacity_shrinks_makespan() {
        let traces: Vec<_> = (0..8).map(|_| uniform_trace(0, 10)).collect();
        let slow = schedule_with_delays(&traces, &[0; 8], 1);
        let fast = schedule_with_delays(&traces, &[0; 8], 8);
        assert!(fast.makespan < slow.makespan);
        assert_eq!(fast.model_rounds, fast.makespan * 8);
    }

    #[test]
    fn makespan_at_least_delay_plus_length() {
        let t = uniform_trace(0, 5);
        let out = schedule_with_delays(&[t], &[100], 1);
        assert!(out.makespan >= 105);
    }

    #[test]
    fn delays_are_reproducible_per_seed() {
        let traces: Vec<_> = (0..5).map(|e| uniform_trace(e, 3)).collect();
        let cfg = ScheduleConfig { edge_capacity_per_round: 1, max_delay: 50, seed: 7 };
        let a = random_delay_schedule(&traces, &cfg);
        let b = random_delay_schedule(&traces, &cfg);
        assert_eq!(a.delays, b.delays);
        assert_eq!(a.makespan, b.makespan);
    }
}
