//! The event-driven scheduler core: arrival buckets + per-edge lazy queues.
//!
//! [`ScheduleBuilder`] accepts instance traces one at a time (each shifted by
//! its start delay) and buckets every `(edge, count)` entry under its arrival
//! round. [`ScheduleBuilder::finish`] then replays the buckets in round order,
//! maintaining one queue per edge with *lazy* service draining: an edge's
//! backlog is only touched when a new arrival lands on it, at which point the
//! service of all rounds since its previous arrival is applied in O(1)
//! arithmetic. Total cost is `O(trace entries + horizon)` and peak memory is
//! `O(horizon + trace entries + edges)`, independent of the number of
//! instances — the property that lets `n`-instance compositions stream traces
//! through without materializing them all.
//!
//! The semantics are exactly those of the retained round-by-round oracle
//! [`super::schedule_reference`]; the differential harness in
//! `crates/sim/tests/scheduler_equivalence.rs` pins the equivalence.

use congest_graph::EdgeId;

use super::ScheduleOutcome;
use crate::EdgeUsageTrace;

/// An incremental random-delay schedule: push traces one at a time, then
/// [`finish`](ScheduleBuilder::finish) into a [`ScheduleOutcome`].
///
/// Unlike [`super::schedule_with_delays`] (which it powers), the builder does
/// not need all traces up front: each pushed trace is folded into per-round
/// arrival buckets and can be dropped immediately by the caller.
#[derive(Debug, Clone)]
pub struct ScheduleBuilder {
    capacity: u64,
    /// `arrivals[r]` lists `(edge, messages)` arriving at scheduler round `r`
    /// (already shifted by the owning instance's delay).
    arrivals: Vec<Vec<(EdgeId, u64)>>,
    /// Largest edge index seen, for sizing the dense per-edge arrays.
    max_edge: usize,
    horizon: u64,
    sequential_rounds: u64,
    dilation: u64,
    total_messages: u64,
    delays: Vec<u64>,
}

impl ScheduleBuilder {
    /// Creates a builder for the given per-round per-edge capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(edge_capacity_per_round: u32) -> ScheduleBuilder {
        assert!(edge_capacity_per_round > 0, "edge capacity must be positive");
        ScheduleBuilder {
            capacity: edge_capacity_per_round as u64,
            arrivals: Vec::new(),
            max_edge: 0,
            horizon: 0,
            sequential_rounds: 0,
            dilation: 0,
            total_messages: 0,
            delays: Vec::new(),
        }
    }

    /// Number of traces pushed so far.
    pub fn instances(&self) -> usize {
        self.delays.len()
    }

    /// Folds one instance trace, started after `delay` rounds, into the
    /// arrival buckets. The trace can be dropped afterwards.
    pub fn push_trace(&mut self, trace: &EdgeUsageTrace, delay: u64) {
        let len = trace.len() as u64;
        self.sequential_rounds += len;
        self.dilation = self.dilation.max(len);
        self.horizon = self.horizon.max(delay + len);
        self.delays.push(delay);
        for (local_round, entries) in trace.rounds.iter().enumerate() {
            if entries.iter().all(|&(_, c)| c == 0) {
                continue;
            }
            let round = (delay + local_round as u64) as usize;
            if self.arrivals.len() <= round {
                self.arrivals.resize_with(round + 1, Vec::new);
            }
            for &(e, c) in entries {
                if c == 0 {
                    continue;
                }
                self.max_edge = self.max_edge.max(e.index());
                self.total_messages += c as u64;
                self.arrivals[round].push((e, c as u64));
            }
        }
    }

    /// Replays the accumulated arrivals and returns the schedule outcome.
    pub fn finish(self) -> ScheduleOutcome {
        let ScheduleBuilder {
            capacity,
            arrivals,
            max_edge,
            horizon,
            sequential_rounds,
            dilation,
            total_messages,
            delays,
        } = self;

        if total_messages == 0 {
            // No messages: nothing queues, the makespan is the horizon (the
            // instances still occupy their full durations), and model rounds
            // charge the megaround width as always.
            return ScheduleOutcome {
                makespan: horizon,
                model_rounds: horizon.saturating_mul(capacity),
                sequential_rounds,
                dilation,
                congestion: 0,
                total_messages: 0,
                max_edge_backlog: 0,
                delays,
            };
        }

        let edges = max_edge + 1;
        // Dense per-edge state: pending backlog, the round of the edge's most
        // recent arrival (service since then is applied lazily), and the
        // total load (for the congestion statistic).
        let mut backlog = vec![0u64; edges];
        let mut last_arrival = vec![0u64; edges];
        let mut total = vec![0u64; edges];
        let mut max_backlog = 0u64;
        let mut last_service_round = 0u64;

        for (round, bucket) in arrivals.iter().enumerate() {
            let round = round as u64;
            for &(e, c) in bucket {
                let ei = e.index();
                total[ei] += c;
                let b = backlog[ei];
                if b > 0 {
                    // Lazily apply the service of rounds last_arrival..round.
                    let needed = b.div_ceil(capacity);
                    let elapsed = round - last_arrival[ei];
                    if needed <= elapsed {
                        // The previous batch drained before this arrival; its
                        // final service round ends a service span.
                        last_service_round = last_service_round.max(last_arrival[ei] + needed - 1);
                        backlog[ei] = 0;
                    } else {
                        backlog[ei] = b - capacity * elapsed;
                    }
                }
                last_arrival[ei] = round;
                backlog[ei] += c;
                max_backlog = max_backlog.max(backlog[ei]);
            }
        }
        // Drain whatever is still queued after the final arrivals.
        for ei in 0..edges {
            if backlog[ei] > 0 {
                last_service_round =
                    last_service_round.max(last_arrival[ei] + backlog[ei].div_ceil(capacity) - 1);
            }
        }

        let congestion = total.iter().copied().max().unwrap_or(0);
        let makespan = (last_service_round + 1).max(horizon);
        ScheduleOutcome {
            makespan,
            model_rounds: makespan.saturating_mul(capacity),
            sequential_rounds,
            dilation,
            congestion,
            total_messages,
            max_edge_backlog: max_backlog,
            delays,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_draining_tracks_interleaved_batches() {
        // Edge 0: 5 messages at round 0, 2 more at round 2, capacity 2.
        // Backlog: r0 = 5 (peak), serve 2; r1 = 3, serve 2; r2 = 1 + 2 = 3,
        // serve 2; r3 = 1, serve 1 -> last service round 3, makespan 4.
        let mut b = ScheduleBuilder::new(2);
        b.push_trace(
            &EdgeUsageTrace { rounds: vec![vec![(EdgeId(0), 5)], vec![], vec![(EdgeId(0), 2)]] },
            0,
        );
        let out = b.finish();
        assert_eq!(out.makespan, 4);
        assert_eq!(out.max_edge_backlog, 5);
        assert_eq!(out.congestion, 7);
        assert_eq!(out.model_rounds, 8);
    }

    #[test]
    fn batches_that_drain_before_the_next_arrival_finalize_their_span() {
        // Edge 0: 2 messages at round 0 (drain by round 1), 1 at round 9.
        // Last service round is 9, makespan 10, peak backlog 2.
        let mut b = ScheduleBuilder::new(1);
        let mut rounds = vec![vec![(EdgeId(0), 2)]];
        rounds.extend(std::iter::repeat_with(Vec::new).take(8));
        rounds.push(vec![(EdgeId(0), 1)]);
        b.push_trace(&EdgeUsageTrace { rounds }, 0);
        let out = b.finish();
        assert_eq!(out.makespan, 10);
        assert_eq!(out.max_edge_backlog, 2);
    }

    #[test]
    fn zero_count_entries_are_ignored() {
        let mut b = ScheduleBuilder::new(1);
        b.push_trace(
            &EdgeUsageTrace { rounds: vec![vec![(EdgeId(3), 0), (EdgeId(1), 0)], vec![]] },
            4,
        );
        let out = b.finish();
        assert_eq!(out.total_messages, 0);
        assert_eq!(out.makespan, 6, "horizon = delay 4 + len 2");
        assert_eq!(out.model_rounds, 6);
        assert_eq!(out.congestion, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = ScheduleBuilder::new(0);
    }
}
