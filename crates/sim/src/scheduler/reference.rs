//! The retained round-by-round scheduling loop, kept as the oracle for the
//! event-driven scheduler (mirroring `Engine::run_reference`).
//!
//! [`schedule_reference`] replays the superimposed traces one scheduler round
//! at a time through a `BTreeMap` backlog — `O(horizon × instances)` work plus
//! map overhead, which is exactly the cost profile the event-driven
//! [`super::ScheduleBuilder`] replaces. It stays because its semantics are
//! easy to audit line by line; the differential harness
//! (`crates/sim/tests/scheduler_equivalence.rs`) asserts both produce
//! identical [`ScheduleOutcome`]s on random and adversarial inputs.

use std::collections::BTreeMap;

use congest_graph::EdgeId;

use super::ScheduleOutcome;
use crate::EdgeUsageTrace;

/// Round-by-round oracle for [`super::schedule_with_delays`]: identical
/// semantics, `O(horizon × instances)` cost.
///
/// # Panics
///
/// Panics if `delays.len() != traces.len()` or the capacity is zero.
pub fn schedule_reference(
    traces: &[EdgeUsageTrace],
    delays: &[u64],
    edge_capacity_per_round: u32,
) -> ScheduleOutcome {
    assert_eq!(traces.len(), delays.len(), "one delay per instance required");
    assert!(edge_capacity_per_round > 0, "edge capacity must be positive");
    let capacity = edge_capacity_per_round as u64;

    let sequential_rounds: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let dilation: u64 = traces.iter().map(|t| t.len() as u64).max().unwrap_or(0);
    let total_messages: u64 = traces.iter().map(|t| t.total_messages()).sum();
    let horizon: u64 =
        traces.iter().zip(delays).map(|(t, &d)| t.len() as u64 + d).max().unwrap_or(0);

    // Congestion: total load per edge across all instances.
    let mut per_edge_total: BTreeMap<EdgeId, u64> = BTreeMap::new();
    for t in traces {
        for round in &t.rounds {
            for &(e, c) in round {
                *per_edge_total.entry(e).or_insert(0) += c as u64;
            }
        }
    }
    let congestion = per_edge_total.values().copied().max().unwrap_or(0);

    if traces.is_empty() || total_messages == 0 {
        // No messages: the makespan is still the horizon (every instance
        // occupies its full duration), and model rounds charge the megaround
        // width exactly as in the serving case.
        return ScheduleOutcome {
            makespan: horizon,
            model_rounds: horizon.saturating_mul(capacity),
            sequential_rounds,
            dilation,
            congestion,
            total_messages,
            max_edge_backlog: 0,
            delays: delays.to_vec(),
        };
    }

    let mut backlog: BTreeMap<EdgeId, u64> = BTreeMap::new();
    let mut max_backlog = 0u64;
    let mut last_service_round = 0u64;
    let mut round = 0u64;
    loop {
        // Arrivals from every instance active at this scheduler round.
        for (t, &d) in traces.iter().zip(delays) {
            if round < d {
                continue;
            }
            let local = (round - d) as usize;
            if let Some(entry) = t.rounds.get(local) {
                for &(e, c) in entry {
                    *backlog.entry(e).or_insert(0) += c as u64;
                }
            }
        }
        let current_max = backlog.values().copied().max().unwrap_or(0);
        max_backlog = max_backlog.max(current_max);
        // Serve up to `capacity` messages per edge.
        let mut any_served = false;
        backlog.retain(|_, b| {
            if *b > 0 {
                let served = (*b).min(capacity);
                *b -= served;
                any_served = true;
            }
            *b > 0
        });
        if any_served {
            last_service_round = round;
        }
        if round >= horizon && backlog.is_empty() {
            break;
        }
        round += 1;
        // Safety net: after the horizon no further arrivals exist, so the
        // worst edge (load at most `congestion`) drains within
        // ceil(congestion / capacity) additional rounds. The natural break
        // above always fires first; this guards against that invariant ever
        // being broken by a future change.
        if round > horizon + congestion.div_ceil(capacity) {
            break;
        }
    }

    let makespan = (last_service_round + 1).max(horizon);
    ScheduleOutcome {
        makespan,
        model_rounds: makespan.saturating_mul(capacity),
        sequential_rounds,
        dilation,
        congestion,
        total_messages,
        max_edge_backlog: max_backlog,
        delays: delays.to_vec(),
    }
}
