//! Random-delay scheduling of many protocol instances over one network.
//!
//! The paper obtains APSP by running `n` SSSP instances — each with only
//! `poly(log n)` congestion per edge — *concurrently*, using the classic
//! random-delays scheduling idea of Leighton, Maggs, and Rao (LMR94) as
//! packaged for CONGEST by Ghaffari (Gha15): give every instance a uniformly
//! random start delay, then run them together; with high probability each edge
//! only has to carry a small number of messages per round, so the makespan is
//! `O(congestion + dilation · log n)` instead of the trivial
//! `instances × dilation`.
//!
//! This module implements the *scheduling* part as a queueing simulation over
//! recorded per-instance edge-usage traces ([`crate::EdgeUsageTrace`]): each
//! instance is first executed alone (which preserves its correctness and
//! records when it uses which edge), then the traces are superimposed with
//! random delays and a per-round per-edge capacity, and messages that exceed
//! the capacity queue up. The resulting makespan is what the experiments
//! report. This mirrors the paper's own use of scheduling as a black box on
//! top of independently-correct low-congestion instances.
//!
//! # Execution model and cost
//!
//! Edges do not interact under this queueing discipline: each edge serves its
//! own backlog at `capacity` messages per round, so the whole schedule
//! decomposes into independent per-edge queues. The default implementation
//! ([`schedule_with_delays`], built on [`ScheduleBuilder`]) exploits this: it
//! buckets arrivals by scheduler round and replays each edge's queue
//! *event-driven* with dense per-edge arrays and lazy service draining, so
//! the cost is `O(trace entries + horizon)` — proportional to the messages
//! that actually exist, **not** `O(horizon × instances)` like a round-by-round
//! replay. The pre-rework round-by-round `HashMap` loop is retained as
//! [`schedule_reference`], the oracle of the differential tests
//! (`crates/sim/tests/scheduler_equivalence.rs`, mirroring the
//! `Engine::run_reference` pattern).
//!
//! [`ScheduleBuilder`] additionally supports *streaming*: traces can be
//! pushed one at a time (with their delay) and dropped immediately, so a
//! caller composing `n` instances never has to hold all `n` traces in memory
//! — only the arrival buckets, whose size is `O(makespan + total entries)`.
//! `congest_sssp::apsp` uses exactly this to keep APSP memory near
//! `O(m + makespan)`.
//!
//! # Makespan semantics
//!
//! The makespan is `max(last service round + 1, horizon)`, where the
//! *horizon* is `max_i(delay_i + len_i)` over the instances. The `.max`
//! clause means an instance occupies the schedule for its **full recorded
//! duration**, including trailing message-free rounds: a trace that computes
//! silently for its last rounds still holds the network until it ends, and a
//! delayed instance holds it until `delay + len` even if its messages all
//! clear early. [`ScheduleOutcome::model_rounds`] is always
//! `makespan × capacity` — including for schedules with zero messages, whose
//! makespan is still the horizon.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::EdgeUsageTrace;

mod event;
mod reference;

pub use event::ScheduleBuilder;
pub use reference::schedule_reference;

/// Configuration of the random-delay scheduler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleConfig {
    /// How many messages one edge can carry per round, totalled over all
    /// instances and both directions. The CONGEST model allows one `O(log n)`
    /// bit message per direction per round; a capacity of `c` here corresponds
    /// to grouping `c` model rounds into one "megaround", which the reported
    /// makespan accounts for via [`ScheduleOutcome::model_rounds`].
    pub edge_capacity_per_round: u32,
    /// Delays are drawn uniformly from `0..max_delay` (0 means "no delays").
    pub max_delay: u64,
    /// PRNG seed for the delays.
    pub seed: u64,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig { edge_capacity_per_round: 1, max_delay: 0, seed: 0 }
    }
}

/// The outcome of scheduling a set of instance traces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Rounds until every instance's last message has been served *and* every
    /// instance's full duration (delay + trace length) has elapsed, in
    /// scheduler rounds (each carrying up to `edge_capacity_per_round`
    /// messages per edge). See the module docs on makespan semantics.
    pub makespan: u64,
    /// The makespan converted to model rounds: `makespan * edge_capacity`,
    /// i.e. charging the megaround width as the paper does (Section 3.1.3).
    /// Always exactly `makespan * edge_capacity`, including for zero-message
    /// schedules.
    pub model_rounds: u64,
    /// Sum of the individual instance lengths — the cost of running the
    /// instances one after another (the trivial sequential schedule).
    pub sequential_rounds: u64,
    /// The longest individual instance (the schedule's dilation).
    pub dilation: u64,
    /// The maximum total number of messages any edge carries across all
    /// instances (the schedule's congestion).
    pub congestion: u64,
    /// Total messages over all instances.
    pub total_messages: u64,
    /// The largest backlog observed on any edge during the schedule.
    pub max_edge_backlog: u64,
    /// The random start delay assigned to each instance.
    pub delays: Vec<u64>,
}

/// Draws one instance start delay: uniform from `0..max_delay`, or a fixed
/// 0 — consuming no randomness — when `max_delay` is 0 ("no delays").
///
/// This is **the** delay-draw convention: every composer that promises a
/// delay stream identical to [`random_delay_schedule`]'s (the streaming and
/// reference APSP drivers in `congest_sssp::apsp`) must call this helper
/// rather than re-implementing the draw, so the bit-identical-outcome
/// guarantees cannot drift apart.
pub fn draw_delay<R: Rng>(rng: &mut R, max_delay: u64) -> u64 {
    if max_delay == 0 {
        0
    } else {
        rng.gen_range(0..max_delay)
    }
}

/// Superimposes the given instance traces with random start delays and a
/// per-round edge capacity, and returns the realized makespan.
///
/// Returns a zero outcome if `traces` is empty.
pub fn random_delay_schedule(
    traces: &[EdgeUsageTrace],
    config: &ScheduleConfig,
) -> ScheduleOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let delays: Vec<u64> = traces.iter().map(|_| draw_delay(&mut rng, config.max_delay)).collect();
    schedule_with_delays(traces, &delays, config.edge_capacity_per_round)
}

/// Like [`random_delay_schedule`] but with caller-chosen delays (useful for
/// testing the best/worst case and for the "no delays" baseline).
///
/// Runs the event-driven scheduler; [`schedule_reference`] is the retained
/// round-by-round oracle with identical semantics.
///
/// # Panics
///
/// Panics if `delays.len() != traces.len()` or the capacity is zero.
pub fn schedule_with_delays(
    traces: &[EdgeUsageTrace],
    delays: &[u64],
    edge_capacity_per_round: u32,
) -> ScheduleOutcome {
    assert_eq!(traces.len(), delays.len(), "one delay per instance required");
    let mut builder = ScheduleBuilder::new(edge_capacity_per_round);
    for (t, &d) in traces.iter().zip(delays) {
        builder.push_trace(t, d);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::EdgeId;

    /// A trace that uses edge `e` once per round for `len` rounds.
    fn uniform_trace(e: u32, len: usize) -> EdgeUsageTrace {
        EdgeUsageTrace { rounds: vec![vec![(EdgeId(e), 1)]; len] }
    }

    #[test]
    fn empty_input_gives_zero_outcome() {
        let out = random_delay_schedule(&[], &ScheduleConfig::default());
        assert_eq!(out.makespan, 0);
        assert_eq!(out.model_rounds, 0);
        assert_eq!(out.total_messages, 0);
        assert_eq!(out.congestion, 0);
    }

    #[test]
    fn single_instance_keeps_its_length() {
        let t = uniform_trace(0, 10);
        let out = schedule_with_delays(&[t], &[0], 1);
        assert_eq!(out.makespan, 10);
        assert_eq!(out.dilation, 10);
        assert_eq!(out.sequential_rounds, 10);
        assert_eq!(out.congestion, 10);
        assert_eq!(out.max_edge_backlog, 1);
    }

    #[test]
    fn disjoint_instances_run_fully_in_parallel() {
        // Ten instances, each using a different edge: contention-free.
        let traces: Vec<_> = (0..10).map(|e| uniform_trace(e, 20)).collect();
        let delays = vec![0; 10];
        let out = schedule_with_delays(&traces, &delays, 1);
        assert_eq!(out.makespan, 20, "no contention, makespan = dilation");
        assert_eq!(out.sequential_rounds, 200);
    }

    #[test]
    fn contending_instances_queue_up() {
        // Ten instances all hammering edge 0 with no delays: the edge must
        // carry 10 messages per round at capacity 1, so makespan ~ 10 * 20.
        let traces: Vec<_> = (0..10).map(|_| uniform_trace(0, 20)).collect();
        let delays = vec![0; 10];
        let out = schedule_with_delays(&traces, &delays, 1);
        assert!(out.makespan >= 200, "makespan {} should reflect full serialization", out.makespan);
        assert_eq!(out.congestion, 200);
        assert!(out.max_edge_backlog >= 9);
    }

    #[test]
    fn random_delays_spread_bursty_instances() {
        // Each instance sends a burst of 1 message on edge 0 in its first
        // round only. With no delays they all collide; with random delays in a
        // large window, queueing is much smaller.
        let traces: Vec<_> =
            (0..50).map(|_| EdgeUsageTrace { rounds: vec![vec![(EdgeId(0), 1)]] }).collect();
        let no_delay = schedule_with_delays(&traces, &vec![0; 50], 1);
        let spread = random_delay_schedule(
            &traces,
            &ScheduleConfig { edge_capacity_per_round: 1, max_delay: 500, seed: 42 },
        );
        assert!(no_delay.max_edge_backlog >= 49);
        assert!(
            spread.max_edge_backlog < no_delay.max_edge_backlog,
            "delays should reduce the peak backlog ({} vs {})",
            spread.max_edge_backlog,
            no_delay.max_edge_backlog
        );
    }

    #[test]
    fn higher_capacity_shrinks_makespan() {
        let traces: Vec<_> = (0..8).map(|_| uniform_trace(0, 10)).collect();
        let slow = schedule_with_delays(&traces, &[0; 8], 1);
        let fast = schedule_with_delays(&traces, &[0; 8], 8);
        assert!(fast.makespan < slow.makespan);
        assert_eq!(fast.model_rounds, fast.makespan * 8);
    }

    #[test]
    fn makespan_at_least_delay_plus_length() {
        let t = uniform_trace(0, 5);
        let out = schedule_with_delays(&[t], &[100], 1);
        assert!(out.makespan >= 105);
    }

    #[test]
    fn delays_are_reproducible_per_seed() {
        let traces: Vec<_> = (0..5).map(|e| uniform_trace(e, 3)).collect();
        let cfg = ScheduleConfig { edge_capacity_per_round: 1, max_delay: 50, seed: 7 };
        let a = random_delay_schedule(&traces, &cfg);
        let b = random_delay_schedule(&traces, &cfg);
        assert_eq!(a.delays, b.delays);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn zero_message_schedule_reports_consistent_model_rounds() {
        // Regression: delay-shifted empty traces used to report
        // `model_rounds: 0` while the makespan (= horizon) was nonzero.
        let traces = vec![EdgeUsageTrace { rounds: vec![vec![], vec![], vec![]] }];
        for capacity in [1u32, 4] {
            let out = schedule_with_delays(&traces, &[7], capacity);
            assert_eq!(out.makespan, 10, "horizon = delay + len");
            assert_eq!(out.model_rounds, 10 * capacity as u64);
            assert_eq!(out.total_messages, 0);
            let reference = schedule_reference(&traces, &[7], capacity);
            assert_eq!(out, reference);
        }
    }

    #[test]
    fn trailing_message_free_rounds_extend_the_makespan() {
        // One message in round 0, then four silent rounds: the instance still
        // occupies the schedule for its full five-round duration.
        let t =
            EdgeUsageTrace { rounds: vec![vec![(EdgeId(0), 1)], vec![], vec![], vec![], vec![]] };
        let out = schedule_with_delays(std::slice::from_ref(&t), &[0], 1);
        assert_eq!(out.makespan, 5, "trailing silence counts toward the horizon");
        // With a delay the horizon shifts accordingly.
        let delayed = schedule_with_delays(&[t], &[3], 1);
        assert_eq!(delayed.makespan, 8);
    }

    #[test]
    fn makespan_is_bounded_by_horizon_plus_service_time() {
        // The termination bound the reference loop's safety net encodes:
        // after the horizon no arrivals remain, so the worst edge drains in
        // at most ceil(congestion / capacity) further rounds.
        let traces: Vec<_> = (0..6).map(|_| uniform_trace(0, 9)).collect();
        for capacity in [1u32, 2, 4] {
            let out = schedule_with_delays(&traces, &[0, 1, 2, 3, 4, 5], capacity);
            let horizon = 9 + 5;
            assert!(out.makespan >= horizon as u64);
            assert!(
                out.makespan <= horizon as u64 + out.congestion.div_ceil(capacity as u64),
                "makespan {} exceeds horizon {} + ceil(congestion {} / capacity {})",
                out.makespan,
                horizon,
                out.congestion,
                capacity
            );
        }
    }

    #[test]
    fn streaming_builder_matches_batch_scheduling() {
        let traces: Vec<_> = (0..7).map(|e| uniform_trace(e % 3, 4 + e as usize)).collect();
        let delays: Vec<u64> = (0..7).map(|i| (i * 3) % 11).collect();
        let batch = schedule_with_delays(&traces, &delays, 2);
        let mut builder = ScheduleBuilder::new(2);
        for (t, &d) in traces.iter().zip(&delays) {
            builder.push_trace(t, d);
        }
        assert_eq!(builder.instances(), 7);
        assert_eq!(builder.finish(), batch);
    }
}
