//! Seeded, deterministic fault injection: message loss, node crash/restart
//! ("churn"), and bounded delivery jitter.
//!
//! # Design: a fault plan, not a fault stream
//!
//! A [`FaultPlan`] is a *value* in [`crate::SimConfig`]: a seed, per-edge
//! drop probabilities, per-edge delivery-latency bounds, and a list of
//! [`CrashEvent`]s. Everything the fabric does under a plan is a pure
//! function of that value and the execution itself — there is no hidden RNG
//! state threaded through the engine. Concretely, the fate of a message is
//! decided by a ChaCha8 stream keyed by
//! `seed ⊕ mix(edge, sender, send round)`, so
//!
//! * the same plan on the same protocol produces the *identical* fault
//!   schedule on every run, and
//! * the active-set engine ([`crate::Engine::run`]) and the reference sweep
//!   ([`crate::Engine::run_reference`]) see the same fates without sharing
//!   any mutable state — the differential harnesses extend to faulty runs
//!   unchanged.
//!
//! One consequence worth knowing: messages that share `(edge, sender, send
//! round)` share a fate. Under the default CONGEST capacity of 1 that tuple
//! identifies a message uniquely; with a larger capacity, a burst on one edge
//! in one round is dropped or delayed as a unit.
//!
//! # Fault taxonomy
//!
//! * **Drop** — a sent message vanishes in transit. It still counts as sent
//!   (message complexity, congestion, capacity, traces record the send); the
//!   loss is tallied in [`crate::Metrics::fault_drops`], separately from the
//!   sleeping-model's [`crate::Metrics::messages_lost`].
//! * **Crash / restart** — a node goes down at the *start* of
//!   [`CrashEvent::at_round`]: it does not run (a node crashing in the round
//!   it would have sent never sends), consumes no energy, and messages
//!   addressed to it are fault drops. Messages it already has in flight
//!   still deliver. With [`CrashEvent::restart_at`] set, the node comes back
//!   with a **fresh state** (the engine re-invokes the protocol factory) and
//!   re-runs [`crate::Protocol::init`] in the restart round — even a node
//!   that had halted is revived by a restart. Without a restart the crash is
//!   permanent, and the node counts as stopped for termination purposes.
//! * **Jitter** — delivery of a message is delayed by `0..=max_skew` extra
//!   rounds. Receptivity (awake/halted/crashed) is evaluated at the *actual*
//!   arrival round, so jitter composes with the sleeping model: a delayed
//!   message that lands on a sleeping node is a sleeping-model loss.
//!
//! `docs/FAULT_MODEL.md` documents the taxonomy, the determinism guarantees,
//! and the measured degradation matrix (experiment E14).

use std::collections::BTreeMap;

use congest_graph::{EdgeId, NodeId};
use rand::{splitmix64, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::message::InFlight;
use crate::metrics::Metrics;

/// Probabilities are expressed in parts per million; this is "always".
pub const PPM: u32 = 1_000_000;

/// One scheduled node crash, optionally followed by a restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// The node that crashes.
    pub node: NodeId,
    /// The crash takes effect at the start of this round: the node does not
    /// run in it, and deliveries to it from this round on are fault drops.
    pub at_round: u64,
    /// If set, the round in which the node comes back with a fresh state and
    /// re-runs [`crate::Protocol::init`] (normalized to at least
    /// `at_round + 1`); if `None`, the crash is permanent.
    pub restart_at: Option<u64>,
}

/// A seeded, deterministic fault-injection plan (see the module docs for the
/// taxonomy and determinism guarantees). The default value is
/// [`FaultPlan::none`]: no faults, and the engines take their unmodified
/// fault-free paths.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the per-message fate stream. Two plans that differ only in
    /// the seed produce different drop/jitter schedules; the seed has no
    /// effect when no message faults are configured.
    pub seed: u64,
    /// Default per-message drop probability in parts per million
    /// (`0..=`[`PPM`]), applied to every edge without an override.
    pub drop_ppm: u32,
    /// Per-edge drop-probability overrides. Edges not listed use
    /// [`FaultPlan::drop_ppm`]; entries for out-of-range edges are ignored.
    pub edge_drop_ppm: Vec<(EdgeId, u32)>,
    /// Default delivery-latency jitter bound: each message is delayed by a
    /// fate-drawn `0..=max_skew` extra rounds.
    pub max_skew: u64,
    /// Per-edge jitter-bound overrides (same convention as
    /// [`FaultPlan::edge_drop_ppm`]).
    pub edge_skew: Vec<(EdgeId, u64)>,
    /// Scheduled node crashes and restarts; entries for out-of-range nodes
    /// are ignored.
    pub crashes: Vec<CrashEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults. Runs configured with it are bit-identical
    /// to runs without a fault layer at all.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// `true` iff the plan injects no fault of any kind (the seed alone does
    /// not count: it is inert without faults to apply it to).
    pub fn is_none(&self) -> bool {
        self.drop_ppm == 0
            && self.max_skew == 0
            && self.edge_drop_ppm.is_empty()
            && self.edge_skew.is_empty()
            && self.crashes.is_empty()
    }

    /// Sets the fate seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the default drop probability (clamped to [`PPM`]).
    pub fn with_drop_ppm(mut self, ppm: u32) -> Self {
        self.drop_ppm = ppm.min(PPM);
        self
    }

    /// Adds a per-edge drop-probability override (clamped to [`PPM`]).
    pub fn with_edge_drop_ppm(mut self, edge: EdgeId, ppm: u32) -> Self {
        self.edge_drop_ppm.push((edge, ppm.min(PPM)));
        self
    }

    /// Sets the default jitter bound.
    pub fn with_max_skew(mut self, max_skew: u64) -> Self {
        self.max_skew = max_skew;
        self
    }

    /// Adds a per-edge jitter-bound override.
    pub fn with_edge_skew(mut self, edge: EdgeId, max_skew: u64) -> Self {
        self.edge_skew.push((edge, max_skew));
        self
    }

    /// Adds a crash of `node` at `at_round`, restarting at `restart_at`
    /// (`None` for a permanent crash).
    pub fn with_crash(mut self, node: NodeId, at_round: u64, restart_at: Option<u64>) -> Self {
        self.crashes.push(CrashEvent { node, at_round, restart_at });
        self
    }
}

/// The fate of one sent message under a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MessageFate {
    /// The message vanishes in transit.
    Drop,
    /// The message arrives `1 + delay` rounds after it was sent (`delay == 0`
    /// is the normal synchronous delivery).
    Deliver {
        /// Extra rounds of delivery latency, `0..=max_skew`.
        delay: u64,
    },
}

/// What a [`FaultEvent`] does to its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultAction {
    /// The node restarts: fresh state, `init` re-runs this round. Restarts
    /// sort before crashes within a round, so overlapping windows resolve to
    /// "the crash wins".
    Restart,
    /// The node goes down at the start of this round.
    Crash {
        /// `true` when no restart follows: the node counts as stopped.
        permanent: bool,
    },
}

impl FaultAction {
    fn order(self) -> u8 {
        match self {
            FaultAction::Restart => 0,
            FaultAction::Crash { .. } => 1,
        }
    }
}

/// One churn event, produced by compiling a plan's [`CrashEvent`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FaultEvent {
    pub(crate) round: u64,
    pub(crate) node: NodeId,
    pub(crate) action: FaultAction,
}

/// Mixes a message's identity into a fate-stream key. Shared verbatim by
/// both engines, which is what makes their fault schedules identical.
fn fate_key(edge: EdgeId, from: NodeId, send_round: u64) -> u64 {
    let mut s = (edge.index() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (from.0 as u64 + 1).wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ send_round.wrapping_mul(0x94d0_49bb_1331_11eb);
    splitmix64(&mut s)
}

/// The per-run runtime of a non-empty plan: the plan compiled against one
/// graph (dense per-edge rates, a sorted churn-event queue) plus the mutable
/// delivery state (crashed flags, pending re-init flags, and the jitter
/// buffer). Both engines drive one of these through the identical sequence
/// of calls, which is the determinism argument in one sentence.
#[derive(Debug, Clone)]
pub(crate) struct FaultRuntime {
    seed: u64,
    drop_ppm: u32,
    max_skew: u64,
    /// Dense per-edge drop rates; empty when no per-edge overrides exist
    /// (the uniform `drop_ppm` then applies everywhere).
    edge_drop: Vec<u32>,
    /// Dense per-edge jitter bounds; empty when no overrides exist.
    edge_skew: Vec<u64>,
    /// Any drop or jitter configured at all (false for churn-only plans, in
    /// which case the per-send fate pass is skipped entirely).
    message_faults: bool,
    /// Compiled churn events, sorted by `(round, action, node)`.
    events: Vec<FaultEvent>,
    /// Cursor into `events`: everything before it has been applied.
    cursor: usize,
    /// Per-node "currently crashed" flag (true between a crash and its
    /// restart, or forever for a permanent crash). Deliveries to a crashed
    /// node are fault drops, not sleeping-model losses.
    pub(crate) crashed: Vec<bool>,
    /// Per-node "run `init` instead of `on_round` next time it runs" flag,
    /// set by a restart.
    pub(crate) reinit: Vec<bool>,
    /// Jittered messages keyed by their arrival round. Buckets fill in
    /// (send round, sender id, send order) order, so merged inboxes are
    /// deterministic and engine-independent.
    pending: BTreeMap<u64, Vec<InFlight>>,
}

impl FaultRuntime {
    /// Compiles `plan` for a graph with `n` nodes and `m` edges; `None` for
    /// the empty plan, which keeps the engines on their fault-free paths.
    pub(crate) fn new(plan: &FaultPlan, n: usize, m: usize) -> Option<FaultRuntime> {
        if plan.is_none() {
            return None;
        }
        let edge_drop = if plan.edge_drop_ppm.is_empty() {
            Vec::new()
        } else {
            let mut dense = vec![plan.drop_ppm.min(PPM); m];
            for &(e, ppm) in &plan.edge_drop_ppm {
                if e.index() < m {
                    dense[e.index()] = ppm.min(PPM);
                }
            }
            dense
        };
        let edge_skew = if plan.edge_skew.is_empty() {
            Vec::new()
        } else {
            let mut dense = vec![plan.max_skew; m];
            for &(e, skew) in &plan.edge_skew {
                if e.index() < m {
                    dense[e.index()] = skew;
                }
            }
            dense
        };
        let message_faults = plan.drop_ppm > 0
            || plan.max_skew > 0
            || edge_drop.iter().any(|&p| p > 0)
            || edge_skew.iter().any(|&s| s > 0);
        let mut events = Vec::new();
        for c in &plan.crashes {
            if c.node.index() >= n {
                continue;
            }
            // A restart in or before the crash round would be a no-op crash;
            // normalize it to the first round after the crash.
            let restart_at = c.restart_at.map(|r| r.max(c.at_round + 1));
            events.push(FaultEvent {
                round: c.at_round,
                node: c.node,
                action: FaultAction::Crash { permanent: restart_at.is_none() },
            });
            if let Some(r) = restart_at {
                events.push(FaultEvent { round: r, node: c.node, action: FaultAction::Restart });
            }
        }
        events.sort_by_key(|e| (e.round, e.action.order(), e.node));
        Some(FaultRuntime {
            seed: plan.seed,
            drop_ppm: plan.drop_ppm.min(PPM),
            max_skew: plan.max_skew,
            edge_drop,
            edge_skew,
            message_faults,
            events,
            cursor: 0,
            crashed: vec![false; n],
            reinit: vec![false; n],
            pending: BTreeMap::new(),
        })
    }

    /// `true` when any drop or jitter is configured (churn-only plans skip
    /// the per-send fate pass).
    pub(crate) fn has_message_faults(&self) -> bool {
        self.message_faults
    }

    /// Pops the next churn event due at (or before) `round`, advancing the
    /// event cursor.
    pub(crate) fn next_event(&mut self, round: u64) -> Option<FaultEvent> {
        let ev = *self.events.get(self.cursor)?;
        if ev.round <= round {
            self.cursor += 1;
            Some(ev)
        } else {
            None
        }
    }

    /// The round of the next unapplied churn event, if any.
    pub(crate) fn next_event_round(&self) -> Option<u64> {
        self.events.get(self.cursor).map(|e| e.round)
    }

    /// The fate of a message sent over `edge` by `from` in `send_round`: a
    /// pure function of the plan and the message's identity.
    pub(crate) fn fate(&self, edge: EdgeId, from: NodeId, send_round: u64) -> MessageFate {
        let drop_ppm =
            if self.edge_drop.is_empty() { self.drop_ppm } else { self.edge_drop[edge.index()] };
        let skew =
            if self.edge_skew.is_empty() { self.max_skew } else { self.edge_skew[edge.index()] };
        if drop_ppm == 0 && skew == 0 {
            return MessageFate::Deliver { delay: 0 };
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ fate_key(edge, from, send_round));
        if drop_ppm > 0 && rng.gen_range(0u32..PPM) < drop_ppm {
            return MessageFate::Drop;
        }
        let delay = if skew > 0 { rng.gen_range(0u64..=skew) } else { 0 };
        MessageFate::Deliver { delay }
    }

    /// Appends the jittered messages arriving in `round` to `incoming`
    /// (after the on-time messages, in send order — both engines merge in
    /// this order, so inboxes stay bit-identical).
    pub(crate) fn merge_due(&mut self, round: u64, incoming: &mut Vec<InFlight>) {
        if let Some(mut bucket) = self.pending.remove(&round) {
            incoming.append(&mut bucket);
        }
    }

    /// The earliest round with a pending jittered delivery, if any.
    pub(crate) fn next_pending_round(&self) -> Option<u64> {
        self.pending.keys().next().copied()
    }

    /// Number of jittered messages still awaiting delivery (counted as lost
    /// when the run terminates before they arrive).
    pub(crate) fn pending_count(&self) -> u64 {
        self.pending.values().map(|b| b.len() as u64).sum()
    }

    /// Applies per-message fates to the sends `outgoing[start..]` of one node
    /// in `round`: drops are removed (and tallied), jittered messages move to
    /// the pending buffer, on-time messages stay, order preserved. Both
    /// engines call this with the exact same `(flight, round)` sequence.
    pub(crate) fn apply_message_faults(
        &mut self,
        metrics: &mut Metrics,
        round: u64,
        outgoing: &mut Vec<InFlight>,
        start: usize,
    ) {
        let mut write = start;
        for read in start..outgoing.len() {
            let flight = outgoing[read];
            match self.fate(flight.msg.edge, flight.msg.from, round) {
                MessageFate::Drop => metrics.fault_drops += 1,
                MessageFate::Deliver { delay: 0 } => {
                    outgoing[write] = flight;
                    write += 1;
                }
                MessageFate::Deliver { delay } => {
                    metrics.fault_delays += 1;
                    self.pending.entry(round + 1 + delay).or_default().push(flight);
                }
            }
        }
        outgoing.truncate(write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Words;
    use crate::Message;

    fn flight(edge: u32, from: u32, to: u32) -> InFlight {
        InFlight {
            to: NodeId(to),
            sent_words: 1,
            msg: Message { from: NodeId(from), edge: EdgeId(edge), words: Words::new(&[1]) },
        }
    }

    #[test]
    fn empty_plan_compiles_to_nothing() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::none().with_seed(7).is_none(), "a seed alone is inert");
        assert!(FaultRuntime::new(&FaultPlan::none(), 4, 3).is_none());
        assert!(!FaultPlan::none().with_drop_ppm(1).is_none());
        assert!(!FaultPlan::none().with_max_skew(1).is_none());
        assert!(!FaultPlan::none().with_crash(NodeId(0), 3, None).is_none());
    }

    #[test]
    fn fates_are_deterministic_and_seed_dependent() {
        let plan = FaultPlan::none().with_seed(11).with_drop_ppm(500_000).with_max_skew(3);
        let rt = FaultRuntime::new(&plan, 4, 6).expect("non-empty plan");
        let fates: Vec<MessageFate> =
            (0..64).map(|r| rt.fate(EdgeId(r % 6), NodeId(r % 4), r as u64)).collect();
        let again: Vec<MessageFate> =
            (0..64).map(|r| rt.fate(EdgeId(r % 6), NodeId(r % 4), r as u64)).collect();
        assert_eq!(fates, again, "fates are a pure function of the plan");
        assert!(fates.contains(&MessageFate::Drop), "a 50% rate drops something in 64 draws");
        assert!(
            fates.iter().any(|f| matches!(f, MessageFate::Deliver { delay } if *delay > 0)),
            "skew 3 delays something in 64 draws"
        );

        let other = FaultRuntime::new(&plan.clone().with_seed(12), 4, 6).expect("non-empty plan");
        let reseeded: Vec<MessageFate> =
            (0..64).map(|r| other.fate(EdgeId(r % 6), NodeId(r % 4), r as u64)).collect();
        assert_ne!(fates, reseeded, "the seed selects the schedule");
    }

    #[test]
    fn ppm_is_clamped_and_certain_drop_always_drops() {
        let plan = FaultPlan::none().with_drop_ppm(u32::MAX);
        assert_eq!(plan.drop_ppm, PPM);
        let rt = FaultRuntime::new(&plan, 2, 2).expect("non-empty plan");
        for r in 0..32 {
            assert_eq!(rt.fate(EdgeId(r % 2), NodeId(0), r as u64), MessageFate::Drop);
        }
    }

    #[test]
    fn per_edge_overrides_take_precedence() {
        let plan = FaultPlan::none()
            .with_drop_ppm(PPM)
            .with_edge_drop_ppm(EdgeId(1), 0)
            .with_edge_skew(EdgeId(99), 5); // out of range: ignored
        let rt = FaultRuntime::new(&plan, 3, 3).expect("non-empty plan");
        assert_eq!(rt.fate(EdgeId(0), NodeId(0), 0), MessageFate::Drop);
        assert_eq!(rt.fate(EdgeId(1), NodeId(0), 0), MessageFate::Deliver { delay: 0 });
    }

    #[test]
    fn events_sort_restarts_first_and_normalize_restart_rounds() {
        let plan = FaultPlan::none()
            .with_crash(NodeId(1), 5, Some(10))
            .with_crash(NodeId(0), 10, Some(3)) // restart_at <= at_round: normalized to 11
            .with_crash(NodeId(7), 1, None); // out of range for n = 4: dropped
        let mut rt = FaultRuntime::new(&plan, 4, 2).expect("non-empty plan");
        assert!(!rt.has_message_faults(), "churn-only plans skip the fate pass");
        assert_eq!(rt.next_event_round(), Some(5));
        assert!(rt.next_event(4).is_none(), "events wait for their round");
        let e = rt.next_event(5).expect("crash at 5");
        assert_eq!((e.node, e.action), (NodeId(1), FaultAction::Crash { permanent: false }));
        // Round 10: node 1's restart sorts before node 0's crash.
        let e = rt.next_event(10).expect("restart at 10");
        assert_eq!((e.node, e.action), (NodeId(1), FaultAction::Restart));
        let e = rt.next_event(10).expect("crash at 10");
        assert_eq!((e.node, e.action), (NodeId(0), FaultAction::Crash { permanent: false }));
        let e = rt.next_event(11).expect("normalized restart at 11");
        assert_eq!((e.node, e.action), (NodeId(0), FaultAction::Restart));
        assert!(rt.next_event(u64::MAX).is_none());
    }

    #[test]
    fn message_fault_pass_partitions_sends() {
        // Edge 0 always drops, edge 1 always delivers on time, edge 2 always
        // jitters by exactly 2 (skew bounds the delay; a 1-value range would
        // need skew 0, so force it with identical bounds via a dense check).
        let plan = FaultPlan::none()
            .with_edge_drop_ppm(EdgeId(0), PPM)
            .with_edge_skew(EdgeId(2), 3)
            .with_seed(5);
        let mut rt = FaultRuntime::new(&plan, 3, 3).expect("non-empty plan");
        assert!(rt.has_message_faults());
        let mut metrics = Metrics::zero(3, 3);
        let mut outgoing = vec![flight(0, 0, 1), flight(1, 0, 1), flight(2, 1, 2), flight(1, 2, 0)];
        rt.apply_message_faults(&mut metrics, 4, &mut outgoing, 0);
        assert_eq!(metrics.fault_drops, 1);
        let kept = outgoing.len() as u64;
        assert_eq!(kept + metrics.fault_delays, 3, "survivors are on time or pending");
        assert_eq!(rt.pending_count(), metrics.fault_delays);
        assert!(outgoing.iter().all(|f| f.msg.edge != EdgeId(0)), "edge 0 always drops");
        if let Some(at) = rt.next_pending_round() {
            assert!(at > 5, "a delayed message arrives strictly later than on time");
            let mut incoming = Vec::new();
            rt.merge_due(at, &mut incoming);
            assert_eq!(incoming.len() as u64 + rt.pending_count(), metrics.fault_delays);
        }
    }
}
