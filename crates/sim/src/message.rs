//! Messages exchanged between neighbouring nodes.
//!
//! # Design: inline payloads and the CONGEST bandwidth bound
//!
//! In the CONGEST model a message carries `B = O(log n)` bits (the paper,
//! Section 1.2). One `u64` word comfortably holds a node id, an edge id, or a
//! distance bounded by `n · max_w ≤ poly(n)`, so `O(log n)` bits is a small
//! *constant* number of words for any graph this workspace simulates — the
//! default [`crate::SimConfig::max_message_words`] is [`Words::CAPACITY`].
//!
//! The simulator exploits that correspondence structurally: a payload is a
//! [`Words`] value — a fixed-capacity `[u64; CAPACITY]` buffer plus a length,
//! stored *inline* in the [`Message`] — rather than a heap-allocated
//! `Vec<u64>`. [`Message`] is therefore `Copy`, and the engine can move
//! messages through its outbox, in-flight, and inbox stages as flat `memcpy`s
//! of plain structs with **zero heap allocations per message**. The
//! allocation-regression test `tests/alloc_regression.rs` pins this property:
//! after warm-up, a message-saturated round performs no allocation at all.
//!
//! A send longer than the inline capacity is, by construction, a violation of
//! the model's bandwidth bound, and the engine polices it through
//! `max_message_words` exactly as before: a hard [`crate::SimError`] under
//! `strict_capacity` (the default), or a counted violation with the payload
//! truncated to the inline capacity in lenient mode. Truncation is identical
//! in both engines, so differential harnesses stay bit-exact.
//!
//! simlint: hot-path

use std::fmt;
use std::ops::Deref;

use congest_graph::{EdgeId, NodeId};

/// The inline payload capacity, in `u64` words.
const INLINE_WORDS: usize = 4;

/// A fixed-capacity inline message payload: up to [`Words::CAPACITY`] `u64`
/// words stored by value.
///
/// Dereferences to `&[u64]`, so indexing (`words[i]`) and iteration
/// (`for &w in &msg.words`) work exactly as they did when the payload was a
/// `Vec<u64>`.
#[derive(Clone, Copy)]
pub struct Words {
    /// Number of valid words in `buf`.
    len: u8,
    /// Inline storage; entries beyond `len` are unspecified padding.
    buf: [u64; INLINE_WORDS],
}

impl Words {
    /// The inline payload capacity, in `u64` words. Matches the default
    /// [`crate::SimConfig::max_message_words`]: `CAPACITY` words are
    /// `O(log n)` bits, the CONGEST bandwidth bound.
    pub const CAPACITY: usize = INLINE_WORDS;

    /// The empty payload.
    pub const EMPTY: Words = Words { len: 0, buf: [0; INLINE_WORDS] };

    /// Copies `words` into an inline payload.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() > Words::CAPACITY`. The engine's send path
    /// truncates instead of panicking, so oversized *sends* are policed by
    /// [`crate::SimConfig::max_message_words`] rather than by this panic.
    pub fn new(words: &[u64]) -> Words {
        assert!(
            words.len() <= Words::CAPACITY,
            "payload of {} words exceeds the inline capacity {}",
            words.len(),
            Words::CAPACITY
        );
        Words::truncated(words)
    }

    /// Copies at most [`Words::CAPACITY`] leading words of `words`, silently
    /// dropping the rest. The engine pairs this with the recorded attempted
    /// length, so oversized sends still trip `max_message_words`.
    pub(crate) fn truncated(words: &[u64]) -> Words {
        let len = words.len().min(Words::CAPACITY);
        let mut buf = [0u64; INLINE_WORDS];
        buf[..len].copy_from_slice(&words[..len]);
        Words { len: len as u8, buf }
    }

    /// The payload as a slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.buf[..self.len as usize]
    }

    /// Number of words in the payload.
    #[allow(clippy::len_without_is_empty)] // is_empty comes via Deref<[u64]>
    pub fn len(&self) -> usize {
        self.len as usize
    }
}

impl Deref for Words {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a Words {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for Words {
    fn eq(&self, other: &Words) -> bool {
        // Compare only the valid prefix; the padding is unspecified.
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Words {}

impl fmt::Debug for Words {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<&[u64]> for Words {
    fn from(words: &[u64]) -> Words {
        Words::new(words)
    }
}

/// A message delivered to a node at the start of a round.
///
/// The payload is a fixed-capacity inline [`Words`] value (see the module
/// docs for the correspondence with the model's `B = O(log n)` bandwidth
/// bound), which makes the whole message a plain `Copy` struct; the engine
/// enforces [`crate::SimConfig::max_message_words`] on every send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// The neighbour that sent this message.
    pub from: NodeId,
    /// The edge over which the message travelled.
    pub edge: EdgeId,
    /// The message payload.
    pub words: Words,
}

impl Message {
    /// Returns payload word `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.words.len()` — the payload carries fewer than
    /// `idx + 1` words.
    pub fn word(&self, idx: usize) -> u64 {
        self.words[idx]
    }
}

/// A message queued for delivery in the next round (internal to the engine).
///
/// Plain `Copy` data: the engine appends these into a flat, round-reused
/// outbox and the delivery arena moves them without cloning.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InFlight {
    pub(crate) to: NodeId,
    /// The payload length the sender *attempted* (may exceed the inline
    /// capacity, in which case `msg.words` holds the truncated prefix); the
    /// engine polices it against `max_message_words`.
    pub(crate) sent_words: usize,
    pub(crate) msg: Message,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_accessor() {
        let m = Message { from: NodeId(1), edge: EdgeId(0), words: Words::new(&[10, 20]) };
        assert_eq!(m.word(0), 10);
        assert_eq!(m.word(1), 20);
        assert_eq!(m.words.len(), 2);
        assert_eq!(&m.words[..], &[10, 20]);
    }

    #[test]
    #[should_panic]
    fn word_accessor_panics_out_of_range() {
        let m = Message { from: NodeId(1), edge: EdgeId(0), words: Words::EMPTY };
        let _ = m.word(0);
    }

    #[test]
    fn words_iterate_and_compare_by_valid_prefix() {
        let a = Words::new(&[1, 2, 3]);
        let collected: Vec<u64> = (&a).into_iter().copied().collect();
        assert_eq!(collected, vec![1, 2, 3]);
        assert_ne!(Words::new(&[1, 2]), Words::new(&[1]));
        assert_eq!(Words::new(&[1]), Words::from(&[1u64][..]));
        assert!(Words::EMPTY.is_empty());
    }

    #[test]
    fn truncated_keeps_the_inline_prefix_and_new_panics() {
        let w = Words::truncated(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(&w[..], &[1, 2, 3, 4]);
        assert_eq!(w.len(), Words::CAPACITY);
        assert!(std::panic::catch_unwind(|| Words::new(&[0; 5])).is_err());
    }
}
