//! Messages exchanged between neighbouring nodes.

use congest_graph::{EdgeId, NodeId};

/// A message delivered to a node at the start of a round.
///
/// Message contents are a short sequence of `u64` *words*; in the CONGEST
/// model a message carries `B = O(log n)` bits, which corresponds to a
/// constant number of words for any graph this workspace simulates. The
/// engine enforces [`crate::SimConfig::max_message_words`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The neighbour that sent this message.
    pub from: NodeId,
    /// The edge over which the message travelled.
    pub edge: EdgeId,
    /// The message payload.
    pub words: Vec<u64>,
}

impl Message {
    /// Convenience accessor for the first payload word.
    ///
    /// # Panics
    ///
    /// Panics if the message is empty.
    pub fn word(&self, idx: usize) -> u64 {
        self.words[idx]
    }
}

/// A message queued for delivery in the next round (internal to the engine).
#[derive(Debug, Clone)]
pub(crate) struct InFlight {
    pub(crate) to: NodeId,
    pub(crate) msg: Message,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_accessor() {
        let m = Message { from: NodeId(1), edge: EdgeId(0), words: vec![10, 20] };
        assert_eq!(m.word(0), 10);
        assert_eq!(m.word(1), 20);
    }

    #[test]
    #[should_panic]
    fn word_accessor_panics_out_of_range() {
        let m = Message { from: NodeId(1), edge: EdgeId(0), words: vec![] };
        let _ = m.word(0);
    }
}
