//! The per-node protocol interface: [`Protocol`] and [`NodeCtx`].

use congest_graph::{Adjacency, EdgeId, NodeId};

use crate::Message;

/// A distributed protocol, written as a per-node state machine.
///
/// The engine creates one value of the implementing type per node and drives
/// it through synchronous rounds. A node only ever sees:
///
/// * its own id and its incident edges (via [`NodeCtx`]),
/// * the number of nodes `n` (standard CONGEST assumption),
/// * the messages its neighbours sent it in the previous round.
///
/// Nodes control their own sleep schedule through [`NodeCtx::sleep_for`] /
/// [`NodeCtx::sleep_until`] and stop participating with [`NodeCtx::halt`].
pub trait Protocol {
    /// Called once, in round 0, when every node is awake. Typically used to
    /// send initial messages and set the initial sleep schedule.
    fn init(&mut self, ctx: &mut NodeCtx<'_>);

    /// Called in every round `>= 1` in which this node is awake, with the
    /// messages delivered to it this round (messages sent to it while it was
    /// asleep are lost, per the sleeping model).
    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]);
}

/// What a node asked the engine to do at the end of its round.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeRequest {
    /// Messages to send: (edge, destination, payload).
    pub(crate) outbox: Vec<(EdgeId, NodeId, Vec<u64>)>,
    /// If set, the node sleeps and next wakes at this round.
    pub(crate) wake_at: Option<u64>,
    /// The node halts (stops for good; counts no further energy).
    pub(crate) halt: bool,
}

/// The engine-provided view a node has of itself and the network during one
/// round. All message sends and sleep requests go through this context.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    node: NodeId,
    node_count: u32,
    round: u64,
    neighbors: &'a [Adjacency],
    pub(crate) request: NodeRequest,
}

impl<'a> NodeCtx<'a> {
    pub(crate) fn new(
        node: NodeId,
        node_count: u32,
        round: u64,
        neighbors: &'a [Adjacency],
    ) -> Self {
        NodeCtx { node, node_count, round, neighbors, request: NodeRequest::default() }
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The number of nodes `n` in the network (globally known, as is standard
    /// in the CONGEST model).
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// The current round number (0 during [`Protocol::init`]).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The incident edges of this node.
    pub fn neighbors(&self) -> &'a [Adjacency] {
        self.neighbors
    }

    /// The degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Sends a message over the given incident edge. The message is delivered
    /// at the start of the next round, if the recipient is awake then.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is not incident to this node.
    pub fn send_on_edge(&mut self, edge: EdgeId, words: &[u64]) {
        let adj = self
            .neighbors
            .iter()
            .find(|a| a.edge == edge)
            .unwrap_or_else(|| panic!("edge {edge} is not incident to node {}", self.node));
        self.request.outbox.push((edge, adj.neighbor, words.to_vec()));
    }

    /// Sends a message to the given neighbour (over the lightest edge to it,
    /// if there are parallel edges).
    ///
    /// # Panics
    ///
    /// Panics if `neighbor` is not adjacent to this node.
    pub fn send(&mut self, neighbor: NodeId, words: &[u64]) {
        let adj = self
            .neighbors
            .iter()
            .filter(|a| a.neighbor == neighbor)
            .min_by_key(|a| a.weight)
            .unwrap_or_else(|| panic!("node {neighbor} is not a neighbour of {}", self.node));
        self.request.outbox.push((adj.edge, neighbor, words.to_vec()));
    }

    /// Sends the same message over every incident edge.
    pub fn broadcast(&mut self, words: &[u64]) {
        for adj in self.neighbors {
            self.request.outbox.push((adj.edge, adj.neighbor, words.to_vec()));
        }
    }

    /// Puts the node to sleep for the next `rounds` rounds; it wakes again at
    /// round `current + rounds + 1`. `sleep_for(0)` is a no-op (awake next
    /// round as usual).
    pub fn sleep_for(&mut self, rounds: u64) {
        if rounds > 0 {
            self.request.wake_at = Some(self.round + rounds + 1);
        }
    }

    /// Puts the node to sleep until the given round (it is next awake at
    /// `round`). A target in the past or the immediate next round is a no-op.
    pub fn sleep_until(&mut self, round: u64) {
        if round > self.round + 1 {
            self.request.wake_at = Some(round);
        }
    }

    /// Halts this node: it stops participating in the protocol, consumes no
    /// further energy, and the simulation ends when every node has halted.
    pub fn halt(&mut self) {
        self.request.halt = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn context_send_and_broadcast_fill_outbox() {
        let g = generators::star(4, 1);
        let center = NodeId(0);
        let mut ctx = NodeCtx::new(center, 4, 3, g.neighbors(center));
        assert_eq!(ctx.node_id(), center);
        assert_eq!(ctx.node_count(), 4);
        assert_eq!(ctx.round(), 3);
        assert_eq!(ctx.degree(), 3);
        ctx.send(NodeId(2), &[42]);
        ctx.broadcast(&[7]);
        assert_eq!(ctx.request.outbox.len(), 4);
        assert_eq!(ctx.request.outbox[0].1, NodeId(2));
        assert_eq!(ctx.request.outbox[0].2, vec![42]);
    }

    #[test]
    fn sleep_requests() {
        let g = generators::path(3, 1);
        let mut ctx = NodeCtx::new(NodeId(1), 3, 10, g.neighbors(NodeId(1)));
        ctx.sleep_for(0);
        assert_eq!(ctx.request.wake_at, None);
        ctx.sleep_for(5);
        assert_eq!(ctx.request.wake_at, Some(16));
        ctx.sleep_until(12);
        assert_eq!(ctx.request.wake_at, Some(12));
        ctx.sleep_until(3);
        assert_eq!(ctx.request.wake_at, Some(12), "past targets are ignored");
        assert!(!ctx.request.halt);
        ctx.halt();
        assert!(ctx.request.halt);
    }

    #[test]
    #[should_panic(expected = "is not a neighbour")]
    fn sending_to_non_neighbor_panics() {
        let g = generators::path(3, 1);
        let mut ctx = NodeCtx::new(NodeId(0), 3, 0, g.neighbors(NodeId(0)));
        ctx.send(NodeId(2), &[1]);
    }

    #[test]
    fn send_prefers_lightest_parallel_edge() {
        let g = congest_graph::Graph::from_edges(2, [(0, 1, 9), (0, 1, 2)]).unwrap();
        let mut ctx = NodeCtx::new(NodeId(0), 2, 0, g.neighbors(NodeId(0)));
        ctx.send(NodeId(1), &[1]);
        let edge = ctx.request.outbox[0].0;
        assert_eq!(g.edge(edge).w, 2);
    }
}
