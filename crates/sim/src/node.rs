//! The per-node protocol interface: [`Protocol`] and [`NodeCtx`].

use congest_graph::{Adjacency, EdgeId, Graph, NodeId};

use crate::message::{InFlight, Words};
use crate::network::{NeighborIndex, Network};
use crate::Message;

/// A distributed protocol, written as a per-node state machine.
///
/// The engine creates one value of the implementing type per node and drives
/// it through synchronous rounds. A node only ever sees:
///
/// * its own id and its incident edges (via [`NodeCtx`]),
/// * the number of nodes `n` (standard CONGEST assumption),
/// * the messages its neighbours sent it in the previous round.
///
/// Nodes control their own sleep schedule through [`NodeCtx::sleep_for`] /
/// [`NodeCtx::sleep_until`] and stop participating with [`NodeCtx::halt`].
///
/// `Send` is a supertrait because the engine's sharded execution mode (see
/// [`crate::SimConfig::threads`]) moves per-node state machines onto worker
/// threads. Protocol states are per-node values the engine owns outright, so
/// any ordinary state type (plain data, seeded RNGs, …) is `Send` already.
pub trait Protocol: Send {
    /// Called once, in round 0, when every node is awake. Typically used to
    /// send initial messages and set the initial sleep schedule.
    fn init(&mut self, ctx: &mut NodeCtx<'_>);

    /// Called in every round `>= 1` in which this node is awake, with the
    /// messages delivered to it this round (messages sent to it while it was
    /// asleep are lost, per the sleeping model).
    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]);
}

/// The engine-provided view a node has of itself and the network during one
/// round. All message sends and sleep requests go through this context.
///
/// The context owns no buffers: sends are appended, as plain [`Copy`]
/// structs with inline payloads, into a flat outbox the engine reuses from
/// round to round, so a send performs no heap allocation.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    node: NodeId,
    node_count: u32,
    round: u64,
    graph: &'a Graph,
    neighbors: &'a [Adjacency],
    index: &'a NeighborIndex,
    /// The engine's round outbox; this node's sends start at the position the
    /// engine recorded before handing out the context.
    outbox: &'a mut Vec<InFlight>,
    /// If set, the node sleeps and next wakes at this round.
    pub(crate) wake_at: Option<u64>,
    /// The node halts (stops for good; counts no further energy).
    pub(crate) halt: bool,
}

impl<'a> NodeCtx<'a> {
    pub(crate) fn new(
        node: NodeId,
        round: u64,
        network: &'a Network<'_>,
        outbox: &'a mut Vec<InFlight>,
    ) -> Self {
        NodeCtx {
            node,
            node_count: network.node_count(),
            round,
            graph: network.graph(),
            neighbors: network.neighbors(node),
            index: network.index(),
            outbox,
            wake_at: None,
            halt: false,
        }
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The number of nodes `n` in the network (globally known, as is standard
    /// in the CONGEST model).
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// The current round number (0 during [`Protocol::init`]).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The incident edges of this node.
    pub fn neighbors(&self) -> &'a [Adjacency] {
        self.neighbors
    }

    /// The degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Appends one send to the engine's outbox: an inline copy of the
    /// payload, plus the attempted length for the engine's bandwidth check.
    fn push(&mut self, edge: EdgeId, to: NodeId, words: &[u64]) {
        self.outbox.push(InFlight {
            to,
            sent_words: words.len(),
            msg: Message { from: self.node, edge, words: Words::truncated(words) },
        });
    }

    /// Sends a message over the given incident edge. The message is delivered
    /// at the start of the next round, if the recipient is awake then.
    ///
    /// `O(1)`: the recipient is read off the edge's endpoint record.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is not incident to this node.
    pub fn send_on_edge(&mut self, edge: EdgeId, words: &[u64]) {
        let to = self
            .endpoint_across(edge)
            .unwrap_or_else(|| panic!("edge {edge} is not incident to node {}", self.node));
        self.push(edge, to, words);
    }

    /// The endpoint of `edge` opposite this node, if `edge` is incident.
    fn endpoint_across(&self, edge: EdgeId) -> Option<NodeId> {
        if edge.index() >= self.graph.edge_count() as usize {
            return None;
        }
        let e = self.graph.edge(edge);
        if e.u == self.node {
            Some(e.v)
        } else if e.v == self.node {
            Some(e.u)
        } else {
            None
        }
    }

    /// Sends a message to the given neighbour (over the lightest edge to it,
    /// if there are parallel edges).
    ///
    /// `O(1)`: the edge comes from the network's precomputed
    /// neighbour→adjacency index rather than an adjacency-list scan.
    ///
    /// # Panics
    ///
    /// Panics if `neighbor` is not adjacent to this node.
    pub fn send(&mut self, neighbor: NodeId, words: &[u64]) {
        let adj = self
            .index
            .best_edge_to(self.node, neighbor)
            .unwrap_or_else(|| panic!("node {neighbor} is not a neighbour of {}", self.node));
        self.push(adj.edge, neighbor, words);
    }

    /// Sends the same message over every incident edge.
    pub fn broadcast(&mut self, words: &[u64]) {
        let neighbors = self.neighbors;
        for adj in neighbors {
            self.push(adj.edge, adj.neighbor, words);
        }
    }

    /// Puts the node to sleep for the next `rounds` rounds; it wakes again at
    /// round `current + rounds + 1`. `sleep_for(0)` is a no-op (awake next
    /// round as usual).
    pub fn sleep_for(&mut self, rounds: u64) {
        if rounds > 0 {
            self.wake_at = Some(self.round + rounds + 1);
        }
    }

    /// Puts the node to sleep until the given round (it is next awake at
    /// `round`). A target in the past or the immediate next round is a no-op.
    pub fn sleep_until(&mut self, round: u64) {
        if round > self.round + 1 {
            self.wake_at = Some(round);
        }
    }

    /// Halts this node: it stops participating in the protocol, consumes no
    /// further energy, and the simulation ends when every node has halted.
    pub fn halt(&mut self) {
        self.halt = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn context_send_and_broadcast_fill_outbox() {
        let g = generators::star(4, 1);
        let net = Network::new(&g);
        let center = NodeId(0);
        let mut outbox = Vec::new();
        let mut ctx = NodeCtx::new(center, 3, &net, &mut outbox);
        assert_eq!(ctx.node_id(), center);
        assert_eq!(ctx.node_count(), 4);
        assert_eq!(ctx.round(), 3);
        assert_eq!(ctx.degree(), 3);
        ctx.send(NodeId(2), &[42]);
        ctx.broadcast(&[7]);
        assert_eq!(outbox.len(), 4);
        assert_eq!(outbox[0].to, NodeId(2));
        assert_eq!(&outbox[0].msg.words[..], &[42]);
        assert_eq!(outbox[0].msg.from, center);
        assert_eq!(outbox[0].sent_words, 1);
        assert!(outbox[1..].iter().all(|f| f.msg.words[..] == [7]));
    }

    #[test]
    fn sleep_requests() {
        let g = generators::path(3, 1);
        let net = Network::new(&g);
        let mut outbox = Vec::new();
        let mut ctx = NodeCtx::new(NodeId(1), 10, &net, &mut outbox);
        ctx.sleep_for(0);
        assert_eq!(ctx.wake_at, None);
        ctx.sleep_for(5);
        assert_eq!(ctx.wake_at, Some(16));
        ctx.sleep_until(12);
        assert_eq!(ctx.wake_at, Some(12));
        ctx.sleep_until(3);
        assert_eq!(ctx.wake_at, Some(12), "past targets are ignored");
        assert!(!ctx.halt);
        ctx.halt();
        assert!(ctx.halt);
    }

    #[test]
    #[should_panic(expected = "is not a neighbour")]
    fn sending_to_non_neighbor_panics() {
        let g = generators::path(3, 1);
        let net = Network::new(&g);
        let mut outbox = Vec::new();
        let mut ctx = NodeCtx::new(NodeId(0), 0, &net, &mut outbox);
        ctx.send(NodeId(2), &[1]);
    }

    #[test]
    #[should_panic(expected = "is not incident")]
    fn sending_on_a_foreign_edge_panics() {
        let g = generators::path(3, 1); // edges: 0-1 (e0), 1-2 (e1)
        let net = Network::new(&g);
        let mut outbox = Vec::new();
        let mut ctx = NodeCtx::new(NodeId(0), 0, &net, &mut outbox);
        ctx.send_on_edge(EdgeId(1), &[1]);
    }

    #[test]
    #[should_panic(expected = "is not incident")]
    fn sending_on_an_out_of_range_edge_panics() {
        let g = generators::path(3, 1);
        let net = Network::new(&g);
        let mut outbox = Vec::new();
        let mut ctx = NodeCtx::new(NodeId(0), 0, &net, &mut outbox);
        ctx.send_on_edge(EdgeId(99), &[1]);
    }

    #[test]
    fn send_prefers_lightest_parallel_edge() {
        let g = congest_graph::Graph::from_edges(2, [(0, 1, 9), (0, 1, 2)]).unwrap();
        let net = Network::new(&g);
        let mut outbox = Vec::new();
        let mut ctx = NodeCtx::new(NodeId(0), 0, &net, &mut outbox);
        ctx.send(NodeId(1), &[1]);
        let edge = outbox[0].msg.edge;
        assert_eq!(g.edge(edge).w, 2);
    }

    #[test]
    fn oversized_sends_record_the_attempted_length() {
        let g = generators::path(2, 1);
        let net = Network::new(&g);
        let mut outbox = Vec::new();
        let mut ctx = NodeCtx::new(NodeId(0), 0, &net, &mut outbox);
        ctx.broadcast(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(outbox[0].sent_words, 6, "the engine polices the attempted length");
        assert_eq!(&outbox[0].msg.words[..], &[1, 2, 3, 4], "the payload is the inline prefix");
    }
}
