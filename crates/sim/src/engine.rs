//! The round-driving engine of the simulator.

use congest_graph::{Graph, NodeId};

use crate::message::InFlight;
use crate::metrics::{EdgeUsageTrace, Metrics};
use crate::node::{NodeCtx, NodeRequest};
use crate::{Message, Network, Protocol, SimConfig, SimError};

/// The result of running a protocol to completion.
#[derive(Debug, Clone)]
pub struct RunOutcome<P> {
    /// The final per-node protocol states, indexed by [`NodeId`]. Protocols
    /// expose their outputs (distances, cluster ids, …) as fields of their
    /// state type; the caller reads them from here.
    pub states: Vec<P>,
    /// The complexity measurements of the execution.
    pub metrics: Metrics,
    /// The per-round edge usage trace, if [`SimConfig::record_edge_trace`]
    /// was enabled.
    pub trace: Option<EdgeUsageTrace>,
}

/// Per-node bookkeeping the engine maintains.
#[derive(Debug, Clone)]
struct NodeStatus {
    /// The earliest round at which the node is next awake.
    wake_at: u64,
    /// The node has halted for good.
    halted: bool,
}

/// The simulation engine: drives per-node [`Protocol`] state machines through
/// synchronous rounds over a [`Network`], enforcing the CONGEST and sleeping
/// model rules and recording [`Metrics`].
#[derive(Debug, Clone)]
pub struct Engine<'g> {
    network: Network<'g>,
    config: SimConfig,
}

impl<'g> Engine<'g> {
    /// Creates an engine over the given graph with the given model
    /// configuration.
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        Engine { network: Network::new(graph), config }
    }

    /// The network this engine simulates.
    pub fn network(&self) -> Network<'g> {
        self.network
    }

    /// The model configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the protocol produced by `factory` (one instance per node) until
    /// every node has halted.
    ///
    /// Round 0 is the initialization round: every node is awake and its
    /// [`Protocol::init`] runs. From round 1 on, [`Protocol::on_round`] runs
    /// for every awake, non-halted node.
    ///
    /// # Errors
    ///
    /// * [`SimError::RoundLimitExceeded`] if the protocol does not halt within
    ///   the configured number of rounds.
    /// * [`SimError::EdgeCapacityExceeded`] / [`SimError::MessageTooLarge`]
    ///   if a node violates the CONGEST constraints and `strict_capacity` is
    ///   enabled.
    pub fn run<P, F>(&self, mut factory: F) -> Result<RunOutcome<P>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId) -> P,
    {
        let graph = self.network.graph();
        let n = graph.node_count() as usize;
        let m = graph.edge_count() as usize;
        let mut states: Vec<P> = graph.nodes().map(&mut factory).collect();
        let mut status = vec![NodeStatus { wake_at: 0, halted: false }; n];
        let mut metrics = Metrics::zero(n, m);
        let mut trace =
            if self.config.record_edge_trace { Some(EdgeUsageTrace::default()) } else { None };

        // Messages sent in the previous round, awaiting delivery this round.
        let mut in_flight: Vec<InFlight> = Vec::new();
        let mut round: u64 = 0;

        loop {
            if round > self.config.max_rounds {
                let unhalted = status.iter().filter(|s| !s.halted).count() as u32;
                return Err(SimError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                    unhalted_nodes: unhalted,
                });
            }

            // Deliver messages sent last round. Messages to sleeping or halted
            // nodes are lost (the defining property of the sleeping model).
            let mut inboxes: Vec<Vec<Message>> = vec![Vec::new(); n];
            for flight in in_flight.drain(..) {
                let st = &status[flight.to.index()];
                if !st.halted && st.wake_at <= round {
                    inboxes[flight.to.index()].push(flight.msg);
                }
            }

            // Run awake nodes.
            let mut this_round_trace: Vec<(congest_graph::EdgeId, u32)> = Vec::new();
            let mut edge_round_count: std::collections::HashMap<
                (congest_graph::EdgeId, NodeId),
                u32,
            > = std::collections::HashMap::new();
            let mut any_awake = false;
            for v in graph.nodes() {
                let st = &status[v.index()];
                if st.halted || st.wake_at > round {
                    continue;
                }
                any_awake = true;
                metrics.node_energy[v.index()] += 1;
                let mut ctx = NodeCtx::new(v, graph.node_count(), round, graph.neighbors(v));
                if round == 0 {
                    states[v.index()].init(&mut ctx);
                } else {
                    states[v.index()].on_round(&mut ctx, &inboxes[v.index()]);
                }
                let NodeRequest { outbox, wake_at, halt } = ctx.request;
                // Process sends.
                for (edge, to, words) in outbox {
                    if words.len() > self.config.max_message_words {
                        if self.config.strict_capacity {
                            return Err(SimError::MessageTooLarge {
                                node: v,
                                words: words.len(),
                                max_words: self.config.max_message_words,
                            });
                        }
                        metrics.capacity_violations += 1;
                    }
                    let used = edge_round_count.entry((edge, v)).or_insert(0);
                    *used += 1;
                    if *used > self.config.edge_capacity {
                        if self.config.strict_capacity {
                            return Err(SimError::EdgeCapacityExceeded {
                                node: v,
                                edge,
                                round,
                                capacity: self.config.edge_capacity,
                            });
                        }
                        metrics.capacity_violations += 1;
                    }
                    metrics.messages += 1;
                    metrics.edge_congestion[edge.index()] += 1;
                    if trace.is_some() {
                        this_round_trace.push((edge, 1));
                    }
                    in_flight.push(InFlight { to, msg: Message { from: v, edge, words } });
                }
                // Process sleep/halt requests.
                let st = &mut status[v.index()];
                if halt {
                    st.halted = true;
                } else if let Some(w) = wake_at {
                    st.wake_at = w;
                } else {
                    st.wake_at = round + 1;
                }
            }

            if let Some(t) = trace.as_mut() {
                // Coalesce duplicate edges in this round's trace entry.
                let mut merged: std::collections::HashMap<congest_graph::EdgeId, u32> =
                    std::collections::HashMap::new();
                for (e, c) in this_round_trace {
                    *merged.entry(e).or_insert(0) += c;
                }
                let mut entry: Vec<_> = merged.into_iter().collect();
                entry.sort_by_key(|&(e, _)| e);
                t.rounds.push(entry);
            }

            // Termination check: all halted and nothing in flight.
            let all_halted = status.iter().all(|s| s.halted);
            if all_halted {
                metrics.rounds = round + 1;
                return Ok(RunOutcome { states, metrics, trace });
            }

            // Deadlock / quiescence guard: nobody is awake now or in the
            // future and no message is in flight — the protocol will never
            // make progress again. Treat it as termination at this round;
            // protocols that rely on this behave like "implicit halt".
            let next_wake = status.iter().filter(|s| !s.halted).map(|s| s.wake_at).min();
            if in_flight.is_empty() && !any_awake && self.config.fast_forward_idle {
                if let Some(w) = next_wake.filter(|&w| w > round) {
                    // Jump to the next scheduled wake-up. The skipped rounds
                    // still exist in the model but cost nothing.
                    if let Some(t) = trace.as_mut() {
                        for _ in round + 1..w {
                            t.rounds.push(Vec::new());
                        }
                    }
                    round = w;
                    continue;
                }
            }
            // Without fast-forward we simply step to the next round. If
            // nothing can ever happen again (no in-flight messages and no
            // non-halted node will ever wake because they are all waiting on
            // messages that will never come), the protocol is stuck. This can
            // only be detected heuristically; the round limit catches it.

            round += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, Distance};

    /// Single-source BFS where every node halts once its distance stabilizes
    /// for `n` rounds. Used to exercise the engine end to end.
    #[derive(Debug, Clone)]
    struct SimpleBfs {
        is_source: bool,
        dist: Distance,
        quiet: u32,
    }

    impl Protocol for SimpleBfs {
        fn init(&mut self, ctx: &mut NodeCtx<'_>) {
            if self.is_source {
                self.dist = Distance::ZERO;
                ctx.broadcast(&[0]);
            }
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
            let mut improved = false;
            for msg in inbox {
                let cand = Distance::Finite(msg.words[0] + 1);
                if cand < self.dist {
                    self.dist = cand;
                    improved = true;
                }
            }
            if improved {
                self.quiet = 0;
                ctx.broadcast(&[self.dist.expect_finite()]);
            } else {
                self.quiet += 1;
                if self.quiet > ctx.node_count() {
                    ctx.halt();
                }
            }
        }
    }

    fn run_bfs(g: &Graph, source: NodeId) -> RunOutcome<SimpleBfs> {
        Engine::new(g, SimConfig::default())
            .run(|id| SimpleBfs { is_source: id == source, dist: Distance::Infinite, quiet: 0 })
            .expect("bfs should run within limits")
    }

    #[test]
    fn bfs_protocol_matches_sequential_bfs() {
        let g = generators::random_connected(40, 60, 11);
        let run = run_bfs(&g, NodeId(0));
        let expected = congest_graph::sequential::bfs(&g, &[NodeId(0)]);
        for v in g.nodes() {
            assert_eq!(run.states[v.index()].dist, expected.distance(v));
        }
        // Time is at least the eccentricity of the source.
        let ecc = congest_graph::properties::hop_eccentricity(&g, NodeId(0));
        assert!(run.metrics.rounds >= ecc);
    }

    #[test]
    fn energy_counts_awake_rounds_for_all_nodes() {
        let g = generators::path(10, 1);
        let run = run_bfs(&g, NodeId(0));
        // Nobody sleeps in SimpleBfs, so every node's energy equals the rounds
        // it was alive before halting, which is > the path length.
        assert!(run.metrics.max_energy() >= 9);
        assert!(run.metrics.node_energy.iter().all(|&e| e > 0));
    }

    #[test]
    fn congestion_counts_messages_per_edge() {
        let g = generators::path(4, 1);
        let run = run_bfs(&g, NodeId(0));
        assert_eq!(run.metrics.messages, run.metrics.edge_congestion.iter().sum::<u64>());
        assert!(run.metrics.max_congestion() >= 1);
    }

    /// A protocol in which nodes sleep most of the time: node v wakes only at
    /// round 10 * (v+1), does nothing, and halts.
    #[derive(Debug, Clone)]
    struct Sleeper {
        woke_at: Option<u64>,
    }

    impl Protocol for Sleeper {
        fn init(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.sleep_until(10 * (ctx.node_id().0 as u64 + 1));
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &[Message]) {
            self.woke_at = Some(ctx.round());
            ctx.halt();
        }
    }

    #[test]
    fn sleeping_nodes_cost_no_energy_and_fast_forward_works() {
        let g = generators::path(5, 1);
        let run = Engine::new(&g, SimConfig::default()).run(|_| Sleeper { woke_at: None }).unwrap();
        for v in g.nodes() {
            assert_eq!(run.states[v.index()].woke_at, Some(10 * (v.0 as u64 + 1)));
            // Awake in round 0 (init) and in its single wake round.
            assert_eq!(run.metrics.node_energy[v.index()], 2);
        }
        // Total time is dominated by the last sleeper (round 50), even though
        // almost nothing was simulated.
        assert!(run.metrics.rounds >= 50);
        assert_eq!(run.metrics.messages, 0);
    }

    /// Messages sent to sleeping nodes must be lost.
    #[derive(Debug, Clone)]
    struct LossyReceiver {
        got: u32,
        is_sender: bool,
    }

    impl Protocol for LossyReceiver {
        fn init(&mut self, ctx: &mut NodeCtx<'_>) {
            if self.is_sender {
                // Send in rounds 0 and 5 (delivered in rounds 1 and 6).
                ctx.broadcast(&[1]);
            } else {
                // Sleep through round 1 (losing that message), awake at 6.
                ctx.sleep_until(6);
            }
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
            self.got += inbox.len() as u32;
            if self.is_sender {
                if ctx.round() == 5 {
                    ctx.broadcast(&[2]);
                }
                if ctx.round() >= 7 {
                    ctx.halt();
                }
            } else {
                ctx.halt();
            }
        }
    }

    #[test]
    fn messages_to_sleeping_nodes_are_lost() {
        let g = generators::path(2, 1);
        let run = Engine::new(&g, SimConfig::default())
            .run(|id| LossyReceiver { got: 0, is_sender: id == NodeId(0) })
            .unwrap();
        // Node 1 slept through the first message and received only the second.
        assert_eq!(run.states[1].got, 1);
    }

    /// A protocol that spams an edge beyond capacity.
    #[derive(Debug, Clone)]
    struct Spammer;

    impl Protocol for Spammer {
        fn init(&mut self, ctx: &mut NodeCtx<'_>) {
            let first = ctx.neighbors().first().copied();
            if let Some(adj) = first {
                ctx.send_on_edge(adj.edge, &[1]);
                ctx.send_on_edge(adj.edge, &[2]);
            }
            ctx.halt();
        }
        fn on_round(&mut self, _ctx: &mut NodeCtx<'_>, _inbox: &[Message]) {}
    }

    #[test]
    fn strict_capacity_rejects_overload() {
        let g = generators::path(2, 1);
        let err = Engine::new(&g, SimConfig::default()).run(|_| Spammer).unwrap_err();
        assert!(matches!(err, SimError::EdgeCapacityExceeded { .. }));
    }

    #[test]
    fn lenient_capacity_counts_violations() {
        let g = generators::path(2, 1);
        let cfg = SimConfig { strict_capacity: false, ..SimConfig::default() };
        let run = Engine::new(&g, cfg).run(|_| Spammer).unwrap();
        assert_eq!(run.metrics.capacity_violations, 2);
    }

    #[test]
    fn capacity_two_allows_two_messages() {
        let g = generators::path(2, 1);
        let cfg = SimConfig::default().with_edge_capacity(2);
        let run = Engine::new(&g, cfg).run(|_| Spammer).unwrap();
        assert_eq!(run.metrics.capacity_violations, 0);
        assert_eq!(run.metrics.messages, 4); // both endpoints spam once
    }

    /// A protocol that never halts.
    #[derive(Debug, Clone)]
    struct Immortal;

    impl Protocol for Immortal {
        fn init(&mut self, _ctx: &mut NodeCtx<'_>) {}
        fn on_round(&mut self, _ctx: &mut NodeCtx<'_>, _inbox: &[Message]) {}
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = generators::path(3, 1);
        let cfg = SimConfig::default().with_max_rounds(50);
        let err = Engine::new(&g, cfg).run(|_| Immortal).unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { limit: 50, unhalted_nodes: 3 }));
    }

    #[test]
    fn oversized_message_is_rejected() {
        #[derive(Debug, Clone)]
        struct BigTalker;
        impl Protocol for BigTalker {
            fn init(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.broadcast(&[0; 16]);
                ctx.halt();
            }
            fn on_round(&mut self, _ctx: &mut NodeCtx<'_>, _inbox: &[Message]) {}
        }
        let g = generators::path(2, 1);
        let err = Engine::new(&g, SimConfig::default()).run(|_| BigTalker).unwrap_err();
        assert!(matches!(err, SimError::MessageTooLarge { words: 16, .. }));
    }

    #[test]
    fn edge_trace_is_recorded_when_enabled() {
        let g = generators::path(4, 1);
        let cfg = SimConfig::default().with_edge_trace(true);
        let source = NodeId(0);
        let run = Engine::new(&g, cfg)
            .run(|id| SimpleBfs { is_source: id == source, dist: Distance::Infinite, quiet: 0 })
            .unwrap();
        let trace = run.trace.expect("trace requested");
        assert_eq!(trace.total_messages(), run.metrics.messages);
        assert_eq!(trace.max_edge_total(), run.metrics.max_congestion());
        assert_eq!(trace.len() as u64, run.metrics.rounds);
    }
}
