//! The simulated network: a thin view over a [`congest_graph::Graph`].

use congest_graph::{Adjacency, Graph, NodeId};

/// A simulated network over an undirected weighted graph.
///
/// The network does not own the graph; it provides the topology queries that
/// nodes are allowed to make locally (their own neighbourhood) plus the global
/// parameters every node is assumed to know (`n`, as is standard in CONGEST).
#[derive(Debug, Clone, Copy)]
pub struct Network<'g> {
    graph: &'g Graph,
}

impl<'g> Network<'g> {
    /// Creates a network over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        Network { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.graph.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> u32 {
        self.graph.edge_count()
    }

    /// The local neighbourhood of `v` (the only topology a node can see).
    pub fn neighbors(&self, v: NodeId) -> &'g [Adjacency] {
        self.graph.neighbors(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn network_exposes_graph_views() {
        let g = generators::cycle(5, 2);
        let net = Network::new(&g);
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.edge_count(), 5);
        assert_eq!(net.neighbors(NodeId(0)).len(), 2);
        assert_eq!(net.graph().max_weight(), 2);
    }
}
