//! The simulated network: a view over a [`congest_graph::Graph`] plus a
//! precomputed neighbour→adjacency index for fast send-path lookups.

use congest_graph::{Adjacency, Graph, NodeId};

/// Precomputed per-node neighbour→adjacency lookup.
///
/// [`crate::NodeCtx::send`] must resolve "the lightest edge to neighbour `u`"
/// on every call; scanning the adjacency list makes that `O(degree)` per send
/// — `Θ(degree²)` per round on a hub that talks to every neighbour (see the
/// E13 star benchmark). This index resolves it in `O(log degree)` from one
/// `O(m log m)` build pass at [`Network::new`].
///
/// The index is CSR-shaped, like [`Graph`]'s adjacency itself: one flat array
/// of best-edge entries (one per distinct `(node, neighbour)` pair, sorted by
/// neighbour id within each node's run) plus an `n + 1` offset table, and a
/// lookup is a binary search over the node's run. This replaces the earlier
/// `HashMap<(u32, u32), Adjacency>`: flat arrays cost a fraction of the hash
/// map's memory at large `n` (the million-node regime of E15), are `Send +
/// Sync` plain data the sharded engine's workers can read concurrently, and
/// binary search on a hub's cache-resident run competes well with hashing.
#[derive(Debug, Clone)]
pub(crate) struct NeighborIndex {
    /// CSR offsets: node `v`'s best-edge entries live at
    /// `entries[offsets[v] .. offsets[v + 1]]`. Length `n + 1`.
    offsets: Vec<u32>,
    /// One entry per distinct `(node, neighbour)` pair: the minimum-weight
    /// edge to that neighbour, resolving weight ties to the *first* such
    /// entry in the node's adjacency list (the tie `Iterator::min_by_key`
    /// resolved before the index existed, preserved bit for bit). Sorted by
    /// neighbour id within each node's run.
    entries: Vec<Adjacency>,
}

impl NeighborIndex {
    fn build(graph: &Graph) -> NeighborIndex {
        let n = graph.node_count() as usize;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries: Vec<Adjacency> = Vec::with_capacity(2 * graph.edge_count() as usize);
        let mut row: Vec<Adjacency> = Vec::new();
        offsets.push(0);
        for v in graph.nodes() {
            row.clear();
            row.extend_from_slice(graph.neighbors(v));
            // A *stable* sort keeps adjacency-list order within each
            // neighbour's group, so "first minimal entry" below means first
            // in insertion order — the pre-index tie rule.
            row.sort_by_key(|a| a.neighbor);
            let mut iter = row.iter();
            if let Some(&first) = iter.next() {
                let mut best = first;
                for &a in iter {
                    if a.neighbor != best.neighbor {
                        entries.push(best);
                        best = a;
                    } else if a.weight < best.weight {
                        best = a;
                    }
                }
                entries.push(best);
            }
            offsets.push(entries.len() as u32);
        }
        NeighborIndex { offsets, entries }
    }

    /// The adjacency entry for the preferred (lightest) edge from `from` to
    /// its neighbour `to`, or `None` if they are not adjacent.
    pub(crate) fn best_edge_to(&self, from: NodeId, to: NodeId) -> Option<&Adjacency> {
        let lo = self.offsets[from.index()] as usize;
        let hi = self.offsets[from.index() + 1] as usize;
        let run = &self.entries[lo..hi];
        run.binary_search_by_key(&to, |a| a.neighbor).ok().map(|i| &run[i])
    }
}

/// A simulated network over an undirected weighted graph.
///
/// The network does not own the graph; it provides the topology queries that
/// nodes are allowed to make locally (their own neighbourhood) plus the global
/// parameters every node is assumed to know (`n`, as is standard in CONGEST).
/// Construction also builds the neighbour→adjacency index the send path uses
/// for constant-time neighbour lookups (see `NeighborIndex`).
#[derive(Debug, Clone)]
pub struct Network<'g> {
    graph: &'g Graph,
    index: NeighborIndex,
}

impl<'g> Network<'g> {
    /// Creates a network over `graph` (one `O(m)` pass to build the send
    /// index).
    pub fn new(graph: &'g Graph) -> Self {
        Network { graph, index: NeighborIndex::build(graph) }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.graph.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> u32 {
        self.graph.edge_count()
    }

    /// The local neighbourhood of `v` (the only topology a node can see).
    pub fn neighbors(&self, v: NodeId) -> &'g [Adjacency] {
        self.graph.neighbors(v)
    }

    /// The send-path lookup index.
    pub(crate) fn index(&self) -> &NeighborIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn network_exposes_graph_views() {
        let g = generators::cycle(5, 2);
        let net = Network::new(&g);
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.edge_count(), 5);
        assert_eq!(net.neighbors(NodeId(0)).len(), 2);
        assert_eq!(net.graph().max_weight(), 2);
    }

    #[test]
    fn index_finds_each_neighbor_in_both_directions() {
        let g = generators::star(5, 3);
        let net = Network::new(&g);
        for leaf in 1..5u32 {
            let out = net.index().best_edge_to(NodeId(0), NodeId(leaf)).expect("adjacent");
            let back = net.index().best_edge_to(NodeId(leaf), NodeId(0)).expect("adjacent");
            assert_eq!(out.edge, back.edge);
            assert_eq!(out.neighbor, NodeId(leaf));
            assert_eq!(back.neighbor, NodeId(0));
        }
        assert!(net.index().best_edge_to(NodeId(1), NodeId(2)).is_none(), "leaves not adjacent");
    }

    #[test]
    fn index_prefers_lightest_edge_and_breaks_ties_like_a_scan() {
        // Parallel edges: the index must agree with the pre-index behaviour,
        // `filter(..).min_by_key(weight)`, which returns the *first* minimal
        // entry of the adjacency list.
        let g = congest_graph::Graph::from_edges(2, [(0, 1, 9), (0, 1, 2), (0, 1, 2), (0, 1, 5)])
            .unwrap();
        let expected = g
            .neighbors(NodeId(0))
            .iter()
            .filter(|a| a.neighbor == NodeId(1))
            .min_by_key(|a| a.weight)
            .unwrap();
        let net = Network::new(&g);
        let indexed = net.index().best_edge_to(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(indexed.edge, expected.edge);
        assert_eq!(indexed.weight, 2);
    }
}
