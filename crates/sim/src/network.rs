//! The simulated network: a view over a [`congest_graph::Graph`] plus a
//! precomputed neighbour→adjacency index for `O(1)` send-path lookups.

use std::collections::HashMap;

use congest_graph::{Adjacency, Graph, NodeId};

/// Precomputed per-node neighbour→adjacency lookup.
///
/// [`crate::NodeCtx::send`] must resolve "the lightest edge to neighbour `u`"
/// on every call; scanning the adjacency list makes that `O(degree)` per send
/// — `Θ(degree²)` per round on a hub that talks to every neighbour (see the
/// E13 star benchmark). This index resolves it in `O(1)` expected time
/// instead, from one `O(m)` build pass at [`Network::new`].
#[derive(Debug, Clone)]
pub(crate) struct NeighborIndex {
    /// `(from, to)` → the adjacency entry [`crate::NodeCtx::send`] picks: the
    /// minimum-weight edge to `to`, resolving weight ties to the *first* such
    /// entry in `from`'s adjacency list (the tie `Iterator::min_by_key`
    /// resolved before the index existed, preserved bit for bit).
    best: HashMap<(u32, u32), Adjacency>,
}

impl NeighborIndex {
    fn build(graph: &Graph) -> NeighborIndex {
        let mut best: HashMap<(u32, u32), Adjacency> =
            HashMap::with_capacity(2 * graph.edge_count() as usize);
        for v in graph.nodes() {
            for adj in graph.neighbors(v) {
                best.entry((v.0, adj.neighbor.0))
                    .and_modify(|cur| {
                        if adj.weight < cur.weight {
                            *cur = *adj;
                        }
                    })
                    .or_insert(*adj);
            }
        }
        NeighborIndex { best }
    }

    /// The adjacency entry for the preferred (lightest) edge from `from` to
    /// its neighbour `to`, or `None` if they are not adjacent.
    pub(crate) fn best_edge_to(&self, from: NodeId, to: NodeId) -> Option<&Adjacency> {
        self.best.get(&(from.0, to.0))
    }
}

/// A simulated network over an undirected weighted graph.
///
/// The network does not own the graph; it provides the topology queries that
/// nodes are allowed to make locally (their own neighbourhood) plus the global
/// parameters every node is assumed to know (`n`, as is standard in CONGEST).
/// Construction also builds the neighbour→adjacency index the send path uses
/// for constant-time neighbour lookups (see `NeighborIndex`).
#[derive(Debug, Clone)]
pub struct Network<'g> {
    graph: &'g Graph,
    index: NeighborIndex,
}

impl<'g> Network<'g> {
    /// Creates a network over `graph` (one `O(m)` pass to build the send
    /// index).
    pub fn new(graph: &'g Graph) -> Self {
        Network { graph, index: NeighborIndex::build(graph) }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.graph.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> u32 {
        self.graph.edge_count()
    }

    /// The local neighbourhood of `v` (the only topology a node can see).
    pub fn neighbors(&self, v: NodeId) -> &'g [Adjacency] {
        self.graph.neighbors(v)
    }

    /// The send-path lookup index.
    pub(crate) fn index(&self) -> &NeighborIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn network_exposes_graph_views() {
        let g = generators::cycle(5, 2);
        let net = Network::new(&g);
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.edge_count(), 5);
        assert_eq!(net.neighbors(NodeId(0)).len(), 2);
        assert_eq!(net.graph().max_weight(), 2);
    }

    #[test]
    fn index_finds_each_neighbor_in_both_directions() {
        let g = generators::star(5, 3);
        let net = Network::new(&g);
        for leaf in 1..5u32 {
            let out = net.index().best_edge_to(NodeId(0), NodeId(leaf)).expect("adjacent");
            let back = net.index().best_edge_to(NodeId(leaf), NodeId(0)).expect("adjacent");
            assert_eq!(out.edge, back.edge);
            assert_eq!(out.neighbor, NodeId(leaf));
            assert_eq!(back.neighbor, NodeId(0));
        }
        assert!(net.index().best_edge_to(NodeId(1), NodeId(2)).is_none(), "leaves not adjacent");
    }

    #[test]
    fn index_prefers_lightest_edge_and_breaks_ties_like_a_scan() {
        // Parallel edges: the index must agree with the pre-index behaviour,
        // `filter(..).min_by_key(weight)`, which returns the *first* minimal
        // entry of the adjacency list.
        let g = congest_graph::Graph::from_edges(2, [(0, 1, 9), (0, 1, 2), (0, 1, 2), (0, 1, 5)])
            .unwrap();
        let expected = g
            .neighbors(NodeId(0))
            .iter()
            .filter(|a| a.neighbor == NodeId(1))
            .min_by_key(|a| a.weight)
            .unwrap();
        let net = Network::new(&g);
        let indexed = net.index().best_edge_to(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(indexed.edge, expected.edge);
        assert_eq!(indexed.weight, 2);
    }
}
