//! Measurement of the complexity quantities the paper's theorems bound:
//! rounds (time), messages, per-edge congestion, and per-node energy.

use congest_graph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// Complexity measurements of one (or several composed) protocol executions.
///
/// * `rounds` — time complexity,
/// * `messages` — message complexity,
/// * `edge_congestion[e]` — messages sent over edge `e` (both directions),
/// * `node_energy[v]` — rounds in which node `v` was awake.
///
/// Metrics compose: [`Metrics::merge_sequential`] models running one phase
/// after another (rounds add), [`Metrics::merge_concurrent`] models phases on
/// disjoint parts of the network running side by side (rounds take the max);
/// in both cases per-edge congestion and per-node energy add, because every
/// message and awake round still happens.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of rounds (time complexity).
    pub rounds: u64,
    /// Total number of messages sent (message complexity).
    pub messages: u64,
    /// Messages per edge, indexed by [`EdgeId`].
    pub edge_congestion: Vec<u64>,
    /// Awake rounds per node, indexed by [`NodeId`].
    pub node_energy: Vec<u64>,
    /// Number of sends that exceeded the per-round edge capacity or message
    /// size limit (only non-zero when `strict_capacity` is off).
    pub capacity_violations: u64,
    /// Number of messages lost to the **sleeping model**: sent, but never
    /// received because the recipient was sleeping or had halted at delivery
    /// time (including sends still undeliverable when the run terminated).
    /// This is a property of the protocol's wake schedule, *not* of fault
    /// injection — messages dropped by a [`crate::FaultPlan`] are counted in
    /// [`Metrics::fault_drops`] instead (deliveries onto a *crashed* node
    /// count there too, since the crash is the fault layer's doing).
    /// Protocols that rely on precise wake schedules should see 0 here for
    /// wavefront traffic; a surprising non-zero value is usually a protocol
    /// bug, which is why the engine counts it instead of dropping messages
    /// silently.
    pub messages_lost: u64,
    /// Number of messages dropped by fault injection: in-transit drops rolled
    /// by the [`crate::FaultPlan`] fate stream, plus deliveries addressed to
    /// a crashed node. Disjoint from [`Metrics::messages_lost`]; both are
    /// subsets of [`Metrics::messages`]. Always 0 without a fault plan.
    pub fault_drops: u64,
    /// Number of messages delayed by fault-injected delivery jitter (each
    /// delayed message is counted once, whatever its extra latency).
    pub fault_delays: u64,
    /// Number of crash events applied by the fault plan.
    pub crashes: u64,
    /// Number of restart events applied by the fault plan.
    pub restarts: u64,
}

impl Metrics {
    /// An all-zero metrics value for a graph with `n` nodes and `m` edges.
    pub fn zero(n: usize, m: usize) -> Metrics {
        Metrics {
            rounds: 0,
            messages: 0,
            edge_congestion: vec![0; m],
            node_energy: vec![0; n],
            capacity_violations: 0,
            messages_lost: 0,
            fault_drops: 0,
            fault_delays: 0,
            crashes: 0,
            restarts: 0,
        }
    }

    /// The maximum congestion over all edges (0 for an edgeless graph).
    pub fn max_congestion(&self) -> u64 {
        self.edge_congestion.iter().copied().max().unwrap_or(0)
    }

    /// The maximum energy over all nodes — the paper's *energy complexity*.
    pub fn max_energy(&self) -> u64 {
        self.node_energy.iter().copied().max().unwrap_or(0)
    }

    /// The mean energy over all nodes (node-averaged awake complexity).
    pub fn mean_energy(&self) -> f64 {
        if self.node_energy.is_empty() {
            0.0
        } else {
            self.node_energy.iter().sum::<u64>() as f64 / self.node_energy.len() as f64
        }
    }

    /// The mean congestion over all edges.
    pub fn mean_congestion(&self) -> f64 {
        if self.edge_congestion.is_empty() {
            0.0
        } else {
            self.edge_congestion.iter().sum::<u64>() as f64 / self.edge_congestion.len() as f64
        }
    }

    /// Accumulates `other` as a phase that runs *after* `self` (sequential
    /// composition): rounds add, congestion and energy add componentwise.
    ///
    /// # Panics
    ///
    /// Panics if the two metrics are for different graph sizes.
    pub fn merge_sequential(&mut self, other: &Metrics) {
        assert_eq!(self.edge_congestion.len(), other.edge_congestion.len());
        assert_eq!(self.node_energy.len(), other.node_energy.len());
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.capacity_violations += other.capacity_violations;
        self.messages_lost += other.messages_lost;
        self.fault_drops += other.fault_drops;
        self.fault_delays += other.fault_delays;
        self.crashes += other.crashes;
        self.restarts += other.restarts;
        for (a, b) in self.edge_congestion.iter_mut().zip(&other.edge_congestion) {
            *a += b;
        }
        for (a, b) in self.node_energy.iter_mut().zip(&other.node_energy) {
            *a += b;
        }
    }

    /// Accumulates `other` as a phase that runs *concurrently* with `self` on
    /// a disjoint part of the network: rounds take the maximum, congestion and
    /// energy add componentwise (they touch disjoint edges/nodes, so this is
    /// exact for genuinely disjoint phases).
    ///
    /// # Panics
    ///
    /// Panics if the two metrics are for different graph sizes.
    pub fn merge_concurrent(&mut self, other: &Metrics) {
        assert_eq!(self.edge_congestion.len(), other.edge_congestion.len());
        assert_eq!(self.node_energy.len(), other.node_energy.len());
        self.rounds = self.rounds.max(other.rounds);
        self.messages += other.messages;
        self.capacity_violations += other.capacity_violations;
        self.messages_lost += other.messages_lost;
        self.fault_drops += other.fault_drops;
        self.fault_delays += other.fault_delays;
        self.crashes += other.crashes;
        self.restarts += other.restarts;
        for (a, b) in self.edge_congestion.iter_mut().zip(&other.edge_congestion) {
            *a += b;
        }
        for (a, b) in self.node_energy.iter_mut().zip(&other.node_energy) {
            *a += b;
        }
    }

    /// Re-attributes metrics measured on a subgraph back to the original
    /// graph: `node_map[i]` / `edge_map[j]` give the original ids of subgraph
    /// node `i` / edge `j`, and `n`, `m` are the original graph's sizes.
    ///
    /// # Panics
    ///
    /// Panics if the maps do not match the metric vector lengths.
    pub fn remap(&self, node_map: &[NodeId], edge_map: &[EdgeId], n: usize, m: usize) -> Metrics {
        assert_eq!(node_map.len(), self.node_energy.len(), "node map length mismatch");
        assert_eq!(edge_map.len(), self.edge_congestion.len(), "edge map length mismatch");
        let mut out = Metrics::zero(n, m);
        out.rounds = self.rounds;
        out.messages = self.messages;
        out.capacity_violations = self.capacity_violations;
        out.messages_lost = self.messages_lost;
        out.fault_drops = self.fault_drops;
        out.fault_delays = self.fault_delays;
        out.crashes = self.crashes;
        out.restarts = self.restarts;
        for (i, &orig) in node_map.iter().enumerate() {
            out.node_energy[orig.index()] += self.node_energy[i];
        }
        for (j, &orig) in edge_map.iter().enumerate() {
            out.edge_congestion[orig.index()] += self.edge_congestion[j];
        }
        out
    }

    /// Multiplies the time and energy accounting by `factor`. Used to charge
    /// "megarounds" (Section 3.1.3 of the paper): when `k` subroutines share
    /// an edge, each simulated round stands for `k` model rounds and an awake
    /// node is awake for all `k` of them.
    pub fn charge_megaround(&mut self, factor: u64) {
        self.rounds = self.rounds.saturating_mul(factor);
        for e in &mut self.node_energy {
            *e = e.saturating_mul(factor);
        }
    }
}

/// A per-round, per-edge usage trace of one protocol execution, used by the
/// random-delay scheduler to compute the makespan of running many instances
/// concurrently (the paper's APSP construction).
///
/// `rounds[r]` lists `(edge, messages_sent_over_edge_in_round_r)` pairs,
/// sparsely (edges with zero usage are omitted).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeUsageTrace {
    /// Sparse per-round edge usage.
    pub rounds: Vec<Vec<(EdgeId, u32)>>,
}

impl EdgeUsageTrace {
    /// Number of rounds covered by the trace.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Returns `true` if the trace covers no rounds.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Total messages in the trace.
    pub fn total_messages(&self) -> u64 {
        self.rounds.iter().flatten().map(|&(_, c)| c as u64).sum()
    }

    /// The maximum number of messages any single edge carries over the whole
    /// trace (the instance's congestion).
    pub fn max_edge_total(&self) -> u64 {
        let mut totals = std::collections::BTreeMap::new();
        for round in &self.rounds {
            for &(e, c) in round {
                *totals.entry(e).or_insert(0u64) += c as u64;
            }
        }
        totals.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, m: usize, rounds: u64) -> Metrics {
        let mut x = Metrics::zero(n, m);
        x.rounds = rounds;
        x.messages = 10;
        for e in x.edge_congestion.iter_mut() {
            *e = 2;
        }
        for v in x.node_energy.iter_mut() {
            *v = 3;
        }
        x
    }

    #[test]
    fn zero_metrics() {
        let z = Metrics::zero(3, 4);
        assert_eq!(z.max_congestion(), 0);
        assert_eq!(z.max_energy(), 0);
        assert_eq!(z.mean_energy(), 0.0);
        assert_eq!(z.mean_congestion(), 0.0);
    }

    #[test]
    fn sequential_merge_adds_rounds() {
        let mut a = sample(2, 3, 5);
        a.messages_lost = 1;
        a.fault_drops = 4;
        a.crashes = 1;
        let mut b = sample(2, 3, 7);
        b.messages_lost = 2;
        b.fault_drops = 5;
        b.fault_delays = 6;
        b.restarts = 2;
        a.merge_sequential(&b);
        assert_eq!(a.rounds, 12);
        assert_eq!(a.messages, 20);
        assert_eq!(a.max_congestion(), 4);
        assert_eq!(a.max_energy(), 6);
        assert_eq!(a.messages_lost, 3);
        assert_eq!(a.fault_drops, 9);
        assert_eq!(a.fault_delays, 6);
        assert_eq!(a.crashes, 1);
        assert_eq!(a.restarts, 2);
    }

    #[test]
    fn concurrent_merge_takes_max_rounds() {
        let mut a = sample(2, 3, 5);
        let b = sample(2, 3, 7);
        a.merge_concurrent(&b);
        assert_eq!(a.rounds, 7);
        assert_eq!(a.messages, 20);
        assert_eq!(a.max_energy(), 6);
    }

    #[test]
    #[should_panic]
    fn merging_mismatched_sizes_panics() {
        let mut a = sample(2, 3, 5);
        let b = sample(3, 3, 5);
        a.merge_sequential(&b);
    }

    #[test]
    fn remap_attributes_to_original_ids() {
        let mut sub = Metrics::zero(2, 1);
        sub.rounds = 4;
        sub.messages = 6;
        sub.node_energy = vec![5, 7];
        sub.edge_congestion = vec![9];
        let out = sub.remap(&[NodeId(3), NodeId(1)], &[EdgeId(2)], 5, 4);
        assert_eq!(out.node_energy, vec![0, 7, 0, 5, 0]);
        assert_eq!(out.edge_congestion, vec![0, 0, 9, 0]);
        assert_eq!(out.rounds, 4);
        assert_eq!(out.messages, 6);
    }

    #[test]
    fn megaround_charging_scales_time_and_energy_not_messages() {
        let mut a = sample(2, 2, 5);
        a.charge_megaround(3);
        assert_eq!(a.rounds, 15);
        assert_eq!(a.max_energy(), 9);
        assert_eq!(a.messages, 10);
        assert_eq!(a.max_congestion(), 2);
    }

    #[test]
    fn trace_statistics() {
        let t = EdgeUsageTrace {
            rounds: vec![vec![(EdgeId(0), 1), (EdgeId(1), 2)], vec![], vec![(EdgeId(0), 3)]],
        };
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.total_messages(), 6);
        assert_eq!(t.max_edge_total(), 4);
        assert!(EdgeUsageTrace::default().is_empty());
    }
}
