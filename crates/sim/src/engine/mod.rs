//! The round-driving engine of the simulator.
//!
//! The engine is built around an *active-set scheduler* so that simulation
//! cost scales with awake work, not `n · rounds`:
//!
//! * `active_set` — a wake bucket queue; each round touches only the nodes
//!   scheduled to run in it, and sleeping nodes cost nothing.
//! * `delivery` — a flat, reusable message arena replacing per-round per-node
//!   inbox allocation; rebuilt with a counting pass in `O(deliveries)`.
//! * `capacity` — dense per-edge-direction CONGEST capacity counters reset
//!   through a touched-list.
//!
//! Together with the inline-payload [`Message`] (see [`crate::Words`]) and
//! the engine-owned, round-reused outbox that [`NodeCtx`] borrows, the whole
//! message path — send, in-flight, delivery — is allocation-free in steady
//! state; `tests/alloc_regression.rs` pins that with a counting global
//! allocator.
//! * `reference` — the retained naive `O(n)`-per-round loop
//!   ([`Engine::run_reference`]), the semantic oracle for differential tests
//!   and the baseline of the E11 engine-throughput experiment (see
//!   `EXPERIMENTS.md`).
//! * `sharded` — the multi-threaded execution mode behind
//!   [`crate::SimConfig::threads`], bit-identical to the sequential path at
//!   every thread count. See the determinism argument below.
//!
//! # Sharded execution and the shard-merge determinism argument
//!
//! With `threads = S > 1`, [`Engine::run`] partitions the node ids into `S`
//! contiguous shards. Each shard owns a slice of the protocol states, its own
//! range-restricted delivery arena, and a private outbox; a persistent worker
//! steps the shard's awake nodes each round, and the main thread merges the
//! shard outboxes *in fixed shard order* before doing all global accounting
//! itself. The outcome is byte-for-byte the sequential engine's:
//!
//! * **Execution order.** The awake list is globally sorted by node id, and
//!   shards are contiguous id ranges, so a shard's segment of it is a
//!   contiguous run. Concatenating the shard outboxes in shard order is
//!   therefore exactly the node-id-ordered send stream the sequential loop
//!   produces — for *any* S. Nodes only interact through messages (delivered
//!   a round later) and never observe intra-round timing, so stepping them
//!   concurrently is unobservable.
//! * **Delivery order.** Each recipient's inbox is the in-flight stream
//!   filtered to it, in stream order. Workers read the *shared* stream and
//!   filter to their own range without reordering, so every inbox is the
//!   same slice of the same stream the sequential arena builds. Receptivity
//!   is a read-only query against start-of-round scheduler state.
//! * **Capacity charging and strict errors.** All per-send accounting
//!   (bandwidth check, per-edge-direction capacity counters, congestion,
//!   traces) happens on the main thread during the merge, walking the merged
//!   stream — i.e. in sequential send order — so counters take identical
//!   values and the *first* violating send in strict mode produces the
//!   identical error. A worker-side protocol panic is re-raised at the
//!   panicking node's position in merge order, after the completed sends of
//!   earlier nodes were accounted and with the panicking node's partial
//!   sends discarded — again matching the sequential loop.
//! * **Fault fates.** A message's drop/jitter fate is a pure function of
//!   `(edge, sender, send round)` (see [`crate::fault`]) — no RNG state is
//!   threaded through delivery — so applying fates batch-per-shard during
//!   the merge rolls the identical fates in the identical order, and the
//!   jitter buffer fills in the same order too. Crash/restart churn and all
//!   scheduler mutation (halt/reschedule/revive) stay on the main thread.
//!
//! The hot path takes no locks: each worker locks its own uncontended shard
//! mutex and a shared read-write lock once per round (both futex-based, no
//! allocation), with two barriers delimiting the parallel section. Workers
//! are spawned once per run, so steady-state rounds allocate nothing — the
//! alloc-regression test covers the sharded path too.

mod active_set;
mod capacity;
mod delivery;
mod reference;
mod sharded;

use congest_graph::{EdgeId, Graph, NodeId};

use crate::fault::{FaultAction, FaultRuntime};
use crate::message::InFlight;
use crate::metrics::{EdgeUsageTrace, Metrics};
use crate::node::NodeCtx;
use crate::{Network, Protocol, SimConfig, SimError};

use active_set::ActiveSet;
use capacity::CapacityTracker;
use delivery::DeliveryArena;

/// The result of running a protocol to completion.
#[derive(Debug, Clone)]
pub struct RunOutcome<P> {
    /// The final per-node protocol states, indexed by [`NodeId`]. Protocols
    /// expose their outputs (distances, cluster ids, …) as fields of their
    /// state type; the caller reads them from here.
    pub states: Vec<P>,
    /// The complexity measurements of the execution.
    pub metrics: Metrics,
    /// The per-round edge usage trace, if [`SimConfig::record_edge_trace`]
    /// was enabled.
    pub trace: Option<EdgeUsageTrace>,
}

/// The simulation engine: drives per-node [`Protocol`] state machines through
/// synchronous rounds over a [`Network`], enforcing the CONGEST and sleeping
/// model rules and recording [`Metrics`].
#[derive(Debug, Clone)]
pub struct Engine<'g> {
    network: Network<'g>,
    config: SimConfig,
}

impl<'g> Engine<'g> {
    /// Creates an engine over the given graph with the given model
    /// configuration.
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        Engine { network: Network::new(graph), config }
    }

    /// The network this engine simulates.
    pub fn network(&self) -> &Network<'g> {
        &self.network
    }

    /// The model configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the protocol produced by `factory` (one instance per node) until
    /// every node has halted.
    ///
    /// Round 0 is the initialization round: every node is awake and its
    /// [`Protocol::init`] runs. From round 1 on, [`Protocol::on_round`] runs
    /// for every awake, non-halted node.
    ///
    /// The execution cost of a round is proportional to the number of awake
    /// nodes plus the number of in-flight messages — sleeping nodes cost
    /// zero — so low-energy protocols simulate in time proportional to their
    /// total awake work rather than `n · rounds`. The semantics are those of
    /// the naive sweep ([`Engine::run_reference`]), bit for bit.
    ///
    /// With [`crate::SimConfig::threads`] resolving to more than one worker
    /// (see [`crate::SimConfig::resolved_threads`]), awake nodes are stepped
    /// in parallel across contiguous node-id shards; results stay
    /// bit-identical at every thread count (see the module docs for the
    /// shard-merge determinism argument).
    ///
    /// # Errors
    ///
    /// * [`SimError::RoundLimitExceeded`] if the protocol does not halt within
    ///   the configured number of rounds.
    /// * [`SimError::EdgeCapacityExceeded`] / [`SimError::MessageTooLarge`]
    ///   if a node violates the CONGEST constraints and `strict_capacity` is
    ///   enabled.
    pub fn run<P, F>(&self, factory: F) -> Result<RunOutcome<P>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId) -> P,
    {
        let n = self.network.graph().node_count() as usize;
        // More shards than nodes would just idle; an empty graph still needs
        // one (sequential) pass to produce its trivial outcome.
        let shards = self.config.resolved_threads().min(n.max(1));
        if shards <= 1 {
            self.run_seq(factory)
        } else {
            sharded::run_sharded(self, factory, shards)
        }
    }

    /// The sequential (single-threaded) execution path of [`Engine::run`].
    fn run_seq<P, F>(&self, mut factory: F) -> Result<RunOutcome<P>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId) -> P,
    {
        let graph = self.network.graph();
        let n = graph.node_count() as usize;
        let m = graph.edge_count() as usize;
        let mut states: Vec<P> = graph.nodes().map(&mut factory).collect();
        let mut active = ActiveSet::new(n);
        // The fault layer: `None` for the empty plan, which keeps every hot
        // path below on its original (allocation-free) fault-free branch.
        let mut faults = FaultRuntime::new(&self.config.faults, n, m);
        if faults.is_some() {
            active.enable_fault_filtering();
        }
        let mut arena = DeliveryArena::new(n);
        let mut capacity = CapacityTracker::new(m);
        let mut metrics = Metrics::zero(n, m);
        let mut trace =
            if self.config.record_edge_trace { Some(EdgeUsageTrace::default()) } else { None };

        // Double-buffered in-flight messages: `incoming` was sent last round
        // and is delivered now; `outgoing` is the round's shared outbox that
        // every awake node's `NodeCtx` appends into. Both keep their capacity
        // across rounds, so the steady-state message path never allocates.
        let mut incoming: Vec<InFlight> = Vec::new();
        let mut outgoing: Vec<InFlight> = Vec::new();
        let mut awake: Vec<NodeId> = Vec::new();
        let mut this_round_trace: Vec<(EdgeId, u32)> = Vec::new();
        let mut round: u64 = 0;
        let max_words = self.config.effective_max_words();

        loop {
            if round > self.config.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                    unhalted_nodes: active.unhalted(),
                });
            }

            // Apply the churn events of this round before anything else: a
            // crash takes effect at the start of its round (the node never
            // runs in it), and a restart puts the node — with a fresh state —
            // into this round's wake bucket.
            if let Some(rt) = faults.as_mut() {
                while let Some(ev) = rt.next_event(round) {
                    match ev.action {
                        FaultAction::Crash { permanent } => {
                            metrics.crashes += 1;
                            rt.crashed[ev.node.index()] = true;
                            active.set_down(ev.node);
                            if permanent {
                                active.halt(ev.node);
                            }
                        }
                        FaultAction::Restart => {
                            metrics.restarts += 1;
                            rt.crashed[ev.node.index()] = false;
                            rt.reinit[ev.node.index()] = true;
                            states[ev.node.index()] = factory(ev.node);
                            active.revive(ev.node, round);
                        }
                    }
                }
            }

            // The nodes that run this round, in id order. Taken before
            // delivery, which reads start-of-round receptivity.
            active.take_awake(round, &mut awake);

            // Deliver messages sent last round. Messages to sleeping or
            // halted nodes are lost (the defining property of the sleeping
            // model) — and counted, so protocol bugs cannot hide in silence.
            // Under a fault plan, jitter-delayed messages due this round
            // join the inbox stream first, and deliveries onto a crashed
            // node are attributed to the fault layer instead.
            if let Some(rt) = faults.as_mut() {
                rt.merge_due(round, &mut incoming);
                let crashed_hits =
                    incoming.iter().filter(|f| rt.crashed[f.to.index()]).count() as u64;
                let lost = arena.build(&mut incoming, |v| {
                    active.is_receptive(v, round) && !rt.crashed[v.index()]
                });
                metrics.fault_drops += crashed_hits;
                metrics.messages_lost += lost - crashed_hits;
            } else {
                metrics.messages_lost +=
                    arena.build(&mut incoming, |v| active.is_receptive(v, round));
            }

            capacity.reset();
            this_round_trace.clear();
            for &v in &awake {
                metrics.node_energy[v.index()] += 1;
                let sends_from = outgoing.len();
                let mut ctx = NodeCtx::new(v, round, &self.network, &mut outgoing);
                // A node freshly revived by a fault-injected restart re-runs
                // `init` (ignoring any inbox — both engines agree on this).
                let run_init = round == 0
                    || faults.as_mut().is_some_and(|rt| std::mem::take(&mut rt.reinit[v.index()]));
                if run_init {
                    states[v.index()].init(&mut ctx);
                } else {
                    states[v.index()].on_round(&mut ctx, arena.inbox(v));
                }
                let (wake_at, halt) = (ctx.wake_at, ctx.halt);
                // Validate and account this node's sends in place.
                for flight in &outgoing[sends_from..] {
                    let edge = flight.msg.edge;
                    if flight.sent_words > max_words {
                        if self.config.strict_capacity {
                            return Err(SimError::MessageTooLarge {
                                node: v,
                                words: flight.sent_words,
                                max_words,
                            });
                        }
                        metrics.capacity_violations += 1;
                    }
                    let used = capacity.record(graph, edge, v);
                    if used > self.config.edge_capacity {
                        if self.config.strict_capacity {
                            return Err(SimError::EdgeCapacityExceeded {
                                node: v,
                                edge,
                                round,
                                capacity: self.config.edge_capacity,
                            });
                        }
                        metrics.capacity_violations += 1;
                    }
                    metrics.messages += 1;
                    metrics.edge_congestion[edge.index()] += 1;
                    if trace.is_some() {
                        this_round_trace.push((edge, 1));
                    }
                }
                // Roll the fate of this node's sends: drops vanish (counted),
                // jittered messages move to the pending buffer. This runs
                // after accounting — a dropped message was still *sent*.
                if let Some(rt) = faults.as_mut() {
                    if rt.has_message_faults() {
                        rt.apply_message_faults(&mut metrics, round, &mut outgoing, sends_from);
                    }
                }
                // Process sleep/halt requests.
                if halt {
                    active.halt(v);
                } else {
                    active.reschedule(v, round, wake_at.unwrap_or(round + 1));
                }
            }

            if let Some(t) = trace.as_mut() {
                // Coalesce duplicate edges in this round's trace entry; the
                // BTreeMap iterates in edge order, so the entry comes out
                // sorted with no hasher order anywhere near the trace.
                let mut merged: std::collections::BTreeMap<EdgeId, u32> =
                    std::collections::BTreeMap::new();
                for &(e, c) in &this_round_trace {
                    *merged.entry(e).or_insert(0) += c;
                }
                t.rounds.push(merged.into_iter().collect());
            }

            // Termination check: all halted and nothing in flight. Whatever
            // was sent this round — including jittered messages still held in
            // the fault layer — can never be delivered: count it as lost.
            if active.all_halted() {
                metrics.messages_lost += outgoing.len() as u64;
                if let Some(rt) = faults.as_ref() {
                    metrics.messages_lost += rt.pending_count();
                }
                metrics.rounds = round + 1;
                return Ok(RunOutcome { states, metrics, trace });
            }

            // Quiescence fast-forward: nobody ran this round (so nothing was
            // sent either) — jump straight to the next scheduled wake-up. The
            // skipped rounds still exist in the model but cost nothing. Under
            // a fault plan the next event is the earliest of a wake-up, a
            // pending jittered delivery, and a churn event — and the bucket
            // shortcut `next_wake` is unsound with churn's stale entries, so
            // the authoritative O(n) scan replaces it.
            if outgoing.is_empty() && awake.is_empty() && self.config.fast_forward_idle {
                let target = if let Some(rt) = faults.as_ref() {
                    [active.next_wake_scan(), rt.next_pending_round(), rt.next_event_round()]
                        .into_iter()
                        .flatten()
                        .min()
                } else {
                    active.next_wake()
                };
                if let Some(w) = target.filter(|&w| w > round) {
                    if let Some(t) = trace.as_mut() {
                        for _ in round + 1..w {
                            t.rounds.push(Vec::new());
                        }
                    }
                    round = w;
                    continue;
                }
            }
            // Without fast-forward we step one round at a time; an empty
            // round costs O(1) (a bucket-queue miss). If nothing can ever
            // happen again, the round limit catches it.

            incoming.clear();
            std::mem::swap(&mut incoming, &mut outgoing);
            round += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Message;
    use congest_graph::{generators, Distance};

    /// Single-source BFS where every node halts once its distance stabilizes
    /// for `n` rounds. Used to exercise the engine end to end.
    #[derive(Debug, Clone)]
    struct SimpleBfs {
        is_source: bool,
        dist: Distance,
        quiet: u32,
    }

    impl Protocol for SimpleBfs {
        fn init(&mut self, ctx: &mut NodeCtx<'_>) {
            if self.is_source {
                self.dist = Distance::ZERO;
                ctx.broadcast(&[0]);
            }
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
            let mut improved = false;
            for msg in inbox {
                let cand = Distance::Finite(msg.words[0] + 1);
                if cand < self.dist {
                    self.dist = cand;
                    improved = true;
                }
            }
            if improved {
                self.quiet = 0;
                ctx.broadcast(&[self.dist.expect_finite()]);
            } else {
                self.quiet += 1;
                if self.quiet > ctx.node_count() {
                    ctx.halt();
                }
            }
        }
    }

    fn run_bfs(g: &Graph, source: NodeId) -> RunOutcome<SimpleBfs> {
        Engine::new(g, SimConfig::default())
            .run(|id| SimpleBfs { is_source: id == source, dist: Distance::Infinite, quiet: 0 })
            .expect("bfs should run within limits")
    }

    #[test]
    fn bfs_protocol_matches_sequential_bfs() {
        let g = generators::random_connected(40, 60, 11);
        let run = run_bfs(&g, NodeId(0));
        let expected = congest_graph::sequential::bfs(&g, &[NodeId(0)]);
        for v in g.nodes() {
            assert_eq!(run.states[v.index()].dist, expected.distance(v));
        }
        // Time is at least the eccentricity of the source.
        let ecc = congest_graph::properties::hop_eccentricity(&g, NodeId(0));
        assert!(run.metrics.rounds >= ecc);
    }

    #[test]
    fn energy_counts_awake_rounds_for_all_nodes() {
        let g = generators::path(10, 1);
        let run = run_bfs(&g, NodeId(0));
        // Nobody sleeps in SimpleBfs, so every node's energy equals the rounds
        // it was alive before halting, which is > the path length.
        assert!(run.metrics.max_energy() >= 9);
        assert!(run.metrics.node_energy.iter().all(|&e| e > 0));
    }

    #[test]
    fn congestion_counts_messages_per_edge() {
        let g = generators::path(4, 1);
        let run = run_bfs(&g, NodeId(0));
        assert_eq!(run.metrics.messages, run.metrics.edge_congestion.iter().sum::<u64>());
        assert!(run.metrics.max_congestion() >= 1);
    }

    /// A protocol in which nodes sleep most of the time: node v wakes only at
    /// round 10 * (v+1), does nothing, and halts.
    #[derive(Debug, Clone)]
    struct Sleeper {
        woke_at: Option<u64>,
    }

    impl Protocol for Sleeper {
        fn init(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.sleep_until(10 * (ctx.node_id().0 as u64 + 1));
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &[Message]) {
            self.woke_at = Some(ctx.round());
            ctx.halt();
        }
    }

    #[test]
    fn sleeping_nodes_cost_no_energy_and_fast_forward_works() {
        let g = generators::path(5, 1);
        let run = Engine::new(&g, SimConfig::default()).run(|_| Sleeper { woke_at: None }).unwrap();
        for v in g.nodes() {
            assert_eq!(run.states[v.index()].woke_at, Some(10 * (v.0 as u64 + 1)));
            // Awake in round 0 (init) and in its single wake round.
            assert_eq!(run.metrics.node_energy[v.index()], 2);
        }
        // Total time is dominated by the last sleeper (round 50), even though
        // almost nothing was simulated.
        assert!(run.metrics.rounds >= 50);
        assert_eq!(run.metrics.messages, 0);
    }

    /// Messages sent to sleeping nodes must be lost.
    #[derive(Debug, Clone)]
    struct LossyReceiver {
        got: u32,
        is_sender: bool,
    }

    impl Protocol for LossyReceiver {
        fn init(&mut self, ctx: &mut NodeCtx<'_>) {
            if self.is_sender {
                // Send in rounds 0 and 5 (delivered in rounds 1 and 6).
                ctx.broadcast(&[1]);
            } else {
                // Sleep through round 1 (losing that message), awake at 6.
                ctx.sleep_until(6);
            }
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
            self.got += inbox.len() as u32;
            if self.is_sender {
                if ctx.round() == 5 {
                    ctx.broadcast(&[2]);
                }
                if ctx.round() >= 7 {
                    ctx.halt();
                }
            } else {
                ctx.halt();
            }
        }
    }

    #[test]
    fn messages_to_sleeping_nodes_are_lost_and_counted() {
        let g = generators::path(2, 1);
        let run = Engine::new(&g, SimConfig::default())
            .run(|id| LossyReceiver { got: 0, is_sender: id == NodeId(0) })
            .unwrap();
        // Node 1 slept through the first message and received only the second.
        assert_eq!(run.states[1].got, 1);
        // Every message except the one delivered in round 6 was dropped on a
        // sleeping or halted endpoint, and the drops are observable.
        assert_eq!(run.metrics.messages_lost, run.metrics.messages - 1);
        assert!(run.metrics.messages_lost >= 1);
    }

    /// A protocol that spams an edge beyond capacity.
    #[derive(Debug, Clone)]
    struct Spammer;

    impl Protocol for Spammer {
        fn init(&mut self, ctx: &mut NodeCtx<'_>) {
            let first = ctx.neighbors().first().copied();
            if let Some(adj) = first {
                ctx.send_on_edge(adj.edge, &[1]);
                ctx.send_on_edge(adj.edge, &[2]);
            }
            ctx.halt();
        }
        fn on_round(&mut self, _ctx: &mut NodeCtx<'_>, _inbox: &[Message]) {}
    }

    #[test]
    fn strict_capacity_rejects_overload() {
        let g = generators::path(2, 1);
        let err = Engine::new(&g, SimConfig::default()).run(|_| Spammer).unwrap_err();
        assert!(matches!(err, SimError::EdgeCapacityExceeded { .. }));
    }

    #[test]
    fn lenient_capacity_counts_violations() {
        let g = generators::path(2, 1);
        let cfg = SimConfig { strict_capacity: false, ..SimConfig::default() };
        let run = Engine::new(&g, cfg).run(|_| Spammer).unwrap();
        assert_eq!(run.metrics.capacity_violations, 2);
    }

    #[test]
    fn capacity_two_allows_two_messages() {
        let g = generators::path(2, 1);
        let cfg = SimConfig::default().with_edge_capacity(2);
        let run = Engine::new(&g, cfg).run(|_| Spammer).unwrap();
        assert_eq!(run.metrics.capacity_violations, 0);
        assert_eq!(run.metrics.messages, 4); // both endpoints spam once
    }

    /// A protocol that never halts.
    #[derive(Debug, Clone)]
    struct Immortal;

    impl Protocol for Immortal {
        fn init(&mut self, _ctx: &mut NodeCtx<'_>) {}
        fn on_round(&mut self, _ctx: &mut NodeCtx<'_>, _inbox: &[Message]) {}
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = generators::path(3, 1);
        let cfg = SimConfig::default().with_max_rounds(50);
        let err = Engine::new(&g, cfg).run(|_| Immortal).unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { limit: 50, unhalted_nodes: 3 }));
    }

    #[test]
    fn oversized_message_is_rejected() {
        #[derive(Debug, Clone)]
        struct BigTalker;
        impl Protocol for BigTalker {
            fn init(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.broadcast(&[0; 16]);
                ctx.halt();
            }
            fn on_round(&mut self, _ctx: &mut NodeCtx<'_>, _inbox: &[Message]) {}
        }
        let g = generators::path(2, 1);
        let err = Engine::new(&g, SimConfig::default()).run(|_| BigTalker).unwrap_err();
        assert!(matches!(err, SimError::MessageTooLarge { words: 16, .. }));
    }

    #[test]
    fn edge_trace_is_recorded_when_enabled() {
        let g = generators::path(4, 1);
        let cfg = SimConfig::default().with_edge_trace(true);
        let source = NodeId(0);
        let run = Engine::new(&g, cfg)
            .run(|id| SimpleBfs { is_source: id == source, dist: Distance::Infinite, quiet: 0 })
            .unwrap();
        let trace = run.trace.expect("trace requested");
        assert_eq!(trace.total_messages(), run.metrics.messages);
        assert_eq!(trace.max_edge_total(), run.metrics.max_congestion());
        assert_eq!(trace.len() as u64, run.metrics.rounds);
    }

    // --- Active-set vs reference engine: fixed correctness matrix ----------
    //
    // The proptest harness in `tests/engine_equivalence.rs` covers randomized
    // protocols; these pin the equivalence on every protocol in this file.

    fn assert_equivalent<P, F>(g: &Graph, cfg: SimConfig, factory: F, check: impl Fn(&P, &P))
    where
        P: Protocol,
        F: Fn(NodeId) -> P + Copy,
    {
        let fast = Engine::new(g, cfg.clone()).run(factory).expect("active-set run");
        let slow = Engine::new(g, cfg).run_reference(factory).expect("reference run");
        assert_eq!(fast.metrics, slow.metrics, "metrics must be identical");
        assert_eq!(fast.trace, slow.trace, "traces must be identical");
        for (a, b) in fast.states.iter().zip(&slow.states) {
            check(a, b);
        }
    }

    #[test]
    fn engines_agree_on_simple_bfs() {
        let g = generators::random_connected(30, 50, 3);
        let cfg = SimConfig::default().with_edge_trace(true);
        assert_equivalent(
            &g,
            cfg,
            |id| SimpleBfs { is_source: id == NodeId(4), dist: Distance::Infinite, quiet: 0 },
            |a: &SimpleBfs, b: &SimpleBfs| assert_eq!(a.dist, b.dist),
        );
    }

    #[test]
    fn engines_agree_on_sleepers() {
        let g = generators::path(7, 1);
        assert_equivalent(
            &g,
            SimConfig::default(),
            |_| Sleeper { woke_at: None },
            |a: &Sleeper, b: &Sleeper| assert_eq!(a.woke_at, b.woke_at),
        );
    }

    #[test]
    fn engines_agree_on_lossy_receivers() {
        let g = generators::star(6, 1);
        assert_equivalent(
            &g,
            SimConfig::default(),
            |id| LossyReceiver { got: 0, is_sender: id == NodeId(0) },
            |a: &LossyReceiver, b: &LossyReceiver| assert_eq!(a.got, b.got),
        );
    }

    #[test]
    fn engines_agree_on_lenient_spammers() {
        let g = generators::cycle(5, 1);
        let cfg = SimConfig { strict_capacity: false, ..SimConfig::default() };
        assert_equivalent(&g, cfg, |_| Spammer, |_: &Spammer, _: &Spammer| {});
    }

    #[test]
    fn engines_agree_without_fast_forward() {
        let g = generators::path(4, 1);
        let cfg = SimConfig { fast_forward_idle: false, ..SimConfig::default() };
        assert_equivalent(
            &g,
            cfg,
            |_| Sleeper { woke_at: None },
            |a: &Sleeper, b: &Sleeper| assert_eq!(a.woke_at, b.woke_at),
        );
    }

    #[test]
    fn engines_agree_on_errors() {
        let g = generators::path(3, 1);
        let cfg = SimConfig::default().with_max_rounds(50);
        let fast = Engine::new(&g, cfg.clone()).run(|_| Immortal).unwrap_err();
        let slow = Engine::new(&g, cfg).run_reference(|_| Immortal).unwrap_err();
        assert_eq!(fast, slow);
    }
}
