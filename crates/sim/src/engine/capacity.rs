//! Per-round CONGEST edge-capacity accounting.
//!
//! The reference engine tracks per-round edge usage in a
//! `HashMap<(EdgeId, NodeId), u32>`, paying hashing and allocation on the hot
//! send path. This tracker instead keeps one dense counter per *edge
//! direction* (`2m` counters, allocated once) and resets only the entries
//! actually used, via a touched-list — `O(sends)` per round.

use congest_graph::{EdgeId, Graph, NodeId};

/// Dense per-edge-direction send counters for one round.
#[derive(Debug, Clone)]
pub(crate) struct CapacityTracker {
    /// `counts[2e + d]` = messages sent over edge `e` in direction `d` this
    /// round, where `d = 0` means "sent by `edge.u`" and `d = 1` "by `edge.v`".
    counts: Vec<u32>,
    /// Slots written this round, for `O(touched)` reset.
    touched: Vec<u32>,
}

impl CapacityTracker {
    /// Creates a tracker for a graph with `m` edges.
    pub(crate) fn new(m: usize) -> Self {
        CapacityTracker { counts: vec![0; 2 * m], touched: Vec::new() }
    }

    /// Clears the counts touched in the previous round.
    pub(crate) fn reset(&mut self) {
        for slot in self.touched.drain(..) {
            self.counts[slot as usize] = 0;
        }
    }

    /// Records one send by `from` over `edge` and returns the direction's
    /// total so far this round (including this send).
    ///
    /// `from` must be an endpoint of `edge`; the node context guarantees this
    /// (sends are validated against the sender's adjacency list).
    pub(crate) fn record(&mut self, g: &Graph, edge: EdgeId, from: NodeId) -> u32 {
        let e = g.edge(edge);
        debug_assert!(from == e.u || from == e.v, "sender must be an endpoint");
        let dir = u32::from(from != e.u);
        let slot = 2 * edge.0 + dir;
        let count = &mut self.counts[slot as usize];
        if *count == 0 {
            self.touched.push(slot);
        }
        *count += 1;
        *count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn directions_are_counted_independently() {
        let g = generators::path(3, 1); // edges: 0-1 (e0), 1-2 (e1)
        let mut t = CapacityTracker::new(g.edge_count() as usize);
        assert_eq!(t.record(&g, EdgeId(0), NodeId(0)), 1);
        assert_eq!(t.record(&g, EdgeId(0), NodeId(0)), 2);
        assert_eq!(t.record(&g, EdgeId(0), NodeId(1)), 1, "reverse direction is separate");
        assert_eq!(t.record(&g, EdgeId(1), NodeId(1)), 1);
    }

    #[test]
    fn reset_clears_only_touched_slots_and_is_reusable() {
        let g = generators::path(3, 1);
        let mut t = CapacityTracker::new(g.edge_count() as usize);
        t.record(&g, EdgeId(0), NodeId(0));
        t.record(&g, EdgeId(0), NodeId(0));
        t.reset();
        assert_eq!(t.record(&g, EdgeId(0), NodeId(0)), 1, "fresh after reset");
        t.reset();
        t.reset(); // idempotent on an untouched tracker
        assert_eq!(t.record(&g, EdgeId(1), NodeId(2)), 1);
    }

    #[test]
    fn parallel_edges_have_distinct_counters() {
        let g = congest_graph::Graph::from_edges(2, [(0, 1, 1), (0, 1, 1)]).unwrap();
        let mut t = CapacityTracker::new(2);
        assert_eq!(t.record(&g, EdgeId(0), NodeId(0)), 1);
        assert_eq!(t.record(&g, EdgeId(1), NodeId(0)), 1);
    }
}
