//! The active-set scheduler: tracks which nodes are awake in which round.
//!
//! The sleeping model's cost profile (only `poly(log n)` awake rounds per
//! node) means that in a typical low-energy execution almost every node is
//! asleep in almost every round. The engine therefore must never iterate over
//! all `n` nodes per round; instead this module maintains an explicit *wake
//! queue* — buckets keyed by the absolute wake round — so that a round
//! touches exactly the nodes scheduled to run in it.
//!
//! The queue is split in two so the common case is allocation-free:
//!
//! * a **ring** of [`WINDOW`] buckets for wake-ups within the next `WINDOW`
//!   rounds. Always-awake nodes cycle through the ring's recycled `Vec`s, so
//!   a steady-state round allocates nothing (the allocation-regression test
//!   `tests/alloc_regression.rs` pins this);
//! * an **overflow** `BTreeMap` for wake-ups beyond the ring horizon —
//!   sleeping-model protocols legitimately schedule arbitrarily far ahead.
//!   Its bucket `Vec`s are recycled through a spare pool.
//!
//! Invariant: a non-halted node `v` is awake in round `r` iff
//! `wake_at[v] == r`. (`wake_at` only ever moves forward, and it is only
//! rewritten when `v` runs, at which point its old queue entry has already
//! been consumed — so every queue entry is live and unique, and all entries
//! in one ring slot share one absolute round.)
//!
//! simlint: hot-path

use std::collections::BTreeMap;

use congest_graph::NodeId;

/// Ring width: wake-ups at most this many rounds ahead stay in the
/// allocation-free ring. Chosen to cover every always-awake cadence (wake
/// next round) and short sleeps (e.g. megaround pulses) with room to spare;
/// longer sleeps take the overflow path, whose cost is charged to genuinely
/// low-duty-cycle executions.
const WINDOW: u64 = 64;

/// Per-node status plus the two-tier wake bucket queue.
#[derive(Debug, Clone)]
pub(crate) struct ActiveSet {
    /// The round in which each node next runs (meaningless once halted).
    wake_at: Vec<u64>,
    /// Nodes that have halted for good.
    halted: Vec<bool>,
    halted_count: usize,
    /// Near-future buckets: the bucket for round `r` lives at slot
    /// `r % WINDOW`. Draining a slot keeps its capacity, so steady-state
    /// rescheduling never allocates.
    ring: Vec<Vec<NodeId>>,
    /// Far-future buckets (wake more than `WINDOW` rounds ahead), keyed by
    /// absolute round.
    overflow: BTreeMap<u64, Vec<NodeId>>,
    /// Recycled bucket vectors for `overflow` inserts.
    spare: Vec<Vec<NodeId>>,
    /// Nodes currently down due to a fault-injected crash (awaiting restart).
    /// Empty (all-false) outside fault mode.
    down: Vec<bool>,
    /// Fault mode: a crash/restart plan is active, so queue entries may be
    /// stale (a revived node is re-enqueued without its old entry being
    /// removable) and [`ActiveSet::take_awake`] must filter and dedup instead
    /// of trusting the buckets.
    faulty: bool,
}

impl ActiveSet {
    /// Creates the scheduler for `n` nodes, all awake in round 0 (the
    /// initialization round of the model).
    pub(crate) fn new(n: usize) -> Self {
        // simlint::allow(hot-path-alloc: one-time construction; steady-state rounds only recycle these buckets)
        let mut ring = vec![Vec::new(); WINDOW as usize];
        // simlint::allow(hot-path-alloc: one-time construction of the round-0 bucket)
        ring[0] = (0..n as u32).map(NodeId).collect();
        ActiveSet {
            wake_at: vec![0; n],    // simlint::allow(hot-path-alloc: per-run setup)
            halted: vec![false; n], // simlint::allow(hot-path-alloc: per-run setup)
            halted_count: 0,
            ring,
            overflow: BTreeMap::new(),
            spare: Vec::new(),    // simlint::allow(hot-path-alloc: per-run setup)
            down: vec![false; n], // simlint::allow(hot-path-alloc: per-run setup)
            faulty: false,
        }
    }

    /// Switches the scheduler into fault (churn) mode: queue entries are no
    /// longer trusted to be live, and [`ActiveSet::take_awake`] filters and
    /// dedups them. Called once, before round 0, when the engine runs with a
    /// crash/restart plan — the fault-free path never pays for this.
    pub(crate) fn enable_fault_filtering(&mut self) {
        self.faulty = true;
    }

    /// Removes and returns (into `out`) the nodes awake in `round`, sorted by
    /// id so the execution order matches the reference engine's `0..n` sweep.
    pub(crate) fn take_awake(&mut self, round: u64, out: &mut Vec<NodeId>) {
        out.clear();
        out.append(&mut self.ring[(round % WINDOW) as usize]);
        if !self.overflow.is_empty() {
            if let Some(mut far) = self.overflow.remove(&round) {
                out.append(&mut far);
                self.spare.push(far);
            }
        }
        if self.faulty {
            // Crash/restart churn leaves stale entries behind (a crashed
            // node's pending wake-up, a revived node's duplicate), so the
            // buckets are a superset: keep only genuinely runnable nodes and
            // dedup after sorting.
            out.retain(|v| {
                self.wake_at[v.index()] == round && !self.halted[v.index()] && !self.down[v.index()]
            });
            out.sort_unstable();
            out.dedup();
            return;
        }
        debug_assert!(
            out.iter().all(|v| self.wake_at[v.index()] == round && !self.halted[v.index()]),
            "a bucket only holds live entries for its own round"
        );
        out.sort_unstable();
    }

    /// `true` iff `v` receives messages delivered in `round` (awake and not
    /// halted). Must be queried *before* the nodes of `round` are rescheduled.
    pub(crate) fn is_receptive(&self, v: NodeId, round: u64) -> bool {
        !self.halted[v.index()] && self.wake_at[v.index()] == round
    }

    /// Reschedules `v` (which just ran in `round`) to wake at `wake_at`.
    pub(crate) fn reschedule(&mut self, v: NodeId, round: u64, wake_at: u64) {
        debug_assert!(wake_at > round, "wake-ups must move forward");
        let w = wake_at.max(round + 1);
        self.wake_at[v.index()] = w;
        if w - round <= WINDOW {
            // Slots (round, round + WINDOW] are distinct mod WINDOW, and the
            // slot shared with `round` itself was drained by `take_awake`.
            self.ring[(w % WINDOW) as usize].push(v);
        } else {
            self.overflow.entry(w).or_insert_with(|| self.spare.pop().unwrap_or_default()).push(v);
        }
    }

    /// Marks `v` as halted; it never runs again (unless a fault-injected
    /// restart revives it — see [`ActiveSet::revive`]).
    pub(crate) fn halt(&mut self, v: NodeId) {
        if !self.halted[v.index()] {
            self.halted[v.index()] = true;
            self.halted_count += 1;
        }
    }

    /// Marks `v` as down due to a fault-injected crash: it neither runs nor
    /// receives until revived. Requires fault mode.
    pub(crate) fn set_down(&mut self, v: NodeId) {
        debug_assert!(self.faulty, "churn requires fault filtering");
        self.down[v.index()] = true;
    }

    /// `true` iff `v` is currently down due to a fault-injected crash. (The
    /// engine tracks this authoritatively in its `FaultRuntime`; this
    /// accessor exists for the scheduler's own tests.)
    #[cfg(test)]
    pub(crate) fn is_down(&self, v: NodeId) -> bool {
        self.down[v.index()]
    }

    /// Revives `v` at `round` after a fault-injected restart: clears its
    /// down (and, if set, halted) status and schedules it to run *this*
    /// round. Must be called before `take_awake(round, ..)` drains the
    /// round's bucket; requires fault mode, whose filtering also absorbs the
    /// duplicate or stale queue entries this can create.
    pub(crate) fn revive(&mut self, v: NodeId, round: u64) {
        debug_assert!(self.faulty, "churn requires fault filtering");
        self.down[v.index()] = false;
        if self.halted[v.index()] {
            self.halted[v.index()] = false;
            self.halted_count -= 1;
        }
        self.wake_at[v.index()] = round;
        self.ring[(round % WINDOW) as usize].push(v);
    }

    /// `true` once every node has halted.
    pub(crate) fn all_halted(&self) -> bool {
        self.halted_count == self.halted.len()
    }

    /// Number of nodes that have not halted.
    pub(crate) fn unhalted(&self) -> u32 {
        (self.halted.len() - self.halted_count) as u32
    }

    /// The earliest round in which any node is scheduled to wake, if any.
    /// `O(WINDOW)`: each non-empty ring slot's round is read off its first
    /// entry's `wake_at` (all entries of a slot share one round).
    pub(crate) fn next_wake(&self) -> Option<u64> {
        let mut best = self.overflow.keys().next().copied();
        for slot in &self.ring {
            if let Some(&v) = slot.first() {
                let w = self.wake_at[v.index()];
                best = Some(best.map_or(w, |b| b.min(w)));
            }
        }
        best
    }

    /// Fault-mode replacement for [`ActiveSet::next_wake`]: an `O(n)` scan of
    /// the authoritative `wake_at` array over live (non-halted, non-down)
    /// nodes. The bucket-based shortcut is unsound under churn — a stale
    /// first entry can shadow a live later wake-up in the same ring slot.
    pub(crate) fn next_wake_scan(&self) -> Option<u64> {
        (0..self.wake_at.len())
            .filter(|&i| !self.halted[i] && !self.down[i])
            .map(|i| self.wake_at[i])
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_start_awake_in_round_zero() {
        let mut a = ActiveSet::new(3);
        let mut awake = Vec::new();
        a.take_awake(0, &mut awake);
        assert_eq!(awake, vec![NodeId(0), NodeId(1), NodeId(2)]);
        a.take_awake(0, &mut awake);
        assert!(awake.is_empty(), "a bucket is consumed exactly once");
    }

    #[test]
    fn reschedule_orders_nodes_by_id_within_a_bucket() {
        let mut a = ActiveSet::new(4);
        let mut awake = Vec::new();
        a.take_awake(0, &mut awake);
        // Insert out of id order; the bucket must come back sorted.
        a.reschedule(NodeId(3), 0, 5);
        a.reschedule(NodeId(1), 0, 5);
        a.reschedule(NodeId(2), 0, 7);
        a.halt(NodeId(0));
        assert_eq!(a.next_wake(), Some(5));
        a.take_awake(5, &mut awake);
        assert_eq!(awake, vec![NodeId(1), NodeId(3)]);
        assert_eq!(a.next_wake(), Some(7));
    }

    #[test]
    fn receptivity_tracks_wake_round_exactly() {
        let mut a = ActiveSet::new(2);
        let mut awake = Vec::new();
        a.take_awake(0, &mut awake);
        a.reschedule(NodeId(0), 0, 3);
        a.halt(NodeId(1));
        assert!(!a.is_receptive(NodeId(0), 1));
        assert!(a.is_receptive(NodeId(0), 3));
        assert!(!a.is_receptive(NodeId(1), 1), "halted nodes receive nothing");
    }

    #[test]
    fn halt_counting() {
        let mut a = ActiveSet::new(2);
        assert_eq!(a.unhalted(), 2);
        a.halt(NodeId(0));
        a.halt(NodeId(0)); // idempotent
        assert_eq!(a.unhalted(), 1);
        assert!(!a.all_halted());
        a.halt(NodeId(1));
        assert!(a.all_halted());
    }

    #[test]
    fn empty_network_is_trivially_halted() {
        let a = ActiveSet::new(0);
        assert!(a.all_halted());
        assert_eq!(a.next_wake(), None);
    }

    #[test]
    fn far_wakeups_go_through_overflow_and_come_back() {
        let mut a = ActiveSet::new(3);
        let mut awake = Vec::new();
        a.take_awake(0, &mut awake);
        // One near, one just past the ring horizon, one far out.
        a.reschedule(NodeId(0), 0, WINDOW); // last ring slot
        a.reschedule(NodeId(1), 0, WINDOW + 1); // first overflow round
        a.reschedule(NodeId(2), 0, 10 * WINDOW);
        assert_eq!(a.next_wake(), Some(WINDOW));
        a.take_awake(WINDOW, &mut awake);
        assert_eq!(awake, vec![NodeId(0)]);
        a.halt(NodeId(0));
        assert_eq!(a.next_wake(), Some(WINDOW + 1));
        a.take_awake(WINDOW + 1, &mut awake);
        assert_eq!(awake, vec![NodeId(1)]);
        a.halt(NodeId(1));
        assert_eq!(a.next_wake(), Some(10 * WINDOW));
        a.take_awake(10 * WINDOW, &mut awake);
        assert_eq!(awake, vec![NodeId(2)]);
    }

    #[test]
    fn fault_mode_filters_stale_entries_and_revives_nodes() {
        let mut a = ActiveSet::new(3);
        a.enable_fault_filtering();
        let mut awake = Vec::new();
        a.take_awake(0, &mut awake);
        assert_eq!(awake.len(), 3);
        a.reschedule(NodeId(0), 0, 2);
        a.reschedule(NodeId(1), 0, 2);
        a.halt(NodeId(2));
        // Node 0 crashes before its wake round: its queue entry goes stale.
        a.set_down(NodeId(0));
        assert!(a.is_down(NodeId(0)));
        a.take_awake(2, &mut awake);
        assert_eq!(awake, vec![NodeId(1)], "down nodes are filtered out");
        a.reschedule(NodeId(1), 2, 100);
        // Down and halted nodes are invisible to the wake scan.
        assert_eq!(a.next_wake_scan(), Some(100));
        // Restart node 0 (clearing `down`) and even halted node 2: a revive
        // runs the node in its own round, and duplicates are absorbed.
        a.revive(NodeId(0), 7);
        a.revive(NodeId(0), 7);
        a.revive(NodeId(2), 7);
        assert!(!a.is_down(NodeId(0)));
        assert!(!a.all_halted() && a.unhalted() == 3);
        assert_eq!(a.next_wake_scan(), Some(7));
        a.take_awake(7, &mut awake);
        assert_eq!(awake, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn ring_and_overflow_entries_for_one_round_are_merged_and_sorted() {
        let mut a = ActiveSet::new(4);
        let mut awake = Vec::new();
        a.take_awake(0, &mut awake);
        let target = WINDOW + 5;
        // Scheduled far ahead of round 0: overflow.
        a.reschedule(NodeId(3), 0, target);
        a.reschedule(NodeId(1), 0, target);
        // Nodes 0 and 2 step forward and, once close enough, schedule the
        // same round through the ring.
        a.reschedule(NodeId(2), 0, 10);
        a.reschedule(NodeId(0), 0, 10);
        a.take_awake(10, &mut awake);
        assert_eq!(awake, vec![NodeId(0), NodeId(2)]);
        a.reschedule(NodeId(0), 10, target);
        a.reschedule(NodeId(2), 10, target);
        a.take_awake(target, &mut awake);
        assert_eq!(awake, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(a.next_wake(), None);
    }
}
