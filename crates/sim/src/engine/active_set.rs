//! The active-set scheduler: tracks which nodes are awake in which round.
//!
//! The sleeping model's cost profile (only `poly(log n)` awake rounds per
//! node) means that in a typical low-energy execution almost every node is
//! asleep in almost every round. The engine therefore must never iterate over
//! all `n` nodes per round; instead this module maintains an explicit *wake
//! queue* — a bucket queue keyed by the absolute wake round — so that a round
//! touches exactly the nodes scheduled to run in it.
//!
//! Invariant: a non-halted node `v` is awake in round `r` iff
//! `wake_at[v] == r`. (`wake_at` only ever moves forward, and it is only
//! rewritten when `v` runs, at which point its old queue entry has already
//! been consumed — so every queue entry is live and unique.)

use std::collections::BTreeMap;

use congest_graph::NodeId;

/// Per-node status plus the wake bucket queue.
#[derive(Debug, Clone)]
pub(crate) struct ActiveSet {
    /// The round in which each node next runs (meaningless once halted).
    wake_at: Vec<u64>,
    /// Nodes that have halted for good.
    halted: Vec<bool>,
    halted_count: usize,
    /// Bucket queue: wake round -> nodes scheduled to run in it. `BTreeMap`
    /// rather than a ring buffer because sleeping-model protocols legitimately
    /// schedule wake-ups arbitrarily far in the future.
    buckets: BTreeMap<u64, Vec<NodeId>>,
}

impl ActiveSet {
    /// Creates the scheduler for `n` nodes, all awake in round 0 (the
    /// initialization round of the model).
    pub(crate) fn new(n: usize) -> Self {
        let mut buckets = BTreeMap::new();
        if n > 0 {
            buckets.insert(0, (0..n as u32).map(NodeId).collect());
        }
        ActiveSet { wake_at: vec![0; n], halted: vec![false; n], halted_count: 0, buckets }
    }

    /// Removes and returns (into `out`) the nodes awake in `round`, sorted by
    /// id so the execution order matches the reference engine's `0..n` sweep.
    pub(crate) fn take_awake(&mut self, round: u64, out: &mut Vec<NodeId>) {
        out.clear();
        if let Some(mut bucket) = self.buckets.remove(&round) {
            bucket.sort_unstable();
            out.append(&mut bucket);
        }
    }

    /// `true` iff `v` receives messages delivered in `round` (awake and not
    /// halted). Must be queried *before* the nodes of `round` are rescheduled.
    pub(crate) fn is_receptive(&self, v: NodeId, round: u64) -> bool {
        !self.halted[v.index()] && self.wake_at[v.index()] == round
    }

    /// Reschedules `v` (which just ran in `round`) to wake at `wake_at`.
    pub(crate) fn reschedule(&mut self, v: NodeId, round: u64, wake_at: u64) {
        debug_assert!(wake_at > round, "wake-ups must move forward");
        let w = wake_at.max(round + 1);
        self.wake_at[v.index()] = w;
        self.buckets.entry(w).or_default().push(v);
    }

    /// Marks `v` as halted; it never runs again.
    pub(crate) fn halt(&mut self, v: NodeId) {
        if !self.halted[v.index()] {
            self.halted[v.index()] = true;
            self.halted_count += 1;
        }
    }

    /// `true` once every node has halted.
    pub(crate) fn all_halted(&self) -> bool {
        self.halted_count == self.halted.len()
    }

    /// Number of nodes that have not halted.
    pub(crate) fn unhalted(&self) -> u32 {
        (self.halted.len() - self.halted_count) as u32
    }

    /// The earliest round in which any node is scheduled to wake, if any.
    pub(crate) fn next_wake(&self) -> Option<u64> {
        self.buckets.keys().next().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_start_awake_in_round_zero() {
        let mut a = ActiveSet::new(3);
        let mut awake = Vec::new();
        a.take_awake(0, &mut awake);
        assert_eq!(awake, vec![NodeId(0), NodeId(1), NodeId(2)]);
        a.take_awake(0, &mut awake);
        assert!(awake.is_empty(), "a bucket is consumed exactly once");
    }

    #[test]
    fn reschedule_orders_nodes_by_id_within_a_bucket() {
        let mut a = ActiveSet::new(4);
        let mut awake = Vec::new();
        a.take_awake(0, &mut awake);
        // Insert out of id order; the bucket must come back sorted.
        a.reschedule(NodeId(3), 0, 5);
        a.reschedule(NodeId(1), 0, 5);
        a.reschedule(NodeId(2), 0, 7);
        a.halt(NodeId(0));
        assert_eq!(a.next_wake(), Some(5));
        a.take_awake(5, &mut awake);
        assert_eq!(awake, vec![NodeId(1), NodeId(3)]);
        assert_eq!(a.next_wake(), Some(7));
    }

    #[test]
    fn receptivity_tracks_wake_round_exactly() {
        let mut a = ActiveSet::new(2);
        let mut awake = Vec::new();
        a.take_awake(0, &mut awake);
        a.reschedule(NodeId(0), 0, 3);
        a.halt(NodeId(1));
        assert!(!a.is_receptive(NodeId(0), 1));
        assert!(a.is_receptive(NodeId(0), 3));
        assert!(!a.is_receptive(NodeId(1), 1), "halted nodes receive nothing");
    }

    #[test]
    fn halt_counting() {
        let mut a = ActiveSet::new(2);
        assert_eq!(a.unhalted(), 2);
        a.halt(NodeId(0));
        a.halt(NodeId(0)); // idempotent
        assert_eq!(a.unhalted(), 1);
        assert!(!a.all_halted());
        a.halt(NodeId(1));
        assert!(a.all_halted());
    }

    #[test]
    fn empty_network_is_trivially_halted() {
        let a = ActiveSet::new(0);
        assert!(a.all_halted());
        assert_eq!(a.next_wake(), None);
    }
}
