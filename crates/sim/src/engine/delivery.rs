//! The message delivery arena: flat, reusable per-round inbox storage.
//!
//! The reference engine materializes `vec![Vec::new(); n]` inboxes every
//! round — an `O(n)` allocation even in rounds where two messages move. This
//! arena instead keeps one flat `Vec<Message>` grouped by recipient plus
//! per-node `(start, len)` range indexes, rebuilt in place each round with a
//! counting pass. All per-node index vectors are allocated once and reset
//! through a touched-list, so the per-round cost is `O(deliveries)`, not
//! `O(n)` — and since [`Message`] carries its payload inline and is `Copy`,
//! the placement pass is a flat move with **zero per-message allocations**
//! once the arena's capacity has warmed up.
//!
//! simlint: hot-path

use congest_graph::{EdgeId, NodeId};

use crate::message::{InFlight, Words};
use crate::Message;

/// A placeholder message used to pre-size the arena before the placement
/// pass; plain `Copy` data, so pre-sizing is a memset-like fill.
const PLACEHOLDER: Message = Message { from: NodeId(0), edge: EdgeId(0), words: Words::EMPTY };

/// Flat inbox storage for one round of deliveries.
///
/// An arena covers a contiguous node-id range `[base, base + size)`. The
/// sequential engine uses one arena over all `n` nodes; the sharded engine
/// gives each shard an arena over exactly its slice (see
/// [`DeliveryArena::new_range`] and [`DeliveryArena::build_range`]), so total
/// index memory stays `O(n)` across all shards instead of `O(shards · n)`.
#[derive(Debug, Clone)]
pub(crate) struct DeliveryArena {
    /// All delivered messages, grouped by recipient.
    msgs: Vec<Message>,
    /// Per-node start of its inbox range in `msgs`, indexed by `id - base`.
    start: Vec<u32>,
    /// Per-node inbox length, indexed by `id - base`.
    len: Vec<u32>,
    /// Per-node fill cursor for the placement pass, indexed by `id - base`.
    cursor: Vec<u32>,
    /// Recipients with a non-empty inbox this round (for `O(touched)` reset).
    touched: Vec<NodeId>,
    /// First node id this arena covers (0 for the engine-wide arena).
    base: u32,
}

impl DeliveryArena {
    /// Creates an empty arena for all `n` nodes. This is the only `O(n)`
    /// allocation; every round after construction reuses it.
    pub(crate) fn new(n: usize) -> Self {
        DeliveryArena::new_range(0, n)
    }

    /// Creates an empty arena covering the node-id range `[lo, hi)`.
    pub(crate) fn new_range(lo: usize, hi: usize) -> Self {
        DeliveryArena {
            msgs: Vec::new(), // simlint::allow(hot-path-alloc: one-time construction; rounds reuse the arena)
            start: vec![0; hi - lo], // simlint::allow(hot-path-alloc: per-run setup)
            len: vec![0; hi - lo], // simlint::allow(hot-path-alloc: per-run setup)
            cursor: vec![0; hi - lo], // simlint::allow(hot-path-alloc: per-run setup)
            touched: Vec::new(), // simlint::allow(hot-path-alloc: per-run setup)
            base: lo as u32,
        }
    }

    /// The local index of `v`, or `None` if `v` is outside this arena's range.
    fn local(&self, v: NodeId) -> Option<usize> {
        let i = (v.0 as usize).checked_sub(self.base as usize)?;
        (i < self.len.len()).then_some(i)
    }

    /// Rebuilds the arena from the messages sent last round, delivering to
    /// recipients for which `receptive` holds and dropping the rest (the
    /// sleeping model loses messages to sleeping/halted nodes). Returns the
    /// number of lost messages. `incoming` is drained but keeps its capacity.
    ///
    /// Per-recipient message order is preserved from `incoming`, which itself
    /// preserves send order, so inboxes are identical to the reference
    /// engine's.
    pub(crate) fn build(
        &mut self,
        incoming: &mut Vec<InFlight>,
        receptive: impl Fn(NodeId) -> bool,
    ) -> u64 {
        debug_assert_eq!(self.base, 0, "draining build is for the engine-wide arena");
        // Reset last round's ranges.
        for v in self.touched.drain(..) {
            self.len[v.index()] = 0;
        }

        // Counting pass: inbox sizes and the lost-message tally.
        let mut lost = 0u64;
        for flight in incoming.iter() {
            if receptive(flight.to) {
                let i = flight.to.index();
                if self.len[i] == 0 {
                    self.touched.push(flight.to);
                }
                self.len[i] += 1;
            } else {
                lost += 1;
            }
        }

        // Prefix pass: assign each touched recipient a contiguous range.
        let mut offset = 0u32;
        for &v in &self.touched {
            let i = v.index();
            self.start[i] = offset;
            self.cursor[i] = offset;
            offset += self.len[i];
        }

        // Placement pass: move every deliverable message into its slot.
        self.msgs.clear();
        self.msgs.resize(offset as usize, PLACEHOLDER);
        for flight in incoming.drain(..) {
            if receptive(flight.to) {
                let c = &mut self.cursor[flight.to.index()];
                self.msgs[*c as usize] = flight.msg;
                *c += 1;
            }
        }
        lost
    }

    /// The non-draining, range-filtered variant of [`DeliveryArena::build`]
    /// used by the sharded engine: every shard's worker scans the *shared*
    /// in-flight stream and keeps only messages addressed to its own range,
    /// so `incoming` is read concurrently and must stay intact.
    ///
    /// Returns the number of messages lost on non-receptive recipients
    /// *within this arena's range*; messages to other ranges are ignored
    /// entirely (each message's recipient lies in exactly one shard, so the
    /// shard tallies sum to the sequential engine's total). Per-recipient
    /// order is the `incoming` order, exactly as in the draining build.
    pub(crate) fn build_range(
        &mut self,
        incoming: &[InFlight],
        receptive: impl Fn(NodeId) -> bool,
    ) -> u64 {
        let base = self.base as usize;
        for v in self.touched.drain(..) {
            self.len[v.index() - base] = 0;
        }

        let mut lost = 0u64;
        for flight in incoming {
            let Some(i) = self.local(flight.to) else { continue };
            if receptive(flight.to) {
                if self.len[i] == 0 {
                    self.touched.push(flight.to);
                }
                self.len[i] += 1;
            } else {
                lost += 1;
            }
        }

        let mut offset = 0u32;
        for &v in &self.touched {
            let i = v.index() - base;
            self.start[i] = offset;
            self.cursor[i] = offset;
            offset += self.len[i];
        }

        self.msgs.clear();
        self.msgs.resize(offset as usize, PLACEHOLDER);
        for flight in incoming {
            let Some(i) = self.local(flight.to) else { continue };
            if receptive(flight.to) {
                let c = &mut self.cursor[i];
                self.msgs[*c as usize] = flight.msg;
                *c += 1;
            }
        }
        lost
    }

    /// The inbox delivered to `v` this round (empty unless `v` was touched in
    /// the latest build). `v` must lie in this arena's range.
    pub(crate) fn inbox(&self, v: NodeId) -> &[Message] {
        let i = v.index() - self.base as usize;
        let l = self.len[i] as usize;
        if l == 0 {
            // `start[v]` may be stale from an earlier round; never index it.
            return &[];
        }
        let s = self.start[i] as usize;
        &self.msgs[s..s + l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flight(from: u32, to: u32, word: u64) -> InFlight {
        InFlight {
            to: NodeId(to),
            sent_words: 1,
            msg: Message { from: NodeId(from), edge: EdgeId(0), words: Words::new(&[word]) },
        }
    }

    #[test]
    fn groups_messages_by_recipient_preserving_order() {
        let mut arena = DeliveryArena::new(4);
        let mut incoming =
            vec![flight(0, 2, 10), flight(1, 3, 20), flight(3, 2, 30), flight(2, 3, 40)];
        let lost = arena.build(&mut incoming, |_| true);
        assert_eq!(lost, 0);
        assert!(incoming.is_empty());
        let at = |v: u32, i: usize| arena.inbox(NodeId(v))[i].words[0];
        assert_eq!(arena.inbox(NodeId(2)).len(), 2);
        assert_eq!((at(2, 0), at(2, 1)), (10, 30), "arrival order per recipient");
        assert_eq!((at(3, 0), at(3, 1)), (20, 40));
        assert!(arena.inbox(NodeId(0)).is_empty());
    }

    #[test]
    fn non_receptive_recipients_lose_messages() {
        let mut arena = DeliveryArena::new(3);
        let mut incoming = vec![flight(0, 1, 1), flight(0, 2, 2), flight(1, 2, 3)];
        let lost = arena.build(&mut incoming, |v| v == NodeId(2));
        assert_eq!(lost, 1);
        assert!(arena.inbox(NodeId(1)).is_empty());
        assert_eq!(arena.inbox(NodeId(2)).len(), 2);
    }

    #[test]
    fn range_arena_filters_to_its_slice_without_draining() {
        // Two shard arenas over [0, 2) and [2, 4); node 3 is not receptive.
        let mut lo_arena = DeliveryArena::new_range(0, 2);
        let mut hi_arena = DeliveryArena::new_range(2, 4);
        let incoming = vec![flight(0, 2, 10), flight(1, 3, 20), flight(3, 1, 30), flight(0, 2, 40)];
        let lo_lost = lo_arena.build_range(&incoming, |v| v != NodeId(3));
        let hi_lost = hi_arena.build_range(&incoming, |v| v != NodeId(3));
        assert_eq!(incoming.len(), 4, "the shared stream is not drained");
        assert_eq!((lo_lost, hi_lost), (0, 1), "losses are counted per range");
        assert_eq!(lo_arena.inbox(NodeId(1)).len(), 1);
        assert_eq!(lo_arena.inbox(NodeId(1))[0].words[0], 30);
        let hub = hi_arena.inbox(NodeId(2));
        assert_eq!(hub.len(), 2);
        assert_eq!((hub[0].words[0], hub[1].words[0]), (10, 40), "stream order per recipient");
        // Rebuilding resets stale ranges exactly like the draining build.
        let incoming = vec![flight(1, 0, 50)];
        lo_arena.build_range(&incoming, |_| true);
        assert!(lo_arena.inbox(NodeId(1)).is_empty());
        assert_eq!(lo_arena.inbox(NodeId(0)).len(), 1);
    }

    #[test]
    fn rebuild_resets_previous_round() {
        let mut arena = DeliveryArena::new(3);
        let mut incoming = vec![flight(0, 1, 1)];
        arena.build(&mut incoming, |_| true);
        assert_eq!(arena.inbox(NodeId(1)).len(), 1);
        let mut incoming = vec![flight(1, 2, 2)];
        arena.build(&mut incoming, |_| true);
        assert!(arena.inbox(NodeId(1)).is_empty(), "stale ranges must be cleared");
        assert_eq!(arena.inbox(NodeId(2)).len(), 1);
        let mut empty = Vec::new();
        arena.build(&mut empty, |_| true);
        assert!(arena.inbox(NodeId(2)).is_empty());
    }
}
