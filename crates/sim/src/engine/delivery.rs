//! The message delivery arena: flat, reusable per-round inbox storage.
//!
//! The reference engine materializes `vec![Vec::new(); n]` inboxes every
//! round — an `O(n)` allocation even in rounds where two messages move. This
//! arena instead keeps one flat `Vec<Message>` grouped by recipient plus
//! per-node `(start, len)` range indexes, rebuilt in place each round with a
//! counting pass. All per-node index vectors are allocated once and reset
//! through a touched-list, so the per-round cost is `O(deliveries)`, not
//! `O(n)` — and since [`Message`] carries its payload inline and is `Copy`,
//! the placement pass is a flat move with **zero per-message allocations**
//! once the arena's capacity has warmed up.

use congest_graph::{EdgeId, NodeId};

use crate::message::{InFlight, Words};
use crate::Message;

/// A placeholder message used to pre-size the arena before the placement
/// pass; plain `Copy` data, so pre-sizing is a memset-like fill.
const PLACEHOLDER: Message = Message { from: NodeId(0), edge: EdgeId(0), words: Words::EMPTY };

/// Flat inbox storage for one round of deliveries.
#[derive(Debug, Clone)]
pub(crate) struct DeliveryArena {
    /// All delivered messages, grouped by recipient.
    msgs: Vec<Message>,
    /// Per-node start of its inbox range in `msgs`.
    start: Vec<u32>,
    /// Per-node inbox length.
    len: Vec<u32>,
    /// Per-node fill cursor for the placement pass.
    cursor: Vec<u32>,
    /// Recipients with a non-empty inbox this round (for `O(touched)` reset).
    touched: Vec<NodeId>,
}

impl DeliveryArena {
    /// Creates an empty arena for `n` nodes. This is the only `O(n)`
    /// allocation; every round after construction reuses it.
    pub(crate) fn new(n: usize) -> Self {
        DeliveryArena {
            msgs: Vec::new(),
            start: vec![0; n],
            len: vec![0; n],
            cursor: vec![0; n],
            touched: Vec::new(),
        }
    }

    /// Rebuilds the arena from the messages sent last round, delivering to
    /// recipients for which `receptive` holds and dropping the rest (the
    /// sleeping model loses messages to sleeping/halted nodes). Returns the
    /// number of lost messages. `incoming` is drained but keeps its capacity.
    ///
    /// Per-recipient message order is preserved from `incoming`, which itself
    /// preserves send order, so inboxes are identical to the reference
    /// engine's.
    pub(crate) fn build(
        &mut self,
        incoming: &mut Vec<InFlight>,
        receptive: impl Fn(NodeId) -> bool,
    ) -> u64 {
        // Reset last round's ranges.
        for v in self.touched.drain(..) {
            self.len[v.index()] = 0;
        }

        // Counting pass: inbox sizes and the lost-message tally.
        let mut lost = 0u64;
        for flight in incoming.iter() {
            if receptive(flight.to) {
                let i = flight.to.index();
                if self.len[i] == 0 {
                    self.touched.push(flight.to);
                }
                self.len[i] += 1;
            } else {
                lost += 1;
            }
        }

        // Prefix pass: assign each touched recipient a contiguous range.
        let mut offset = 0u32;
        for &v in &self.touched {
            let i = v.index();
            self.start[i] = offset;
            self.cursor[i] = offset;
            offset += self.len[i];
        }

        // Placement pass: move every deliverable message into its slot.
        self.msgs.clear();
        self.msgs.resize(offset as usize, PLACEHOLDER);
        for flight in incoming.drain(..) {
            if receptive(flight.to) {
                let c = &mut self.cursor[flight.to.index()];
                self.msgs[*c as usize] = flight.msg;
                *c += 1;
            }
        }
        lost
    }

    /// The inbox delivered to `v` this round (empty unless `v` was touched in
    /// the latest [`DeliveryArena::build`]).
    pub(crate) fn inbox(&self, v: NodeId) -> &[Message] {
        let l = self.len[v.index()] as usize;
        if l == 0 {
            // `start[v]` may be stale from an earlier round; never index it.
            return &[];
        }
        let s = self.start[v.index()] as usize;
        &self.msgs[s..s + l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flight(from: u32, to: u32, word: u64) -> InFlight {
        InFlight {
            to: NodeId(to),
            sent_words: 1,
            msg: Message { from: NodeId(from), edge: EdgeId(0), words: Words::new(&[word]) },
        }
    }

    #[test]
    fn groups_messages_by_recipient_preserving_order() {
        let mut arena = DeliveryArena::new(4);
        let mut incoming =
            vec![flight(0, 2, 10), flight(1, 3, 20), flight(3, 2, 30), flight(2, 3, 40)];
        let lost = arena.build(&mut incoming, |_| true);
        assert_eq!(lost, 0);
        assert!(incoming.is_empty());
        let at = |v: u32, i: usize| arena.inbox(NodeId(v))[i].words[0];
        assert_eq!(arena.inbox(NodeId(2)).len(), 2);
        assert_eq!((at(2, 0), at(2, 1)), (10, 30), "arrival order per recipient");
        assert_eq!((at(3, 0), at(3, 1)), (20, 40));
        assert!(arena.inbox(NodeId(0)).is_empty());
    }

    #[test]
    fn non_receptive_recipients_lose_messages() {
        let mut arena = DeliveryArena::new(3);
        let mut incoming = vec![flight(0, 1, 1), flight(0, 2, 2), flight(1, 2, 3)];
        let lost = arena.build(&mut incoming, |v| v == NodeId(2));
        assert_eq!(lost, 1);
        assert!(arena.inbox(NodeId(1)).is_empty());
        assert_eq!(arena.inbox(NodeId(2)).len(), 2);
    }

    #[test]
    fn rebuild_resets_previous_round() {
        let mut arena = DeliveryArena::new(3);
        let mut incoming = vec![flight(0, 1, 1)];
        arena.build(&mut incoming, |_| true);
        assert_eq!(arena.inbox(NodeId(1)).len(), 1);
        let mut incoming = vec![flight(1, 2, 2)];
        arena.build(&mut incoming, |_| true);
        assert!(arena.inbox(NodeId(1)).is_empty(), "stale ranges must be cleared");
        assert_eq!(arena.inbox(NodeId(2)).len(), 1);
        let mut empty = Vec::new();
        arena.build(&mut empty, |_| true);
        assert!(arena.inbox(NodeId(2)).is_empty());
    }
}
