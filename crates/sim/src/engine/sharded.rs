//! The sharded (multi-threaded) execution mode of [`Engine::run`].
//!
//! Nodes are partitioned into `S` contiguous id ranges ("shards"). Each shard
//! owns a slice of the protocol states, a range-restricted delivery arena,
//! and a private outbox; a persistent worker thread steps the shard's awake
//! nodes each round. The main thread then merges the shard outboxes in fixed
//! shard order and performs *all* global accounting itself — capacity
//! charging, fault fates, scheduler mutation — so the outcome is
//! byte-for-byte the sequential engine's at any `S`. The full determinism
//! argument lives in the [`super`] module docs.
//!
//! Synchronisation is deliberately minimal and allocation-free in steady
//! state: one `thread::scope` with `S` workers spawned once per run, two
//! barriers delimiting each round's parallel section, a `RwLock` the main
//! thread writes only while the workers are parked, and one uncontended
//! mutex per shard. The hot path — a worker sweeping its slice — takes no
//! locks beyond those two once-per-round acquisitions.
//!
//! simlint: hot-path

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

use congest_graph::{EdgeId, NodeId};

use crate::fault::{FaultAction, FaultRuntime};
use crate::message::InFlight;
use crate::metrics::{EdgeUsageTrace, Metrics};
use crate::node::NodeCtx;
use crate::{Engine, Network, Protocol, RunOutcome, SimError};

use super::active_set::ActiveSet;
use super::capacity::CapacityTracker;
use super::delivery::DeliveryArena;

/// Round state the main thread publishes to the workers: written under the
/// write lock while the workers are parked at the start barrier, read under
/// read locks during the parallel section — every acquisition is uncontended.
struct Shared {
    round: u64,
    /// Messages delivered this round (sent last round, plus jitter arrivals
    /// merged in by the main thread). Workers scan it read-only.
    incoming: Vec<InFlight>,
    /// The nodes that run this round, globally sorted by id.
    awake: Vec<NodeId>,
    /// `awake[bounds[s]..bounds[s + 1]]` is shard `s`'s segment.
    bounds: Vec<usize>,
    /// The scheduler; workers only call the read-only receptivity query.
    active: ActiveSet,
    /// The fault layer; workers only read `crashed` / `reinit`.
    faults: Option<FaultRuntime>,
}

/// One shard: a contiguous node-id range `[lo, hi)` with its own state slice,
/// delivery arena, and outbox. Guarded by a per-shard mutex that only its own
/// worker (during the parallel section) and the main thread (during the
/// merge) ever take — never both at once, so it is always uncontended.
struct Shard<P> {
    index: usize,
    lo: u32,
    hi: u32,
    /// Protocol states of nodes `[lo, hi)`, indexed by `id - lo`.
    states: Vec<P>,
    /// Awake-round counters of nodes `[lo, hi)`, merged into
    /// [`Metrics::node_energy`] at termination.
    energy: Vec<u64>,
    /// Range-restricted delivery arena over `[lo, hi)`.
    arena: DeliveryArena,
    /// This round's sends, in node-id order; drained into the global stream
    /// by the merge.
    outbox: Vec<InFlight>,
    /// Per-node `(node, wake_at, halt)` outcomes, applied by the main thread
    /// in order during the merge.
    decisions: Vec<(NodeId, Option<u64>, bool)>,
    /// Sleeping-model losses within this shard's range this round.
    lost: u64,
    /// Deliveries onto crashed nodes within this shard's range this round.
    crashed_hits: u64,
    /// A protocol panic caught while stepping, re-raised by the merge at
    /// this shard's position so panic-vs-error ordering matches the
    /// sequential engine.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Runs the protocol across `shard_count >= 2` worker threads. Semantics are
/// bit-identical to [`Engine::run`]'s sequential path; see the module docs.
pub(super) fn run_sharded<P, F>(
    engine: &Engine<'_>,
    mut factory: F,
    shard_count: usize,
) -> Result<RunOutcome<P>, SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    let graph = engine.network().graph();
    let n = graph.node_count() as usize;
    let m = graph.edge_count() as usize;
    let chunk = n.div_ceil(shard_count);

    // States are created in id order, exactly as the sequential path does,
    // then split into per-shard slices (concatenation restores them).
    // simlint::allow(hot-path-alloc: one-time per-run setup before the round loop)
    let mut all_states: Vec<P> = graph.nodes().map(&mut factory).collect();
    let mut shards: Vec<Mutex<Shard<P>>> = Vec::with_capacity(shard_count);
    for s in (0..shard_count).rev() {
        let lo = (s * chunk).min(n);
        let hi = ((s + 1) * chunk).min(n);
        let states = all_states.split_off(lo);
        shards.push(Mutex::new(Shard {
            index: s,
            lo: lo as u32,
            hi: hi as u32,
            states,
            energy: vec![0; hi - lo], // simlint::allow(hot-path-alloc: per-run shard setup)
            arena: DeliveryArena::new_range(lo, hi),
            outbox: Vec::new(), // simlint::allow(hot-path-alloc: per-run shard setup)
            decisions: Vec::new(), // simlint::allow(hot-path-alloc: per-run shard setup)
            lost: 0,
            crashed_hits: 0,
            panic: None,
        }));
    }
    shards.reverse();

    let mut active = ActiveSet::new(n);
    let faults = FaultRuntime::new(&engine.config().faults, n, m);
    if faults.is_some() {
        active.enable_fault_filtering();
    }
    let shared = RwLock::new(Shared {
        round: 0,
        incoming: Vec::new(), // simlint::allow(hot-path-alloc: per-run setup; reused as the in-flight double buffer)
        awake: Vec::new(), // simlint::allow(hot-path-alloc: per-run setup; refilled in place each round)
        bounds: vec![0; shard_count + 1], // simlint::allow(hot-path-alloc: per-run setup; rewritten in place)
        active,
        faults,
    });
    let start = Barrier::new(shard_count + 1);
    let end = Barrier::new(shard_count + 1);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for shard in &shards {
            let (shared, start, end, done) = (&shared, &start, &end, &done);
            let network = engine.network();
            scope.spawn(move || loop {
                start.wait();
                if done.load(Ordering::Acquire) {
                    return;
                }
                {
                    let sh = shared.read().expect("round state lock");
                    let mut sd = shard.lock().expect("shard lock");
                    step_shard(&mut sd, &sh, network);
                }
                end.wait();
            });
        }
        // Drive the rounds. Catch unwinds (a re-raised protocol panic) so the
        // workers are always released before leaving the scope — otherwise
        // the scope would block forever joining threads parked at the start
        // barrier.
        let result = catch_unwind(AssertUnwindSafe(|| {
            drive(engine, &mut factory, &shared, &shards, chunk, &start, &end)
        }));
        done.store(true, Ordering::Release);
        start.wait();
        match result {
            Ok(outcome) => outcome,
            Err(payload) => resume_unwind(payload),
        }
    })
}

/// One worker pass over one shard: build the shard's inboxes from the shared
/// in-flight stream, then step the shard's awake segment in id order. Runs
/// concurrently with the other shards' passes; touches nothing outside the
/// shard except read-only round state.
fn step_shard<P: Protocol>(sd: &mut Shard<P>, sh: &Shared, network: &Network<'_>) {
    let round = sh.round;
    // Delivery: keep the shared stream's messages addressed to this range, in
    // stream order. Receptivity is start-of-round scheduler state, read-only.
    sd.crashed_hits = 0;
    sd.lost = if let Some(rt) = sh.faults.as_ref() {
        let (lo, hi) = (sd.lo, sd.hi);
        sd.crashed_hits = sh
            .incoming
            .iter()
            .filter(|f| f.to.0 >= lo && f.to.0 < hi && rt.crashed[f.to.index()])
            .count() as u64;
        sd.arena.build_range(&sh.incoming, |v| {
            sh.active.is_receptive(v, round) && !rt.crashed[v.index()]
        })
    } else {
        sd.arena.build_range(&sh.incoming, |v| sh.active.is_receptive(v, round))
    };

    // Step this shard's segment of the awake list (contiguous, id-sorted).
    sd.decisions.clear();
    let seg = &sh.awake[sh.bounds[sd.index]..sh.bounds[sd.index + 1]];
    let lo = sd.lo as usize;
    let Shard { states, energy, arena, outbox, decisions, panic, .. } = sd;
    for &v in seg {
        let i = v.index() - lo;
        energy[i] += 1;
        let sends_from = outbox.len();
        // Same rule as the sequential loop, minus the flag *take*: workers
        // read `reinit`; the main thread clears it during the merge.
        let run_init = round == 0 || sh.faults.as_ref().is_some_and(|rt| rt.reinit[v.index()]);
        let mut ctx = NodeCtx::new(v, round, network, outbox);
        let state = &mut states[i];
        let inbox = arena.inbox(v);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if run_init {
                state.init(&mut ctx);
            } else {
                state.on_round(&mut ctx, inbox);
            }
        }));
        let (wake_at, halt) = (ctx.wake_at, ctx.halt);
        match caught {
            Ok(()) => decisions.push((v, wake_at, halt)),
            Err(payload) => {
                // Discard the panicking node's partial sends — the sequential
                // engine never accounts a node's sends unless its callback
                // returned — and stop stepping this shard; the merge re-raises
                // at this shard's position.
                outbox.truncate(sends_from);
                *panic = Some(payload);
                return;
            }
        }
    }
}

/// The main thread's round loop: prepares round state while the workers are
/// parked, releases them through the barrier pair, then merges the shards in
/// fixed order, doing every piece of global accounting exactly as — and in
/// the same order as — the sequential engine.
fn drive<P, F>(
    engine: &Engine<'_>,
    factory: &mut F,
    shared: &RwLock<Shared>,
    shards: &[Mutex<Shard<P>>],
    chunk: usize,
    start: &Barrier,
    end: &Barrier,
) -> Result<RunOutcome<P>, SimError>
where
    P: Protocol,
    F: FnMut(NodeId) -> P,
{
    let graph = engine.network().graph();
    let config = engine.config();
    let n = graph.node_count() as usize;
    let m = graph.edge_count() as usize;
    let shard_count = shards.len();
    let mut capacity = CapacityTracker::new(m);
    let mut metrics = Metrics::zero(n, m);
    let mut trace = if config.record_edge_trace { Some(EdgeUsageTrace::default()) } else { None };
    // This round's merged sends; swapped into `Shared::incoming` at round end
    // (the same double-buffering as the sequential path, across the lock).
    let mut outgoing: Vec<InFlight> = Vec::new(); // simlint::allow(hot-path-alloc: per-run setup; reused every round)
    let mut this_round_trace: Vec<(EdgeId, u32)> = Vec::new(); // simlint::allow(hot-path-alloc: per-run setup; cleared in place)
    let mut round: u64 = 0;
    let max_words = config.effective_max_words();

    loop {
        // ---- Pre-round phase (workers parked at the start barrier) ----
        let dispatched = {
            let mut guard = shared.write().expect("round state lock");
            let sh = &mut *guard;
            if round > config.max_rounds {
                return Err(SimError::RoundLimitExceeded {
                    limit: config.max_rounds,
                    unhalted_nodes: sh.active.unhalted(),
                });
            }
            sh.round = round;
            // Churn first, exactly as in the sequential path. A restart's
            // fresh state is written straight into the owning shard.
            if let Some(rt) = sh.faults.as_mut() {
                while let Some(ev) = rt.next_event(round) {
                    match ev.action {
                        FaultAction::Crash { permanent } => {
                            metrics.crashes += 1;
                            rt.crashed[ev.node.index()] = true;
                            sh.active.set_down(ev.node);
                            if permanent {
                                sh.active.halt(ev.node);
                            }
                        }
                        FaultAction::Restart => {
                            metrics.restarts += 1;
                            rt.crashed[ev.node.index()] = false;
                            rt.reinit[ev.node.index()] = true;
                            let owner = (ev.node.index() / chunk).min(shard_count - 1);
                            let mut sd = shards[owner].lock().expect("shard lock");
                            let slot = ev.node.index() - sd.lo as usize;
                            sd.states[slot] = factory(ev.node);
                            sh.active.revive(ev.node, round);
                        }
                    }
                }
            }
            let Shared { active, awake, bounds, faults, incoming, .. } = sh;
            active.take_awake(round, awake);
            if let Some(rt) = faults.as_mut() {
                rt.merge_due(round, incoming);
            }
            for (s, bound) in bounds.iter_mut().enumerate().take(shard_count) {
                *bound = awake.partition_point(|v| v.index() < s * chunk);
            }
            bounds[shard_count] = awake.len();
            // An entirely empty round needs no worker pass: nothing to
            // deliver, count, or step.
            !(incoming.is_empty() && awake.is_empty())
        };

        // ---- Parallel phase ----
        if dispatched {
            start.wait();
            end.wait();
        }

        // ---- Merge phase (fixed shard order; workers parked again) ----
        capacity.reset();
        this_round_trace.clear();
        let mut guard = shared.write().expect("round state lock");
        let sh = &mut *guard;
        if dispatched {
            for shard in shards {
                let mut sd = shard.lock().expect("shard lock");
                let sd = &mut *sd;
                metrics.fault_drops += sd.crashed_hits;
                metrics.messages_lost += sd.lost - sd.crashed_hits;
                // Validate and account this shard's sends. The merged walk —
                // shard outboxes in shard order, each in node-id order — is
                // exactly the sequential engine's send stream, so capacity
                // counters, congestion, traces, and the *first* strict
                // violation all come out identical.
                for flight in &sd.outbox {
                    let edge = flight.msg.edge;
                    let v = flight.msg.from;
                    if flight.sent_words > max_words {
                        if config.strict_capacity {
                            return Err(SimError::MessageTooLarge {
                                node: v,
                                words: flight.sent_words,
                                max_words,
                            });
                        }
                        metrics.capacity_violations += 1;
                    }
                    let used = capacity.record(graph, edge, v);
                    if used > config.edge_capacity {
                        if config.strict_capacity {
                            return Err(SimError::EdgeCapacityExceeded {
                                node: v,
                                edge,
                                round,
                                capacity: config.edge_capacity,
                            });
                        }
                        metrics.capacity_violations += 1;
                    }
                    metrics.messages += 1;
                    metrics.edge_congestion[edge.index()] += 1;
                    if trace.is_some() {
                        this_round_trace.push((edge, 1));
                    }
                }
                // A protocol panic surfaces at its node's position in merge
                // order: earlier nodes' sends were accounted above, the
                // panicking node's partial sends were discarded by the
                // worker — the sequential panic point, bit for bit.
                if let Some(payload) = sd.panic.take() {
                    resume_unwind(payload);
                }
                // Fault fates are pure per-message functions of
                // `(edge, sender, send round)`, so rolling them batch-per-
                // shard here visits the same fates in the same order as the
                // sequential per-node pass, and the jitter buffer fills
                // identically.
                let from = outgoing.len();
                outgoing.append(&mut sd.outbox);
                if let Some(rt) = sh.faults.as_mut() {
                    if rt.has_message_faults() {
                        rt.apply_message_faults(&mut metrics, round, &mut outgoing, from);
                    }
                }
                // Sleep/halt requests, in node-id order within the shard.
                for &(v, wake_at, halt) in &sd.decisions {
                    if halt {
                        sh.active.halt(v);
                    } else {
                        sh.active.reschedule(v, round, wake_at.unwrap_or(round + 1));
                    }
                }
            }
            // The sequential loop *takes* each running node's re-init flag
            // (never at round 0 — its `round == 0 ||` short-circuit skips the
            // take there). Workers only read the flags, so clear them here.
            if round != 0 {
                if let Some(rt) = sh.faults.as_mut() {
                    for v in &sh.awake {
                        rt.reinit[v.index()] = false;
                    }
                }
            }
            // The shared stream was fully delivered/counted (the range build
            // is non-draining); clear it before jitter arrivals merge into it
            // next round.
            sh.incoming.clear();
        }

        if let Some(t) = trace.as_mut() {
            // Coalesce duplicate edges in this round's trace entry; the
            // BTreeMap iterates in edge order, matching the sequential path.
            let mut merged: std::collections::BTreeMap<EdgeId, u32> =
                std::collections::BTreeMap::new();
            for &(e, c) in &this_round_trace {
                *merged.entry(e).or_insert(0) += c;
            }
            // simlint::allow(hot-path-alloc: trace recording is a diagnostic mode; the alloc gate runs untraced)
            t.rounds.push(merged.into_iter().collect());
        }

        // Termination check: all halted and nothing in flight.
        if sh.active.all_halted() {
            metrics.messages_lost += outgoing.len() as u64;
            if let Some(rt) = sh.faults.as_ref() {
                metrics.messages_lost += rt.pending_count();
            }
            metrics.rounds = round + 1;
            drop(guard);
            // Reassemble the final states and energy in shard order.
            let mut states = Vec::with_capacity(n);
            for shard in shards {
                let mut sd = shard.lock().expect("shard lock");
                let (lo, hi) = (sd.lo as usize, sd.hi as usize);
                metrics.node_energy[lo..hi].copy_from_slice(&sd.energy);
                states.append(&mut sd.states);
            }
            return Ok(RunOutcome { states, metrics, trace });
        }

        // Quiescence fast-forward, identical to the sequential path.
        if outgoing.is_empty() && sh.awake.is_empty() && config.fast_forward_idle {
            let target = if let Some(rt) = sh.faults.as_ref() {
                [sh.active.next_wake_scan(), rt.next_pending_round(), rt.next_event_round()]
                    .into_iter()
                    .flatten()
                    .min()
            } else {
                sh.active.next_wake()
            };
            if let Some(w) = target.filter(|&w| w > round) {
                if let Some(t) = trace.as_mut() {
                    for _ in round + 1..w {
                        t.rounds.push(Vec::new()); // simlint::allow(hot-path-alloc: trace mode only, and an empty Vec::new never touches the heap)
                    }
                }
                round = w;
                continue;
            }
        }

        sh.incoming.clear();
        std::mem::swap(&mut sh.incoming, &mut outgoing);
        round += 1;
    }
}
