//! The retained naive execution loop, kept as a differential-testing oracle.
//!
//! This is the pre-refactor engine: every round it sweeps all `n` nodes,
//! allocates fresh per-node inboxes, and tracks edge capacity in a `HashMap`.
//! Its per-round cost is `Θ(n)` regardless of how many nodes are awake, which
//! is exactly what the active-set engine in [`super`] eliminates — but its
//! simplicity makes it the semantic ground truth. [`Engine::run`] must
//! produce bit-identical [`RunOutcome`]s (states, [`Metrics`], traces); the
//! proptest harness in `tests/engine_equivalence.rs` and the E11 throughput
//! experiment both enforce this.

use std::collections::{BTreeMap, HashMap};

use congest_graph::{EdgeId, NodeId};

use crate::fault::{FaultAction, FaultRuntime};
use crate::message::InFlight;
use crate::metrics::{EdgeUsageTrace, Metrics};
use crate::node::NodeCtx;
use crate::{Engine, Message, Protocol, RunOutcome, SimError};

/// Per-node bookkeeping of the reference loop.
#[derive(Debug, Clone)]
struct NodeStatus {
    /// The earliest round at which the node is next awake.
    wake_at: u64,
    /// The node has halted for good.
    halted: bool,
    /// The node is down due to a fault-injected crash (awaiting restart).
    down: bool,
}

impl Engine<'_> {
    /// Runs the protocol through the naive `O(n)`-per-round reference loop.
    ///
    /// Semantics are identical to [`Engine::run`] — same states, metrics, and
    /// traces — only the execution cost differs. Use this as the baseline in
    /// engine benchmarks and as the oracle in differential tests; use
    /// [`Engine::run`] everywhere else.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::run`].
    pub fn run_reference<P, F>(&self, mut factory: F) -> Result<RunOutcome<P>, SimError>
    where
        P: Protocol,
        F: FnMut(NodeId) -> P,
    {
        let graph = self.network().graph();
        let config = self.config();
        let n = graph.node_count() as usize;
        let m = graph.edge_count() as usize;
        let mut states: Vec<P> = graph.nodes().map(&mut factory).collect();
        let mut status = vec![NodeStatus { wake_at: 0, halted: false, down: false }; n];
        let mut faults = FaultRuntime::new(&config.faults, n, m);
        let mut metrics = Metrics::zero(n, m);
        let mut trace =
            if config.record_edge_trace { Some(EdgeUsageTrace::default()) } else { None };

        // Messages sent in the previous round, awaiting delivery this round.
        let mut in_flight: Vec<InFlight> = Vec::new();
        let mut round: u64 = 0;

        loop {
            if round > config.max_rounds {
                let unhalted = status.iter().filter(|s| !s.halted).count() as u32;
                return Err(SimError::RoundLimitExceeded {
                    limit: config.max_rounds,
                    unhalted_nodes: unhalted,
                });
            }

            // Apply the churn events of this round first, exactly as the
            // active-set engine does: crashes take effect at the start of
            // their round, restarts re-create the node's state and run it
            // (through `init`) this very round.
            if let Some(rt) = faults.as_mut() {
                while let Some(ev) = rt.next_event(round) {
                    let st = &mut status[ev.node.index()];
                    match ev.action {
                        FaultAction::Crash { permanent } => {
                            metrics.crashes += 1;
                            rt.crashed[ev.node.index()] = true;
                            st.down = true;
                            if permanent {
                                st.halted = true;
                            }
                        }
                        FaultAction::Restart => {
                            metrics.restarts += 1;
                            rt.crashed[ev.node.index()] = false;
                            rt.reinit[ev.node.index()] = true;
                            st.down = false;
                            st.halted = false;
                            st.wake_at = round;
                            states[ev.node.index()] = factory(ev.node);
                        }
                    }
                }
                // Jitter-delayed messages due this round join the stream
                // after the on-time ones, as in the active-set engine.
                rt.merge_due(round, &mut in_flight);
            }

            // Deliver messages sent last round. Messages to sleeping or halted
            // nodes are lost (the defining property of the sleeping model);
            // messages to a crashed node are the fault layer's drops.
            let mut inboxes: Vec<Vec<Message>> = vec![Vec::new(); n];
            for flight in in_flight.drain(..) {
                let st = &status[flight.to.index()];
                if faults.as_ref().is_some_and(|rt| rt.crashed[flight.to.index()]) {
                    metrics.fault_drops += 1;
                } else if !st.halted && st.wake_at <= round {
                    inboxes[flight.to.index()].push(flight.msg);
                } else {
                    metrics.messages_lost += 1;
                }
            }

            // Run awake nodes.
            let mut this_round_trace: Vec<(EdgeId, u32)> = Vec::new();
            // simlint::allow(nondeterministic-iteration: per-round capacity counter probed through entry() only and dropped at round end; nothing ever iterates it)
            let mut edge_round_count: HashMap<(EdgeId, NodeId), u32> = HashMap::new();
            let mut any_awake = false;
            for v in graph.nodes() {
                let st = &status[v.index()];
                if st.halted || st.down || st.wake_at > round {
                    continue;
                }
                any_awake = true;
                metrics.node_energy[v.index()] += 1;
                // A freshly allocated outbox per node, as the pre-refactor
                // engine did — this loop deliberately keeps the naive
                // allocation profile the E13 experiment baselines against.
                let mut outbox: Vec<InFlight> = Vec::new();
                let mut ctx = NodeCtx::new(v, round, self.network(), &mut outbox);
                let run_init = round == 0
                    || faults.as_mut().is_some_and(|rt| std::mem::take(&mut rt.reinit[v.index()]));
                if run_init {
                    states[v.index()].init(&mut ctx);
                } else {
                    states[v.index()].on_round(&mut ctx, &inboxes[v.index()]);
                }
                let (wake_at, halt) = (ctx.wake_at, ctx.halt);
                // Process sends.
                for flight in &outbox {
                    let edge = flight.msg.edge;
                    if flight.sent_words > config.effective_max_words() {
                        if config.strict_capacity {
                            return Err(SimError::MessageTooLarge {
                                node: v,
                                words: flight.sent_words,
                                max_words: config.effective_max_words(),
                            });
                        }
                        metrics.capacity_violations += 1;
                    }
                    let used = edge_round_count.entry((edge, v)).or_insert(0);
                    *used += 1;
                    if *used > config.edge_capacity {
                        if config.strict_capacity {
                            return Err(SimError::EdgeCapacityExceeded {
                                node: v,
                                edge,
                                round,
                                capacity: config.edge_capacity,
                            });
                        }
                        metrics.capacity_violations += 1;
                    }
                    metrics.messages += 1;
                    metrics.edge_congestion[edge.index()] += 1;
                    if trace.is_some() {
                        this_round_trace.push((edge, 1));
                    }
                }
                // Roll the fate of this node's sends after accounting (a
                // dropped message was still sent), before they join the
                // in-flight pool — same call sequence as the active engine.
                if let Some(rt) = faults.as_mut() {
                    if rt.has_message_faults() {
                        rt.apply_message_faults(&mut metrics, round, &mut outbox, 0);
                    }
                }
                in_flight.append(&mut outbox);
                // Process sleep/halt requests.
                let st = &mut status[v.index()];
                if halt {
                    st.halted = true;
                } else if let Some(w) = wake_at {
                    st.wake_at = w;
                } else {
                    st.wake_at = round + 1;
                }
            }

            if let Some(t) = trace.as_mut() {
                // Coalesce duplicate edges in this round's trace entry; the
                // BTreeMap iterates in edge order, matching the active engine.
                let mut merged: BTreeMap<EdgeId, u32> = BTreeMap::new();
                for (e, c) in this_round_trace {
                    *merged.entry(e).or_insert(0) += c;
                }
                t.rounds.push(merged.into_iter().collect());
            }

            // Termination check: all halted and nothing in flight. Whatever
            // was sent this round can never be delivered — count it as lost.
            let all_halted = status.iter().all(|s| s.halted);
            if all_halted {
                metrics.messages_lost += in_flight.len() as u64;
                if let Some(rt) = faults.as_ref() {
                    metrics.messages_lost += rt.pending_count();
                }
                metrics.rounds = round + 1;
                return Ok(RunOutcome { states, metrics, trace });
            }

            // Deadlock / quiescence guard: nobody is awake now or in the
            // future and no message is in flight — the protocol will never
            // make progress again. Treat it as termination at this round;
            // protocols that rely on this behave like "implicit halt". Under
            // a fault plan the next event may also be a pending jittered
            // delivery or a churn event.
            let next_wake = {
                let mut t = status.iter().filter(|s| !s.halted && !s.down).map(|s| s.wake_at).min();
                if let Some(rt) = faults.as_ref() {
                    t = [t, rt.next_pending_round(), rt.next_event_round()]
                        .into_iter()
                        .flatten()
                        .min();
                }
                t
            };
            if in_flight.is_empty() && !any_awake && config.fast_forward_idle {
                if let Some(w) = next_wake.filter(|&w| w > round) {
                    // Jump to the next scheduled wake-up. The skipped rounds
                    // still exist in the model but cost nothing.
                    if let Some(t) = trace.as_mut() {
                        for _ in round + 1..w {
                            t.rounds.push(Vec::new());
                        }
                    }
                    round = w;
                    continue;
                }
            }
            // Without fast-forward we simply step to the next round. If
            // nothing can ever happen again (no in-flight messages and no
            // non-halted node will ever wake because they are all waiting on
            // messages that will never come), the protocol is stuck. This can
            // only be detected heuristically; the round limit catches it.

            round += 1;
        }
    }
}
