//! Reference sleeping-model workloads for engine benchmarking and
//! differential testing.
//!
//! The paper's low-energy algorithms keep almost every node asleep in almost
//! every round; these protocols distill that cost profile into small,
//! self-contained state machines the engine experiments can drive at large
//! `n` (see `EXPERIMENTS.md`, E11):
//!
//! * [`WaveBfs`] — a BFS wavefront under a *perfect* wake schedule: each node
//!   wakes exactly once, in the round its distance arrives. This is the ideal
//!   limit of the paper's cluster-activation schedules (Section 3): `O(1)`
//!   energy per node, `D` rounds, and per-round awake work equal to one BFS
//!   level.
//! * [`PulseBfs`] — an oracle-free periodic BFS: every node wakes for two
//!   rounds per period to talk and listen, so the wavefront advances one hop
//!   per period. Energy is `O(D)`, but only a `2/period` fraction of rounds
//!   does any work — the profile of a megaround schedule (Section 3.1.3).
//!
//! Two further workloads stress the *message fabric* rather than the sleep
//! scheduler (see `EXPERIMENTS.md`, E13): in both, every node is awake every
//! round, so an engine can only win by moving messages cheaply:
//!
//! * [`Flood`] — every node broadcasts one word per round and folds its whole
//!   inbox, saturating every edge in both directions every round. The maximal
//!   per-round message volume the CONGEST model permits at capacity 1.
//! * [`HubPingPong`] — a hub exchanges one message with every spoke every
//!   round through targeted [`crate::NodeCtx::send`] calls, stressing the
//!   per-call neighbour lookup on the highest-degree node a graph can have.
//!
//! A third family hardens the first two against the fault fabric
//! ([`crate::FaultPlan`], see `docs/FAULT_MODEL.md`): [`ChaosWaveBfs`]
//! widens the wave schedule into per-hop awake windows with rebroadcasts
//! (exact under pure bounded jitter, loss-resilient under drops),
//! [`ChaosPulseBfs`] re-announces every pulse instead of once, and
//! [`ChaosFlood`] counts its deliveries so degradation is measurable. All
//! three halt unconditionally on a schedule, so no fault plan can wedge them.

use congest_graph::{Distance, Graph, NodeId};

use crate::{Message, NodeCtx, Protocol};

/// BFS under a precomputed perfect wake schedule.
///
/// Node `v` sleeps until the round equal to its hop distance `d(v)`, receives
/// the wavefront from a distance-`d(v) − 1` neighbour (such a neighbour
/// always exists and announced in round `d(v) − 1`), announces its own
/// distance once, and halts. Messages to same- or smaller-distance
/// neighbours land on halted nodes and are lost — the engine's
/// `messages_lost` counter records exactly those.
#[derive(Debug, Clone)]
pub struct WaveBfs {
    /// The wake round of this node (its hop distance), or `None` for
    /// unreachable nodes, which halt immediately.
    wake: Option<u64>,
    /// The distance this node computed (the protocol's output).
    pub dist: Distance,
}

impl WaveBfs {
    /// The perfect wake schedule for a BFS from `sources` on `g`:
    /// `schedule[v] = Some(d(v))`, or `None` if `v` is unreachable.
    pub fn schedule(g: &Graph, sources: &[NodeId]) -> Vec<Option<u64>> {
        let truth = congest_graph::sequential::bfs(g, sources);
        g.nodes().map(|v| truth.distance(v).finite()).collect()
    }

    /// A node with the given wake round (an entry of [`WaveBfs::schedule`]).
    pub fn new(wake: Option<u64>) -> WaveBfs {
        WaveBfs { wake, dist: Distance::Infinite }
    }
}

impl Protocol for WaveBfs {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        match self.wake {
            Some(0) => {
                self.dist = Distance::ZERO;
                ctx.broadcast(&[0]);
                ctx.halt();
            }
            Some(w) => ctx.sleep_until(w),
            None => ctx.halt(),
        }
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        debug_assert_eq!(Some(ctx.round()), self.wake, "a node wakes exactly once");
        for msg in inbox {
            let cand = Distance::Finite(msg.word(0) + 1);
            if cand < self.dist {
                self.dist = cand;
            }
        }
        debug_assert_eq!(self.dist.finite(), self.wake, "the schedule is exact");
        if let Some(d) = self.dist.finite() {
            ctx.broadcast(&[d]);
        }
        ctx.halt();
    }
}

/// Oracle-free periodic ("pulsed") BFS.
///
/// Time is divided into periods of `period` rounds. Every node is awake for
/// the two rounds `k·period` (talk: announce a newly learned distance) and
/// `k·period + 1` (listen: collect announcements), and asleep otherwise, so
/// no announcement is ever lost. The wavefront crosses one hop per period;
/// after `hop_bound` periods every reachable node within the bound knows its
/// distance, and all nodes halt on the first listen round past
/// `(hop_bound + 2) · period`.
#[derive(Debug, Clone)]
pub struct PulseBfs {
    period: u64,
    /// The round after which nodes halt (derived from the hop bound).
    limit: u64,
    announced: bool,
    /// The hop distance this node computed (the protocol's output).
    pub dist: Distance,
}

impl PulseBfs {
    /// A node of a pulsed BFS with the given period (≥ 2) and hop bound
    /// (an upper bound on the hop diameter, `n` always suffices).
    ///
    /// # Panics
    ///
    /// Panics if `period < 2` (talk and listen rounds would collide).
    pub fn new(is_source: bool, period: u64, hop_bound: u64) -> PulseBfs {
        assert!(period >= 2, "pulse period must separate talk and listen rounds");
        PulseBfs {
            period,
            limit: (hop_bound + 2).saturating_mul(period),
            announced: false,
            dist: if is_source { Distance::ZERO } else { Distance::Infinite },
        }
    }

    /// The round of the next talk pulse strictly after `round`.
    fn next_pulse(&self, round: u64) -> u64 {
        (round / self.period + 1) * self.period
    }
}

impl Protocol for PulseBfs {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.sleep_until(self.period);
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        let r = ctx.round();
        if r % self.period == 0 {
            // Talk round: announce once, stay awake for the listen round.
            if !self.announced {
                if let Some(d) = self.dist.finite() {
                    ctx.broadcast(&[d]);
                    self.announced = true;
                }
            }
        } else {
            // Listen round: collect announcements, then sleep to the next
            // pulse (or halt once the bound guarantees quiescence).
            for msg in inbox {
                let cand = Distance::Finite(msg.word(0) + 1);
                if cand < self.dist {
                    self.dist = cand;
                }
            }
            if r >= self.limit {
                ctx.halt();
            } else {
                ctx.sleep_until(self.next_pulse(r));
            }
        }
    }
}

/// Always-awake full-bandwidth flooding.
///
/// Every node starts from its id, and in every round folds the words it
/// received into a running accumulator and broadcasts the accumulator over
/// every incident edge. All nodes halt together after round `until`. Nothing
/// ever sleeps, so every round moves exactly `2m` messages (one per edge per
/// direction, the capacity-1 CONGEST maximum) — the densest message workload
/// the model allows, and therefore the E13 message-fabric benchmark.
///
/// The accumulator depends on message *content and per-sender arrival
/// order*, so two engines only agree on the final states if their delivery
/// is bit-identical.
#[derive(Debug, Clone)]
pub struct Flood {
    until: u64,
    /// Running fold of everything received (the protocol's output).
    pub acc: u64,
}

impl Flood {
    /// A node of a flood that halts after round `until` (≥ 1).
    pub fn new(id: NodeId, until: u64) -> Flood {
        Flood { until, acc: 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(id.0 as u64 + 1) }
    }
}

impl Protocol for Flood {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.broadcast(&[self.acc]);
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        for msg in inbox {
            self.acc = self.acc.rotate_left(7) ^ msg.word(0);
        }
        if ctx.round() >= self.until {
            ctx.halt();
        } else {
            ctx.broadcast(&[self.acc]);
        }
    }
}

/// Always-awake hub/spoke ping-pong over targeted sends.
///
/// The hub sends one message to each of its neighbours every round through
/// [`crate::NodeCtx::send`] (the by-neighbour entry point), and every spoke
/// replies to the hub the same way; everyone halts after round `until`. On a
/// star graph the hub issues `n − 1` targeted sends per round, which makes
/// the per-call neighbour lookup the dominant cost: a linear adjacency scan
/// is `Θ(degree²)` per round, the indexed lookup `Θ(degree)`.
#[derive(Debug, Clone)]
pub struct HubPingPong {
    is_hub: bool,
    until: u64,
    /// Running fold of everything received (the protocol's output).
    pub acc: u64,
}

impl HubPingPong {
    /// A node of the ping-pong: `is_hub` for the high-degree centre (node 0
    /// of [`congest_graph::generators::star`]), spokes otherwise.
    pub fn new(is_hub: bool, until: u64) -> HubPingPong {
        HubPingPong { is_hub, until, acc: 0 }
    }

    fn ping(&self, ctx: &mut NodeCtx<'_>) {
        if self.is_hub {
            for i in 0..ctx.degree() {
                let to = ctx.neighbors()[i].neighbor;
                ctx.send(to, &[self.acc]);
            }
        } else {
            let hub = ctx.neighbors()[0].neighbor;
            ctx.send(hub, &[self.acc]);
        }
    }
}

impl Protocol for HubPingPong {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        self.acc = ctx.node_id().0 as u64;
        self.ping(ctx);
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        for msg in inbox {
            self.acc = self.acc.rotate_left(9) ^ msg.word(0);
        }
        if ctx.round() >= self.until {
            ctx.halt();
        } else {
            self.ping(ctx);
        }
    }
}

/// Chaos-hardened [`WaveBfs`]: the wave schedule stretched to tolerate
/// fault-injected delivery jitter of up to `skew` rounds.
///
/// Node `v` at hop distance `d(v)` is awake for the *window* of `skew + 1`
/// rounds starting at `d(v) · (skew + 1)`, rebroadcasts its best known
/// distance in every window round, and halts unconditionally at the window's
/// end — so no fault plan can wedge it, and every hop gets `skew + 1`
/// independent delivery attempts (loss resilience).
///
/// Under *pure* jitter bounded by `skew` (no drops) the output is exact: by
/// induction, a node's **last** window-round broadcast (round
/// `d·(skew+1) + skew`) carries its true distance, and its arrival — delayed
/// by at most `skew` — lands within `[(d+1)(skew+1), (d+1)(skew+1) + skew]`,
/// the awake window of the next layer, which therefore knows *its* true
/// distance by its own last window round. Earlier, luckier broadcasts may
/// arrive before the receiver's window opens and be lost to the sleeping
/// model (counted in `messages_lost`), but the final attempt cannot miss.
/// With `skew = 0` this degenerates to [`WaveBfs`] (single-round windows).
///
/// Under drops a node that misses all attempts of the true wavefront keeps
/// `Distance::Infinite` or settles on a same-layer overestimate — estimates
/// never *under*shoot, which is what makes the E14 degradation measurable as
/// a one-sided error.
#[derive(Debug, Clone)]
pub struct ChaosWaveBfs {
    /// First round of this node's awake window (already scaled by
    /// `skew + 1`), or `None` for unreachable nodes, which halt immediately.
    wake: Option<u64>,
    /// The jitter bound the schedule was stretched for.
    skew: u64,
    /// The distance this node computed (the protocol's output).
    pub dist: Distance,
}

impl ChaosWaveBfs {
    /// The stretched wake schedule for a BFS from `sources` on `g` under a
    /// jitter bound of `skew`: `schedule[v] = Some(d(v) · (skew + 1))`, or
    /// `None` if `v` is unreachable.
    pub fn schedule(g: &Graph, sources: &[NodeId], skew: u64) -> Vec<Option<u64>> {
        let truth = congest_graph::sequential::bfs(g, sources);
        g.nodes().map(|v| truth.distance(v).finite().map(|d| d * (skew + 1))).collect()
    }

    /// A node with the given window start (an entry of
    /// [`ChaosWaveBfs::schedule`]) and jitter bound.
    pub fn new(wake: Option<u64>, skew: u64) -> ChaosWaveBfs {
        ChaosWaveBfs { wake, skew, dist: Distance::Infinite }
    }

    /// Absorb arrivals, rebroadcast the best known distance, halt at the end
    /// of the window.
    fn pulse(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        for msg in inbox {
            let cand = Distance::Finite(msg.word(0) + 1);
            if cand < self.dist {
                self.dist = cand;
            }
        }
        if let Some(d) = self.dist.finite() {
            ctx.broadcast(&[d]);
        }
        let window_end = self.wake.expect("only scheduled nodes pulse") + self.skew;
        if ctx.round() >= window_end {
            ctx.halt();
        }
        // Otherwise stay awake: the default wake-up is the next round.
    }
}

impl Protocol for ChaosWaveBfs {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        match self.wake {
            Some(0) => {
                self.dist = Distance::ZERO;
                self.pulse(ctx, &[]);
            }
            Some(w) => ctx.sleep_until(w),
            None => ctx.halt(),
        }
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        self.pulse(ctx, inbox);
    }
}

/// Chaos-hardened [`PulseBfs`]: re-announces every talk pulse (no
/// announce-once latch), listens in *both* pulse rounds (a jittered arrival
/// can land on a talk round), and halts unconditionally once the round limit
/// passes — so message loss costs accuracy, never termination.
///
/// Repeated announcements give each hop one delivery attempt per period;
/// under a drop rate `p` the chance a hop stays unserved decays
/// geometrically with the periods remaining, which is the graceful-
/// degradation profile E14 measures. Estimates only ever decrease toward the
/// truth and candidates are always `sender's estimate + 1`, so partial
/// information yields overestimates, never undershoots.
#[derive(Debug, Clone)]
pub struct ChaosPulseBfs {
    period: u64,
    /// The round after which nodes halt (derived from the hop bound).
    limit: u64,
    /// The hop distance this node computed (the protocol's output).
    pub dist: Distance,
}

impl ChaosPulseBfs {
    /// A node of a chaos-pulsed BFS with the given period (≥ 2) and hop
    /// bound. The same `(hop_bound + 2) · period` halt schedule as
    /// [`PulseBfs::new`].
    ///
    /// # Panics
    ///
    /// Panics if `period < 2` (talk and listen rounds would collide).
    pub fn new(is_source: bool, period: u64, hop_bound: u64) -> ChaosPulseBfs {
        assert!(period >= 2, "pulse period must separate talk and listen rounds");
        ChaosPulseBfs {
            period,
            limit: (hop_bound + 2).saturating_mul(period),
            dist: if is_source { Distance::ZERO } else { Distance::Infinite },
        }
    }

    fn absorb(&mut self, inbox: &[Message]) {
        for msg in inbox {
            let cand = Distance::Finite(msg.word(0) + 1);
            if cand < self.dist {
                self.dist = cand;
            }
        }
    }
}

impl Protocol for ChaosPulseBfs {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.sleep_until(self.period);
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        let r = ctx.round();
        self.absorb(inbox);
        if r % self.period == 0 {
            // Talk round: re-announce the current best, every period — the
            // redundancy that buys loss tolerance. Stay awake to listen.
            if let Some(d) = self.dist.finite() {
                ctx.broadcast(&[d]);
            }
        } else if r >= self.limit {
            // Unconditional halt: the safety net against wedging.
            ctx.halt();
        } else {
            ctx.sleep_until((r / self.period + 1) * self.period);
        }
    }
}

/// Chaos-instrumented [`Flood`]: the same always-awake full-bandwidth
/// workload, plus a per-node count of *received* messages, so a faulty run's
/// delivery ratio is measurable directly
/// (`Σ received = messages − messages_lost − fault_drops`).
#[derive(Debug, Clone)]
pub struct ChaosFlood {
    until: u64,
    /// Running fold of everything received (the protocol's output).
    pub acc: u64,
    /// Number of messages this node received.
    pub received: u64,
}

impl ChaosFlood {
    /// A node of a flood that halts after round `until` (≥ 1).
    pub fn new(id: NodeId, until: u64) -> ChaosFlood {
        ChaosFlood {
            until,
            acc: 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(id.0 as u64 + 1),
            received: 0,
        }
    }
}

impl Protocol for ChaosFlood {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.broadcast(&[self.acc]);
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        self.received += inbox.len() as u64;
        for msg in inbox {
            self.acc = self.acc.rotate_left(7) ^ msg.word(0);
        }
        if ctx.round() >= self.until {
            ctx.halt();
        } else {
            ctx.broadcast(&[self.acc]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, FaultPlan, SimConfig};
    use congest_graph::{generators, sequential};

    #[test]
    fn wave_bfs_computes_distances_with_constant_energy() {
        let g = generators::random_connected(60, 90, 17);
        let sched = WaveBfs::schedule(&g, &[NodeId(0)]);
        let run = Engine::new(&g, SimConfig::default())
            .run(|id| WaveBfs::new(sched[id.index()]))
            .unwrap();
        let truth = sequential::bfs(&g, &[NodeId(0)]);
        for v in g.nodes() {
            assert_eq!(run.states[v.index()].dist, truth.distance(v), "node {v}");
        }
        // Each node is awake exactly twice: init and its wave round (sources
        // and unreachable nodes only once — they halt at init).
        assert!(run.metrics.max_energy() <= 2);
        // Exactly one message is delivered per tight edge (distance gap 1,
        // downhill endpoint to uphill endpoint); every other announcement
        // lands on a halted node and is counted as lost.
        let delivered = g
            .edges()
            .iter()
            .filter(|e| {
                matches!(
                    (truth.distance(e.u).finite(), truth.distance(e.v).finite()),
                    (Some(a), Some(b)) if a.abs_diff(b) == 1
                )
            })
            .count() as u64;
        assert_eq!(run.metrics.messages_lost, run.metrics.messages - delivered);
    }

    #[test]
    fn wave_bfs_handles_unreachable_components() {
        let g = generators::disjoint_copies(&generators::path(5, 1), 2);
        let sched = WaveBfs::schedule(&g, &[NodeId(0)]);
        let run = Engine::new(&g, SimConfig::default())
            .run(|id| WaveBfs::new(sched[id.index()]))
            .unwrap();
        for v in 5..10 {
            assert!(run.states[v].dist.is_infinite());
            assert_eq!(run.metrics.node_energy[v], 1, "unreachable nodes halt at init");
        }
    }

    #[test]
    fn pulse_bfs_computes_distances_without_an_oracle() {
        let g = generators::grid(7, 5, 1);
        let n = g.node_count();
        let run = Engine::new(&g, SimConfig::default())
            .run(|id| PulseBfs::new(id == NodeId(0), 8, n as u64))
            .unwrap();
        let truth = sequential::bfs(&g, &[NodeId(0)]);
        for v in g.nodes() {
            assert_eq!(run.states[v.index()].dist, truth.distance(v), "node {v}");
        }
        // The pulse schedule never drops an announcement.
        assert_eq!(run.metrics.messages_lost, 0);
        // Nodes sleep out most of each period.
        assert!(run.metrics.max_energy() as f64 <= run.metrics.rounds as f64 * 2.0 / 8.0 + 3.0);
    }

    #[test]
    fn both_wave_workloads_agree_across_engines() {
        let g = generators::grid(6, 6, 1);
        let sched = WaveBfs::schedule(&g, &[NodeId(0)]);
        let cfg = SimConfig::default();
        let fast = Engine::new(&g, cfg.clone()).run(|id| WaveBfs::new(sched[id.index()])).unwrap();
        let slow = Engine::new(&g, cfg.clone())
            .run_reference(|id| WaveBfs::new(sched[id.index()]))
            .unwrap();
        assert_eq!(fast.metrics, slow.metrics);

        let n = g.node_count() as u64;
        let fast =
            Engine::new(&g, cfg.clone()).run(|id| PulseBfs::new(id == NodeId(0), 4, n)).unwrap();
        let slow =
            Engine::new(&g, cfg).run_reference(|id| PulseBfs::new(id == NodeId(0), 4, n)).unwrap();
        assert_eq!(fast.metrics, slow.metrics);
    }

    #[test]
    #[should_panic(expected = "pulse period")]
    fn pulse_period_one_is_rejected() {
        let _ = PulseBfs::new(true, 1, 10);
    }

    #[test]
    fn flood_saturates_every_edge_every_round() {
        let g = generators::random_connected(24, 40, 3);
        let until = 10u64;
        let run = Engine::new(&g, SimConfig::default()).run(|id| Flood::new(id, until)).unwrap();
        // Rounds 0..until broadcast 2m messages each; round `until` only
        // folds and halts, so the final wave still finds everyone awake.
        assert_eq!(run.metrics.rounds, until + 1);
        assert_eq!(run.metrics.messages, 2 * g.edge_count() as u64 * until);
        assert_eq!(run.metrics.messages_lost, 0);
        assert_eq!(run.metrics.max_energy(), until + 1);
        assert_eq!(run.metrics.capacity_violations, 0);
    }

    #[test]
    fn hub_ping_pong_counts_match_on_a_star() {
        let g = generators::star(16, 1);
        let until = 6u64;
        let run = Engine::new(&g, SimConfig::default())
            .run(|id| HubPingPong::new(id == NodeId(0), until))
            .unwrap();
        // Rounds 0..until each move `degree` hub sends plus one reply per
        // spoke; round `until` only folds and halts.
        assert_eq!(run.metrics.rounds, until + 1);
        assert_eq!(run.metrics.messages, 2 * 15 * until);
        assert_eq!(run.metrics.messages_lost, 0);
        assert_eq!(run.metrics.capacity_violations, 0);
    }

    #[test]
    fn message_fabric_workloads_agree_across_engines() {
        let cfg = SimConfig::default();
        let g = generators::random_connected(20, 35, 9);
        let fast = Engine::new(&g, cfg.clone()).run(|id| Flood::new(id, 12)).unwrap();
        let slow = Engine::new(&g, cfg.clone()).run_reference(|id| Flood::new(id, 12)).unwrap();
        assert_eq!(fast.metrics, slow.metrics);
        let fa: Vec<u64> = fast.states.iter().map(|s| s.acc).collect();
        let sa: Vec<u64> = slow.states.iter().map(|s| s.acc).collect();
        assert_eq!(fa, sa, "flood folds must be bit-identical");

        let g = generators::star(12, 1);
        let fast =
            Engine::new(&g, cfg.clone()).run(|id| HubPingPong::new(id == NodeId(0), 8)).unwrap();
        let slow =
            Engine::new(&g, cfg).run_reference(|id| HubPingPong::new(id == NodeId(0), 8)).unwrap();
        assert_eq!(fast.metrics, slow.metrics);
        let fa: Vec<u64> = fast.states.iter().map(|s| s.acc).collect();
        let sa: Vec<u64> = slow.states.iter().map(|s| s.acc).collect();
        assert_eq!(fa, sa, "ping-pong folds must be bit-identical");
    }

    #[test]
    fn chaos_wave_bfs_with_zero_skew_matches_plain_wave_bfs() {
        let g = generators::grid(6, 5, 1);
        let sched = ChaosWaveBfs::schedule(&g, &[NodeId(0)], 0);
        assert_eq!(sched, WaveBfs::schedule(&g, &[NodeId(0)]));
        let run = Engine::new(&g, SimConfig::default())
            .run(|id| ChaosWaveBfs::new(sched[id.index()], 0))
            .unwrap();
        let truth = sequential::bfs(&g, &[NodeId(0)]);
        for v in g.nodes() {
            assert_eq!(run.states[v.index()].dist, truth.distance(v), "node {v}");
        }
        assert!(run.metrics.max_energy() <= 2, "zero-skew windows are single rounds");
    }

    #[test]
    fn chaos_wave_bfs_is_exact_under_pure_bounded_jitter() {
        // The headline guarantee: jitter alone (no drops) cannot corrupt the
        // output, on either engine, because the last rebroadcast of each
        // window always lands inside the next layer's window.
        let g = generators::random_connected(48, 70, 29);
        let truth = sequential::bfs(&g, &[NodeId(0)]);
        for skew in [1u64, 3] {
            let sched = ChaosWaveBfs::schedule(&g, &[NodeId(0)], skew);
            let cfg = SimConfig::default()
                .with_faults(FaultPlan::none().with_seed(99).with_max_skew(skew));
            let fast = Engine::new(&g, cfg.clone())
                .run(|id| ChaosWaveBfs::new(sched[id.index()], skew))
                .unwrap();
            let slow = Engine::new(&g, cfg)
                .run_reference(|id| ChaosWaveBfs::new(sched[id.index()], skew))
                .unwrap();
            assert_eq!(fast.metrics, slow.metrics, "skew {skew}");
            for v in g.nodes() {
                assert_eq!(fast.states[v.index()].dist, truth.distance(v), "node {v} skew {skew}");
                assert_eq!(slow.states[v.index()].dist, truth.distance(v), "node {v} skew {skew}");
            }
            assert!(fast.metrics.fault_delays > 0, "skew {skew} must actually jitter");
            // Each node is awake for init plus at most its skew+1 window.
            assert!(fast.metrics.max_energy() <= skew + 2);
        }
    }

    #[test]
    fn chaos_pulse_bfs_matches_pulse_bfs_without_faults_and_never_wedges_with() {
        let g = generators::grid(5, 5, 1);
        let n = g.node_count() as u64;
        let run = Engine::new(&g, SimConfig::default())
            .run(|id| ChaosPulseBfs::new(id == NodeId(0), 6, n))
            .unwrap();
        let truth = sequential::bfs(&g, &[NodeId(0)]);
        for v in g.nodes() {
            assert_eq!(run.states[v.index()].dist, truth.distance(v), "node {v}");
        }
        // Under heavy loss the distances may degrade, but the unconditional
        // halt schedule still terminates the run well inside the limit.
        let cfg = SimConfig::default()
            .with_faults(FaultPlan::none().with_seed(3).with_drop_ppm(400_000).with_max_skew(2));
        let lossy =
            Engine::new(&g, cfg).run(|id| ChaosPulseBfs::new(id == NodeId(0), 6, n)).unwrap();
        assert!(lossy.metrics.rounds <= (n + 2) * 6 + 2);
        assert!(lossy.metrics.fault_drops > 0);
        for v in g.nodes() {
            // One-sided degradation: estimates never undershoot the truth.
            if let Some(est) = lossy.states[v.index()].dist.finite() {
                assert!(est >= truth.distance(v).expect_finite(), "node {v}");
            }
        }
    }

    #[test]
    fn chaos_flood_counts_deliveries_exactly() {
        let g = generators::random_connected(20, 30, 5);
        let cfg = SimConfig::default()
            .with_faults(FaultPlan::none().with_seed(12).with_drop_ppm(150_000).with_max_skew(1));
        let run = Engine::new(&g, cfg).run(|id| ChaosFlood::new(id, 12)).unwrap();
        let received: u64 = run.states.iter().map(|s| s.received).sum();
        assert_eq!(
            received,
            run.metrics.messages - run.metrics.messages_lost - run.metrics.fault_drops,
            "every sent message is delivered, slept away, or fault-dropped"
        );
        assert!(run.metrics.fault_drops > 0);
    }
}
