//! A synchronous message-passing simulator for the CONGEST and sleeping
//! ("energy") models of distributed computing, as used by the paper
//! *"A Near-Optimal Low-Energy Deterministic Distributed SSSP with
//! Ramifications on Congestion and APSP"* (Ghaffari & Trygub, PODC 2024).
//!
//! # Model
//!
//! The network is an undirected weighted graph (a [`congest_graph::Graph`]).
//! Computation proceeds in synchronous rounds. Per round, each *awake* node
//! receives the messages sent to it in the previous round, performs local
//! computation, and sends at most [`SimConfig::edge_capacity`] messages of at
//! most [`SimConfig::max_message_words`] machine words over each incident
//! edge. A *sleeping* node does nothing and **loses** any message sent to it
//! (this is the sleeping model of the paper, Section 1.2).
//!
//! The simulator measures exactly the quantities the paper's theorems bound:
//!
//! * **time** — number of rounds until every node has halted,
//! * **message complexity** — total messages sent,
//! * **congestion** — maximum number of messages sent over any single edge,
//! * **energy** — maximum number of awake rounds over any single node.
//!
//! It additionally counts **lost messages** ([`Metrics::messages_lost`]):
//! sends whose recipient was sleeping or halted at delivery time. The model
//! drops these silently; the counter makes the drops observable, because an
//! unexpected loss is almost always a protocol bug.
//!
//! # Fault injection
//!
//! On top of the well-behaved model, [`SimConfig::faults`] can carry a
//! seeded, deterministic [`FaultPlan`]: random message drops (uniform or
//! per-edge probabilities), node crash/restart churn at chosen rounds with a
//! full state reset, and bounded per-edge delivery-latency jitter. Both
//! engines apply the identical fault schedule — the differential harnesses
//! extend to faulty runs unchanged — and fault losses are counted separately
//! ([`Metrics::fault_drops`]) from sleeping-model losses. The empty plan
//! ([`FaultPlan::none`], the default) leaves both engines on their original
//! fault-free paths, bit for bit. See `docs/FAULT_MODEL.md` for the taxonomy
//! and guarantees, and `EXPERIMENTS.md` (E14) for the measured degradation
//! matrix of the algorithm registry.
//!
//! # Execution model and cost
//!
//! [`Engine::run`] is built around an *active set*: an explicit wake queue
//! (a bucket queue keyed by each node's `wake_at` round) plus a per-round
//! delivery arena. A round's simulation cost is proportional to the number
//! of **awake nodes plus in-flight messages** in that round — sleeping nodes
//! cost zero, empty rounds cost `O(1)`, and contiguous idle spans are
//! fast-forwarded ([`SimConfig::fast_forward_idle`]). A full execution
//! therefore costs `O(total awake work + total messages)`, **not**
//! `O(n · rounds)` — the property that makes simulating low-energy protocols
//! (the paper's `poly(log n)` awake rounds per node) cheap even at large `n`
//! and huge round counts. The pre-refactor `Θ(n)`-per-round sweep is retained
//! as [`Engine::run_reference`], the oracle for differential tests and the
//! baseline of the engine-throughput experiment (`EXPERIMENTS.md`, E11).
//!
//! The message path itself is *allocation-free in steady state*: payloads are
//! inline [`Words`] values (a message is `B = O(log n)` bits — a constant
//! number of words), [`Message`] is `Copy`, and sends land in engine-owned,
//! round-reused buffers. See the E13 message-throughput experiment and
//! `tests/alloc_regression.rs`.
//!
//! # Writing a protocol
//!
//! A protocol is a per-node state machine implementing [`Protocol`]. The
//! engine instantiates one state machine per node and drives them round by
//! round:
//!
//! ```
//! use congest_graph::generators;
//! use congest_sim::{Engine, Message, NodeCtx, Protocol, SimConfig};
//!
//! /// Each node learns the minimum node id in its connected component by
//! /// flooding: a classic warm-up protocol.
//! #[derive(Debug, Clone)]
//! struct MinFlood { best: u64, rounds_quiet: u32 }
//!
//! impl Protocol for MinFlood {
//!     fn init(&mut self, ctx: &mut NodeCtx<'_>) {
//!         self.best = ctx.node_id().0 as u64;
//!         ctx.broadcast(&[self.best]);
//!     }
//!     fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
//!         let before = self.best;
//!         for m in inbox {
//!             self.best = self.best.min(m.words[0]);
//!         }
//!         if self.best < before {
//!             ctx.broadcast(&[self.best]);
//!             self.rounds_quiet = 0;
//!         } else {
//!             self.rounds_quiet += 1;
//!             // The component has hop-diameter < n, so after n quiet rounds
//!             // no further improvement can arrive. Note that an always-awake
//!             // protocol like this one keeps every node in the wake queue
//!             // every round; it halts by counting quiet rounds, and pays for
//!             // each of them. A sleeping-model protocol would sleep instead
//!             // — the engine's active-set scheduler then skips the node
//!             // entirely, and whole-network idle spans are fast-forwarded.
//!             if self.rounds_quiet > ctx.node_count() {
//!                 ctx.halt();
//!             }
//!         }
//!     }
//! }
//!
//! let g = generators::random_connected(32, 40, 7);
//! let run = Engine::new(&g, SimConfig::default())
//!     .run(|_id| MinFlood { best: 0, rounds_quiet: 0 })
//!     .unwrap();
//! assert!(run.states.iter().all(|s| s.best == 0));
//! assert!(run.metrics.rounds > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
pub mod fault;
mod message;
mod metrics;
mod network;
mod node;
pub mod scheduler;
pub mod workloads;

pub use engine::{Engine, RunOutcome};
pub use error::SimError;
pub use fault::{CrashEvent, FaultPlan};
pub use message::{Message, Words};
pub use metrics::{EdgeUsageTrace, Metrics};
pub use network::Network;
pub use node::{NodeCtx, Protocol};

use serde::{Deserialize, Serialize};

/// Configuration of the simulated CONGEST / sleeping model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Maximum number of messages a node may send over one edge (one
    /// direction) in one round. The classic CONGEST model has capacity 1; the
    /// paper's "megaround" device (Section 3.1.3) corresponds to a larger
    /// capacity whose width is charged to the time/energy accounting by the
    /// caller.
    pub edge_capacity: u32,
    /// Maximum number of `u64` words per message (`B = O(log n)` bits in the
    /// paper; one word comfortably holds an id or a distance, so a constant
    /// number of words is `O(log n)` bits).
    ///
    /// Message payloads are stored *inline* with capacity [`Words::CAPACITY`]
    /// (= the default here), so values above that are clamped: the engines
    /// enforce [`SimConfig::effective_max_words`]. In lenient mode
    /// (`strict_capacity: false`) an oversized send is counted as a violation
    /// and delivered truncated to the inline capacity — identically in both
    /// engines.
    pub max_message_words: usize,
    /// Hard limit on the number of simulated rounds; exceeded limits produce
    /// [`SimError::RoundLimitExceeded`] rather than looping forever.
    pub max_rounds: u64,
    /// If `true` (default), rounds in which every node is asleep and no
    /// message is in flight are fast-forwarded to the next scheduled wake-up.
    /// The skipped rounds still count toward the round total (they happen in
    /// the model; nobody is awake during them), but they cost no simulation
    /// work. Essential for low-energy protocols with long sleep periods.
    pub fast_forward_idle: bool,
    /// If `true`, exceeding `edge_capacity` or `max_message_words` is a hard
    /// error; if `false`, violations are only counted in
    /// [`Metrics::capacity_violations`].
    pub strict_capacity: bool,
    /// Record the per-edge, per-round usage trace needed by the random-delay
    /// scheduler (costs memory proportional to rounds × edges used).
    pub record_edge_trace: bool,
    /// The fault-injection plan (message loss, node churn, delivery jitter).
    /// Defaults to [`FaultPlan::none`], which keeps both engines on their
    /// unmodified fault-free paths. See the [`fault`] module docs.
    pub faults: FaultPlan,
    /// Number of worker threads [`Engine::run`] steps awake nodes on.
    ///
    /// * `1` (the default) — the sequential engine, unchanged.
    /// * `0` — resolve to the host's available parallelism at run time.
    /// * `k > 1` — shard the nodes across `k` workers.
    ///
    /// Results are **bit-identical at every thread count** — sharding is an
    /// execution strategy, not a semantic knob; see the shard-merge notes in
    /// the engine module docs. The `SIM_THREADS` environment variable, when
    /// set to a parseable value, overrides this field (same semantics, `0` =
    /// auto), so CI can re-run an entire test suite sharded without touching
    /// any configuration. See [`SimConfig::resolved_threads`].
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            edge_capacity: 1,
            max_message_words: 4,
            max_rounds: 10_000_000,
            fast_forward_idle: true,
            strict_capacity: true,
            record_edge_trace: false,
            faults: FaultPlan::none(),
            threads: 1,
        }
    }
}

impl SimConfig {
    /// A configuration with a larger per-edge capacity (a "megaround" of the
    /// given width, Section 3.1.3 of the paper).
    pub fn with_edge_capacity(mut self, capacity: u32) -> Self {
        self.edge_capacity = capacity;
        self
    }

    /// Enables or disables recording of the per-edge usage trace.
    pub fn with_edge_trace(mut self, record: bool) -> Self {
        self.record_edge_trace = record;
        self
    }

    /// Sets the round limit.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the worker-thread count (see [`SimConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The per-message word bound the engines actually enforce:
    /// [`SimConfig::max_message_words`] clamped to the inline payload
    /// capacity [`Words::CAPACITY`].
    pub fn effective_max_words(&self) -> usize {
        self.max_message_words.min(Words::CAPACITY)
    }

    /// The worker-thread count [`Engine::run`] will actually use: the
    /// `SIM_THREADS` environment variable if set to a parseable value,
    /// otherwise [`SimConfig::threads`], with `0` resolving to the host's
    /// available parallelism (and an unreadable host falling back to `1`).
    pub fn resolved_threads(&self) -> usize {
        let env = std::env::var("SIM_THREADS").ok().and_then(|s| s.trim().parse::<usize>().ok());
        Self::resolve_threads(env, self.threads)
    }

    /// Pure resolution rule behind [`SimConfig::resolved_threads`], split out
    /// so the precedence is testable without touching process environment.
    fn resolve_threads(env_override: Option<usize>, configured: usize) -> usize {
        let requested = env_override.unwrap_or(configured);
        if requested == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            requested
        }
    }
}

#[cfg(test)]
mod config_tests {
    use super::SimConfig;

    #[test]
    fn thread_resolution_precedence() {
        // Env override wins, including `0 = auto`; absent env falls back to
        // the configured value; `0` resolves to at least one thread.
        assert_eq!(SimConfig::resolve_threads(Some(3), 1), 3);
        assert_eq!(SimConfig::resolve_threads(None, 4), 4);
        assert!(SimConfig::resolve_threads(Some(0), 1) >= 1);
        assert!(SimConfig::resolve_threads(None, 0) >= 1);
        assert_eq!(SimConfig::default().with_threads(2).threads, 2);
        assert_eq!(SimConfig::default().threads, 1, "default stays sequential");
    }
}
