//! Error types for the simulator.

use std::error::Error;
use std::fmt;

use congest_graph::{EdgeId, NodeId};

/// Errors produced while running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The simulation did not terminate within [`crate::SimConfig::max_rounds`].
    RoundLimitExceeded {
        /// The configured round limit.
        limit: u64,
        /// Number of nodes that had not halted when the limit was hit.
        unhalted_nodes: u32,
    },
    /// A node attempted to send more messages over an edge in one round than
    /// the configured capacity allows (only with `strict_capacity`).
    EdgeCapacityExceeded {
        /// The sending node.
        node: NodeId,
        /// The edge used.
        edge: EdgeId,
        /// The simulation round.
        round: u64,
        /// The configured capacity.
        capacity: u32,
    },
    /// A message exceeded the configured maximum number of words (only with
    /// `strict_capacity`).
    MessageTooLarge {
        /// The sending node.
        node: NodeId,
        /// Number of words in the offending message.
        words: usize,
        /// The configured maximum.
        max_words: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RoundLimitExceeded { limit, unhalted_nodes } => write!(
                f,
                "simulation exceeded the round limit of {limit} with {unhalted_nodes} nodes still running"
            ),
            SimError::EdgeCapacityExceeded { node, edge, round, capacity } => write!(
                f,
                "node {node} sent more than {capacity} messages over edge {edge} in round {round}"
            ),
            SimError::MessageTooLarge { node, words, max_words } => write!(
                f,
                "node {node} sent a message of {words} words, exceeding the limit of {max_words}"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_key_facts() {
        let e = SimError::RoundLimitExceeded { limit: 100, unhalted_nodes: 3 };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("3"));
        let e = SimError::EdgeCapacityExceeded {
            node: NodeId(1),
            edge: EdgeId(2),
            round: 7,
            capacity: 1,
        };
        assert!(e.to_string().contains("v1"));
        assert!(e.to_string().contains("e2"));
        let e = SimError::MessageTooLarge { node: NodeId(0), words: 9, max_words: 4 };
        assert!(e.to_string().contains("9 words"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<SimError>();
    }
}
