//! Differential testing of the event-driven scheduler against the retained
//! round-by-round reference loop.
//!
//! Random trace sets (random lengths, sparse per-round edge usage including
//! zero-count entries and empty rounds), random delays, and random capacities
//! run through both [`schedule_with_delays`] (event-driven, via
//! `ScheduleBuilder`) and [`schedule_reference`]. The two must produce
//! identical [`ScheduleOutcome`]s — makespan, model rounds, congestion,
//! dilation, peak backlog, everything. A fixed matrix of edge cases (empty
//! input, all-zero traces, capacity far above the congestion, single
//! instance, trailing message-free rounds, adversarial same-edge pileups)
//! complements the random sweep.

use congest_graph::EdgeId;
use congest_sim::scheduler::{schedule_reference, schedule_with_delays, ScheduleOutcome};
use congest_sim::EdgeUsageTrace;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates a pseudo-random trace set plus per-instance delays from a seed.
fn random_workload(
    seed: u64,
    instances: usize,
    max_len: usize,
    edge_span: u32,
    max_delay: u64,
) -> (Vec<EdgeUsageTrace>, Vec<u64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut traces = Vec::with_capacity(instances);
    let mut delays = Vec::with_capacity(instances);
    for _ in 0..instances {
        let len = rng.gen_range(0..=max_len);
        let mut rounds = Vec::with_capacity(len);
        for _ in 0..len {
            let entries = rng.gen_range(0..4usize);
            let mut round = Vec::with_capacity(entries);
            for _ in 0..entries {
                // Zero counts are deliberately included: they must be inert
                // in both schedulers.
                round.push((EdgeId(rng.gen_range(0..edge_span)), rng.gen_range(0..5u32)));
            }
            rounds.push(round);
        }
        traces.push(EdgeUsageTrace { rounds });
        delays.push(if max_delay == 0 { 0 } else { rng.gen_range(0..max_delay) });
    }
    (traces, delays)
}

/// Runs both schedulers and asserts identical outcomes; returns the outcome
/// so callers can pile on further invariants.
fn assert_schedulers_equivalent(
    traces: &[EdgeUsageTrace],
    delays: &[u64],
    capacity: u32,
) -> ScheduleOutcome {
    let event = schedule_with_delays(traces, delays, capacity);
    let reference = schedule_reference(traces, delays, capacity);
    assert_eq!(
        event, reference,
        "event-driven and reference schedulers diverged (capacity {capacity})"
    );
    event
}

/// Invariants every outcome must satisfy regardless of input.
fn assert_outcome_invariants(out: &ScheduleOutcome, capacity: u32) {
    assert_eq!(out.model_rounds, out.makespan * capacity as u64);
    assert!(out.dilation <= out.makespan);
    assert!(out.congestion <= out.total_messages);
    assert!(out.max_edge_backlog <= out.total_messages);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn schedulers_agree_on_random_workloads(
        seed in 0u64..1_000_000,
        instances in 0usize..12,
        max_len in 0usize..10,
        edge_span in 1u32..8,
        max_delay in 0u64..20,
        capacity in 1u32..5,
    ) {
        let (traces, delays) = random_workload(seed, instances, max_len, edge_span, max_delay);
        let out = assert_schedulers_equivalent(&traces, &delays, capacity);
        assert_outcome_invariants(&out, capacity);
        // Termination/tightness bound: once arrivals stop (at the horizon),
        // the worst edge drains in ceil(congestion / capacity) rounds.
        let horizon = traces
            .iter()
            .zip(&delays)
            .map(|(t, &d)| t.len() as u64 + d)
            .max()
            .unwrap_or(0);
        prop_assert!(
            out.makespan <= horizon + out.congestion.div_ceil(capacity as u64),
            "makespan {} beyond horizon {} + ceil({} / {})",
            out.makespan, horizon, out.congestion, capacity
        );
    }

    #[test]
    fn schedulers_agree_on_contended_single_edge_workloads(
        seed in 0u64..1_000_000,
        instances in 1usize..16,
        capacity in 1u32..4,
    ) {
        // Everything on edge 0: maximal queueing, exercises long lazy drains.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let traces: Vec<EdgeUsageTrace> = (0..instances)
            .map(|_| {
                let len = rng.gen_range(1..8usize);
                EdgeUsageTrace {
                    rounds: (0..len)
                        .map(|_| vec![(EdgeId(0), rng.gen_range(0..6u32))])
                        .collect(),
                }
            })
            .collect();
        let delays: Vec<u64> = (0..instances).map(|_| rng.gen_range(0..6u64)).collect();
        let out = assert_schedulers_equivalent(&traces, &delays, capacity);
        assert_outcome_invariants(&out, capacity);
    }
}

#[test]
fn schedulers_agree_on_edge_case_matrix() {
    let burst = |e: u32, c: u32| EdgeUsageTrace { rounds: vec![vec![(EdgeId(e), c)]] };
    let silent = |len: usize| EdgeUsageTrace { rounds: vec![Vec::new(); len] };
    let cases: Vec<(&str, Vec<EdgeUsageTrace>, Vec<u64>)> = vec![
        ("empty input", vec![], vec![]),
        ("single empty trace", vec![EdgeUsageTrace::default()], vec![0]),
        ("single empty trace, delayed", vec![EdgeUsageTrace::default()], vec![9]),
        ("all-zero counts", vec![EdgeUsageTrace { rounds: vec![vec![(EdgeId(2), 0)]] }], vec![3]),
        ("message-free rounds only", vec![silent(5), silent(2)], vec![1, 7]),
        ("single instance", vec![burst(0, 4)], vec![0]),
        ("single instance, delayed", vec![burst(3, 7)], vec![11]),
        (
            "trailing silence after a burst",
            vec![EdgeUsageTrace {
                rounds: vec![vec![(EdgeId(0), 9)], vec![], vec![], vec![], vec![]],
            }],
            vec![0],
        ),
        ("pileup on one edge", (0..6).map(|_| burst(1, 3)).collect(), vec![0, 0, 1, 1, 2, 2]),
        ("disjoint edges", (0..5).map(|e| burst(e, 2)).collect(), vec![0, 1, 2, 3, 4]),
    ];
    for capacity in [1u32, 2, 7, 1000] {
        for (label, traces, delays) in &cases {
            let out = assert_schedulers_equivalent(traces, delays, capacity);
            assert_eq!(
                out.model_rounds,
                out.makespan * capacity as u64,
                "model-round consistency broken for case {label:?} at capacity {capacity}"
            );
        }
    }
}

#[test]
fn huge_capacity_collapses_makespan_to_the_horizon() {
    // Capacity far above the congestion: every arrival is served the round it
    // lands, so the makespan is exactly the horizon.
    let traces: Vec<EdgeUsageTrace> =
        (0..8).map(|_| EdgeUsageTrace { rounds: vec![vec![(EdgeId(0), 3)]; 4] }).collect();
    let delays = vec![0, 1, 2, 3, 4, 5, 6, 7];
    let out = assert_schedulers_equivalent(&traces, &delays, 10_000);
    assert_eq!(out.makespan, 4 + 7, "horizon = max(len + delay)");
    // Everything is served the round it arrives, so the peak backlog is the
    // largest single-round arrival: 4 overlapping instances x 3 messages.
    assert_eq!(out.max_edge_backlog, 12);
    assert_eq!(out.model_rounds, out.makespan * 10_000);
}

#[test]
fn event_scheduler_handles_sparse_far_apart_arrivals_cheaply() {
    // Two arrivals 50k rounds apart: the event scheduler's cost is a handful
    // of bucket entries (plus the bucket vector), not 50k x instances trace
    // probes per round. This is a correctness check that distant batches
    // still finalize their service spans properly.
    let mut rounds = vec![vec![(EdgeId(0), 5)]];
    rounds.extend(std::iter::repeat_with(Vec::new).take(50_000 - 1));
    rounds.push(vec![(EdgeId(0), 2)]);
    let traces = vec![EdgeUsageTrace { rounds }];
    let out = assert_schedulers_equivalent(&traces, &[0], 1);
    assert_eq!(out.makespan, 50_002, "second batch serves at rounds 50000-50001");
    assert_eq!(out.max_edge_backlog, 5);
    assert_eq!(out.congestion, 7);
}
