//! Differential testing of the sharded engine against the sequential one.
//!
//! The sharding design note in `engine/mod.rs` claims results are
//! **bit-identical at every thread count** — sharding is an execution
//! strategy, not a semantic knob. This harness checks that claim the same way
//! `engine_equivalence.rs` checks the active-set engine against the naive
//! loop: a pseudo-random chaos protocol (random sends, sleeps, halts, and a
//! running digest over message content/order/arrival round) runs on random
//! graphs under random configurations *and random fault plans*, once per
//! thread count in `{1, 2, 4}` plus once through `run_reference`. Metrics,
//! edge traces, and per-node state digests must agree exactly across all
//! four executions — and strict-mode errors must be the *same* error.

use congest_graph::{generators, Graph, NodeId};
use congest_sim::fault::FaultPlan;
use congest_sim::workloads::WaveBfs;
use congest_sim::{Engine, Message, NodeCtx, Protocol, SimConfig};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The thread counts every scenario is replayed at (1 = the sequential path).
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Clears a `SIM_THREADS` override once per process: it would force every
/// run onto one thread count and collapse the sweep this harness exists for.
fn clear_thread_override() {
    static CLEAR: std::sync::Once = std::sync::Once::new();
    CLEAR.call_once(|| std::env::remove_var("SIM_THREADS"));
}

/// A deterministic pseudo-random protocol (the `engine_equivalence.rs`
/// chaos harness): behaviour depends only on the node's own RNG stream and
/// what the engine shows it.
#[derive(Debug, Clone)]
struct ChaosNode {
    rng: ChaCha8Rng,
    lifetime: u64,
    digest: u64,
}

impl ChaosNode {
    fn new(seed: u64, id: NodeId) -> ChaosNode {
        let mut rng = ChaCha8Rng::seed_from_u64(
            seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(id.0 as u64 + 1)),
        );
        let lifetime = rng.gen_range(3u64..40);
        ChaosNode { rng, lifetime, digest: seed }
    }

    fn absorb(&mut self, round: u64, inbox: &[Message]) {
        for msg in inbox {
            self.digest = self
                .digest
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(msg.from.0 as u64)
                .wrapping_add((msg.edge.0 as u64) << 17)
                .wrapping_add(round << 34);
            for &w in &msg.words {
                self.digest = self.digest.rotate_left(13) ^ w;
            }
        }
    }

    fn act(&mut self, ctx: &mut NodeCtx<'_>) {
        let neighbors: Vec<_> = ctx.neighbors().to_vec();
        for adj in &neighbors {
            if self.rng.gen_range(0u32..100) < 40 {
                let len = self.rng.gen_range(1..=5usize);
                let mut words = vec![0u64; len];
                for w in words.iter_mut() {
                    *w = self.digest ^ self.rng.gen_range(0u64..1_000_000);
                }
                ctx.send_on_edge(adj.edge, &words);
            }
        }
        if ctx.round() >= self.lifetime {
            ctx.halt();
        } else if self.rng.gen_range(0u32..100) < 35 {
            ctx.sleep_for(self.rng.gen_range(1u64..7));
        }
    }
}

impl Protocol for ChaosNode {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        self.act(ctx);
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        self.absorb(ctx.round(), inbox);
        self.act(ctx);
    }
}

/// Runs the chaos protocol at every thread count plus through the reference
/// engine and asserts all four executions are indistinguishable.
fn assert_thread_counts_equivalent(g: &Graph, cfg: SimConfig, seed: u64) {
    clear_thread_override();
    let baseline = Engine::new(g, cfg.clone().with_threads(1)).run(|id| ChaosNode::new(seed, id));
    for threads in &THREAD_COUNTS[1..] {
        let sharded =
            Engine::new(g, cfg.clone().with_threads(*threads)).run(|id| ChaosNode::new(seed, id));
        match (&baseline, &sharded) {
            (Ok(b), Ok(s)) => {
                assert_eq!(
                    b.metrics, s.metrics,
                    "metrics diverged at {threads} threads (seed {seed})"
                );
                assert_eq!(b.trace, s.trace, "traces diverged at {threads} threads (seed {seed})");
                let bd: Vec<u64> = b.states.iter().map(|s| s.digest).collect();
                let sd: Vec<u64> = s.states.iter().map(|s| s.digest).collect();
                assert_eq!(bd, sd, "state digests diverged at {threads} threads (seed {seed})");
            }
            (Err(b), Err(s)) => {
                assert_eq!(b, s, "errors diverged at {threads} threads (seed {seed})");
            }
            (b, s) => panic!("outcome kind diverged at {threads} threads: 1={b:?} {threads}={s:?}"),
        }
    }
    // The reference loop is the semantic oracle for all of them.
    let reference = Engine::new(g, cfg).run_reference(|id| ChaosNode::new(seed, id));
    match (&baseline, &reference) {
        (Ok(b), Ok(r)) => {
            assert_eq!(b.metrics, r.metrics, "metrics diverged from reference (seed {seed})");
            assert_eq!(b.trace, r.trace, "traces diverged from reference (seed {seed})");
        }
        (Err(b), Err(r)) => assert_eq!(b, r, "errors diverged from reference (seed {seed})"),
        (b, r) => panic!("outcome kind diverged from reference: run={b:?} reference={r:?}"),
    }
}

fn chaos_config() -> impl Strategy<Value = SimConfig> {
    (1u32..3, 0u8..2, 0u8..2).prop_map(|(capacity, fast_forward, trace)| SimConfig {
        edge_capacity: capacity,
        strict_capacity: false,
        fast_forward_idle: fast_forward == 1,
        record_edge_trace: trace == 1,
        ..SimConfig::default()
    })
}

/// Random fault plans: message loss, delivery jitter, and crash/restart
/// churn — everything the fault layer can throw at the shard merge.
fn fault_plan(n: u32) -> impl Strategy<Value = FaultPlan> {
    (0u64..1_000_000, 0u32..200_000, 0u64..3, 0u8..2, 0u64..16).prop_map(
        move |(seed, drop_ppm, skew, crash, crash_at)| {
            let mut plan =
                FaultPlan::none().with_seed(seed).with_drop_ppm(drop_ppm).with_max_skew(skew);
            if crash == 1 {
                let node = NodeId(seed as u32 % n);
                plan = plan.with_crash(node, crash_at, Some(crash_at + 3));
            }
            plan
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn thread_counts_agree_on_random_graphs(
        n in 2u32..28,
        extra in 0u64..40,
        graph_seed in 0u64..1_000_000,
        protocol_seed in 0u64..1_000_000,
        cfg in chaos_config(),
    ) {
        let g = generators::random_connected(n, extra, graph_seed);
        assert_thread_counts_equivalent(&g, cfg, protocol_seed);
    }

    #[test]
    fn thread_counts_agree_under_fault_plans(
        n in 3u32..24,
        extra in 0u64..30,
        graph_seed in 0u64..1_000_000,
        protocol_seed in 0u64..1_000_000,
        cfg in chaos_config(),
        plan in fault_plan(24),
    ) {
        let g = generators::random_connected(n, extra, graph_seed);
        assert_thread_counts_equivalent(&g, cfg.with_faults(plan), protocol_seed);
    }

    #[test]
    fn thread_counts_agree_on_multigraphs(
        protocol_seed in 0u64..1_000_000,
        cfg in chaos_config(),
    ) {
        // Parallel edges exercise per-edge-direction capacity accounting in
        // the merge's sequential charging pass.
        let g = Graph::from_edges(3, [(0, 1, 1), (0, 1, 2), (1, 2, 1), (0, 2, 3), (0, 2, 3)])
            .expect("valid multigraph");
        assert_thread_counts_equivalent(&g, cfg, protocol_seed);
    }
}

/// A real workload across thread counts: wave-BFS distances, metrics, and
/// energy must come out identical, with more shards than some shards have
/// awake nodes in any given round.
#[test]
fn wave_bfs_is_bit_identical_across_thread_counts() {
    clear_thread_override();
    let g = generators::random_connected(400, 700, 11);
    let schedule = WaveBfs::schedule(&g, &[NodeId(0)]);
    let run = |threads: usize| {
        Engine::new(&g, SimConfig::default().with_threads(threads))
            .run(|id| WaveBfs::new(schedule[id.index()]))
            .expect("wave BFS completes")
    };
    let base = run(1);
    for threads in [2, 4, 7] {
        let sharded = run(threads);
        assert_eq!(base.metrics, sharded.metrics, "metrics diverged at {threads} threads");
        let bd: Vec<_> = base.states.iter().map(|s| s.dist).collect();
        let sd: Vec<_> = sharded.states.iter().map(|s| s.dist).collect();
        assert_eq!(bd, sd, "distances diverged at {threads} threads");
    }
}

/// Strict-mode violations must surface as the *same* first error regardless
/// of which shard steps the offending node.
#[test]
fn strict_errors_agree_across_thread_counts() {
    clear_thread_override();

    /// High-id nodes double-send on their first incident edge, so capacity 1
    /// breaks deterministically — and the *first* violation in node-id order
    /// sits in a late shard, while the merge must still report it first.
    #[derive(Debug)]
    struct Blaster;
    impl Protocol for Blaster {
        fn init(&mut self, ctx: &mut NodeCtx<'_>) {
            if ctx.node_id().0 >= 3 {
                let edge = ctx.neighbors()[0].edge;
                ctx.send_on_edge(edge, &[1]);
                ctx.send_on_edge(edge, &[2]);
            }
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &[Message]) {
            ctx.halt();
        }
    }

    let g = Graph::from_edges(6, [(0, 1, 1), (1, 2, 2), (2, 3, 1), (3, 4, 1), (4, 5, 1)])
        .expect("valid path");
    let base = Engine::new(&g, SimConfig::default().with_threads(1)).run(|_| Blaster);
    let err = base.expect_err("capacity 1 must be exceeded");
    for threads in [2, 3, 4] {
        let sharded = Engine::new(&g, SimConfig::default().with_threads(threads)).run(|_| Blaster);
        assert_eq!(
            sharded.expect_err("same violation"),
            err,
            "error diverged at {threads} threads"
        );
    }
}
