//! Payload-capacity edge cases, differentially on both engines.
//!
//! The inline-payload refactor makes the bandwidth bound structural: a
//! [`congest_sim::Words`] payload holds at most `Words::CAPACITY` words, and
//! the engine polices the *attempted* send length against
//! `SimConfig::max_message_words` exactly as the `Vec`-payload engine did.
//! These tests pin the boundary — sends exactly at, and one past, the limit —
//! with `strict_capacity` on and off, and assert both engines produce
//! identical `SimError`s, metrics, and delivered payloads.

use congest_graph::{generators, NodeId};
use congest_sim::{Engine, Message, NodeCtx, Protocol, SimConfig, SimError, Words};

/// Node 0 sends one `payload_len`-word message to node 1 in round 0 and both
/// halt; node 1 records what it received.
#[derive(Debug, Clone)]
struct OneShot {
    payload_len: usize,
    received: Vec<Vec<u64>>,
}

impl OneShot {
    fn new(payload_len: usize) -> OneShot {
        OneShot { payload_len, received: Vec::new() }
    }
}

impl Protocol for OneShot {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        if ctx.node_id() == NodeId(0) {
            let words: Vec<u64> = (1..=self.payload_len as u64).collect();
            ctx.send(NodeId(1), &words);
            ctx.halt();
        }
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        for msg in inbox {
            self.received.push(msg.words.to_vec());
        }
        ctx.halt();
    }
}

/// Runs `OneShot` through both engines and asserts they behave identically;
/// returns the (identical) outcome of the run.
fn both_engines(
    cfg: SimConfig,
    payload_len: usize,
) -> Result<(Vec<Vec<u64>>, congest_sim::Metrics), SimError> {
    let g = generators::path(2, 1);
    let fast = Engine::new(&g, cfg.clone()).run(|_| OneShot::new(payload_len));
    let slow = Engine::new(&g, cfg).run_reference(|_| OneShot::new(payload_len));
    match (fast, slow) {
        (Ok(f), Ok(s)) => {
            assert_eq!(f.metrics, s.metrics, "metrics must match across engines");
            assert_eq!(
                f.states[1].received, s.states[1].received,
                "delivered payloads must match across engines"
            );
            Ok((f.states[1].received.clone(), f.metrics))
        }
        (Err(f), Err(s)) => {
            assert_eq!(f, s, "errors must match across engines");
            Err(f)
        }
        (f, s) => panic!("engines disagreed on success: fast={f:?} slow={s:?}"),
    }
}

#[test]
fn payload_exactly_at_the_limit_is_delivered_intact() {
    for strict in [true, false] {
        let cfg = SimConfig { strict_capacity: strict, ..SimConfig::default() };
        let max = cfg.effective_max_words();
        let (received, metrics) = both_engines(cfg, max).expect("at-limit sends are legal");
        assert_eq!(received, vec![(1..=max as u64).collect::<Vec<u64>>()]);
        assert_eq!(metrics.capacity_violations, 0);
        assert_eq!(metrics.messages, 1);
    }
}

#[test]
fn payload_one_past_the_limit_errors_when_strict() {
    let cfg = SimConfig::default();
    assert!(cfg.strict_capacity, "strict is the default");
    let max = cfg.effective_max_words();
    let err = both_engines(cfg, max + 1).expect_err("oversized sends are a model violation");
    assert_eq!(err, SimError::MessageTooLarge { node: NodeId(0), words: max + 1, max_words: max });
}

#[test]
fn payload_one_past_the_limit_is_truncated_and_counted_when_lenient() {
    let cfg = SimConfig { strict_capacity: false, ..SimConfig::default() };
    let max = cfg.effective_max_words();
    let (received, metrics) = both_engines(cfg, max + 1).expect("lenient mode only counts");
    // The message still travels, carrying the inline prefix; the violation
    // is observable in the metrics.
    assert_eq!(received, vec![(1..=max as u64).collect::<Vec<u64>>()]);
    assert_eq!(metrics.capacity_violations, 1);
    assert_eq!(metrics.messages, 1);
}

#[test]
fn max_message_words_above_the_inline_capacity_is_clamped() {
    // A config asking for more than the inline capacity is clamped to it:
    // the engines enforce `effective_max_words`, identically in both modes.
    let cfg = SimConfig { max_message_words: 64, ..SimConfig::default() };
    assert_eq!(cfg.effective_max_words(), Words::CAPACITY);
    let err = both_engines(cfg, Words::CAPACITY + 1)
        .expect_err("beyond the inline capacity is a violation even if the config asks for more");
    assert_eq!(
        err,
        SimError::MessageTooLarge {
            node: NodeId(0),
            words: Words::CAPACITY + 1,
            max_words: Words::CAPACITY,
        }
    );
}

#[test]
fn tighter_configured_limits_still_bind_below_the_inline_capacity() {
    // max_message_words below the inline capacity polices as before.
    let strict = SimConfig { max_message_words: 2, ..SimConfig::default() };
    let (received, _) = both_engines(strict.clone(), 2).expect("two words are fine");
    assert_eq!(received, vec![vec![1, 2]]);
    let err = both_engines(strict, 3).expect_err("three words exceed the configured limit");
    assert_eq!(err, SimError::MessageTooLarge { node: NodeId(0), words: 3, max_words: 2 });

    let lenient =
        SimConfig { max_message_words: 2, strict_capacity: false, ..SimConfig::default() };
    let (received, metrics) = both_engines(lenient, 3).expect("lenient mode only counts");
    // Below the inline capacity nothing is truncated — the payload fits.
    assert_eq!(received, vec![vec![1, 2, 3]]);
    assert_eq!(metrics.capacity_violations, 1);
}
