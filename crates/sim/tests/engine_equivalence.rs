//! Differential testing of the active-set engine against the retained naive
//! reference loop.
//!
//! A pseudo-random "chaos" protocol — nodes send to random neighbours, sleep
//! random spans, and halt at random rounds, folding everything they observe
//! into a running digest — runs on random graphs through both
//! [`Engine::run`] and [`Engine::run_reference`]. The two executions must be
//! indistinguishable: identical [`congest_sim::Metrics`] (rounds, messages,
//! congestion, energy, capacity violations, lost messages), identical edge
//! traces, and identical final states. The digest depends on message
//! *content, order, and arrival round*, so any divergence in scheduling or
//! delivery shows up as a state mismatch, not just a metric mismatch.

use congest_graph::{generators, Graph, NodeId};
use congest_sim::{Engine, Message, NodeCtx, Protocol, SimConfig};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic pseudo-random protocol. Behaviour depends only on the
/// node's own RNG stream and what the engine shows it, so two semantically
/// equivalent engines drive it into identical executions.
#[derive(Debug, Clone)]
struct ChaosNode {
    rng: ChaCha8Rng,
    /// Round at which this node halts unconditionally.
    lifetime: u64,
    /// Running digest of everything observed (inbox contents and rounds).
    digest: u64,
}

impl ChaosNode {
    fn new(seed: u64, id: NodeId) -> ChaosNode {
        let mut rng = ChaCha8Rng::seed_from_u64(
            seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(id.0 as u64 + 1)),
        );
        let lifetime = rng.gen_range(3u64..40);
        ChaosNode { rng, lifetime, digest: seed }
    }

    fn absorb(&mut self, round: u64, inbox: &[Message]) {
        for msg in inbox {
            self.digest = self
                .digest
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(msg.from.0 as u64)
                .wrapping_add((msg.edge.0 as u64) << 17)
                .wrapping_add(round << 34);
            for &w in &msg.words {
                self.digest = self.digest.rotate_left(13) ^ w;
            }
        }
    }

    fn act(&mut self, ctx: &mut NodeCtx<'_>) {
        // Random sends: at most one message per incident edge, so the
        // capacity-1 CONGEST bound can only be violated through parallel
        // edges — which the lenient configs below merely count. Payload
        // lengths deliberately straddle the inline capacity (4): oversized
        // sends must be counted and truncated identically by both engines.
        let neighbors: Vec<_> = ctx.neighbors().to_vec();
        for adj in &neighbors {
            if self.rng.gen_range(0u32..100) < 40 {
                let len = self.rng.gen_range(1..=5usize);
                let mut words = vec![0u64; len];
                for w in words.iter_mut() {
                    *w = self.digest ^ self.rng.gen_range(0u64..1_000_000);
                }
                ctx.send_on_edge(adj.edge, &words);
            }
        }
        // Random schedule: halt at end of life, otherwise sometimes sleep.
        if ctx.round() >= self.lifetime {
            ctx.halt();
        } else if self.rng.gen_range(0u32..100) < 35 {
            ctx.sleep_for(self.rng.gen_range(1u64..7));
        }
    }
}

impl Protocol for ChaosNode {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        self.act(ctx);
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        self.absorb(ctx.round(), inbox);
        self.act(ctx);
    }
}

/// Runs the chaos protocol through both engines and asserts equivalence.
fn assert_engines_equivalent(g: &Graph, cfg: SimConfig, seed: u64) {
    let fast = Engine::new(g, cfg.clone()).run(|id| ChaosNode::new(seed, id));
    let slow = Engine::new(g, cfg).run_reference(|id| ChaosNode::new(seed, id));
    match (fast, slow) {
        (Ok(fast), Ok(slow)) => {
            assert_eq!(fast.metrics, slow.metrics, "metrics diverged (seed {seed})");
            assert_eq!(fast.trace, slow.trace, "edge traces diverged (seed {seed})");
            let fd: Vec<u64> = fast.states.iter().map(|s| s.digest).collect();
            let sd: Vec<u64> = slow.states.iter().map(|s| s.digest).collect();
            assert_eq!(fd, sd, "state digests diverged (seed {seed})");
        }
        (fast, slow) => panic!("one engine failed: fast={fast:?} slow={slow:?} (seed {seed})"),
    }
}

fn chaos_config() -> impl Strategy<Value = SimConfig> {
    (1u32..3, 0u8..2, 0u8..2).prop_map(|(capacity, fast_forward, trace)| SimConfig {
        edge_capacity: capacity,
        // Lenient mode: violations are counted (and must match), not fatal.
        strict_capacity: false,
        fast_forward_idle: fast_forward == 1,
        record_edge_trace: trace == 1,
        ..SimConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_are_equivalent_on_random_graphs(
        n in 2u32..28,
        extra in 0u64..40,
        graph_seed in 0u64..1_000_000,
        protocol_seed in 0u64..1_000_000,
        cfg in chaos_config(),
    ) {
        let g = generators::random_connected(n, extra, graph_seed);
        assert_engines_equivalent(&g, cfg, protocol_seed);
    }

    #[test]
    fn engines_are_equivalent_on_multigraphs(
        protocol_seed in 0u64..1_000_000,
        cfg in chaos_config(),
    ) {
        // Parallel edges exercise per-edge-direction capacity accounting.
        let g = Graph::from_edges(3, [(0, 1, 1), (0, 1, 2), (1, 2, 1), (0, 2, 3), (0, 2, 3)])
            .expect("valid multigraph");
        assert_engines_equivalent(&g, cfg, protocol_seed);
    }
}

#[test]
fn engines_are_equivalent_on_structured_graphs() {
    for (i, g) in [
        generators::path(17, 1),
        generators::cycle(12, 2),
        generators::star(9, 1),
        generators::grid(5, 4, 1),
        generators::disjoint_copies(&generators::path(6, 1), 3),
    ]
    .into_iter()
    .enumerate()
    {
        for seed in 0..4 {
            let cfg = SimConfig {
                strict_capacity: false,
                record_edge_trace: true,
                ..SimConfig::default()
            };
            assert_engines_equivalent(&g, cfg, seed * 1000 + i as u64);
        }
    }
}
