//! Allocation regression test for the zero-allocation message fabric.
//!
//! A counting global allocator wraps [`std::alloc::System`], and a
//! message-saturated always-awake protocol snapshots the allocation counter
//! at the start of every round (node 0 runs first each round, so consecutive
//! snapshots bracket exactly one full engine round: sends, capacity
//! accounting, rescheduling, delivery, and inbox construction). After a
//! warm-up long enough for every reused buffer — the shared outbox, the
//! in-flight double buffer, the delivery arena, and all `WINDOW` wake-ring
//! slots — to reach its steady capacity, **every remaining round must
//! perform zero heap allocations**.
//!
//! This is the contract the inline-payload [`congest_sim::Words`] refactor
//! establishes: in the CONGEST model a message is `O(log n)` bits, so moving
//! one must never touch the allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use congest_graph::{generators, NodeId};
use congest_sim::{Engine, Message, NodeCtx, Protocol, SimConfig};

/// Counts every allocation (alloc, alloc_zeroed, realloc); frees are not
/// interesting here — a free implies a matching earlier allocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: same contract as `System::alloc`, to which this delegates.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // simlint::allow(relaxed-ordering: monotone test-only counter; snapshots need no ordering with other memory)
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwards the caller's `Layout` contract unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `System::alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // simlint::allow(relaxed-ordering: monotone test-only counter; snapshots need no ordering with other memory)
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwards the caller's `Layout` contract unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: same contract as `System::realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // simlint::allow(relaxed-ordering: monotone test-only counter; snapshots need no ordering with other memory)
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwards the caller's pointer/layout contract unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: same contract as `System::dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwards the caller's pointer/layout contract unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Message-saturated flood whose node 0 snapshots the allocation counter at
/// the start of each round. The protocol itself must stay allocation-free:
/// its per-round state is a `u64` fold and a pre-sized snapshot vector.
struct ProbedFlood {
    until: u64,
    acc: u64,
    /// `(round, allocations so far)` snapshots; non-empty only on node 0,
    /// pre-sized at construction so pushes never reallocate.
    snapshots: Vec<(u64, u64)>,
}

impl ProbedFlood {
    fn new(id: NodeId, until: u64) -> ProbedFlood {
        let snapshots =
            if id == NodeId(0) { Vec::with_capacity(until as usize + 2) } else { Vec::new() };
        ProbedFlood { until, acc: id.0 as u64 + 1, snapshots }
    }
}

impl Protocol for ProbedFlood {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.broadcast(&[self.acc]);
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        if ctx.node_id() == NodeId(0) {
            // simlint::allow(relaxed-ordering: the counter is monotone and single-purpose; an exact-at-a-boundary read is not required)
            self.snapshots.push((ctx.round(), ALLOCATIONS.load(Ordering::Relaxed)));
        }
        for msg in inbox {
            self.acc = self.acc.rotate_left(5) ^ msg.word(0);
        }
        if ctx.round() >= self.until {
            ctx.halt();
        } else {
            ctx.broadcast(&[self.acc]);
        }
    }
}

/// One test body for both assertions: tests in one binary run on parallel
/// threads by default, and a concurrently running test would pollute the
/// process-global allocation counter.
#[test]
fn steady_state_rounds_allocate_nothing_and_the_probe_is_honest() {
    steady_state_rounds_allocate_nothing(1);
    // The sharded engine holds the same contract: after the one-time setup
    // (worker spawn, per-shard arenas/outboxes, the shared double buffer),
    // a steady-state round takes only barrier waits and futex-based lock
    // acquisitions — no allocator traffic on any thread. The counter is
    // process-global and monotone, so a zero delta across node 0's
    // snapshots bounds *all* threads' allocations, not just the main one.
    steady_state_rounds_allocate_nothing(2);
    steady_state_rounds_allocate_nothing(4);
    reference_engine_allocates_every_round();
}

fn steady_state_rounds_allocate_nothing(threads: usize) {
    // Always-awake flood: every round moves 2m messages, reschedules every
    // node, and rebuilds every inbox — the maximal per-round churn of the
    // message path. 192 nodes keep the test fast; the buffers involved are
    // the same at any size.
    let until: u64 = 160;
    // The wake ring has 64 slots, each of which must grow to capacity n
    // once; everything else warms within a couple of rounds. 96 rounds of
    // warm-up covers the ring with margin.
    let warmup: u64 = 96;
    let g = generators::random_connected(192, 400, 41);
    let run = Engine::new(&g, SimConfig::default().with_threads(threads))
        .run(|id| ProbedFlood::new(id, until))
        .expect("flood runs clean");

    let snapshots = &run.states[0].snapshots;
    assert_eq!(snapshots.len() as u64, until, "node 0 saw every round from 1 to until");

    let mut steady_rounds = 0u64;
    for pair in snapshots.windows(2) {
        let [(r0, a0), (r1, a1)] = pair else { unreachable!() };
        assert_eq!(*r1, r0 + 1, "the flood never sleeps");
        if *r0 >= warmup {
            steady_rounds += 1;
            assert_eq!(
                a1 - a0,
                0,
                "round {r0} -> {r1} performed {} heap allocation(s) at {threads} thread(s); \
                 the steady-state message path must perform none",
                a1 - a0
            );
        }
    }
    assert!(steady_rounds >= 48, "the steady-state window must be observable");
}

/// The probe protocol itself is honest: the same workload on the reference
/// engine (naive per-round allocation) must allocate in *every* round —
/// proving the counter actually observes the engine, not a fluke of inlining.
fn reference_engine_allocates_every_round() {
    let until: u64 = 48;
    let g = generators::random_connected(96, 200, 43);
    let run = Engine::new(&g, SimConfig::default())
        .run_reference(|id| ProbedFlood::new(id, until))
        .expect("flood runs clean");

    let snapshots = &run.states[0].snapshots;
    assert!(snapshots.len() as u64 == until);
    for pair in snapshots.windows(2) {
        let [(r0, a0), (_, a1)] = pair else { unreachable!() };
        assert!(
            a1 > a0,
            "reference round {r0} allocated nothing — the probe is not observing the engine"
        );
    }
}
