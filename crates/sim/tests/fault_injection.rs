//! Behavioural tests of the fault-injection layer: crash/restart semantics,
//! drop and jitter accounting, and the crash/restart edge cases named in the
//! fault model (`docs/FAULT_MODEL.md`) — a node crashing in the round it
//! would have sent, a restart re-running `init` on fresh state, and a
//! crash-everything plan still terminating promptly. Every scenario runs
//! through *both* engines and must agree bit for bit.

use congest_graph::{generators, Graph, NodeId};
use congest_sim::{Engine, FaultPlan, Message, Metrics, NodeCtx, Protocol, SimConfig};

/// Runs `factory` under `cfg` through both engines, asserts metric and trace
/// equality, and returns the active-set outcome.
fn run_both<P, F>(g: &Graph, cfg: SimConfig, factory: F) -> (Vec<P>, Metrics)
where
    P: Protocol + Clone + std::fmt::Debug,
    F: Fn(NodeId) -> P + Copy,
{
    let fast = Engine::new(g, cfg.clone()).run(factory).expect("active-set run");
    let slow = Engine::new(g, cfg).run_reference(factory).expect("reference run");
    assert_eq!(fast.metrics, slow.metrics, "metrics must be identical across engines");
    assert_eq!(fast.trace, slow.trace, "traces must be identical across engines");
    (fast.states, fast.metrics)
}

/// Node 0 broadcasts its round number every round; everyone else counts what
/// arrives. All nodes halt unconditionally after `until`.
#[derive(Debug, Clone)]
struct Broadcaster {
    is_sender: bool,
    until: u64,
    got: u64,
}

impl Protocol for Broadcaster {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.is_sender {
            ctx.broadcast(&[ctx.round()]);
        }
    }
    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        self.got += inbox.len() as u64;
        if ctx.round() >= self.until {
            ctx.halt();
        } else if self.is_sender {
            ctx.broadcast(&[ctx.round()]);
        }
    }
}

#[test]
fn crash_in_the_send_round_suppresses_the_send() {
    // Node 0 would broadcast in rounds 0, 1, 2, ...; a permanent crash at
    // round 2 means the round-2 send never happens: the neighbour receives
    // exactly the two messages sent in rounds 0 and 1.
    let g = generators::path(2, 1);
    let cfg = SimConfig::default()
        .with_faults(FaultPlan::none().with_crash(NodeId(0), 2, None))
        .with_edge_trace(true);
    let (states, metrics) =
        run_both(&g, cfg, |id| Broadcaster { is_sender: id == NodeId(0), until: 6, got: 0 });
    assert_eq!(states[1].got, 2, "sends from rounds 0 and 1 only");
    assert_eq!(metrics.messages, 2, "the crash-round send never happened");
    assert_eq!(metrics.crashes, 1);
    assert_eq!(metrics.restarts, 0);
    assert_eq!(metrics.fault_drops, 0, "nothing was in flight toward the crashed node");
    // The crashed node was awake only in rounds 0 and 1.
    assert_eq!(metrics.node_energy[0], 2);
    assert_eq!(metrics.node_energy[1], 7);
}

#[test]
fn deliveries_to_a_crashed_node_are_fault_drops_not_sleep_losses() {
    // Node 1 (the receiver) crashes at round 2 and restarts at round 4: the
    // messages sent to it in rounds 1, 2 and 3 (arriving 2, 3, 4) split into
    // fault drops (arrivals 2 and 3, while down) and a delivery (arrival 4).
    let g = generators::path(2, 1);
    let cfg = SimConfig::default().with_faults(FaultPlan::none().with_crash(NodeId(1), 2, Some(4)));
    let (states, metrics) =
        run_both(&g, cfg, |id| Broadcaster { is_sender: id == NodeId(0), until: 5, got: 0 });
    // Sent rounds 0..=4 → 5 messages. Arrival 1 delivered, arrivals 2 and 3
    // dropped on the crashed node, arrival 4 delivered (the node restarts
    // that round, but the restart-round inbox goes to `init`, which ignores
    // it — the delivery itself still happens and counts as received energy-
    // wise; `got` is only folded by `on_round`, so it sees arrival 5 only).
    assert_eq!(metrics.messages, 5);
    assert_eq!(metrics.fault_drops, 2, "arrivals during the outage");
    assert_eq!(metrics.crashes, 1);
    assert_eq!(metrics.restarts, 1);
    // The restarted node's state is fresh: it only counted arrivals after its
    // restart round (round 5's arrival; round 4's went to `init`).
    assert_eq!(states[1].got, 1);
}

/// Records when `init` ran and every round in which the node was awake.
#[derive(Debug, Clone)]
struct Recorder {
    until: u64,
    init_round: Option<u64>,
    awake_rounds: Vec<u64>,
}

impl Protocol for Recorder {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        self.init_round = Some(ctx.round());
        self.awake_rounds.push(ctx.round());
    }
    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &[Message]) {
        self.awake_rounds.push(ctx.round());
        if ctx.round() >= self.until {
            ctx.halt();
        }
    }
}

#[test]
fn restart_reruns_init_on_fresh_state() {
    let g = generators::path(3, 1);
    let cfg = SimConfig::default().with_faults(FaultPlan::none().with_crash(NodeId(1), 2, Some(5)));
    let (states, metrics) =
        run_both(&g, cfg, |_| Recorder { until: 8, init_round: None, awake_rounds: Vec::new() });
    // The restarted node's state was re-created by the factory and its
    // `init` ran in the restart round — nothing of the pre-crash state
    // (init at round 0, awake rounds 0 and 1) survives.
    assert_eq!(states[1].init_round, Some(5), "init re-ran at the restart round");
    assert_eq!(states[1].awake_rounds, vec![5, 6, 7, 8], "no memory of pre-crash rounds");
    assert_eq!(states[0].init_round, Some(0));
    assert_eq!(states[0].awake_rounds, (0..=8).collect::<Vec<_>>());
    // Energy: the pre-crash rounds were charged to the old incarnation, the
    // outage (rounds 2-4) cost nothing, and the new incarnation pays from
    // its restart on: 2 + 4 awake rounds.
    assert_eq!(metrics.node_energy[1], 6);
    assert_eq!(metrics.crashes, 1);
    assert_eq!(metrics.restarts, 1);
}

#[test]
fn restart_can_revive_a_halted_node() {
    // A node that halted on its own is revived by a scheduled restart: churn
    // does not distinguish voluntary halts from crashes.
    let g = generators::path(2, 1);
    let cfg = SimConfig::default().with_faults(FaultPlan::none().with_crash(NodeId(1), 1, Some(4)));
    // Node 1 halts at init (round 0), before its crash window even starts.
    #[derive(Debug, Clone)]
    struct EarlyQuitter {
        init_round: Option<u64>,
        quits_early: bool,
    }
    impl Protocol for EarlyQuitter {
        fn init(&mut self, ctx: &mut NodeCtx<'_>) {
            self.init_round = Some(ctx.round());
            if self.quits_early {
                ctx.halt();
            }
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &[Message]) {
            if ctx.round() >= 6 {
                ctx.halt();
            }
        }
    }
    let (states, metrics) =
        run_both(&g, cfg, |id| EarlyQuitter { init_round: None, quits_early: id == NodeId(1) });
    assert_eq!(states[1].init_round, Some(4), "the revived incarnation re-ran init");
    assert_eq!(metrics.crashes, 1);
    assert_eq!(metrics.restarts, 1);
}

/// A protocol that never halts on its own.
#[derive(Debug, Clone)]
struct Immortal;

impl Protocol for Immortal {
    fn init(&mut self, _ctx: &mut NodeCtx<'_>) {}
    fn on_round(&mut self, _ctx: &mut NodeCtx<'_>, _inbox: &[Message]) {}
}

#[test]
fn crash_everything_terminates_promptly() {
    // Permanently crashing every node halts the run the same round — even a
    // protocol that never halts terminates under a crash-everything plan,
    // well inside the round-limit safety net.
    let g = generators::random_connected(12, 20, 7);
    let mut plan = FaultPlan::none();
    for v in g.nodes() {
        plan = plan.with_crash(v, 4, None);
    }
    let cfg = SimConfig::default().with_faults(plan).with_max_rounds(1000);
    let (_, metrics) = run_both(&g, cfg, |_| Immortal);
    assert_eq!(metrics.rounds, 5, "the run ends in the crash round");
    assert_eq!(metrics.crashes, 12);
    // Nobody was awake after round 3.
    assert!(metrics.node_energy.iter().all(|&e| e == 4));
}

#[test]
fn certain_drop_loses_every_message_and_counts_it() {
    use congest_sim::workloads::ChaosFlood;
    let g = generators::random_connected(10, 15, 3);
    let cfg =
        SimConfig::default().with_faults(FaultPlan::none().with_seed(8).with_drop_ppm(1_000_000));
    let (states, metrics) = run_both(&g, cfg, |id| ChaosFlood::new(id, 6));
    assert!(metrics.messages > 0);
    assert_eq!(metrics.fault_drops, metrics.messages, "ppm 1_000_000 drops everything");
    assert_eq!(metrics.messages_lost, 0, "nothing survives to be slept away");
    assert!(states.iter().all(|s| s.received == 0));
}

/// Node 0 sends once at init; node 1 records the arrival round of each
/// message and halts at `until`.
#[derive(Debug, Clone)]
struct OneShot {
    is_sender: bool,
    until: u64,
    arrivals: Vec<u64>,
}

impl Protocol for OneShot {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.is_sender {
            ctx.broadcast(&[7]);
        }
    }
    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        for _ in inbox {
            self.arrivals.push(ctx.round());
        }
        if ctx.round() >= self.until {
            ctx.halt();
        }
    }
}

#[test]
fn jitter_delays_within_the_skew_bound_and_is_deterministic() {
    let g = generators::path(2, 1);
    let skew = 4u64;
    let run = |seed: u64| {
        let cfg =
            SimConfig::default().with_faults(FaultPlan::none().with_seed(seed).with_max_skew(skew));
        run_both(&g, cfg, |id| OneShot {
            is_sender: id == NodeId(0),
            until: 2 + skew,
            arrivals: Vec::new(),
        })
    };
    let mut delayed_seen = false;
    for seed in 0..16 {
        let (states, metrics) = run(seed);
        let (again, metrics_again) = run(seed);
        assert_eq!(states[1].arrivals, again[1].arrivals, "same plan, same schedule");
        assert_eq!(metrics, metrics_again);
        assert_eq!(states[1].arrivals.len(), 1, "jitter delays, never duplicates or drops");
        let arrival = states[1].arrivals[0];
        assert!((1..=1 + skew).contains(&arrival), "arrival {arrival} outside the skew bound");
        assert_eq!(metrics.fault_delays, u64::from(arrival > 1));
        delayed_seen |= arrival > 1;
    }
    assert!(delayed_seen, "with skew 4, some of 16 seeds must actually delay");
}

#[test]
fn undeliverable_messages_at_termination_count_as_lost_even_from_the_jitter_buffer() {
    // Both endpoints halt in round 0, right after node 0 sends: whether the
    // message is on time (in flight) or jittered (pending in the fault
    // layer), it can never be delivered and must be counted as lost.
    #[derive(Debug, Clone)]
    struct SendAndQuit {
        is_sender: bool,
    }
    impl Protocol for SendAndQuit {
        fn init(&mut self, ctx: &mut NodeCtx<'_>) {
            if self.is_sender {
                ctx.broadcast(&[1]);
            }
            ctx.halt();
        }
        fn on_round(&mut self, _ctx: &mut NodeCtx<'_>, _inbox: &[Message]) {}
    }
    let g = generators::path(2, 1);
    for seed in 0..8 {
        let cfg =
            SimConfig::default().with_faults(FaultPlan::none().with_seed(seed).with_max_skew(3));
        let (_, metrics) = run_both(&g, cfg, |id| SendAndQuit { is_sender: id == NodeId(0) });
        assert_eq!(metrics.rounds, 1);
        assert_eq!(metrics.messages, 1);
        assert_eq!(metrics.messages_lost, 1, "seed {seed}: the send is unconditionally lost");
        assert_eq!(metrics.fault_drops, 0);
    }
}

#[test]
fn per_edge_overrides_target_single_edges() {
    // A 3-path with a certain drop on edge 0 only: traffic over edge 1 is
    // untouched, traffic over edge 0 vanishes.
    let g = generators::path(3, 1);
    let e0 = congest_graph::EdgeId(0); // generators::path lays out edge i as {i, i+1}
    let cfg = SimConfig::default()
        .with_faults(FaultPlan::none().with_seed(2).with_edge_drop_ppm(e0, 1_000_000));
    let (states, metrics) =
        run_both(&g, cfg, |id| Broadcaster { is_sender: id == NodeId(1), until: 4, got: 0 });
    assert_eq!(states[0].got, 0, "everything over the dropped edge is gone");
    assert_eq!(states[2].got, 4, "the clean edge delivers everything");
    assert_eq!(metrics.fault_drops, 4);
}

#[test]
fn fault_free_plan_with_seed_changes_nothing() {
    // A plan that sets only the seed takes the fault-free fast path: the
    // metrics (including zeroed fault counters) match a run with no plan.
    let g = generators::random_connected(16, 24, 11);
    let baseline = Engine::new(&g, SimConfig::default())
        .run(|id| Broadcaster { is_sender: id == NodeId(0), until: 10, got: 0 })
        .unwrap();
    let seeded_cfg = SimConfig::default().with_faults(FaultPlan::none().with_seed(123));
    let (states, metrics) = run_both(&g, seeded_cfg, |id| Broadcaster {
        is_sender: id == NodeId(0),
        until: 10,
        got: 0,
    });
    assert_eq!(metrics, baseline.metrics);
    assert_eq!(metrics.fault_drops, 0);
    assert_eq!(metrics.crashes, 0);
    for (a, b) in states.iter().zip(&baseline.states) {
        assert_eq!(a.got, b.got);
    }
}
