//! The chaos campaign: differential and liveness testing under randomized
//! fault plans.
//!
//! Random graphs × random protocols × random `FaultPlan`s (drop rates up to
//! 40%, jitter up to 4 rounds, random crash/restart churn) run through both
//! engines, which must stay indistinguishable — identical metrics (including
//! the fault counters), traces, and state digests, and identical *errors*
//! when the round limit trips. A second property pins the termination safety
//! net of the round limit: no fault plan, however hostile, may wedge the
//! simulator — a protocol that never halts still comes back as
//! `RoundLimitExceeded`, and one that halts on a schedule still halts.

use congest_graph::{generators, Graph, NodeId};
use congest_sim::{Engine, FaultPlan, Message, NodeCtx, Protocol, SimConfig};
use proptest::prelude::*;
use rand::{splitmix64, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic pseudo-random protocol (the same shape as the one in
/// `engine_equivalence.rs`): random sends, sleeps, and halts, folding every
/// observation into a digest so any delivery divergence surfaces as a state
/// mismatch.
#[derive(Debug, Clone)]
struct ChaosNode {
    rng: ChaCha8Rng,
    lifetime: u64,
    digest: u64,
}

impl ChaosNode {
    fn new(seed: u64, id: NodeId) -> ChaosNode {
        let mut rng = ChaCha8Rng::seed_from_u64(
            seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(id.0 as u64 + 1)),
        );
        let lifetime = rng.gen_range(3u64..32);
        ChaosNode { rng, lifetime, digest: seed }
    }

    fn act(&mut self, ctx: &mut NodeCtx<'_>) {
        let neighbors: Vec<_> = ctx.neighbors().to_vec();
        for adj in &neighbors {
            if self.rng.gen_range(0u32..100) < 40 {
                let word = self.digest ^ self.rng.gen_range(0u64..1_000_000);
                ctx.send_on_edge(adj.edge, &[word]);
            }
        }
        if ctx.round() >= self.lifetime {
            ctx.halt();
        } else if self.rng.gen_range(0u32..100) < 35 {
            ctx.sleep_for(self.rng.gen_range(1u64..7));
        }
    }
}

impl Protocol for ChaosNode {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        self.act(ctx);
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        for msg in inbox {
            self.digest = self
                .digest
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(msg.from.0 as u64)
                .wrapping_add((msg.edge.0 as u64) << 17)
                .wrapping_add(ctx.round() << 34);
            for &w in &msg.words {
                self.digest = self.digest.rotate_left(13) ^ w;
            }
        }
        self.act(ctx);
    }
}

/// Expands a few scalar knobs into a fault plan with `crash_count` random
/// crash/restart events (the vendored proptest has no `Vec` strategy, so the
/// event list is derived deterministically from `churn_seed`).
fn build_plan(
    n: u32,
    seed: u64,
    drop_ppm: u32,
    max_skew: u64,
    crash_count: u32,
    churn_seed: u64,
) -> FaultPlan {
    let mut plan =
        FaultPlan::none().with_seed(seed).with_drop_ppm(drop_ppm).with_max_skew(max_skew);
    let mut s = churn_seed;
    for _ in 0..crash_count {
        let node = NodeId((splitmix64(&mut s) % n as u64) as u32);
        let at_round = splitmix64(&mut s) % 24;
        let restart_at = if splitmix64(&mut s) % 3 == 0 {
            None
        } else {
            Some(at_round + 1 + splitmix64(&mut s) % 10)
        };
        plan = plan.with_crash(node, at_round, restart_at);
    }
    plan
}

/// Runs the chaos protocol under the plan through both engines and asserts
/// they are indistinguishable — on success *and* on error.
fn assert_engines_equivalent_under_faults(g: &Graph, cfg: SimConfig, seed: u64) {
    let fast = Engine::new(g, cfg.clone()).run(|id| ChaosNode::new(seed, id));
    let slow = Engine::new(g, cfg).run_reference(|id| ChaosNode::new(seed, id));
    match (fast, slow) {
        (Ok(fast), Ok(slow)) => {
            assert_eq!(fast.metrics, slow.metrics, "metrics diverged (seed {seed})");
            assert_eq!(fast.trace, slow.trace, "edge traces diverged (seed {seed})");
            let fd: Vec<u64> = fast.states.iter().map(|s| s.digest).collect();
            let sd: Vec<u64> = slow.states.iter().map(|s| s.digest).collect();
            assert_eq!(fd, sd, "state digests diverged (seed {seed})");
        }
        (Err(fast), Err(slow)) => {
            assert_eq!(fast, slow, "errors diverged (seed {seed})");
        }
        (fast, slow) => panic!("one engine failed: fast={fast:?} slow={slow:?} (seed {seed})"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The differential harness extends to faulty runs: both engines apply
    /// the identical fault schedule.
    #[test]
    fn engines_are_equivalent_under_random_fault_plans(
        n in 2u32..24,
        extra in 0u64..30,
        graph_seed in 0u64..1_000_000,
        protocol_seed in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
        drop_ppm in 0u32..400_000,
        max_skew in 0u64..4,
        crash_count in 0u32..5,
        churn_seed in 0u64..1_000_000,
    ) {
        let g = generators::random_connected(n, extra, graph_seed);
        let plan = build_plan(n, plan_seed, drop_ppm, max_skew, crash_count, churn_seed);
        let cfg = SimConfig {
            strict_capacity: false,
            record_edge_trace: true,
            faults: plan,
            ..SimConfig::default()
        };
        assert_engines_equivalent_under_faults(&g, cfg, protocol_seed);
    }

    /// The killer-family topologies (see `docs/SEQ_BASELINES.md`) built to
    /// break sequential heap disciplines also serve as adversarial fault
    /// substrates: dense decrease-key storms, shortcut-laden paths, and
    /// spiral grids all replay identically through both engines under
    /// random fault plans.
    #[test]
    fn engines_are_equivalent_on_killer_topologies_under_faults(
        family in 0usize..4,
        size in 3u32..10,
        protocol_seed in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
        drop_ppm in 0u32..400_000,
        max_skew in 0u64..4,
        crash_count in 0u32..5,
        churn_seed in 0u64..1_000_000,
    ) {
        let g = match family {
            0 => generators::wrong_dijkstra_killer(size.max(4)),
            1 => generators::spfa_killer(size),
            2 => generators::grid_swirl(size.min(5)),
            _ => generators::almost_line(2 * size, plan_seed),
        };
        let plan =
            build_plan(g.node_count(), plan_seed, drop_ppm, max_skew, crash_count, churn_seed);
        let cfg = SimConfig {
            strict_capacity: false,
            record_edge_trace: true,
            faults: plan,
            ..SimConfig::default()
        };
        assert_engines_equivalent_under_faults(&g, cfg, protocol_seed);
    }

    /// Determinism: the same plan replays the identical execution.
    #[test]
    fn the_same_plan_replays_bit_identically(
        protocol_seed in 0u64..1_000_000,
        plan_seed in 0u64..1_000_000,
        drop_ppm in 1u32..300_000,
        max_skew in 0u64..4,
        churn_seed in 0u64..1_000_000,
    ) {
        let g = generators::random_connected(12, 16, 71);
        let plan = build_plan(12, plan_seed, drop_ppm, max_skew, 2, churn_seed);
        let cfg = SimConfig { strict_capacity: false, faults: plan, ..SimConfig::default() };
        let a = Engine::new(&g, cfg.clone()).run(|id| ChaosNode::new(protocol_seed, id));
        let b = Engine::new(&g, cfg).run(|id| ChaosNode::new(protocol_seed, id));
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.metrics, b.metrics);
                let ad: Vec<u64> = a.states.iter().map(|s| s.digest).collect();
                let bd: Vec<u64> = b.states.iter().map(|s| s.digest).collect();
                prop_assert_eq!(ad, bd);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "replay diverged: {a:?} vs {b:?}"),
        }
    }

    /// The termination safety net holds under faults: a protocol that never
    /// halts comes back as a round-limit error (never a hang), with both
    /// engines agreeing, whatever the plan does.
    #[test]
    fn no_fault_plan_wedges_the_round_limit_safety_net(
        plan_seed in 0u64..1_000_000,
        drop_ppm in 0u32..1_000_001,
        max_skew in 0u64..6,
        crash_count in 0u32..8,
        churn_seed in 0u64..1_000_000,
    ) {
        #[derive(Debug, Clone)]
        struct ImmortalTalker;
        impl Protocol for ImmortalTalker {
            fn init(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.broadcast(&[1]);
            }
            fn on_round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &[Message]) {
                ctx.broadcast(&[ctx.round()]);
            }
        }
        let g = generators::random_connected(8, 10, 5);
        let plan = build_plan(8, plan_seed, drop_ppm, max_skew, crash_count, churn_seed);
        let all_permanent = plan.crashes.iter().filter(|c| c.restart_at.is_none()).count();
        let cfg = SimConfig {
            max_rounds: 120,
            strict_capacity: false,
            faults: plan,
            ..SimConfig::default()
        };
        let fast = Engine::new(&g, cfg.clone()).run(|_| ImmortalTalker);
        let slow = Engine::new(&g, cfg).run_reference(|_| ImmortalTalker);
        match (&fast, &slow) {
            (Ok(f), Ok(s)) => {
                // Only a crash-everything plan can terminate an immortal
                // protocol early.
                prop_assert!(all_permanent > 0, "terminated without permanent crashes");
                prop_assert_eq!(&f.metrics, &s.metrics);
                prop_assert!(f.metrics.rounds <= 121);
            }
            (Err(f), Err(s)) => {
                prop_assert_eq!(f, s);
                prop_assert!(
                    matches!(f, congest_sim::SimError::RoundLimitExceeded { .. }),
                    "unexpected error under faults: {f:?}"
                );
            }
            _ => prop_assert!(false, "engines disagreed on liveness: {fast:?} vs {slow:?}"),
        }
    }
}

/// A scheduled (self-halting) workload terminates under *any* loss rate —
/// the graceful half of the degradation story, pinned at the extremes.
#[test]
fn scheduled_workloads_always_terminate_under_total_loss() {
    use congest_sim::workloads::{ChaosPulseBfs, ChaosWaveBfs};
    let g = generators::grid(5, 4, 1);
    let n = g.node_count() as u64;
    for drop_ppm in [250_000u32, 1_000_000] {
        let plan = FaultPlan::none().with_seed(17).with_drop_ppm(drop_ppm).with_max_skew(2);
        let cfg = SimConfig::default().with_faults(plan);
        let skew = 2;
        let sched = ChaosWaveBfs::schedule(&g, &[NodeId(0)], skew);
        let wave = Engine::new(&g, cfg.clone())
            .run(|id| ChaosWaveBfs::new(sched[id.index()], skew))
            .expect("chaos wave always halts");
        assert!(wave.metrics.rounds <= (n + 1) * (skew + 1) + 2);
        let pulse = Engine::new(&g, cfg)
            .run(|id| ChaosPulseBfs::new(id == NodeId(0), 4, n))
            .expect("chaos pulse always halts");
        assert!(pulse.metrics.rounds <= (n + 2) * 4 + 2);
    }
}
