//! Minimal hand-rolled JSON output for the experiment rows.
//!
//! The build environment has no registry access, so `serde_json` is not
//! available (see `vendor/README.md`); the experiment rows are flat structs
//! of numbers and short labels, so a tiny emitter covers the `experiments
//! -- full json` dump without it.

use congest_cover::CoverStats;
use congest_sssp::{
    Algorithm, AlgorithmInfo, OracleReport, RecursionReport, RunReport, ScheduleReport,
    SleepingReport,
};

use crate::{
    ApspRow, ApspThroughputRow, ChaosRow, CoverRow, CutterRow, EnergyRow, ForestRow, OracleRow,
    RecursionRow, SeqSolverRow, ShardScalingRow, SsspRow, ThroughputRow,
};

/// Types that can render themselves as a JSON value.
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> String;
}

macro_rules! impl_json_display {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

impl_json_display!(u16, u32, u64, usize, i32, i64, bool);

impl ToJson for f64 {
    fn to_json(&self) -> String {
        // JSON has no NaN/Infinity literals.
        if self.is_finite() {
            self.to_string()
        } else {
            "null".to_string()
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.len() + 2);
        out.push('"');
        for c in self.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

impl ToJson for String {
    fn to_json(&self) -> String {
        self.as_str().to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> String {
        match self {
            Some(v) => v.to_json(),
            None => "null".to_string(),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> String {
        array(self)
    }
}

impl ToJson for Algorithm {
    fn to_json(&self) -> String {
        self.name().to_json()
    }
}

/// Renders a slice of rows as a JSON array.
pub fn array<T: ToJson>(rows: &[T]) -> String {
    let items: Vec<String> = rows.iter().map(ToJson::to_json).collect();
    format!("[{}]", items.join(", "))
}

/// Renders `(key, already-rendered-value)` pairs as a JSON object.
pub fn object(entries: &[(&str, String)]) -> String {
    let items: Vec<String> =
        entries.iter().map(|(k, v)| format!("{}: {}", k.to_json(), v)).collect();
    format!("{{{}}}", items.join(", "))
}

macro_rules! impl_row_json {
    ($($row:ty { $($field:ident),+ $(,)? })+) => {$(
        impl ToJson for $row {
            fn to_json(&self) -> String {
                object(&[$((stringify!($field), self.$field.to_json()),)+])
            }
        }
    )+};
}

impl_row_json! {
    AlgorithmInfo {
        name, label, summary, weighted, multi_source, sleeping_model, approximate, all_pairs,
        thresholded, queryable,
    }
    RunReport {
        algorithm, n, m, rounds, messages, messages_lost, fault_drops, fault_delays, crashes,
        restarts, max_congestion, max_energy, mean_energy, reached, error_bound, sleeping,
        recursion, schedule, oracle,
    }
    SleepingReport { slowdown, megaround, cover_levels }
    RecursionReport { levels, subproblems, max_participation, total_subproblem_size }
    ScheduleReport {
        makespan, model_rounds, edge_budget, sequential_rounds, max_instance_congestion,
    }
    SsspRow { workload, algorithm, report }
    CutterRow { w, eps_inverse, max_observed_error, dropped_within_2w, report }
    EnergyRow { workload, algorithm, diameter, report }
    ApspRow { report }
    CoverRow {
        n, d, clusters, colors, max_membership, mean_membership, max_tree_depth, stretch,
        max_edge_tree_load,
    }
    ForestRow { n, m, components, phases, rounds, max_congestion, low_energy_max, always_awake_max }
    RecursionRow { normalized_total, report }
    ThroughputRow {
        workload, engine, n, m, rounds, messages, messages_lost, max_energy, wall_ms,
        node_rounds_per_sec, speedup_vs_reference, metrics_match,
    }
    ApspThroughputRow {
        n, m, driver, threads, wall_ms, makespan, model_rounds, sequential_rounds,
        total_messages, speedup_vs_reference, results_match,
    }
    ShardScalingRow {
        workload, n, m, threads, host_cores, rounds, messages, max_energy, wall_ms,
        node_rounds_per_sec, speedup_vs_one_thread, matches_one_thread,
    }
    ChaosRow {
        algorithm, loss_ppm, outcome, graceful, deterministic, matches_baseline, rounds,
        baseline_rounds, round_budget, reached, unreached, max_abs_error, fault_drops, sleep_lost,
    }
    OracleReport {
        fallback, levels, clusters, bytes, exact_matrix_bytes, stretch_bound, max_membership,
        max_tree_depth, level_stats,
    }
    CoverStats {
        d, cluster_count, colors, max_membership, mean_membership, max_tree_depth,
        max_edge_tree_load,
    }
    OracleRow {
        workload, n, m, fallback, levels, clusters, bytes, exact_matrix_bytes, space_ratio,
        stretch_bound, max_observed_stretch, preprocess_rounds, queries, queries_per_sec,
        threads_agree,
    }
    SeqSolverRow {
        family, n, m, binary_ms, radix_ms, recursive_ms, speedup, distances_match,
        recursive_matches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        assert_eq!("a\"b\\c\n".to_json(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn rows_render_as_objects() {
        let row = ForestRow {
            n: 4,
            m: 3,
            components: 1,
            phases: 2,
            rounds: 10,
            max_congestion: 3,
            low_energy_max: 5,
            always_awake_max: 10,
        };
        let json = array(&[row]);
        assert!(json.starts_with(r#"[{"n": 4, "m": 3"#), "got {json}");
        assert!(json.ends_with("}]"), "got {json}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(1.5f64.to_json(), "1.5");
    }

    #[test]
    fn options_and_algorithms_render() {
        assert_eq!(None::<u64>.to_json(), "null");
        assert_eq!(Some(3u64).to_json(), "3");
        assert_eq!(Algorithm::Cssp.to_json(), "\"recursive-cssp\"");
    }
}
