//! Prints the experiment tables recorded in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p congest-bench --bin experiments            # quick
//! cargo run --release -p congest-bench --bin experiments -- full    # full sweep
//! cargo run --release -p congest-bench --bin experiments -- full json  # + JSON dump
//! cargo run --release -p congest-bench --bin experiments -- list-algorithms
//! #   prints the solver registry with its capability flags
//! cargo run --release -p congest-bench --bin experiments -- engine-json
//! #   runs only E11 (engine throughput) and writes BENCH_engine.json
//! cargo run --release -p congest-bench --bin experiments -- apsp-json
//! #   runs only E12 (APSP throughput, n = 256; E12_GATE_FULL=1 for n = 512)
//! #   and writes BENCH_apsp.json
//! cargo run --release -p congest-bench --bin experiments -- messages-json
//! #   runs only E13 (message throughput) and writes BENCH_messages.json
//! cargo run --release -p congest-bench --bin experiments -- chaos-json
//! #   runs only E14 (chaos degradation matrix) and writes BENCH_chaos.json
//! cargo run --release -p congest-bench --bin experiments -- shard-json
//! #   runs only E15 (shard scaling, wave-BFS at n = 10^6) and writes
//! #   BENCH_shard.json
//! cargo run --release -p congest-bench --bin experiments -- oracle-json
//! #   runs only E16 (distance-oracle service) and writes BENCH_oracle.json
//! cargo run --release -p congest-bench --bin experiments -- seqsolver-json
//! #   runs only E17 (sequential truth-oracle shootout on the killer
//! #   families) and writes BENCH_seqsolver.json
//! ```
//!
//! `--threads N` sets the simulator worker-thread count (0 = the host's
//! available parallelism) for every experiment by exporting `SIM_THREADS`,
//! which every [`congest_sim::SimConfig`] honors. The `shard-json` gate is
//! the one exception: it sweeps thread counts explicitly (an inherited
//! override would collapse the sweep, so it is removed with a warning), and
//! `--threads N` instead adds `N` to the swept set.
//!
//! All rows render through the generic `congest_bench::table` formatter, so
//! this binary contains no per-algorithm result plumbing — experiments are
//! registry iterations plus experiment-specific parameters (see
//! `congest_bench`). JSON artifacts land in `BENCH_OUT_DIR` when that
//! environment variable is set, in the current directory otherwise.

#![forbid(unsafe_code)]

use congest_bench::table::{render, TableRow};
use congest_bench::{
    bench_out_path, e10_recursion, e11_engine_throughput, e12_apsp_throughput,
    e12_apsp_throughput_at, e13_message_throughput, e14_chaos_matrix, e15_shard_scaling_at,
    e16_oracle, e17_seq_solver, e1_e3_sssp_comparison, e4_cutter, e5_energy_bfs, e6_energy_cssp,
    e7_apsp, e8_cover_quality, e9_spanning_forest, json::array, Scale,
};
use congest_sssp::registry;

/// Prints one titled markdown table.
fn print_section<R: TableRow>(title: &str, rows: &[R]) {
    println!("\n## {title}\n");
    print!("{}", render(rows));
}

/// Writes a JSON artifact to `BENCH_OUT_DIR` (or the CWD).
fn write_artifact(file_name: &str, body: String) {
    let path = bench_out_path(file_name);
    std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

/// Parses `--threads N` out of the argument list, if present.
fn threads_flag(args: &[String]) -> Option<usize> {
    let i = args.iter().position(|a| a == "--threads")?;
    let value = args.get(i + 1).unwrap_or_else(|| panic!("--threads requires a value"));
    Some(value.parse().unwrap_or_else(|e| panic!("--threads {value}: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "full") { Scale::Full } else { Scale::Quick };
    let json = args.iter().any(|a| a == "json");
    let threads = threads_flag(&args);
    let shard_gate = args.iter().any(|a| a == "shard-json");
    if let Some(n) = threads.filter(|_| !shard_gate) {
        // One env var reaches every SimConfig in every crate, so no
        // experiment needs thread plumbing of its own.
        std::env::set_var("SIM_THREADS", n.to_string());
    }

    if args.iter().any(|a| a == "list-algorithms") {
        // Registry smoke: every algorithm the Solver facade can run, with
        // its capability flags (used by CI and by sweep tooling).
        println!("# Algorithm registry ({} algorithms)\n", registry().len());
        print!("{}", render(registry()));
        // The effective engine configuration these algorithms would run
        // under, env overrides included — so a CI log records the actual
        // model parameters next to the registry.
        let sim = congest_sim::SimConfig::default();
        println!("\n# Effective engine configuration\n");
        println!(
            "- threads: {} (configured {}, SIM_THREADS {})",
            sim.resolved_threads(),
            sim.threads,
            std::env::var("SIM_THREADS").unwrap_or_else(|_| "unset".into()),
        );
        println!(
            "- max_message_words: {} (effective {})",
            sim.max_message_words,
            sim.effective_max_words()
        );
        println!("- edge_capacity: {}", sim.edge_capacity);
        println!("- max_rounds: {}", sim.max_rounds);
        println!("- fast_forward_idle: {}", sim.fast_forward_idle);
        println!("- strict_capacity: {}", sim.strict_capacity);
        return;
    }

    if shard_gate {
        // CI mode: only the shard-scaling experiment, plus its artifact. The
        // sweep sets each run's thread count explicitly, so an inherited
        // SIM_THREADS override would silently collapse every run onto one
        // effective count — remove it loudly instead.
        if std::env::var_os("SIM_THREADS").is_some() {
            eprintln!("warning: ignoring SIM_THREADS for the shard gate's explicit sweep");
            std::env::remove_var("SIM_THREADS");
        }
        let mut counts = vec![1usize, 2, 4];
        if let Some(n) = threads.filter(|&n| n > 0 && !counts.contains(&n)) {
            counts.push(n);
        }
        let (n, extra, iters) = match scale {
            // The EXPERIMENTS.md size: wave-BFS at n = 10^6.
            Scale::Full | Scale::Quick => (1_000_000u32, 2_000_000u64, 2),
        };
        println!("# Experiment tables (shard gate, wave-BFS n = {n})");
        let e15 = e15_shard_scaling_at(n, extra, &counts, iters);
        print_section("E15: shard scaling (sharded engine vs the sequential path)", &e15);
        // The artifact is written before the assertions so a regression
        // still leaves the measurements behind for inspection.
        write_artifact(
            "BENCH_shard.json",
            format!(
                "{{\"experiment\": \"e15_shard_scaling\", \"scale\": \"Full\", \"rows\": {}}}",
                array(&e15)
            ),
        );
        // Bar 1 — bit-identity at every shard count: sharding is an
        // execution strategy, not a semantic knob.
        assert!(
            e15.iter().all(|r| r.matches_one_thread),
            "shard regression: a thread count diverged from the 1-thread run; see the table above"
        );
        // Bar 2 — graded wall-clock bar on the widest sharded run, judged
        // against the cores actually available: >= 2x on >= 4 cores (the CI
        // runner), a modest win on 2-3 cores. On a single core the workers
        // can only time-slice, so there is no speedup to demand — the bars
        // that remain are completion and bit-identity above (the 1-thread
        // row itself runs the unchanged sequential engine, whose throughput
        // the E11/E13 gates police).
        let widest = e15.iter().max_by_key(|r| r.threads).expect("sweep is non-empty");
        let cores = widest.host_cores;
        let bar = match cores {
            0 | 1 => 0.0,
            2 | 3 => 1.2,
            _ => 2.0,
        };
        if bar > 0.0 {
            assert!(
                widest.speedup_vs_one_thread >= bar,
                "shard scaling regression: {} threads on {cores} cores sped up {:.2}x < {:.1}x",
                widest.threads,
                widest.speedup_vs_one_thread,
                bar
            );
        } else {
            eprintln!(
                "single-core host: speedup bar skipped ({} threads measured {:.2}x)",
                widest.threads, widest.speedup_vs_one_thread
            );
        }
        return;
    }

    if args.iter().any(|a| a == "engine-json") {
        // CI mode: only the engine-throughput experiment, plus its artifact.
        // This is also the release-mode gate on the refactor's acceptance
        // bar, so it fails loudly rather than archiving a regression green.
        println!("# Experiment tables ({scale:?} scale)");
        let e11 = e11_engine_throughput(scale);
        print_section("E11: engine throughput (active-set vs reference core)", &e11);
        write_artifact(
            "BENCH_engine.json",
            format!(
                "{{\"experiment\": \"e11_engine_throughput\", \"scale\": \"{scale:?}\", \"rows\": {}}}",
                array(&e11)
            ),
        );
        assert!(
            e11.iter().all(|r| r.metrics_match),
            "active-set and reference engines diverged; see the table above"
        );
        let wave = e11
            .iter()
            .find(|r| r.workload == "wave-bfs-path" && r.engine == "active-set")
            .expect("wave-bfs-path row present");
        assert!(
            wave.speedup_vs_reference >= 3.0,
            "engine throughput regression: wave-bfs-path speedup {:.1}x < 3x",
            wave.speedup_vs_reference
        );
        return;
    }

    if args.iter().any(|a| a == "messages-json") {
        // CI mode: only the message-throughput experiment, plus its artifact.
        // This is the release-mode gate on the zero-allocation message
        // fabric: on always-awake workloads the active-set engine has no
        // scheduling advantage, so the ratio isolates the message path.
        println!("# Experiment tables (message-fabric gate)");
        let e13 = e13_message_throughput(Scale::Quick);
        print_section(
            "E13: message throughput (zero-allocation fabric vs reference delivery)",
            &e13,
        );
        write_artifact(
            "BENCH_messages.json",
            format!(
                "{{\"experiment\": \"e13_message_throughput\", \"scale\": \"Quick\", \"rows\": {}}}",
                array(&e13)
            ),
        );
        assert!(
            e13.iter().all(|r| r.metrics_match),
            "active-set and reference engines diverged; see the table above"
        );
        // The fabric is single-threaded, so unlike E12 this bar needs no
        // core-count grading: it must hold on one core. The bar is 3x
        // because the *seed* (allocating) message path already measured 2.6x
        // on this ratio — only the zero-allocation fabric clears 3x (measured
        // 4.7x locally; the fabric itself is 3.2x over the seed path, see
        // EXPERIMENTS.md E13).
        let flood = e13
            .iter()
            .find(|r| r.workload == "flood-random" && r.engine == "active-set")
            .expect("flood-random row present");
        assert!(
            flood.speedup_vs_reference >= 3.0,
            "message fabric regression: flood-random speedup {:.2}x < 3x",
            flood.speedup_vs_reference
        );
        return;
    }

    if args.iter().any(|a| a == "chaos-json") {
        // CI mode: only the chaos degradation matrix, plus its artifact. The
        // artifact is written before the assertions so a regression still
        // leaves the full matrix behind for inspection.
        println!("# Experiment tables (chaos gate, {scale:?} scale)");
        let e14 = e14_chaos_matrix(scale);
        print_section("E14: chaos degradation matrix (fault injection)", &e14);
        write_artifact(
            "BENCH_chaos.json",
            format!(
                "{{\"experiment\": \"e14_chaos_matrix\", \"scale\": \"{scale:?}\", \"rows\": {}}}",
                array(&e14)
            ),
        );
        // A fault plan with a seed but zero injections must be inert: the
        // zero-loss sweep rows are bit-identical to the fault-free baselines.
        for row in e14.iter().filter(|r| r.loss_ppm == 0) {
            assert!(
                row.matches_baseline,
                "chaos regression: {} diverged from its baseline at zero loss",
                row.algorithm
            );
        }
        // Same seed, same plan => same execution, even through a full
        // algorithm stack (verified by a replay at the highest loss rate).
        assert!(
            e14.iter().all(|r| r.deterministic),
            "chaos regression: a faulty run did not replay bit-identically; see the table above"
        );
        // The safety net held: no run escaped its round budget, and every
        // row landed in a known class.
        assert!(
            e14.iter().all(|r| r.rounds <= r.round_budget),
            "chaos regression: a run escaped its round budget; see the table above"
        );
        assert!(
            e14.iter().all(|r| matches!(r.outcome.as_str(), "ok" | "wedged" | "failed")),
            "chaos regression: unclassified outcome; see the table above"
        );
        // Differential check under active faults: both engines must apply
        // the identical fault schedule (drops, jitter, churn) on a
        // message-heavy workload.
        {
            use congest_sim::workloads::ChaosFlood;
            use congest_sim::{Engine, FaultPlan, SimConfig};
            let g = congest_graph::generators::random_connected(64, 128, 29);
            let plan = FaultPlan::none()
                .with_seed(0xC4A0_5EED)
                .with_drop_ppm(150_000)
                .with_max_skew(2)
                .with_crash(congest_graph::NodeId(3), 4, Some(9))
                .with_crash(congest_graph::NodeId(7), 2, None);
            let cfg = SimConfig::default().with_faults(plan);
            let fast = Engine::new(&g, cfg.clone())
                .run(|id| ChaosFlood::new(id, 48))
                .expect("chaos flood halts on schedule");
            let slow = Engine::new(&g, cfg)
                .run_reference(|id| ChaosFlood::new(id, 48))
                .expect("chaos flood halts on schedule");
            assert_eq!(
                fast.metrics, slow.metrics,
                "chaos regression: engines diverged under an active fault plan"
            );
            let fast_recv: Vec<u64> = fast.states.iter().map(|s| s.received).collect();
            let slow_recv: Vec<u64> = slow.states.iter().map(|s| s.received).collect();
            assert_eq!(
                fast_recv, slow_recv,
                "chaos regression: engines delivered different message sets under faults"
            );
            assert!(fast.metrics.fault_drops > 0, "the chaos plan must actually inject faults");
        }
        return;
    }

    if args.iter().any(|a| a == "oracle-json") {
        // CI mode: only the distance-oracle experiment, plus its artifact.
        // The artifact is written before the assertions so a regression
        // still leaves the measurements behind for inspection.
        println!("# Experiment tables (oracle gate, {scale:?} scale)");
        let e16 = e16_oracle(scale);
        print_section("E16: distance-oracle service (sparse covers)", &e16);
        write_artifact(
            "BENCH_oracle.json",
            format!(
                "{{\"experiment\": \"e16_oracle\", \"scale\": \"{scale:?}\", \"rows\": {}}}",
                array(&e16)
            ),
        );
        // Bar 1 — the gate must exercise the cover hierarchy, and there the
        // oracle must occupy less memory than the exact n x n matrix.
        assert!(
            e16.iter().any(|r| !r.fallback),
            "oracle gate regression: no row exercised the cover hierarchy"
        );
        for row in e16.iter().filter(|r| !r.fallback) {
            assert!(
                row.bytes < row.exact_matrix_bytes,
                "oracle space regression at n = {}: {} bytes >= exact {} bytes",
                row.n,
                row.bytes,
                row.exact_matrix_bytes
            );
        }
        // Bar 2 — every sampled pair's observed stretch stays within the
        // proven bound (and the fallback rows are exact: bound 1).
        for row in &e16 {
            assert!(
                row.max_observed_stretch <= row.stretch_bound as f64,
                "oracle stretch regression at n = {}: observed {:.2} > proven {}",
                row.n,
                row.max_observed_stretch,
                row.stretch_bound
            );
        }
        // Bar 3 — bit-identical replay at every query-thread count: batch
        // sharding is an execution strategy, not a semantic knob.
        assert!(
            e16.iter().all(|r| r.threads_agree),
            "oracle determinism regression: a thread count diverged; see the table above"
        );
        return;
    }

    if args.iter().any(|a| a == "seqsolver-json") {
        // CI mode: only the sequential-solver shootout, plus its artifact.
        // The artifact is written before the assertions so a regression
        // still leaves the measurements behind for inspection.
        println!("# Experiment tables (seqsolver gate, {scale:?} scale)");
        let e17 = e17_seq_solver(scale);
        print_section("E17: sequential truth-oracle shootout (killer families)", &e17);
        write_artifact(
            "BENCH_seqsolver.json",
            format!(
                "{{\"experiment\": \"e17_seq_solver\", \"scale\": \"{scale:?}\", \"rows\": {}}}",
                array(&e17)
            ),
        );
        // Bar 1 — exactness on every family: the radix-heap oracle must be
        // bit-identical to the binary-heap reference (distances AND parent
        // pointers), and the seq-bmssp rival's distances must match both.
        for row in &e17 {
            assert!(
                row.distances_match,
                "truth-oracle regression: radix diverged from binary on {}",
                row.family
            );
            assert!(
                row.recursive_matches,
                "rival regression: seq-bmssp diverged from the oracle on {}",
                row.family
            );
        }
        // Bar 2 — graded wall-clock bar on the dense decrease-key-storm
        // family (Θ(n²) improvements), judged against the cores actually
        // available: the full 1.5x bar on >= 4 cores (the CI runner), a
        // no-regression check (0.9 tolerates timer noise) on smaller hosts
        // where turbo/noise make the ratio unreliable.
        let dense = e17
            .iter()
            .find(|r| r.family == "wrong-dijkstra-killer")
            .expect("wrong-dijkstra-killer row present");
        let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
        let bar = if cores >= 4 { 1.5 } else { 0.9 };
        if bar < 1.0 {
            eprintln!(
                "{cores}-core host: full 1.5x speedup bar relaxed to no-regression \
                 (measured {:.2}x)",
                dense.speedup
            );
        }
        assert!(
            dense.speedup >= bar,
            "truth-oracle speedup regression: radix vs binary measured {:.2}x < {:.1}x \
             on wrong-dijkstra-killer n = {} ({cores} cores)",
            dense.speedup,
            bar,
            dense.n
        );
        return;
    }

    if args.iter().any(|a| a == "apsp-json") {
        // CI mode: only the APSP-throughput experiment at the acceptance
        // size, plus its artifact. The gate fails loudly on a result mismatch
        // or a wall-clock regression rather than archiving it green.
        //
        // The default gate size is 256, which a single core finishes in well
        // under a minute; set E12_GATE_FULL=1 for the n = 512 sweep recorded
        // in EXPERIMENTS.md (minutes on one core, worth it on >= 4).
        let full = std::env::var("E12_GATE_FULL").map(|v| v == "1").unwrap_or(false);
        let (gate_n, scale_label) = if full { (512u32, "Gate512") } else { (256, "Gate256") };
        println!("# Experiment tables (APSP gate, n = {gate_n})");
        let e12 = e12_apsp_throughput_at(&[gate_n]);
        print_section("E12: APSP throughput (parallel streaming driver vs reference driver)", &e12);
        write_artifact(
            "BENCH_apsp.json",
            format!(
                "{{\"experiment\": \"e12_apsp_throughput\", \"scale\": \"{scale_label}\", \"rows\": {}}}",
                array(&e12)
            ),
        );
        assert!(
            e12.iter().all(|r| r.results_match),
            "parallel-streaming and reference APSP drivers diverged; see the table above"
        );
        let parallel = e12
            .iter()
            .find(|r| r.driver == "parallel-streaming" && r.n == gate_n)
            .expect("parallel-streaming row present");
        // The 2x bar assumes the instances can actually run in parallel
        // (CI runners have 4 vCPUs). On 2-3 cores the ideal speedup is
        // capped near the core count, so the bar is graded; on a single
        // core both drivers are dominated by the same sequentialized SSSP
        // executions and the gate degrades to a no-regression check (0.9
        // tolerates timer noise).
        let bar = match parallel.threads {
            0 | 1 => 0.9,
            2 | 3 => 1.3,
            _ => 2.0,
        };
        assert!(
            parallel.speedup_vs_reference >= bar,
            "APSP throughput regression: speedup {:.2}x < {:.1}x (threads = {})",
            parallel.speedup_vs_reference,
            bar,
            parallel.threads
        );
        return;
    }

    println!("# Experiment tables ({scale:?} scale)");

    let e1 = e1_e3_sssp_comparison(scale);
    print_section("E1-E3: SSSP time, congestion, and messages vs baselines", &e1);
    let e4 = e4_cutter(scale);
    print_section("E4: approximate cutter (Lemma 2.1)", &e4);
    let e5 = e5_energy_bfs(scale);
    print_section("E5: low-energy BFS vs always-awake BFS", &e5);
    let e6 = e6_energy_cssp(scale);
    print_section("E6: low-energy weighted CSSP vs always-awake Bellman-Ford", &e6);
    let e7 = e7_apsp(scale);
    print_section("E7: APSP via random-delay scheduling", &e7);
    let e8 = e8_cover_quality(scale);
    print_section("E8: sparse-cover quality", &e8);
    let e9 = e9_spanning_forest(scale);
    print_section("E9: maximal spanning forest (Boruvka)", &e9);
    let e10 = e10_recursion(scale);
    print_section("E10: recursion structure (Lemma 2.4 / Corollary 2.5)", &e10);
    let e11 = e11_engine_throughput(scale);
    print_section("E11: engine throughput (active-set vs reference core)", &e11);
    let e12 = e12_apsp_throughput(scale);
    print_section("E12: APSP throughput (parallel streaming driver vs reference driver)", &e12);
    let e13 = e13_message_throughput(scale);
    print_section("E13: message throughput (zero-allocation fabric vs reference delivery)", &e13);
    let e14 = e14_chaos_matrix(scale);
    print_section("E14: chaos degradation matrix (fault injection)", &e14);
    let e16 = e16_oracle(scale);
    print_section("E16: distance-oracle service (sparse covers)", &e16);
    let e17 = e17_seq_solver(scale);
    print_section("E17: sequential truth-oracle shootout (killer families)", &e17);

    if json {
        use congest_bench::json::object;
        let dump = object(&[
            ("registry", array(registry())),
            ("e1_e3", array(&e1)),
            ("e4", array(&e4)),
            ("e5", array(&e5)),
            ("e6", array(&e6)),
            ("e7", array(&e7)),
            ("e8", array(&e8)),
            ("e9", array(&e9)),
            ("e10", array(&e10)),
            ("e11", array(&e11)),
            ("e12", array(&e12)),
            ("e13", array(&e13)),
            ("e14", array(&e14)),
            ("e16", array(&e16)),
            ("e17", array(&e17)),
        ]);
        println!("\n## JSON\n");
        println!("{dump}");
    }
}
