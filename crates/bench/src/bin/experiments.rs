//! Prints the experiment tables recorded in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p congest-bench --bin experiments            # quick
//! cargo run --release -p congest-bench --bin experiments -- full    # full sweep
//! cargo run --release -p congest-bench --bin experiments -- full json  # + JSON dump
//! cargo run --release -p congest-bench --bin experiments -- engine-json
//! #   runs only E11 (engine throughput) and writes BENCH_engine.json
//! cargo run --release -p congest-bench --bin experiments -- apsp-json
//! #   runs only E12 (APSP throughput, n = 512) and writes BENCH_apsp.json
//! ```

use congest_bench::{
    e10_recursion, e11_engine_throughput, e12_apsp_throughput, e12_apsp_throughput_at,
    e1_e3_sssp_comparison, e4_cutter, e5_energy_bfs, e6_energy_cssp, e7_apsp, e8_cover_quality,
    e9_spanning_forest, ApspThroughputRow, Scale, ThroughputRow,
};

fn print_e11(rows: &[ThroughputRow]) {
    println!("\n## E11: engine throughput (active-set vs reference core)\n");
    println!("| workload | engine | n | m | rounds | messages | lost | max energy | wall ms | node-rounds/s | speedup | metrics match |");
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
    for r in rows {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {:.2} | {:.3e} | {:.1}x | {} |",
            r.workload,
            r.engine,
            r.n,
            r.m,
            r.rounds,
            r.messages,
            r.messages_lost,
            r.max_energy,
            r.wall_ms,
            r.node_rounds_per_sec,
            r.speedup_vs_reference,
            r.metrics_match
        );
    }
}

/// Writes the E11 rows to `BENCH_engine.json` so CI can archive the engine
/// perf trajectory (both engines' wall-clock numbers are in the rows).
fn write_engine_json(rows: &[ThroughputRow], scale: Scale) {
    use congest_bench::json::array;
    let body = format!(
        "{{\"experiment\": \"e11_engine_throughput\", \"scale\": \"{scale:?}\", \"rows\": {}}}",
        array(rows)
    );
    std::fs::write("BENCH_engine.json", body).expect("write BENCH_engine.json");
    eprintln!("wrote BENCH_engine.json");
}

fn print_e12(rows: &[ApspThroughputRow]) {
    println!("\n## E12: APSP throughput (parallel streaming driver vs reference driver)\n");
    println!("| n | m | driver | threads | wall ms | makespan | model rounds | sequential rounds | messages | speedup | results match |");
    println!("|---:|---:|---|---:|---:|---:|---:|---:|---:|---:|---:|");
    for r in rows {
        println!(
            "| {} | {} | {} | {} | {:.1} | {} | {} | {} | {} | {:.2}x | {} |",
            r.n,
            r.m,
            r.driver,
            r.threads,
            r.wall_ms,
            r.makespan,
            r.model_rounds,
            r.sequential_rounds,
            r.total_messages,
            r.speedup_vs_reference,
            r.results_match
        );
    }
}

/// Writes the E12 rows to `BENCH_apsp.json` so CI can archive the APSP
/// pipeline's perf trajectory (both drivers' wall-clock numbers are in the
/// rows).
fn write_apsp_json(rows: &[ApspThroughputRow], label: &str) {
    use congest_bench::json::array;
    let body = format!(
        "{{\"experiment\": \"e12_apsp_throughput\", \"scale\": \"{label}\", \"rows\": {}}}",
        array(rows)
    );
    std::fs::write("BENCH_apsp.json", body).expect("write BENCH_apsp.json");
    eprintln!("wrote BENCH_apsp.json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "full") { Scale::Full } else { Scale::Quick };
    let json = args.iter().any(|a| a == "json");

    if args.iter().any(|a| a == "engine-json") {
        // CI mode: only the engine-throughput experiment, plus its artifact.
        // This is also the release-mode gate on the refactor's acceptance
        // bar, so it fails loudly rather than archiving a regression green.
        println!("# Experiment tables ({scale:?} scale)");
        let e11 = e11_engine_throughput(scale);
        print_e11(&e11);
        write_engine_json(&e11, scale);
        assert!(
            e11.iter().all(|r| r.metrics_match),
            "active-set and reference engines diverged; see the table above"
        );
        let wave = e11
            .iter()
            .find(|r| r.workload == "wave-bfs-path" && r.engine == "active-set")
            .expect("wave-bfs-path row present");
        assert!(
            wave.speedup_vs_reference >= 3.0,
            "engine throughput regression: wave-bfs-path speedup {:.1}x < 3x",
            wave.speedup_vs_reference
        );
        return;
    }

    if args.iter().any(|a| a == "apsp-json") {
        // CI mode: only the APSP-throughput experiment at the acceptance
        // size, plus its artifact. The gate fails loudly on a result mismatch
        // or a wall-clock regression rather than archiving it green.
        println!("# Experiment tables (APSP gate, n = 512)");
        let e12 = e12_apsp_throughput_at(&[512]);
        print_e12(&e12);
        write_apsp_json(&e12, "Gate512");
        assert!(
            e12.iter().all(|r| r.results_match),
            "parallel-streaming and reference APSP drivers diverged; see the table above"
        );
        let parallel = e12
            .iter()
            .find(|r| r.driver == "parallel-streaming" && r.n == 512)
            .expect("parallel-streaming row present");
        // The 2x bar assumes the instances can actually run in parallel
        // (CI runners have 4 vCPUs). On 2-3 cores the ideal speedup is
        // capped near the core count, so the bar is graded; on a single
        // core both drivers are dominated by the same sequentialized SSSP
        // executions and the gate degrades to a no-regression check (0.9
        // tolerates timer noise).
        let bar = match parallel.threads {
            0 | 1 => 0.9,
            2 | 3 => 1.3,
            _ => 2.0,
        };
        assert!(
            parallel.speedup_vs_reference >= bar,
            "APSP throughput regression: speedup {:.2}x < {:.1}x (threads = {})",
            parallel.speedup_vs_reference,
            bar,
            parallel.threads
        );
        return;
    }

    println!("# Experiment tables ({scale:?} scale)\n");

    let e1 = e1_e3_sssp_comparison(scale);
    println!("## E1-E3: SSSP time, congestion, and messages vs baselines\n");
    println!(
        "| workload | algorithm | n | m | rounds | messages | max congestion | max energy | lost |"
    );
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|");
    for r in &e1 {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            r.workload,
            r.algorithm,
            r.n,
            r.m,
            r.rounds,
            r.messages,
            r.max_congestion,
            r.max_energy,
            r.messages_lost
        );
    }

    let e4 = e4_cutter(scale);
    println!("\n## E4: approximate cutter (Lemma 2.1)\n");
    println!("| n | W | 1/eps | rounds | max congestion | error bound | max observed error | dropped within 2W |");
    println!("|---:|---:|---:|---:|---:|---:|---:|---:|");
    for r in &e4 {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            r.n,
            r.w,
            r.eps_inverse,
            r.rounds,
            r.max_congestion,
            r.error_bound,
            r.max_observed_error,
            r.dropped_within_2w
        );
    }

    let e5 = e5_energy_bfs(scale);
    println!("\n## E5: low-energy BFS vs always-awake BFS\n");
    println!("| workload | algorithm | n | D | rounds | max energy | mean energy | slowdown | megaround | levels |");
    println!("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|");
    for r in &e5 {
        println!(
            "| {} | {} | {} | {} | {} | {} | {:.1} | {} | {} | {} |",
            r.workload,
            r.algorithm,
            r.n,
            r.diameter,
            r.rounds,
            r.max_energy,
            r.mean_energy,
            r.slowdown,
            r.megaround,
            r.cover_levels
        );
    }

    let e6 = e6_energy_cssp(scale);
    println!("\n## E6: low-energy weighted CSSP vs always-awake Bellman-Ford\n");
    println!("| algorithm | n | D | rounds | max energy | mean energy | megaround | levels |");
    println!("|---|---:|---:|---:|---:|---:|---:|---:|");
    for r in &e6 {
        println!(
            "| {} | {} | {} | {} | {} | {:.1} | {} | {} |",
            r.algorithm,
            r.n,
            r.diameter,
            r.rounds,
            r.max_energy,
            r.mean_energy,
            r.megaround,
            r.cover_levels
        );
    }

    let e7 = e7_apsp(scale);
    println!("\n## E7: APSP via random-delay scheduling\n");
    println!("| n | m | edge budget/round | concurrent makespan | sequential rounds | speedup | max instance congestion |");
    println!("|---:|---:|---:|---:|---:|---:|---:|");
    for r in &e7 {
        println!(
            "| {} | {} | {} | {} | {} | {:.2} | {} |",
            r.n,
            r.m,
            r.edge_budget,
            r.concurrent_makespan,
            r.sequential_rounds,
            r.speedup,
            r.max_instance_congestion
        );
    }

    let e8 = e8_cover_quality(scale);
    println!("\n## E8: sparse-cover quality\n");
    println!("| n | d | clusters | colors | max membership | mean membership | max tree depth | stretch | max edge tree load |");
    println!("|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
    for r in &e8 {
        println!(
            "| {} | {} | {} | {} | {} | {:.2} | {} | {:.1} | {} |",
            r.n,
            r.d,
            r.clusters,
            r.colors,
            r.max_membership,
            r.mean_membership,
            r.max_tree_depth,
            r.stretch,
            r.max_edge_tree_load
        );
    }

    let e9 = e9_spanning_forest(scale);
    println!("\n## E9: maximal spanning forest (Boruvka)\n");
    println!("| n | m | components | phases | rounds | max congestion | low-energy max | always-awake max |");
    println!("|---:|---:|---:|---:|---:|---:|---:|---:|");
    for r in &e9 {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            r.n,
            r.m,
            r.components,
            r.phases,
            r.rounds,
            r.max_congestion,
            r.low_energy_max,
            r.always_awake_max
        );
    }

    let e10 = e10_recursion(scale);
    println!("\n## E10: recursion structure (Lemma 2.4 / Corollary 2.5)\n");
    println!("| n | levels | subproblems | max participation | total subproblem size | total / (n * levels) |");
    println!("|---:|---:|---:|---:|---:|---:|");
    for r in &e10 {
        println!(
            "| {} | {} | {} | {} | {} | {:.2} |",
            r.n,
            r.levels,
            r.subproblems,
            r.max_participation,
            r.total_subproblem_size,
            r.normalized_total
        );
    }

    let e11 = e11_engine_throughput(scale);
    print_e11(&e11);

    let e12 = e12_apsp_throughput(scale);
    print_e12(&e12);

    if json {
        use congest_bench::json::{array, object};
        let dump = object(&[
            ("e1_e3", array(&e1)),
            ("e4", array(&e4)),
            ("e5", array(&e5)),
            ("e6", array(&e6)),
            ("e7", array(&e7)),
            ("e8", array(&e8)),
            ("e9", array(&e9)),
            ("e10", array(&e10)),
            ("e11", array(&e11)),
            ("e12", array(&e12)),
        ]);
        println!("\n## JSON\n");
        println!("{dump}");
    }
}
