//! Generic markdown table rendering for the experiment rows.
//!
//! One formatting path replaces the per-experiment hand-rolled printers that
//! used to live in the `experiments` binary: every row type describes its
//! [`Column`]s once, and [`render`] produces the markdown. Rows that carry
//! the unified [`RunReport`] share the [`report_columns`]/[`report_cells`]
//! helpers, so the core complexity columns are identical across experiments
//! by construction.

use std::fmt::Write as _;

use congest_sssp::{AlgorithmInfo, RunReport, SleepingReport};

use crate::{
    ApspRow, ApspThroughputRow, ChaosRow, CoverRow, CutterRow, EnergyRow, ForestRow, OracleRow,
    RecursionRow, SeqSolverRow, ShardScalingRow, SsspRow, ThroughputRow,
};

/// One table column: header text plus whether its cells are right-aligned
/// (numeric) in the rendered markdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Column {
    /// Header text.
    pub header: &'static str,
    /// Right-align the column (`---:` in markdown).
    pub numeric: bool,
}

/// A numeric (right-aligned) column.
pub const fn num(header: &'static str) -> Column {
    Column { header, numeric: true }
}

/// A textual (left-aligned) column.
pub const fn text(header: &'static str) -> Column {
    Column { header, numeric: false }
}

/// Types renderable as rows of one markdown table.
pub trait TableRow {
    /// The table's columns, in cell order.
    fn columns() -> Vec<Column>;
    /// This row's cells; must match [`TableRow::columns`] in length.
    fn cells(&self) -> Vec<String>;
}

/// Renders `rows` as a markdown table (header, alignment row, one line per
/// row).
pub fn render<R: TableRow>(rows: &[R]) -> String {
    let columns = R::columns();
    let mut out = String::new();
    out.push('|');
    for c in &columns {
        write!(out, " {} |", c.header).expect("writing to a String cannot fail");
    }
    out.push_str("\n|");
    for c in &columns {
        out.push_str(if c.numeric { "---:|" } else { "---|" });
    }
    out.push('\n');
    for row in rows {
        let cells = row.cells();
        debug_assert_eq!(cells.len(), columns.len(), "cells match the declared columns");
        out.push('|');
        for cell in cells {
            write!(out, " {cell} |").expect("writing to a String cannot fail");
        }
        out.push('\n');
    }
    out
}

/// The core complexity columns every [`RunReport`] provides.
pub fn report_columns() -> Vec<Column> {
    vec![
        num("n"),
        num("m"),
        num("rounds"),
        num("messages"),
        // Sleeping-model losses and fault-injected drops are distinct
        // phenomena and get distinct columns (see docs/FAULT_MODEL.md).
        num("slept"),
        num("fdrop"),
        num("max congestion"),
        num("max energy"),
        num("mean energy"),
    ]
}

/// The cells matching [`report_columns`].
pub fn report_cells(r: &RunReport) -> Vec<String> {
    vec![
        r.n.to_string(),
        r.m.to_string(),
        r.rounds.to_string(),
        r.messages.to_string(),
        r.messages_lost.to_string(),
        r.fault_drops.to_string(),
        r.max_congestion.to_string(),
        r.max_energy.to_string(),
        format!("{:.1}", r.mean_energy),
    ]
}

/// The sleeping-model columns ([`SleepingReport`]).
pub fn sleeping_columns() -> Vec<Column> {
    vec![num("slowdown"), num("megaround"), num("levels")]
}

/// The cells matching [`sleeping_columns`].
pub fn sleeping_cells(s: &SleepingReport) -> Vec<String> {
    vec![s.slowdown.to_string(), s.megaround.to_string(), s.cover_levels.to_string()]
}

impl TableRow for SsspRow {
    fn columns() -> Vec<Column> {
        let mut cols = vec![text("workload"), text("algorithm")];
        cols.extend(report_columns());
        cols
    }

    fn cells(&self) -> Vec<String> {
        let mut cells = vec![self.workload.clone(), self.algorithm.clone()];
        cells.extend(report_cells(&self.report));
        cells
    }
}

impl TableRow for CutterRow {
    fn columns() -> Vec<Column> {
        vec![
            num("n"),
            num("W"),
            num("1/eps"),
            num("rounds"),
            num("max congestion"),
            num("error bound"),
            num("max observed error"),
            num("dropped within 2W"),
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.report.n.to_string(),
            self.w.to_string(),
            self.eps_inverse.to_string(),
            self.report.rounds.to_string(),
            self.report.max_congestion.to_string(),
            self.error_bound().to_string(),
            self.max_observed_error.to_string(),
            self.dropped_within_2w.to_string(),
        ]
    }
}

impl TableRow for EnergyRow {
    fn columns() -> Vec<Column> {
        let mut cols = vec![text("workload"), text("algorithm"), num("D")];
        cols.extend(report_columns());
        cols.extend(sleeping_columns());
        cols
    }

    fn cells(&self) -> Vec<String> {
        let mut cells =
            vec![self.workload.clone(), self.algorithm.clone(), self.diameter.to_string()];
        cells.extend(report_cells(&self.report));
        cells.extend(sleeping_cells(&self.sleeping()));
        cells
    }
}

impl TableRow for ApspRow {
    fn columns() -> Vec<Column> {
        vec![
            num("n"),
            num("m"),
            num("edge budget/round"),
            num("concurrent makespan"),
            num("sequential rounds"),
            num("speedup"),
            num("max instance congestion"),
        ]
    }

    fn cells(&self) -> Vec<String> {
        let sched = self.schedule();
        vec![
            self.report.n.to_string(),
            self.report.m.to_string(),
            sched.edge_budget.to_string(),
            sched.makespan.to_string(),
            sched.sequential_rounds.to_string(),
            format!("{:.2}", sched.speedup()),
            sched.max_instance_congestion.to_string(),
        ]
    }
}

impl TableRow for CoverRow {
    fn columns() -> Vec<Column> {
        vec![
            num("n"),
            num("d"),
            num("clusters"),
            num("colors"),
            num("max membership"),
            num("mean membership"),
            num("max tree depth"),
            num("stretch"),
            num("max edge tree load"),
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.n.to_string(),
            self.d.to_string(),
            self.clusters.to_string(),
            self.colors.to_string(),
            self.max_membership.to_string(),
            format!("{:.2}", self.mean_membership),
            self.max_tree_depth.to_string(),
            format!("{:.1}", self.stretch),
            self.max_edge_tree_load.to_string(),
        ]
    }
}

impl TableRow for ForestRow {
    fn columns() -> Vec<Column> {
        vec![
            num("n"),
            num("m"),
            num("components"),
            num("phases"),
            num("rounds"),
            num("max congestion"),
            num("low-energy max"),
            num("always-awake max"),
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.n.to_string(),
            self.m.to_string(),
            self.components.to_string(),
            self.phases.to_string(),
            self.rounds.to_string(),
            self.max_congestion.to_string(),
            self.low_energy_max.to_string(),
            self.always_awake_max.to_string(),
        ]
    }
}

impl TableRow for RecursionRow {
    fn columns() -> Vec<Column> {
        vec![
            num("n"),
            num("levels"),
            num("subproblems"),
            num("max participation"),
            num("total subproblem size"),
            num("total / (n * levels)"),
        ]
    }

    fn cells(&self) -> Vec<String> {
        let rec = self.recursion();
        vec![
            self.report.n.to_string(),
            rec.levels.to_string(),
            rec.subproblems.to_string(),
            rec.max_participation.to_string(),
            rec.total_subproblem_size.to_string(),
            format!("{:.2}", self.normalized_total),
        ]
    }
}

impl TableRow for ThroughputRow {
    fn columns() -> Vec<Column> {
        vec![
            text("workload"),
            text("engine"),
            num("n"),
            num("m"),
            num("rounds"),
            num("messages"),
            num("lost"),
            num("max energy"),
            num("wall ms"),
            num("node-rounds/s"),
            num("speedup"),
            num("metrics match"),
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.workload.clone(),
            self.engine.clone(),
            self.n.to_string(),
            self.m.to_string(),
            self.rounds.to_string(),
            self.messages.to_string(),
            self.messages_lost.to_string(),
            self.max_energy.to_string(),
            format!("{:.2}", self.wall_ms),
            format!("{:.3e}", self.node_rounds_per_sec),
            format!("{:.1}x", self.speedup_vs_reference),
            self.metrics_match.to_string(),
        ]
    }
}

impl TableRow for ApspThroughputRow {
    fn columns() -> Vec<Column> {
        vec![
            num("n"),
            num("m"),
            text("driver"),
            num("threads"),
            num("wall ms"),
            num("makespan"),
            num("model rounds"),
            num("sequential rounds"),
            num("messages"),
            num("speedup"),
            num("results match"),
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.n.to_string(),
            self.m.to_string(),
            self.driver.clone(),
            self.threads.to_string(),
            format!("{:.1}", self.wall_ms),
            self.makespan.to_string(),
            self.model_rounds.to_string(),
            self.sequential_rounds.to_string(),
            self.total_messages.to_string(),
            format!("{:.2}x", self.speedup_vs_reference),
            self.results_match.to_string(),
        ]
    }
}

impl TableRow for ShardScalingRow {
    fn columns() -> Vec<Column> {
        vec![
            text("workload"),
            num("n"),
            num("m"),
            num("threads"),
            num("host cores"),
            num("rounds"),
            num("messages"),
            num("max energy"),
            num("wall ms"),
            num("node-rounds/s"),
            num("speedup"),
            num("matches 1t"),
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.workload.clone(),
            self.n.to_string(),
            self.m.to_string(),
            self.threads.to_string(),
            self.host_cores.to_string(),
            self.rounds.to_string(),
            self.messages.to_string(),
            self.max_energy.to_string(),
            format!("{:.2}", self.wall_ms),
            format!("{:.3e}", self.node_rounds_per_sec),
            format!("{:.2}x", self.speedup_vs_one_thread),
            self.matches_one_thread.to_string(),
        ]
    }
}

impl TableRow for ChaosRow {
    fn columns() -> Vec<Column> {
        vec![
            text("algorithm"),
            num("loss ppm"),
            text("outcome"),
            num("deterministic"),
            num("rounds"),
            num("baseline rounds"),
            num("round budget"),
            num("reached"),
            num("unreached"),
            num("max abs error"),
            num("fdrop"),
            num("slept"),
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.algorithm.clone(),
            self.loss_ppm.to_string(),
            self.outcome.clone(),
            self.deterministic.to_string(),
            self.rounds.to_string(),
            self.baseline_rounds.to_string(),
            self.round_budget.to_string(),
            self.reached.to_string(),
            self.unreached.to_string(),
            self.max_abs_error.to_string(),
            self.fault_drops.to_string(),
            self.sleep_lost.to_string(),
        ]
    }
}

impl TableRow for AlgorithmInfo {
    fn columns() -> Vec<Column> {
        vec![
            text("name"),
            text("label"),
            num("weighted"),
            num("multi-source"),
            num("sleeping-model"),
            num("approximate"),
            num("all-pairs"),
            num("thresholded"),
            num("queryable"),
            text("summary"),
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.name.to_string(),
            self.label.to_string(),
            self.weighted.to_string(),
            self.multi_source.to_string(),
            self.sleeping_model.to_string(),
            self.approximate.to_string(),
            self.all_pairs.to_string(),
            self.thresholded.to_string(),
            self.queryable.to_string(),
            self.summary.to_string(),
        ]
    }
}

impl TableRow for OracleRow {
    fn columns() -> Vec<Column> {
        vec![
            num("n"),
            num("m"),
            num("fallback"),
            num("levels"),
            num("clusters"),
            num("bytes"),
            num("exact bytes"),
            num("space ratio"),
            num("stretch bound"),
            num("observed stretch"),
            num("preprocess rounds"),
            num("queries"),
            num("queries/s"),
            num("threads agree"),
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.n.to_string(),
            self.m.to_string(),
            self.fallback.to_string(),
            self.levels.to_string(),
            self.clusters.to_string(),
            self.bytes.to_string(),
            self.exact_matrix_bytes.to_string(),
            format!("{:.3}", self.space_ratio),
            self.stretch_bound.to_string(),
            format!("{:.2}", self.max_observed_stretch),
            self.preprocess_rounds.to_string(),
            self.queries.to_string(),
            format!("{:.3e}", self.queries_per_sec),
            self.threads_agree.to_string(),
        ]
    }
}

impl TableRow for SeqSolverRow {
    fn columns() -> Vec<Column> {
        vec![
            text("family"),
            num("n"),
            num("m"),
            num("binary ms"),
            num("radix ms"),
            num("seq-bmssp ms"),
            num("radix speedup"),
            num("distances match"),
            num("rival matches"),
        ]
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.family.clone(),
            self.n.to_string(),
            self.m.to_string(),
            format!("{:.2}", self.binary_ms),
            format!("{:.2}", self.radix_ms),
            format!("{:.2}", self.recursive_ms),
            format!("{:.2}x", self.speedup),
            self.distances_match.to_string(),
            self.recursive_matches.to_string(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sssp::registry;

    #[test]
    fn rendered_tables_have_header_alignment_and_rows() {
        let rows: Vec<AlgorithmInfo> = registry().to_vec();
        let table = render(&rows);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2 + rows.len());
        assert!(lines[0].starts_with("| name |"));
        assert!(lines[1].contains("---|") && lines[1].contains("---:|"));
        assert!(lines[2].contains("recursive-cssp"));
    }

    #[test]
    fn every_row_type_produces_matching_cell_counts() {
        // The report-driven rows: columns and cells must stay in sync.
        let rows = crate::e1_e3_sssp_comparison(crate::Scale::Quick);
        assert_eq!(SsspRow::columns().len(), rows[0].cells().len());
        let rows = crate::e7_apsp(crate::Scale::Quick);
        assert_eq!(ApspRow::columns().len(), rows[0].cells().len());
    }

    #[test]
    fn registry_table_prints_the_queryable_flag() {
        // The `list-algorithms` CI step renders exactly this table; the new
        // capability column and the oracle's row must both appear in it.
        let table = render(registry());
        let header = table.lines().next().expect("header line");
        assert!(header.contains("queryable"), "got {header}");
        let oracle = table
            .lines()
            .find(|l| l.contains("distance-oracle"))
            .expect("distance-oracle row present");
        assert!(oracle.contains("true"), "queryable flag renders: {oracle}");
    }

    #[test]
    fn report_cells_match_report_columns() {
        let rows = crate::e1_e3_sssp_comparison(crate::Scale::Quick);
        assert_eq!(report_columns().len(), report_cells(&rows[0].report).len());
        assert_eq!(sleeping_columns().len(), 3);
    }
}
