//! Experiment harness reproducing the complexity claims of the paper.
//!
//! The paper is a theory paper with no empirical section, so the "tables" to
//! reproduce are its stated bounds (see `EXPERIMENTS.md` at the repository
//! root). Each `eN_*` function here runs the corresponding experiment and
//! returns serializable rows; the `experiments` binary prints them as
//! markdown tables, and the Criterion benches under `benches/` time the same
//! workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod table;

use congest_cover::sparse_cover::SparseCover;
use congest_graph::{generators, properties, Distance, Graph, NodeId};
use congest_sssp::apsp::{apsp, apsp_reference, planned_threads, ApspConfig};
use congest_sssp::spanning_forest::spanning_forest;
use congest_sssp::{
    build_oracle, registry, AlgoConfig, AlgoError, Algorithm, AlgorithmInfo, FaultPlan,
    OracleConfig, RecursionReport, RunReport, ScheduleReport, SleepingReport, Solver, SolverRun,
};
use serde::{Deserialize, Serialize};

/// Resolves a benchmark artifact file name against the `BENCH_OUT_DIR`
/// environment variable: artifacts land in that directory (created if
/// missing) when it is set and non-empty, and in the current working
/// directory otherwise.
pub fn bench_out_path(file_name: &str) -> std::path::PathBuf {
    match std::env::var_os("BENCH_OUT_DIR") {
        Some(dir) if !dir.is_empty() => {
            let dir = std::path::PathBuf::from(dir);
            std::fs::create_dir_all(&dir).expect("create BENCH_OUT_DIR");
            dir.join(file_name)
        }
        _ => std::path::PathBuf::from(file_name),
    }
}

/// Scale of an experiment run: `Quick` keeps every sweep small enough for CI
/// and unit tests; `Full` uses the sizes recorded in `EXPERIMENTS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Small sizes (seconds).
    Quick,
    /// The sizes recorded in `EXPERIMENTS.md` (minutes).
    Full,
}

impl Scale {
    fn pick<'a, T>(&self, quick: &'a [T], full: &'a [T]) -> &'a [T] {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The adversarial workload for Bellman–Ford congestion (E2/E3): a unit-weight
/// path `0 - 1 - … - (k-1)` plus "shortcut" edges `(0, i)` of weight `2i`.
/// Every path node's estimate improves `Θ(i)` times, so Bellman–Ford pushes
/// `Θ(n)` messages over the path edges while the exact distances are simply
/// `dist(0, i) = i`.
pub fn bellman_ford_adversarial(k: u32) -> Graph {
    let mut b = Graph::builder(k);
    for i in 0..k - 1 {
        b.add_edge(i, i + 1, 1).expect("path edges are valid");
    }
    for i in 2..k {
        b.add_edge(0, i, 2 * i as u64).expect("shortcut edges are valid");
    }
    b.build()
}

/// A weighted random connected workload shared by E1–E3.
pub fn weighted_workload(n: u32, seed: u64) -> Graph {
    let base = generators::random_connected(n, 2 * n as u64, seed);
    generators::with_random_weights(&base, (n as u64).max(4), seed ^ 0x5eed)
}

// ---------------------------------------------------------------------------
// E1–E3: SSSP time / congestion / messages vs the baselines
// ---------------------------------------------------------------------------

/// One measurement row of the SSSP comparison experiments (E1–E3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsspRow {
    /// Workload label.
    pub workload: String,
    /// Algorithm label (the registry's [`congest_sssp::AlgorithmInfo::label`]).
    pub algorithm: String,
    /// The unified complexity report of the run.
    pub report: RunReport,
}

/// Runs every always-awake exact weighted single-source-set solver in the
/// [`registry`] on the same workloads (E1: rounds, E2: congestion, E3:
/// messages).
pub fn e1_e3_sssp_comparison(scale: Scale) -> Vec<SsspRow> {
    let quick = [32u32, 64];
    let full = [32u32, 64, 128, 256, 512];
    let sizes = scale.pick(&quick, &full);
    let cfg = AlgoConfig::default();
    let mut rows = Vec::new();
    for &n in sizes {
        for (workload, g) in [
            ("random-weighted".to_string(), weighted_workload(n, 7)),
            ("bf-adversarial".to_string(), bellman_ford_adversarial(n)),
        ] {
            for info in registry()
                .iter()
                .filter(|i| i.weighted && i.exact() && !i.sleeping_model && !i.all_pairs)
            {
                let run = Solver::on(&g)
                    .algorithm(info.algorithm)
                    .source(NodeId(0))
                    .config(cfg.clone())
                    .run()
                    .expect("solver run");
                rows.push(SsspRow {
                    workload: workload.clone(),
                    algorithm: info.label.to_string(),
                    report: run.report,
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E4: the approximate cutter (Lemma 2.1)
// ---------------------------------------------------------------------------

/// One measurement row of the cutter experiment (E4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutterRow {
    /// The threshold `W`.
    pub w: u64,
    /// `1/ε`.
    pub eps_inverse: u64,
    /// The largest observed additive error against exact distances.
    pub max_observed_error: u64,
    /// Nodes within `2W` that were (incorrectly) dropped — must be 0.
    pub dropped_within_2w: u64,
    /// The unified complexity report of the run (with
    /// [`RunReport::error_bound`] set).
    pub report: RunReport,
}

impl CutterRow {
    /// The guaranteed additive error bound of the run.
    pub fn error_bound(&self) -> u64 {
        self.report.error_bound.expect("cutter rows always carry an error bound")
    }
}

/// Measures the cutter's error, rounds, and congestion (Lemma 2.1 / E4).
pub fn e4_cutter(scale: Scale) -> Vec<CutterRow> {
    let quick = [2u64, 4];
    let full = [2u64, 4, 8];
    let epsilons = scale.pick(&quick, &full);
    let sizes: &[u32] = match scale {
        Scale::Quick => &[48],
        Scale::Full => &[64, 128, 256],
    };
    let mut rows = Vec::new();
    for &n in sizes {
        let g = weighted_workload(n, 11);
        let w = g.distance_upper_bound() / 4 + 1;
        let truth = congest_graph::sequential::dijkstra(&g, &[NodeId(0)]);
        for &inv in epsilons {
            let cfg = AlgoConfig::default().with_epsilon_inverse(inv);
            let run = Solver::on(&g)
                .algorithm(Algorithm::ApproximateCssp)
                .source(NodeId(0))
                .threshold(w)
                .config(cfg)
                .run()
                .expect("cutter run");
            let mut max_err = 0u64;
            let mut dropped = 0u64;
            for v in g.nodes() {
                match (run.output.distance(v).finite(), truth.distance(v).finite()) {
                    (Some(est), Some(t)) => max_err = max_err.max(est.saturating_sub(t)),
                    (None, Some(t)) if t <= 2 * w => dropped += 1,
                    _ => {}
                }
            }
            rows.push(CutterRow {
                w,
                eps_inverse: inv,
                max_observed_error: max_err,
                dropped_within_2w: dropped,
                report: run.report,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E5: low-energy BFS vs always-awake BFS
// ---------------------------------------------------------------------------

/// One measurement row of the energy experiments (E5/E6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyRow {
    /// Workload label.
    pub workload: String,
    /// Algorithm label (the registry's [`congest_sssp::AlgorithmInfo::label`]).
    pub algorithm: String,
    /// Hop diameter of the workload.
    pub diameter: u64,
    /// The unified complexity report of the run (with
    /// [`RunReport::sleeping`] set for the sleeping-model algorithms).
    pub report: RunReport,
}

impl EnergyRow {
    /// The sleeping-model instrumentation, all-zero for always-awake
    /// baselines (which have no cover, slowdown, or megaround).
    pub fn sleeping(&self) -> SleepingReport {
        self.report.sleeping.unwrap_or(SleepingReport {
            slowdown: 0,
            megaround: 0,
            cover_levels: 0,
        })
    }
}

/// Compares every BFS-family (unweighted) solver in the [`registry`] — the
/// low-energy BFS of Theorem 3.13/3.14 against the always-awake baseline —
/// on growing-diameter workloads (E5).
pub fn e5_energy_bfs(scale: Scale) -> Vec<EnergyRow> {
    let quick = [64u32, 128];
    let full = [64u32, 128, 256, 512];
    let sizes = scale.pick(&quick, &full);
    let cfg = AlgoConfig::default();
    let mut rows = Vec::new();
    for &n in sizes {
        for (workload, g) in [
            ("path".to_string(), generators::path(n, 1)),
            ("grid".to_string(), {
                let side = (n as f64).sqrt().ceil() as u32;
                generators::grid(side, side, 1)
            }),
        ] {
            let diameter = properties::hop_diameter(&g);
            for info in registry().iter().filter(|i| !i.weighted) {
                let mut req =
                    Solver::on(&g).algorithm(info.algorithm).source(NodeId(0)).config(cfg.clone());
                // The sleeping-model BFS builds its wake schedules for the
                // wavefront horizon, so it is thresholded at the diameter;
                // the always-awake baseline keeps the untruncated default.
                if info.sleeping_model {
                    req = req.threshold(diameter);
                }
                let run = req.run().expect("bfs run");
                rows.push(EnergyRow {
                    workload: workload.clone(),
                    algorithm: info.label.to_string(),
                    diameter,
                    report: run.report,
                });
            }
        }
    }
    rows
}

/// Compares the low-energy weighted CSSP (Theorem 3.15) against the
/// always-awake Bellman–Ford energy baseline (E6).
pub fn e6_energy_cssp(scale: Scale) -> Vec<EnergyRow> {
    let quick = [32u32, 48];
    let full = [32u32, 64, 96, 128];
    let sizes = scale.pick(&quick, &full);
    let cfg = AlgoConfig::default();
    let mut rows = Vec::new();
    for &n in sizes {
        let g = weighted_workload(n, 23);
        let diameter = properties::hop_diameter(&g);
        for algorithm in [Algorithm::LowEnergyCssp, Algorithm::BellmanFord] {
            let run = Solver::on(&g)
                .algorithm(algorithm)
                .source(NodeId(0))
                .config(cfg.clone())
                .run()
                .expect("cssp run");
            rows.push(EnergyRow {
                workload: "random-weighted".into(),
                algorithm: algorithm.label().to_string(),
                diameter,
                report: run.report,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E7: APSP via random-delay scheduling
// ---------------------------------------------------------------------------

/// One measurement row of the APSP experiment (E7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApspRow {
    /// The unified complexity report of the run (with
    /// [`RunReport::schedule`] set).
    pub report: RunReport,
}

impl ApspRow {
    /// The scheduling instrumentation of the run.
    pub fn schedule(&self) -> ScheduleReport {
        self.report.schedule.expect("APSP rows always carry a schedule")
    }
}

/// Runs the APSP experiment (E7).
pub fn e7_apsp(scale: Scale) -> Vec<ApspRow> {
    let quick = [16u32, 24];
    let full = [16u32, 32, 48, 64];
    let sizes = scale.pick(&quick, &full);
    let cfg = AlgoConfig::default();
    let mut rows = Vec::new();
    for &n in sizes {
        let g = weighted_workload(n, 3);
        let run = Solver::on(&g)
            .algorithm(Algorithm::Apsp)
            .config(cfg.clone())
            .apsp_config(ApspConfig { seed: 1, ..ApspConfig::default() })
            .run()
            .expect("apsp");
        rows.push(ApspRow { report: run.report });
    }
    rows
}

// ---------------------------------------------------------------------------
// E8: sparse-cover quality
// ---------------------------------------------------------------------------

/// One measurement row of the cover-quality experiment (E8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverRow {
    /// Number of nodes.
    pub n: u32,
    /// Cover radius `d`.
    pub d: u64,
    /// Number of clusters.
    pub clusters: u64,
    /// Number of colors (`O(log n)` claimed).
    pub colors: u32,
    /// Maximum clusters per node (`O(log n)` claimed).
    pub max_membership: u64,
    /// Mean clusters per node.
    pub mean_membership: f64,
    /// Maximum cluster-tree depth.
    pub max_tree_depth: u64,
    /// Realized stretch `max_tree_depth / d`.
    pub stretch: f64,
    /// Maximum cluster trees sharing one edge.
    pub max_edge_tree_load: u64,
}

/// Measures sparse-cover quality (Theorems 3.10/3.11 / E8).
pub fn e8_cover_quality(scale: Scale) -> Vec<CoverRow> {
    let quick = [48u32];
    let full = [64u32, 128, 256];
    let sizes = scale.pick(&quick, &full);
    let mut rows = Vec::new();
    for &n in sizes {
        // Sparse workload: with ~2n extra edges the hop diameter collapses
        // below the largest cover radius d = 4 and every cluster tree is
        // shallower than d, which makes "stretch" meaningless. n/4 extra
        // edges keeps the diameter comfortably above 2d at every size.
        let g = generators::random_connected(n, n as u64 / 4, 5);
        for d in [1u64, 2, 4] {
            let cover = SparseCover::construct(&g, d);
            let stats = cover.validate(&g).expect("constructed covers are valid");
            rows.push(CoverRow {
                n,
                d,
                clusters: stats.cluster_count as u64,
                colors: stats.colors,
                max_membership: stats.max_membership as u64,
                mean_membership: stats.mean_membership,
                max_tree_depth: stats.max_tree_depth,
                stretch: stats.max_tree_depth as f64 / d.max(1) as f64,
                max_edge_tree_load: stats.max_edge_tree_load as u64,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E9: spanning forest
// ---------------------------------------------------------------------------

/// One measurement row of the spanning-forest experiment (E9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestRow {
    /// Number of nodes.
    pub n: u32,
    /// Number of edges.
    pub m: u32,
    /// Number of connected components.
    pub components: u64,
    /// Boruvka merge phases (`O(log n)` claimed).
    pub phases: u64,
    /// Rounds charged (`Õ(n)` claimed).
    pub rounds: u64,
    /// Maximum per-edge congestion (`poly(log n)` claimed).
    pub max_congestion: u64,
    /// Maximum per-node energy of the low-energy variant (Theorem 3.1).
    pub low_energy_max: u64,
    /// Maximum per-node energy of the always-awake variant.
    pub always_awake_max: u64,
}

/// Measures the maximal-spanning-forest algorithm (Theorems 2.2/3.1 / E9).
pub fn e9_spanning_forest(scale: Scale) -> Vec<ForestRow> {
    let quick = [64u32, 128];
    let full = [64u32, 128, 256, 512];
    let sizes = scale.pick(&quick, &full);
    let mut rows = Vec::new();
    for &n in sizes {
        let g = generators::disjoint_copies(&generators::random_connected(n / 2, n as u64, 9), 2);
        let (forest, metrics) = spanning_forest(&g, false);
        let (_, low) = spanning_forest(&g, true);
        rows.push(ForestRow {
            n: g.node_count(),
            m: g.edge_count(),
            components: forest.component_count as u64,
            phases: forest.phases,
            rounds: metrics.rounds,
            max_congestion: metrics.max_congestion(),
            low_energy_max: low.max_energy(),
            always_awake_max: metrics.max_energy(),
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E10: recursion structure (Lemma 2.4 / Corollary 2.5)
// ---------------------------------------------------------------------------

/// One measurement row of the recursion-structure experiment (E10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecursionRow {
    /// `total_subproblem_size / (n · levels)` — should stay `O(1)`.
    pub normalized_total: f64,
    /// The unified complexity report of the run (with
    /// [`RunReport::recursion`] set).
    pub report: RunReport,
}

impl RecursionRow {
    /// The recursion-tree instrumentation of the run.
    pub fn recursion(&self) -> RecursionReport {
        self.report.recursion.expect("recursion rows always carry recursion stats")
    }
}

/// Measures the recursion structure of the thresholded CSSP (E10).
pub fn e10_recursion(scale: Scale) -> Vec<RecursionRow> {
    let quick = [32u32, 64];
    let full = [64u32, 128, 256, 512];
    let sizes = scale.pick(&quick, &full);
    let cfg = AlgoConfig::default();
    let mut rows = Vec::new();
    for &n in sizes {
        let g = weighted_workload(n, 13);
        let run = Solver::on(&g)
            .algorithm(Algorithm::Cssp)
            .source(NodeId(0))
            .config(cfg.clone())
            .run()
            .expect("cssp");
        let rec = run.report.recursion.expect("recursion stats present");
        rows.push(RecursionRow {
            normalized_total: rec.total_subproblem_size as f64
                / (n as f64 * rec.levels.max(1) as f64),
            report: run.report,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E11: engine throughput (active-set vs reference execution core)
// ---------------------------------------------------------------------------

/// One measurement row of the engine-throughput experiment (E11).
///
/// Each workload appears twice — once per engine — with the wall-clock time
/// and the simulation capacity (`node_rounds_per_sec`, the number of
/// node-round slots the engine advanced per second of host time). On
/// low-energy workloads almost all of those slots are asleep, which is
/// exactly what the active-set engine exploits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputRow {
    /// Workload label.
    pub workload: String,
    /// Engine label: `active-set` ([`congest_sim::Engine::run`]) or
    /// `reference` ([`congest_sim::Engine::run_reference`]).
    pub engine: String,
    /// Number of nodes.
    pub n: u32,
    /// Number of edges.
    pub m: u32,
    /// Rounds of the simulated execution.
    pub rounds: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Messages dropped on sleeping/halted recipients.
    pub messages_lost: u64,
    /// Maximum per-node energy.
    pub max_energy: u64,
    /// Wall-clock milliseconds of the fastest measured run.
    pub wall_ms: f64,
    /// Simulated node-round slots advanced per wall-clock second
    /// (`n · rounds / wall_s`).
    pub node_rounds_per_sec: f64,
    /// Wall-clock speedup over the reference engine on the same workload
    /// (1.0 for the reference rows themselves).
    pub speedup_vs_reference: f64,
    /// Whether the two engines produced identical [`congest_sim::Metrics`]
    /// on this workload — must always be `true`.
    pub metrics_match: bool,
}

/// Times one engine on one workload; returns the metrics and the fastest
/// wall-clock milliseconds over `iters` runs.
fn time_engine<P, F>(
    g: &Graph,
    cfg: &congest_sim::SimConfig,
    factory: F,
    reference: bool,
    iters: u32,
) -> (congest_sim::Metrics, f64)
where
    P: congest_sim::Protocol,
    F: Fn(NodeId) -> P + Copy,
{
    let engine = congest_sim::Engine::new(g, cfg.clone());
    let mut best = f64::INFINITY;
    let mut metrics = None;
    for _ in 0..iters.max(1) {
        let start = std::time::Instant::now();
        let run = if reference {
            engine.run_reference(factory).expect("workload runs clean")
        } else {
            engine.run(factory).expect("workload runs clean")
        };
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        metrics = Some(run.metrics);
    }
    (metrics.expect("at least one iteration"), best)
}

fn throughput_pair<P, F>(
    rows: &mut Vec<ThroughputRow>,
    workload: &str,
    g: &Graph,
    cfg: &congest_sim::SimConfig,
    factory: F,
    iters: u32,
) where
    P: congest_sim::Protocol,
    F: Fn(NodeId) -> P + Copy,
{
    let (ref_metrics, ref_ms) = time_engine(g, cfg, factory, true, iters);
    let (act_metrics, act_ms) = time_engine(g, cfg, factory, false, iters);
    let metrics_match = ref_metrics == act_metrics;
    let slots = |metrics: &congest_sim::Metrics, ms: f64| {
        g.node_count() as f64 * metrics.rounds as f64 / (ms / 1e3).max(1e-9)
    };
    for (engine, metrics, ms, speedup) in [
        ("reference", &ref_metrics, ref_ms, 1.0),
        ("active-set", &act_metrics, act_ms, ref_ms / act_ms.max(1e-9)),
    ] {
        rows.push(ThroughputRow {
            workload: workload.to_string(),
            engine: engine.to_string(),
            n: g.node_count(),
            m: g.edge_count(),
            rounds: metrics.rounds,
            messages: metrics.messages,
            messages_lost: metrics.messages_lost,
            max_energy: metrics.max_energy(),
            wall_ms: ms,
            node_rounds_per_sec: slots(metrics, ms),
            speedup_vs_reference: speedup,
            metrics_match,
        });
    }
}

/// Measures engine throughput on low-energy workloads (E11): the active-set
/// engine vs the retained reference loop, on executions where almost every
/// node sleeps in almost every round. Both engines must produce identical
/// metrics; the active-set engine must be markedly faster.
pub fn e11_engine_throughput(scale: Scale) -> Vec<ThroughputRow> {
    use congest_sim::workloads::{PulseBfs, WaveBfs};
    let (path_n, grid_side, iters) = match scale {
        Scale::Quick => (4096u32, 64u32, 2),
        Scale::Full => (16384, 128, 3),
    };
    let cfg = congest_sim::SimConfig::default();
    let mut rows = Vec::new();

    // Low-energy BFS under a perfect wake schedule: O(1) energy per node,
    // Θ(n) rounds on a path — the reference engine's worst case.
    let g = generators::path(path_n, 1);
    let sched = WaveBfs::schedule(&g, &[NodeId(0)]);
    throughput_pair(
        &mut rows,
        "wave-bfs-path",
        &g,
        &cfg,
        |id| WaveBfs::new(sched[id.index()]),
        iters,
    );

    let g = generators::grid(grid_side, grid_side, 1);
    let sched = WaveBfs::schedule(&g, &[NodeId(0)]);
    throughput_pair(
        &mut rows,
        "wave-bfs-grid",
        &g,
        &cfg,
        |id| WaveBfs::new(sched[id.index()]),
        iters,
    );

    // Oracle-free pulsed BFS (low duty cycle rather than low total energy).
    let g = generators::grid(grid_side, grid_side, 1);
    let hop_bound = 2 * grid_side as u64;
    throughput_pair(
        &mut rows,
        "pulse-bfs-grid",
        &g,
        &cfg,
        |id| PulseBfs::new(id == NodeId(0), 16, hop_bound),
        iters,
    );
    rows
}

// ---------------------------------------------------------------------------
// E12: APSP throughput (parallel streaming driver vs reference driver)
// ---------------------------------------------------------------------------

/// One measurement row of the APSP-throughput experiment (E12).
///
/// Each size appears twice: once for the retained reference driver
/// ([`congest_sssp::apsp::apsp_reference`] — sequential instance loop, all
/// traces materialized, round-by-round scheduler) and once for the reworked
/// pipeline ([`congest_sssp::apsp::apsp`] — instances across OS threads,
/// traces streamed into the event-driven scheduler). Both must produce
/// bit-identical [`congest_sssp::apsp::ApspRun`]s; only the wall clock may
/// differ.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApspThroughputRow {
    /// Number of nodes (= SSSP instances).
    pub n: u32,
    /// Number of edges.
    pub m: u32,
    /// Driver label: `reference` or `parallel-streaming`.
    pub driver: String,
    /// OS threads the driver ran instances on.
    pub threads: usize,
    /// Wall-clock milliseconds of the run.
    pub wall_ms: f64,
    /// Makespan of the concurrent random-delay schedule.
    pub makespan: u64,
    /// Makespan in model rounds (`makespan * edge budget`).
    pub model_rounds: u64,
    /// Cost of the trivial sequential composition, in simulated rounds.
    pub sequential_rounds: u64,
    /// Total messages over all instances.
    pub total_messages: u64,
    /// Wall-clock speedup over the reference driver on the same workload
    /// (1.0 for the reference rows themselves).
    pub speedup_vs_reference: f64,
    /// Whether the two drivers produced identical `ApspRun`s — must always
    /// be `true`.
    pub results_match: bool,
}

/// Measures APSP pipeline throughput (E12) at the scale's standard sizes.
pub fn e12_apsp_throughput(scale: Scale) -> Vec<ApspThroughputRow> {
    let quick = [32u32];
    let full = [128u32, 512];
    e12_apsp_throughput_at(scale.pick(&quick, &full))
}

/// Measures APSP pipeline throughput (E12) at explicit sizes: the reworked
/// parallel streaming driver against the retained reference driver, with a
/// full `ApspRun` equality check. Used by the `experiments -- apsp-json` CI
/// gate with `&[512]`.
pub fn e12_apsp_throughput_at(sizes: &[u32]) -> Vec<ApspThroughputRow> {
    let cfg = AlgoConfig::default();
    let mut rows = Vec::new();
    for &n in sizes {
        let g = weighted_workload(n, 3);
        let apsp_cfg = ApspConfig { seed: 1, ..ApspConfig::default() };
        // The thread count apsp() itself will resolve to, so the row (and
        // the CI gate's graded bar) reports the truth rather than a guess.
        let threads = planned_threads(&apsp_cfg, g.node_count());
        let start = std::time::Instant::now();
        let reference = apsp_reference(&g, &cfg, &apsp_cfg).expect("apsp reference driver");
        let ref_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = std::time::Instant::now();
        let parallel = apsp(&g, &cfg, &apsp_cfg).expect("apsp parallel driver");
        let par_ms = start.elapsed().as_secs_f64() * 1e3;
        let results_match = reference == parallel;
        for (driver, used, run, ms, speedup) in [
            ("reference", 1usize, &reference, ref_ms, 1.0),
            ("parallel-streaming", threads, &parallel, par_ms, ref_ms / par_ms.max(1e-9)),
        ] {
            rows.push(ApspThroughputRow {
                n,
                m: g.edge_count(),
                driver: driver.to_string(),
                threads: used,
                wall_ms: ms,
                makespan: run.schedule.makespan,
                model_rounds: run.schedule.model_rounds,
                sequential_rounds: run.sequential_rounds,
                total_messages: run.total_messages,
                speedup_vs_reference: speedup,
                results_match,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E13: message throughput (zero-allocation fabric vs reference delivery)
// ---------------------------------------------------------------------------

/// Measures message-fabric throughput (E13) at the scale's standard sizes.
pub fn e13_message_throughput(scale: Scale) -> Vec<ThroughputRow> {
    let (flood_n, flood_rounds, star_n, star_rounds, iters) = match scale {
        Scale::Quick => (1024u32, 256u64, 2048u32, 64u64, 2),
        Scale::Full => (2048, 512, 4096, 96, 3),
    };
    e13_message_throughput_at(flood_n, flood_rounds, star_n, star_rounds, iters)
}

/// Measures message-fabric throughput (E13) at explicit sizes: every node is
/// awake every round, so the active-set engine has no scheduling advantage —
/// any wall-clock gap over the reference engine is the message path itself
/// (inline payloads, reused outbox/inbox arenas, dense capacity counters,
/// indexed neighbour lookup). Both engines must produce identical metrics and
/// final states. Used by the `experiments -- messages-json` CI gate.
pub fn e13_message_throughput_at(
    flood_n: u32,
    flood_rounds: u64,
    star_n: u32,
    star_rounds: u64,
    iters: u32,
) -> Vec<ThroughputRow> {
    use congest_sim::workloads::{Flood, HubPingPong};
    let cfg = congest_sim::SimConfig::default();
    let mut rows = Vec::new();

    // Dense flood: 2m messages per round, the CONGEST capacity-1 maximum.
    let g = generators::random_connected(flood_n, 3 * flood_n as u64, 29);
    throughput_pair(&mut rows, "flood-random", &g, &cfg, |id| Flood::new(id, flood_rounds), iters);

    // Hub/spoke targeted sends: the by-neighbour lookup on a degree-(n−1)
    // hub, the worst case for a linear adjacency scan.
    let g = generators::star(star_n, 1);
    throughput_pair(
        &mut rows,
        "hub-pingpong-star",
        &g,
        &cfg,
        |id| HubPingPong::new(id == NodeId(0), star_rounds),
        iters,
    );
    rows
}

// ---------------------------------------------------------------------------
// E14: chaos degradation matrix (fault injection)
// ---------------------------------------------------------------------------

/// One measurement row of the chaos degradation matrix (E14): one algorithm
/// at one message-loss rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosRow {
    /// Algorithm label (the registry's [`AlgorithmInfo::label`]).
    pub algorithm: String,
    /// Fault-plan drop probability in parts per million.
    pub loss_ppm: u32,
    /// `"ok"` (terminated within budget), `"wedged"` (burned the round
    /// budget, i.e. hit [`congest_sim::SimError::RoundLimitExceeded`]), or
    /// `"failed"` (any other error or a panic).
    pub outcome: String,
    /// `outcome == "ok"`: the algorithm degraded gracefully — it terminated
    /// on its own under this loss rate, whatever its output quality.
    pub graceful: bool,
    /// Whether the faulty run replayed bit-identically. Verified by a second
    /// run at the sweep's highest loss rate; lower rates inherit the
    /// simulator's determinism guarantee and report `true`.
    pub deterministic: bool,
    /// Whether this run's output and report are bit-identical to the
    /// fault-free baseline (expected exactly at `loss_ppm == 0`).
    pub matches_baseline: bool,
    /// Rounds of this run (the budget for wedged runs, 0 for failed ones).
    pub rounds: u64,
    /// Rounds of the fault-free baseline run.
    pub baseline_rounds: u64,
    /// The round budget ([`congest_sim::SimConfig::max_rounds`]) of the
    /// faulty runs: `8 * baseline_rounds + 256`.
    pub round_budget: u64,
    /// Nodes with a finite output distance (0 for wedged/failed runs).
    pub reached: u64,
    /// Nodes the run left unreached although the graph is connected.
    pub unreached: u64,
    /// Largest absolute difference between a finite output distance and the
    /// true distance (drops typically inflate estimates).
    pub max_abs_error: u64,
    /// Messages destroyed by the fault plan during the run.
    pub fault_drops: u64,
    /// Messages lost to the sleeping model (sleeping/halted recipients).
    pub sleep_lost: u64,
}

/// Runs one registry algorithm on `g` under `cfg`, converting panics into
/// `Err(None)` so a fault-oblivious algorithm that trips an internal
/// invariant still lands in the matrix (as `"failed"`) instead of aborting
/// the sweep.
fn chaos_solve(
    g: &Graph,
    info: &AlgorithmInfo,
    cfg: &AlgoConfig,
    diameter: u64,
) -> Result<SolverRun, Option<AlgoError>> {
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut req = Solver::on(g).algorithm(info.algorithm).source(NodeId(0)).config(cfg.clone());
        // Same request shape as E5: the sleeping-model BFS builds its wake
        // schedules for the wavefront horizon, so it is thresholded at the
        // diameter; everything else keeps its default.
        if info.sleeping_model && !info.weighted {
            req = req.threshold(diameter);
        }
        req.run()
    }));
    match attempt {
        Ok(Ok(run)) => Ok(run),
        Ok(Err(e)) => Err(Some(e)),
        Err(_) => Err(None),
    }
}

/// Classifies an E14 failure: hitting the round budget is `"wedged"` (the
/// algorithm never terminated on its own); anything else — a protocol error
/// or a panic — is `"failed"`.
fn chaos_outcome(err: &Option<AlgoError>) -> &'static str {
    match err {
        Some(AlgoError::Simulation(congest_sim::SimError::RoundLimitExceeded { .. })) => "wedged",
        _ => "failed",
    }
}

/// Runs the chaos degradation matrix (E14): every non-all-pairs registry
/// algorithm on one unit-weight random connected workload, swept over
/// increasing fault-plan message-loss rates with a fixed fault seed.
///
/// The fault-free baseline of each algorithm must succeed (it fixes the round
/// budget `8 * baseline + 256` for the faulty runs); each faulty run is then
/// classified as *graceful* (terminated within budget) or *wedged* (round
/// budget exceeded). At the highest loss rate the run is executed twice to
/// verify the fault schedule replays bit-identically. See
/// `docs/FAULT_MODEL.md` for the resulting matrix and its interpretation.
pub fn e14_chaos_matrix(scale: Scale) -> Vec<ChaosRow> {
    const FAULT_SEED: u64 = 0xC4A0_5EED;
    let quick_losses = [0u32, 20_000, 100_000, 200_000, 400_000];
    let full_losses = [0u32, 5_000, 20_000, 50_000, 100_000, 200_000, 400_000];
    let losses = scale.pick(&quick_losses, &full_losses);
    let n: u32 = match scale {
        Scale::Quick => 40,
        Scale::Full => 96,
    };
    // Unit weights so plain BFS is the ground truth for every algorithm,
    // weighted and unweighted alike.
    let g = generators::random_connected(n, 2 * n as u64, 23);
    let truth = congest_graph::sequential::bfs(&g, &[NodeId(0)]);
    let diameter = properties::hop_diameter(&g);
    let highest = *losses.last().expect("loss sweep is non-empty");
    let mut rows = Vec::new();
    for info in registry().iter().filter(|i| !i.all_pairs) {
        let baseline = chaos_solve(&g, info, &AlgoConfig::default(), diameter)
            .unwrap_or_else(|e| panic!("fault-free baseline failed for {}: {e:?}", info.name));
        let baseline_rounds = baseline.report.rounds;
        let round_budget = 8 * baseline_rounds + 256;
        for &loss_ppm in losses {
            let plan = FaultPlan::none().with_seed(FAULT_SEED).with_drop_ppm(loss_ppm);
            let mut cfg = AlgoConfig::default().with_faults(plan);
            cfg.sim.max_rounds = round_budget;
            let run = chaos_solve(&g, info, &cfg, diameter);
            let deterministic = if loss_ppm == highest {
                match (&run, &chaos_solve(&g, info, &cfg, diameter)) {
                    (Ok(a), Ok(b)) => a == b,
                    (Err(a), Err(b)) => a == b,
                    _ => false,
                }
            } else {
                true
            };
            rows.push(match &run {
                Ok(r) => {
                    let mut max_abs_error = 0u64;
                    let mut unreached = 0u64;
                    for v in g.nodes() {
                        match (r.output.distance(v).finite(), truth.distance(v).finite()) {
                            (Some(est), Some(t)) => {
                                max_abs_error = max_abs_error.max(est.abs_diff(t))
                            }
                            (None, Some(_)) => unreached += 1,
                            _ => {}
                        }
                    }
                    ChaosRow {
                        algorithm: info.label.to_string(),
                        loss_ppm,
                        outcome: "ok".into(),
                        graceful: true,
                        deterministic,
                        matches_baseline: r.output == baseline.output
                            && r.report == baseline.report,
                        rounds: r.report.rounds,
                        baseline_rounds,
                        round_budget,
                        reached: r.report.reached,
                        unreached,
                        max_abs_error,
                        fault_drops: r.report.fault_drops,
                        sleep_lost: r.report.messages_lost,
                    }
                }
                Err(e) => {
                    let outcome = chaos_outcome(e);
                    ChaosRow {
                        algorithm: info.label.to_string(),
                        loss_ppm,
                        outcome: outcome.into(),
                        graceful: false,
                        deterministic,
                        matches_baseline: false,
                        rounds: if outcome == "wedged" { round_budget } else { 0 },
                        baseline_rounds,
                        round_budget,
                        reached: 0,
                        unreached: g.node_count() as u64,
                        max_abs_error: 0,
                        fault_drops: 0,
                        sleep_lost: 0,
                    }
                }
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E15: shard scaling (multi-threaded engine vs the sequential path)
// ---------------------------------------------------------------------------

/// One measurement row of the shard-scaling experiment (E15): wave-BFS on one
/// large random graph at one worker-thread count.
///
/// The first row of a sweep is the 1-thread baseline; every other row must
/// reproduce its metrics and distance vector bit for bit
/// ([`ShardScalingRow::matches_one_thread`]) — sharding is an execution
/// strategy, not a semantic knob.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardScalingRow {
    /// Workload label.
    pub workload: String,
    /// Number of nodes.
    pub n: u32,
    /// Number of edges.
    pub m: u32,
    /// Worker-thread count of this run (1 = the sequential engine).
    pub threads: usize,
    /// The host's available parallelism when the sweep ran — the context the
    /// graded CI speedup bar is judged in.
    pub host_cores: usize,
    /// Rounds of the simulated execution.
    pub rounds: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Maximum per-node energy.
    pub max_energy: u64,
    /// Wall-clock milliseconds of the fastest measured run.
    pub wall_ms: f64,
    /// Simulated node-round slots advanced per wall-clock second.
    pub node_rounds_per_sec: f64,
    /// Wall-clock speedup over the 1-thread baseline (1.0 for the baseline).
    pub speedup_vs_one_thread: f64,
    /// Whether this run's metrics *and* per-node distances are bit-identical
    /// to the 1-thread baseline — must always be `true`.
    pub matches_one_thread: bool,
}

/// Measures shard scaling (E15) at the scale's standard sizes: `Quick` keeps
/// the graph small for unit tests; `Full` is the `EXPERIMENTS.md` size,
/// wave-BFS at `n = 10^6`.
pub fn e15_shard_scaling(scale: Scale) -> Vec<ShardScalingRow> {
    match scale {
        Scale::Quick => e15_shard_scaling_at(20_000, 40_000, &[1, 2, 4], 1),
        Scale::Full => e15_shard_scaling_at(1_000_000, 2_000_000, &[1, 2, 4], 2),
    }
}

/// Measures shard scaling (E15) at explicit sizes: wave-BFS under a perfect
/// wake schedule on `random_connected(n, extra, 47)`, once per entry of
/// `thread_counts` (the first entry is the baseline and should be `1`).
/// Every run's metrics and distance vector are compared against the
/// baseline's. Used by the `experiments -- shard-json` CI gate.
///
/// Callers sweeping thread counts must make sure `SIM_THREADS` is unset — it
/// would override every [`congest_sim::SimConfig::threads`] value and
/// collapse the sweep onto a single effective count.
pub fn e15_shard_scaling_at(
    n: u32,
    extra: u64,
    thread_counts: &[usize],
    iters: u32,
) -> Vec<ShardScalingRow> {
    use congest_sim::workloads::WaveBfs;
    let host_cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let g = generators::random_connected(n, extra, 47);
    let sched = WaveBfs::schedule(&g, &[NodeId(0)]);
    let mut rows = Vec::new();
    let mut baseline: Option<(congest_sim::Metrics, Vec<congest_graph::Distance>, f64)> = None;
    for &threads in thread_counts {
        let cfg = congest_sim::SimConfig::default().with_threads(threads);
        let engine = congest_sim::Engine::new(&g, cfg);
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..iters.max(1) {
            let start = std::time::Instant::now();
            let run = engine.run(|id| WaveBfs::new(sched[id.index()])).expect("wave BFS runs");
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            last = Some(run);
        }
        let run = last.expect("at least one iteration");
        let dists: Vec<_> = run.states.iter().map(|s| s.dist).collect();
        let (matches_one_thread, speedup) = match &baseline {
            None => (true, 1.0),
            Some((bm, bd, bms)) => (*bm == run.metrics && *bd == dists, bms / best.max(1e-9)),
        };
        rows.push(ShardScalingRow {
            workload: "wave-bfs-random".into(),
            n: g.node_count(),
            m: g.edge_count(),
            threads,
            host_cores,
            rounds: run.metrics.rounds,
            messages: run.metrics.messages,
            max_energy: run.metrics.max_energy(),
            wall_ms: best,
            node_rounds_per_sec: g.node_count() as f64 * run.metrics.rounds as f64
                / (best / 1e3).max(1e-9),
            speedup_vs_one_thread: speedup,
            matches_one_thread,
        });
        if baseline.is_none() {
            baseline = Some((run.metrics, dists, best));
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E16: the distance-oracle query service
// ---------------------------------------------------------------------------

/// One measurement row of the distance-oracle experiment (E16): one graph,
/// one built oracle, and one seeded batch of random point-to-point queries
/// replayed at several query-thread counts.
///
/// The row records the service's three contracts: space (oracle bytes vs the
/// exact `n²` matrix), accuracy (largest observed stretch vs the proven
/// bound), and determinism (every thread count answers the batch
/// bit-identically, [`OracleRow::threads_agree`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleRow {
    /// Workload label.
    pub workload: String,
    /// Number of nodes.
    pub n: u32,
    /// Number of edges.
    pub m: u32,
    /// Whether construction took the exact-APSP fallback (small graphs).
    pub fallback: bool,
    /// Cover levels built (0 on the fallback).
    pub levels: u32,
    /// Total clusters across all levels.
    pub clusters: u64,
    /// Resident bytes of the oracle's query structure.
    pub bytes: u64,
    /// Bytes an exact `n × n` matrix would occupy.
    pub exact_matrix_bytes: u64,
    /// `bytes / exact_matrix_bytes` — below 1.0 means sublinear space won.
    pub space_ratio: f64,
    /// Proven multiplicative stretch bound (1 on the fallback).
    pub stretch_bound: u64,
    /// Largest observed `estimate / true-distance` over the sampled pairs.
    pub max_observed_stretch: f64,
    /// Simulated rounds of preprocessing.
    pub preprocess_rounds: u64,
    /// Number of sampled query pairs in the batch.
    pub queries: u64,
    /// Queries answered per wall-clock second (best over the thread sweep).
    pub queries_per_sec: f64,
    /// Whether every thread count produced the bit-identical answer vector.
    pub threads_agree: bool,
}

/// A deterministic 64-bit LCG step (same constants as `rand`'s reference
/// mixer) — the query batch must be seeded, not time-derived.
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 11
}

/// Measures the distance-oracle service (E16) at the scale's standard sizes:
/// one size below the exact-APSP fallback threshold and at least one above
/// it, so both backends are exercised.
pub fn e16_oracle(scale: Scale) -> Vec<OracleRow> {
    match scale {
        Scale::Quick => e16_oracle_at(&[48, 160], 1_500, &[1, 2, 4]),
        Scale::Full => e16_oracle_at(&[48, 256, 384], 20_000, &[1, 2, 4]),
    }
}

/// Measures the distance-oracle service (E16) at explicit sizes: builds one
/// oracle per graph through [`build_oracle`] (default fallback threshold),
/// answers a seeded random batch once per entry of `thread_counts`, and
/// checks every replay against the first. Observed stretch is judged against
/// exact Dijkstra truth from each sampled source. Used by the
/// `experiments -- oracle-json` CI gate.
pub fn e16_oracle_at(sizes: &[u32], query_count: usize, thread_counts: &[usize]) -> Vec<OracleRow> {
    use congest_graph::sequential;
    let mut rows = Vec::new();
    for &n in sizes {
        let g = weighted_workload(n, 23);
        let build = build_oracle(
            &g,
            &AlgoConfig::default(),
            &OracleConfig::default(),
            &ApspConfig::default(),
        )
        .expect("oracle build");
        let mut state = 0x0E16_5EED_u64 ^ ((n as u64) << 32);
        let pairs: Vec<(NodeId, NodeId)> = (0..query_count)
            .map(|_| {
                (
                    NodeId((lcg(&mut state) % n as u64) as u32),
                    NodeId((lcg(&mut state) % n as u64) as u32),
                )
            })
            .collect();
        let mut out = vec![Distance::Infinite; pairs.len()];
        let mut baseline: Option<Vec<Distance>> = None;
        let mut best = f64::INFINITY;
        let mut threads_agree = true;
        for &threads in thread_counts {
            let start = std::time::Instant::now();
            build.oracle.query_into(&pairs, &mut out, threads);
            best = best.min(start.elapsed().as_secs_f64());
            match &baseline {
                None => baseline = Some(out.clone()),
                Some(b) => threads_agree &= *b == out,
            }
        }
        let answers = baseline.expect("at least one thread count");
        // Exact truth per distinct sampled source (at most n Dijkstra runs).
        let mut truth: Vec<Option<Vec<Distance>>> = vec![None; n as usize];
        let mut max_observed_stretch = 1.0_f64;
        for (&(u, v), est) in pairs.iter().zip(&answers) {
            let row =
                truth[u.index()].get_or_insert_with(|| sequential::dijkstra(&g, &[u]).distances);
            match (est.finite(), row[v.index()].finite()) {
                (Some(e), Some(t)) => {
                    assert!(t <= e, "oracle underestimated ({u},{v}): {e} < {t}");
                    max_observed_stretch = max_observed_stretch.max(e as f64 / t.max(1) as f64);
                }
                (e, t) => assert_eq!(
                    e.is_some(),
                    t.is_some(),
                    "oracle and truth disagree on reachability of ({u},{v})"
                ),
            }
        }
        let report = &build.report;
        rows.push(OracleRow {
            workload: "random-weighted".into(),
            n: g.node_count(),
            m: g.edge_count(),
            fallback: report.fallback,
            levels: report.levels,
            clusters: report.clusters,
            bytes: report.bytes,
            exact_matrix_bytes: report.exact_matrix_bytes,
            space_ratio: report.bytes as f64 / report.exact_matrix_bytes.max(1) as f64,
            stretch_bound: report.stretch_bound,
            max_observed_stretch,
            preprocess_rounds: build.rounds,
            queries: pairs.len() as u64,
            queries_per_sec: pairs.len() as f64 / best.max(1e-9),
            threads_agree,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E17: sequential truth-oracle shootout on the killer families
// ---------------------------------------------------------------------------

/// One measurement row of the sequential-solver shootout (E17): the
/// radix-heap truth oracle vs the retained binary-heap Dijkstra vs the
/// `seq-bmssp` recursive rival, on one adversarial graph family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqSolverRow {
    /// Killer-family label (see `docs/SEQ_BASELINES.md`).
    pub family: String,
    /// Number of nodes.
    pub n: u32,
    /// Number of edges.
    pub m: u32,
    /// Fastest wall-clock milliseconds of the binary-heap Dijkstra.
    pub binary_ms: f64,
    /// Fastest wall-clock milliseconds of the radix-heap Dijkstra (the
    /// default truth oracle).
    pub radix_ms: f64,
    /// Fastest wall-clock milliseconds of the `seq-bmssp` recursive solver
    /// (run through the [`Solver`] facade, so its sequential-work metrics
    /// are charged too).
    pub recursive_ms: f64,
    /// `binary_ms / radix_ms` — above 1.0 means the radix heap won.
    pub speedup: f64,
    /// Whether the radix- and binary-heap oracles produced *bit-identical*
    /// results (distances and parent pointers) — must always be `true`.
    pub distances_match: bool,
    /// Whether the recursive rival's distances match the oracle — must
    /// always be `true`.
    pub recursive_matches: bool,
}

/// Times one closure; returns its last result and the fastest wall-clock
/// milliseconds over `iters` runs.
fn best_ms<T>(iters: u32, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..iters.max(1) {
        let start = std::time::Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (out.expect("at least one iteration"), best)
}

/// Runs the sequential-solver shootout (E17) at the scale's standard sizes.
/// `Full` puts the dense families at `n = 2048` (≈ 2.1 M edges each) — the
/// sizes behind the `experiments -- seqsolver-json` CI gate's speedup bar.
pub fn e17_seq_solver(scale: Scale) -> Vec<SeqSolverRow> {
    match scale {
        Scale::Quick => e17_seq_solver_at(96, 1024, 2),
        Scale::Full => e17_seq_solver_at(2048, 32_768, 3),
    }
}

/// Runs the sequential-solver shootout (E17) at explicit sizes: the dense
/// killer families (`wrong_dijkstra_killer`, `max_dense`, `max_dense_zero`)
/// at `dense_n` nodes, the sparse ones (`spfa_killer`, `grid_swirl`,
/// `almost_line`) at ≈ `sparse_n` nodes. Each family times the binary-heap
/// Dijkstra, the radix-heap Dijkstra, and the `seq-bmssp` rival (best of
/// `iters` runs each) and cross-checks all three for exact agreement.
pub fn e17_seq_solver_at(dense_n: u32, sparse_n: u32, iters: u32) -> Vec<SeqSolverRow> {
    use congest_graph::sequential;
    let side = (sparse_n as f64).sqrt() as u32;
    let families: Vec<(&str, Graph)> = vec![
        ("wrong-dijkstra-killer", generators::wrong_dijkstra_killer(dense_n)),
        ("max-dense", generators::max_dense(dense_n, 17)),
        ("max-dense-zero", generators::max_dense_zero(dense_n, 17)),
        ("spfa-killer", generators::spfa_killer(sparse_n / 2)),
        ("grid-swirl", generators::grid_swirl(side)),
        ("almost-line", generators::almost_line(sparse_n, 17)),
    ];
    let cfg = AlgoConfig::default();
    let mut rows = Vec::new();
    for (family, g) in families {
        let sources = [NodeId(0)];
        let (binary, binary_ms) = best_ms(iters, || sequential::dijkstra_binary_heap(&g, &sources));
        let (radix, radix_ms) = best_ms(iters, || sequential::dijkstra(&g, &sources));
        let (recursive, recursive_ms) = best_ms(iters, || {
            Solver::on(&g)
                .algorithm(Algorithm::SeqRecursive)
                .source(NodeId(0))
                .config(cfg.clone())
                .run()
                .expect("seq-bmssp run")
        });
        rows.push(SeqSolverRow {
            family: family.to_string(),
            n: g.node_count(),
            m: g.edge_count(),
            binary_ms,
            radix_ms,
            recursive_ms,
            speedup: binary_ms / radix_ms.max(1e-9),
            distances_match: radix == binary,
            recursive_matches: recursive.output.distances == binary.distances,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_workload_has_expected_shape() {
        let g = bellman_ford_adversarial(16);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 15 + 14);
        let truth = congest_graph::sequential::dijkstra(&g, &[NodeId(0)]);
        assert_eq!(truth.distance(NodeId(10)).finite(), Some(10));
    }

    #[test]
    fn e1_rows_cover_all_algorithms() {
        let rows = e1_e3_sssp_comparison(Scale::Quick);
        assert_eq!(rows.len(), 2 * 2 * 4);
        assert!(rows.iter().any(|r| r.algorithm.contains("paper")));
        assert!(rows.iter().any(|r| r.algorithm.contains("seq-bmssp")));
        assert!(rows.iter().all(|r| r.report.rounds > 0 && r.report.messages > 0));
    }

    #[test]
    fn e2_congestion_growth_paper_vs_bellman_ford_on_adversarial() {
        // On the adversarial workload Bellman–Ford's per-edge congestion is
        // Θ(n), so it roughly doubles when n doubles; the recursion's
        // congestion is O(log n · log D) and grows far slower. (The absolute
        // crossover happens at larger n — see EXPERIMENTS.md E2.)
        let rows = e1_e3_sssp_comparison(Scale::Quick);
        let pick = |algo: &str, n: u32| {
            rows.iter()
                .find(|r| {
                    r.workload == "bf-adversarial" && r.algorithm.contains(algo) && r.report.n == n
                })
                .map(|r| r.report.max_congestion as f64)
                .expect("row present")
        };
        let paper_growth = pick("paper", 64) / pick("paper", 32);
        let bf_growth = pick("bellman-ford", 64) / pick("bellman-ford", 32);
        assert!(bf_growth > 1.6, "Bellman–Ford congestion tracks n (grew {bf_growth}x)");
        assert!(
            paper_growth < bf_growth,
            "the recursion's congestion growth {paper_growth} must stay below Bellman–Ford's {bf_growth}"
        );
    }

    #[test]
    fn e4_cutter_never_drops_nodes_within_2w() {
        for row in e4_cutter(Scale::Quick) {
            assert_eq!(row.dropped_within_2w, 0);
            assert!(row.max_observed_error <= row.error_bound());
            assert!(row.report.max_congestion <= 2);
        }
    }

    #[test]
    fn e5_rows_pair_paper_with_baseline() {
        let rows = e5_energy_bfs(Scale::Quick);
        assert!(rows.len() >= 4);
        assert!(rows.iter().any(|r| r.algorithm.contains("paper")));
        assert!(rows.iter().any(|r| r.algorithm.contains("always-awake")));
    }

    #[test]
    fn e7_concurrent_beats_sequential() {
        for row in e7_apsp(Scale::Quick) {
            let sched = row.schedule();
            assert!(sched.speedup() > 1.0, "n = {}: speedup {}", row.report.n, sched.speedup());
            assert!(sched.edge_budget >= 1);
        }
    }

    #[test]
    fn e8_cover_membership_is_bounded_by_colors() {
        for row in e8_cover_quality(Scale::Quick) {
            assert!(row.max_membership <= row.colors as u64);
            assert!(row.stretch >= 1.0);
        }
    }

    #[test]
    fn e9_forest_phases_are_logarithmic() {
        for row in e9_spanning_forest(Scale::Quick) {
            assert!(row.phases <= (row.n as f64).log2().ceil() as u64 + 2);
            assert!(row.low_energy_max <= row.always_awake_max);
        }
    }

    #[test]
    fn e10_participation_is_logarithmic() {
        for row in e10_recursion(Scale::Quick) {
            let rec = row.recursion();
            assert!(rec.max_participation <= 4 * (rec.levels as u64 + 2));
        }
    }

    #[test]
    fn e14_zero_loss_matches_baselines_and_all_rows_are_classified() {
        // Functional checks only: the full matrix (and its determinism
        // re-runs at the highest loss rate) is asserted by the release-mode
        // `experiments -- chaos-json` CI gate; here a reduced sweep pins the
        // classification contract in debug mode.
        let rows = e14_chaos_matrix(Scale::Quick);
        let algorithms = registry().iter().filter(|i| !i.all_pairs).count();
        assert_eq!(rows.len(), algorithms * 5, "every algorithm at every loss rate");
        for row in &rows {
            assert!(
                matches!(row.outcome.as_str(), "ok" | "wedged" | "failed"),
                "unknown outcome {:?}",
                row.outcome
            );
            assert_eq!(row.graceful, row.outcome == "ok");
            assert!(row.round_budget == 8 * row.baseline_rounds + 256);
            if row.loss_ppm == 0 {
                // A fault plan with a seed but nothing to inject is inert:
                // the run must be bit-identical to the fault-free baseline.
                assert!(row.matches_baseline, "{} diverged at zero loss", row.algorithm);
                assert_eq!(row.rounds, row.baseline_rounds);
                assert_eq!(row.fault_drops, 0);
            }
        }
    }

    #[test]
    fn e17_solvers_agree_on_every_killer_family() {
        // Functional checks only: the radix-vs-binary speedup bar is graded
        // by the release-mode `experiments -- seqsolver-json` CI gate; this
        // debug-mode test pins exact three-way agreement at reduced sizes.
        let rows = e17_seq_solver(Scale::Quick);
        assert_eq!(rows.len(), 6, "one row per killer family");
        for row in &rows {
            assert!(row.distances_match, "{}: radix diverged from binary", row.family);
            assert!(row.recursive_matches, "{}: seq-bmssp diverged from the oracle", row.family);
            assert!(row.n >= 2 && row.m >= 1, "{}: degenerate graph", row.family);
            assert!(
                row.binary_ms.is_finite() && row.radix_ms.is_finite(),
                "{}: timings recorded",
                row.family
            );
        }
        assert!(rows.iter().any(|r| r.family == "wrong-dijkstra-killer"));
    }

    #[test]
    fn e16_oracle_exercises_both_backends_within_bounds() {
        // Functional checks only: the queries/sec figure is recorded (not
        // gated) and the space/stretch/determinism bars are re-asserted by
        // the release-mode `experiments -- oracle-json` CI gate; this
        // debug-mode test pins them at a reduced batch size.
        let rows = e16_oracle_at(&[48, 160], 400, &[1, 2, 4]);
        assert_eq!(rows.len(), 2);
        let [small, large] = &rows[..] else { unreachable!() };
        assert!(small.fallback, "n = 48 takes the exact-APSP fallback");
        assert_eq!(small.stretch_bound, 1);
        assert!(!large.fallback && large.levels > 0, "n = 160 builds the cover hierarchy");
        assert!(large.bytes < large.exact_matrix_bytes, "sublinear space at the gate size");
        assert!(large.space_ratio < 1.0);
        for r in &rows {
            assert!(r.threads_agree, "query batches must replay bit-identically");
            assert!(
                r.max_observed_stretch <= r.stretch_bound as f64,
                "observed stretch {} exceeds the proven bound {}",
                r.max_observed_stretch,
                r.stretch_bound
            );
            assert!(r.queries_per_sec > 0.0 && r.preprocess_rounds > 0);
        }
    }

    #[test]
    fn bench_out_path_honors_the_env_var() {
        // Serialized with the default single-use of the variable: nothing
        // else in this crate's tests reads BENCH_OUT_DIR.
        let dir = std::env::temp_dir().join("congest-bench-out-test");
        std::env::set_var("BENCH_OUT_DIR", &dir);
        let path = bench_out_path("X.json");
        std::env::remove_var("BENCH_OUT_DIR");
        assert_eq!(path, dir.join("X.json"));
        assert!(dir.is_dir(), "the out dir is created");
        assert_eq!(bench_out_path("X.json"), std::path::PathBuf::from("X.json"));
    }

    #[test]
    fn e12_drivers_agree_and_schedule_is_consistent() {
        // Functional checks only: the wall-clock bar (>= 2x at n = 512 on a
        // multi-core host) is asserted by the release-mode
        // `experiments -- apsp-json` CI gate, not by this debug-mode test.
        let rows = e12_apsp_throughput(Scale::Quick);
        assert_eq!(rows.len(), 2, "one size, two drivers");
        assert!(rows.iter().all(|r| r.results_match), "drivers must produce identical ApspRuns");
        assert!(rows.iter().all(|r| r.wall_ms > 0.0));
        let [reference, parallel] = &rows[..] else { unreachable!() };
        assert_eq!(reference.driver, "reference");
        assert_eq!(parallel.driver, "parallel-streaming");
        assert_eq!(reference.makespan, parallel.makespan);
        assert_eq!(reference.total_messages, parallel.total_messages);
        assert!(parallel.makespan < parallel.sequential_rounds, "scheduling must still win");
    }

    #[test]
    fn e13_engines_agree_on_message_heavy_workloads() {
        // Functional checks only: the wall-clock ratio is asserted by the
        // release-mode `experiments -- messages-json` CI gate (the >= 3x
        // single-core bar on flood-random), not by this debug-mode test.
        let rows = e13_message_throughput_at(96, 40, 128, 24, 1);
        assert_eq!(rows.len(), 4, "two workloads, two engines each");
        assert!(rows.iter().all(|r| r.metrics_match), "engines must produce identical metrics");
        assert!(rows.iter().all(|r| r.wall_ms > 0.0));
        // Message-heavy means always awake: energy equals the round count.
        for r in &rows {
            assert_eq!(r.max_energy, r.rounds, "E13 workloads never sleep");
            assert!(r.messages > r.rounds, "E13 workloads move many messages");
        }
    }

    #[test]
    fn e15_thread_counts_agree_on_wave_bfs() {
        // Functional checks only: the wall-clock bars (bit-identity plus the
        // core-count-graded speedup) are asserted by the release-mode
        // `experiments -- shard-json` CI gate; this debug-mode test pins the
        // identity contract at a reduced size.
        std::env::remove_var("SIM_THREADS");
        let rows = e15_shard_scaling_at(2_000, 4_000, &[1, 2, 4], 1);
        assert_eq!(rows.len(), 3, "one workload at three thread counts");
        assert!(
            rows.iter().all(|r| r.matches_one_thread),
            "every thread count must reproduce the 1-thread run bit for bit"
        );
        assert!(rows.iter().all(|r| r.wall_ms > 0.0 && r.host_cores >= 1));
        let [one, two, four] = &rows[..] else { unreachable!() };
        assert_eq!((one.threads, two.threads, four.threads), (1, 2, 4));
        assert_eq!(one.speedup_vs_one_thread, 1.0);
        assert_eq!(one.rounds, four.rounds);
        assert!(one.max_energy <= 2, "wave-BFS stays low-energy");
    }

    #[test]
    fn e11_engines_agree_on_every_workload() {
        // Functional checks only: wall-clock ratios are asserted by the
        // release-mode `experiments -- engine-json` CI gate (the >= 3x
        // acceptance bar on wave-bfs-path), not by this debug-mode test,
        // where a loaded runner could turn timing into flakes.
        let rows = e11_engine_throughput(Scale::Quick);
        assert_eq!(rows.len(), 6, "three workloads, two engines each");
        assert!(rows.iter().all(|r| r.metrics_match), "engines must produce identical metrics");
        assert!(rows.iter().all(|r| r.n >= 4096));
        assert!(rows.iter().all(|r| r.wall_ms > 0.0 && r.node_rounds_per_sec > 0.0));
        // The wave workloads sleep almost always: O(1) energy at n >= 4096.
        for r in rows.iter().filter(|r| r.workload.starts_with("wave-bfs")) {
            assert!(r.max_energy <= 2, "wave workloads must stay low-energy");
        }
    }
}
