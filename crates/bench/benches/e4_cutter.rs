//! E4: the approximate cutter (Lemma 2.1) across approximation parameters.

use congest_bench::weighted_workload;
use congest_graph::NodeId;
use congest_sssp::{approx, AlgoConfig, SourceOffset};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_cutter(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_cutter");
    group.sample_size(10);
    let g = weighted_workload(96, 11);
    let w = g.distance_upper_bound() / 4 + 1;
    for inv in [2u64, 4, 8] {
        let cfg = AlgoConfig::default().with_epsilon_inverse(inv);
        group.bench_with_input(BenchmarkId::new("eps_inverse", inv), &cfg, |b, cfg| {
            b.iter(|| {
                approx::approximate_cssp(&g, &[SourceOffset::plain(NodeId(0))], w, cfg).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cutter);
criterion_main!(benches);
