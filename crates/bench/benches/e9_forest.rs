//! E9: the Boruvka maximal-spanning-forest subroutine (Theorems 2.2 / 3.1).

use congest_graph::generators;
use congest_sssp::spanning_forest::spanning_forest;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_spanning_forest");
    group.sample_size(10);
    for n in [128u32, 256] {
        let g = generators::disjoint_copies(&generators::random_connected(n / 2, n as u64, 9), 2);
        group.bench_with_input(BenchmarkId::new("always_awake", n), &g, |b, g| {
            b.iter(|| spanning_forest(g, false))
        });
        group.bench_with_input(BenchmarkId::new("low_energy", n), &g, |b, g| {
            b.iter(|| spanning_forest(g, true))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);
