//! E13: message-fabric throughput — the zero-allocation message path vs the
//! retained naive reference delivery, on always-awake message-saturated
//! workloads where the sleep scheduler cannot help.
//!
//! The star group additionally benches the satellite of the fabric refactor:
//! `NodeCtx::send`'s neighbour lookup. On a star's hub every round issues
//! `degree` targeted sends, so the pre-index linear adjacency scan cost
//! `Θ(degree²)` per round where the precomputed neighbour→adjacency index
//! costs `Θ(degree)` — grow the star and the gap grows linearly.

use congest_graph::{generators, NodeId};
use congest_sim::workloads::{Flood, HubPingPong};
use congest_sim::{Engine, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_flood(c: &mut Criterion) {
    let cfg = SimConfig::default();
    let mut group = c.benchmark_group("e13_flood");
    group.sample_size(10);
    for n in [256u32, 1024] {
        let g = generators::random_connected(n, 3 * n as u64, 29);
        let rounds = 128u64;
        // Construction (including the O(m) neighbour-index build) is hoisted
        // out of the timed region, matching the E13 gate's methodology.
        let engine = Engine::new(&g, cfg.clone());
        group.bench_with_input(BenchmarkId::new("active_set", n), &engine, |b, e| {
            b.iter(|| e.run(|id| Flood::new(id, rounds)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &engine, |b, e| {
            b.iter(|| e.run_reference(|id| Flood::new(id, rounds)).unwrap())
        });
    }
    group.finish();
}

fn bench_star_sends(c: &mut Criterion) {
    let cfg = SimConfig::default();
    let mut group = c.benchmark_group("e13_star_sends");
    group.sample_size(10);
    for n in [512u32, 2048] {
        let g = generators::star(n, 1);
        let rounds = 32u64;
        let engine = Engine::new(&g, cfg.clone());
        group.bench_with_input(BenchmarkId::new("active_set", n), &engine, |b, e| {
            b.iter(|| e.run(|id| HubPingPong::new(id == NodeId(0), rounds)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &engine, |b, e| {
            b.iter(|| e.run_reference(|id| HubPingPong::new(id == NodeId(0), rounds)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flood, bench_star_sends);
criterion_main!(benches);
