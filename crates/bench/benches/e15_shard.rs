//! E15: shard scaling — the sharded engine vs the sequential path on the
//! wave-BFS workload, graded by worker-thread count.
//!
//! The construction (graph, wake schedule, neighbour index) is hoisted out of
//! the timed region, matching the `experiments -- shard-json` methodology:
//! what is timed is one full engine run — delivery, stepping, and the
//! deterministic shard merge. On a single-core host the 2- and 4-thread
//! groups measure the coordination overhead the CI no-regression bar bounds;
//! on a multi-core host they measure the speedup the `>= 2x` bar demands.

use congest_graph::{generators, NodeId};
use congest_sim::workloads::WaveBfs;
use congest_sim::{Engine, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_wave_bfs");
    group.sample_size(10);
    for n in [20_000u32, 100_000] {
        let g = generators::random_connected(n, 2 * n as u64, 47);
        let sched = WaveBfs::schedule(&g, &[NodeId(0)]);
        for threads in [1usize, 2, 4] {
            let engine = Engine::new(&g, SimConfig::default().with_threads(threads));
            group.bench_with_input(
                BenchmarkId::new(format!("threads_{threads}"), n),
                &engine,
                |b, e| b.iter(|| e.run(|id| WaveBfs::new(sched[id.index()])).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
