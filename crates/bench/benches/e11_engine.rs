//! E11: engine throughput — the active-set execution core vs the retained
//! naive reference loop, on a low-energy wave BFS where almost every node is
//! asleep in almost every round.

use congest_graph::{generators, NodeId};
use congest_sim::workloads::WaveBfs;
use congest_sim::{Engine, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_engine_throughput(c: &mut Criterion) {
    let cfg = SimConfig::default();
    let mut group = c.benchmark_group("e11_engine");
    group.sample_size(10);
    for n in [1024u32, 4096] {
        let g = generators::path(n, 1);
        let sched = WaveBfs::schedule(&g, &[NodeId(0)]);
        group.bench_with_input(BenchmarkId::new("active_set", n), &g, |b, g| {
            b.iter(|| {
                Engine::new(g, cfg.clone()).run(|id| WaveBfs::new(sched[id.index()])).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &g, |b, g| {
            b.iter(|| {
                Engine::new(g, cfg.clone())
                    .run_reference(|id| WaveBfs::new(sched[id.index()]))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
