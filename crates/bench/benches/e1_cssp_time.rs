//! E1: wall-clock of simulating the paper's recursive CSSP vs the baselines
//! (the *simulated-round* tables are produced by the `experiments` binary).
//! The solvers come from the registry, so a new exact weighted solver joins
//! this bench automatically.

use congest_bench::weighted_workload;
use congest_graph::NodeId;
use congest_sssp::{registry, AlgoConfig, Solver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sssp(c: &mut Criterion) {
    let cfg = AlgoConfig::default();
    let mut group = c.benchmark_group("e1_sssp_time");
    group.sample_size(10);
    for n in [32u32, 64, 128] {
        let g = weighted_workload(n, 7);
        for info in registry()
            .iter()
            .filter(|i| i.weighted && i.exact() && !i.sleeping_model && !i.all_pairs)
        {
            group.bench_with_input(BenchmarkId::new(info.name, n), &g, |b, g| {
                b.iter(|| {
                    Solver::on(g)
                        .algorithm(info.algorithm)
                        .source(NodeId(0))
                        .config(cfg.clone())
                        .run()
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sssp);
criterion_main!(benches);
