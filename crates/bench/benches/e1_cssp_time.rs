//! E1: wall-clock of simulating the paper's recursive CSSP vs the baselines
//! (the *simulated-round* tables are produced by the `experiments` binary).

use congest_bench::weighted_workload;
use congest_graph::NodeId;
use congest_sssp::baseline::{distributed_bellman_ford, distributed_dijkstra};
use congest_sssp::cssp::cssp;
use congest_sssp::AlgoConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sssp(c: &mut Criterion) {
    let cfg = AlgoConfig::default();
    let mut group = c.benchmark_group("e1_sssp_time");
    group.sample_size(10);
    for n in [32u32, 64, 128] {
        let g = weighted_workload(n, 7);
        group.bench_with_input(BenchmarkId::new("recursive_cssp", n), &g, |b, g| {
            b.iter(|| cssp(g, &[NodeId(0)], &cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bellman_ford", n), &g, |b, g| {
            b.iter(|| distributed_bellman_ford(g, &[NodeId(0)], &cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("distributed_dijkstra", n), &g, |b, g| {
            b.iter(|| distributed_dijkstra(g, &[NodeId(0)], &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sssp);
criterion_main!(benches);
