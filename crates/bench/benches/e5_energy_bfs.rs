//! E5: low-energy BFS vs always-awake BFS.

use congest_graph::{generators, NodeId};
use congest_sssp::{bfs, energy, AlgoConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_energy_bfs(c: &mut Criterion) {
    let cfg = AlgoConfig::default();
    let mut group = c.benchmark_group("e5_energy_bfs");
    group.sample_size(10);
    for n in [64u32, 128] {
        let g = generators::path(n, 1);
        group.bench_with_input(BenchmarkId::new("low_energy_bfs", n), &g, |b, g| {
            b.iter(|| energy::low_energy_bfs(g, &[NodeId(0)], n as u64, &cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("always_awake_bfs", n), &g, |b, g| {
            b.iter(|| bfs::bfs(g, &[NodeId(0)], &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_energy_bfs);
criterion_main!(benches);
