//! E5: low-energy BFS vs always-awake BFS, both through the `Solver` facade
//! (the registry's BFS-family solvers).

use congest_graph::{generators, NodeId};
use congest_sssp::{registry, AlgoConfig, Solver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_energy_bfs(c: &mut Criterion) {
    let cfg = AlgoConfig::default();
    let mut group = c.benchmark_group("e5_energy_bfs");
    group.sample_size(10);
    for n in [64u32, 128] {
        let g = generators::path(n, 1);
        for info in registry().iter().filter(|i| !i.weighted) {
            group.bench_with_input(BenchmarkId::new(info.name, n), &g, |b, g| {
                b.iter(|| {
                    Solver::on(g)
                        .algorithm(info.algorithm)
                        .source(NodeId(0))
                        .threshold(n as u64)
                        .config(cfg.clone())
                        .run()
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_energy_bfs);
criterion_main!(benches);
