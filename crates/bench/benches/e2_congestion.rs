//! E2/E3: congestion and message complexity on the Bellman–Ford-adversarial
//! workload (simulated-round tables come from the `experiments` binary; this
//! bench times the runs).

use congest_bench::bellman_ford_adversarial;
use congest_graph::NodeId;
use congest_sssp::baseline::distributed_bellman_ford;
use congest_sssp::cssp::cssp;
use congest_sssp::AlgoConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_congestion(c: &mut Criterion) {
    let cfg = AlgoConfig::default();
    let mut group = c.benchmark_group("e2_congestion_adversarial");
    group.sample_size(10);
    for n in [64u32, 128] {
        let g = bellman_ford_adversarial(n);
        group.bench_with_input(BenchmarkId::new("recursive_cssp", n), &g, |b, g| {
            b.iter(|| {
                let run = cssp(g, &[NodeId(0)], &cfg).unwrap();
                run.metrics.max_congestion()
            })
        });
        group.bench_with_input(BenchmarkId::new("bellman_ford", n), &g, |b, g| {
            b.iter(|| {
                let run = distributed_bellman_ford(g, &[NodeId(0)], &cfg).unwrap();
                run.metrics.max_congestion()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_congestion);
criterion_main!(benches);
