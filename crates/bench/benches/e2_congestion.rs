//! E2/E3: congestion and message complexity on the Bellman–Ford-adversarial
//! workload (simulated-round tables come from the `experiments` binary; this
//! bench times the runs through the `Solver` facade).

use congest_bench::bellman_ford_adversarial;
use congest_graph::NodeId;
use congest_sssp::{AlgoConfig, Algorithm, Solver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_congestion(c: &mut Criterion) {
    let cfg = AlgoConfig::default();
    let mut group = c.benchmark_group("e2_congestion_adversarial");
    group.sample_size(10);
    for n in [64u32, 128] {
        let g = bellman_ford_adversarial(n);
        for algorithm in [Algorithm::Cssp, Algorithm::BellmanFord] {
            group.bench_with_input(BenchmarkId::new(algorithm.name(), n), &g, |b, g| {
                b.iter(|| {
                    let run = Solver::on(g)
                        .algorithm(algorithm)
                        .source(NodeId(0))
                        .config(cfg.clone())
                        .run()
                        .unwrap();
                    run.report.max_congestion
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_congestion);
criterion_main!(benches);
