//! E7/E12: APSP via `n` concurrent SSSP instances under random-delay
//! scheduling — the production pipeline through the `Solver` facade
//! (parallel streaming driver) and the retained reference driver (sequential
//! instances + round-by-round scheduler), so `cargo bench` shows the
//! pipeline gap at small sizes too.

use congest_bench::weighted_workload;
use congest_sssp::apsp::{apsp_reference, ApspConfig};
use congest_sssp::{AlgoConfig, Algorithm, Solver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_apsp(c: &mut Criterion) {
    let cfg = AlgoConfig::default();
    let apsp_cfg = ApspConfig::default();
    let mut group = c.benchmark_group("e7_apsp");
    group.sample_size(10);
    for n in [16u32, 24] {
        let g = weighted_workload(n, 3);
        group.bench_with_input(BenchmarkId::new("parallel_streaming", n), &g, |b, g| {
            b.iter(|| {
                Solver::on(g)
                    .algorithm(Algorithm::Apsp)
                    .config(cfg.clone())
                    .apsp_config(apsp_cfg.clone())
                    .run()
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("reference_driver", n), &g, |b, g| {
            b.iter(|| apsp_reference(g, &cfg, &apsp_cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apsp);
criterion_main!(benches);
