//! E7: APSP via `n` concurrent SSSP instances under random-delay scheduling.

use congest_bench::weighted_workload;
use congest_sssp::apsp::{apsp, ApspConfig};
use congest_sssp::AlgoConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_apsp(c: &mut Criterion) {
    let cfg = AlgoConfig::default();
    let apsp_cfg = ApspConfig::default();
    let mut group = c.benchmark_group("e7_apsp");
    group.sample_size(10);
    for n in [16u32, 24] {
        let g = weighted_workload(n, 3);
        group.bench_with_input(BenchmarkId::new("apsp_scheduled", n), &g, |b, g| {
            b.iter(|| apsp(g, &cfg, &apsp_cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apsp);
criterion_main!(benches);
