//! E8: deterministic sparse-cover and layered-cover construction.

use congest_cover::{LayeredCover, SparseCover};
use congest_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_cover_construction");
    group.sample_size(10);
    for n in [64u32, 128] {
        let g = generators::random_connected(n, 2 * n as u64, 5);
        group.bench_with_input(BenchmarkId::new("sparse_cover_d2", n), &g, |b, g| {
            b.iter(|| SparseCover::construct(g, 2))
        });
        group.bench_with_input(BenchmarkId::new("layered_cover", n), &g, |b, g| {
            b.iter(|| LayeredCover::construct_default(g, n as u64))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cover);
criterion_main!(benches);
