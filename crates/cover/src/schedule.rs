//! Periodic convergecast/broadcast wake schedules on cluster trees
//! (Section 3.1.1 of the paper).
//!
//! A cluster tree of depth `d` with period `p` lets its nodes collect
//! information at the root (convergecast) and push information back down
//! (broadcast) while every node is awake in only a `Θ(1/p)` fraction of
//! rounds:
//!
//! * **convergecast:** node `v` is awake at rounds `k·p − depth(v) − 1` and
//!   `k·p − depth(v)` for `k = 1, 2, …`,
//! * **broadcast:** node `v` is awake at rounds `k·p + depth(v)` and
//!   `k·p + depth(v) + 1` for `k = 0, 1, …`.
//!
//! Once all nodes of the cluster follow both schedules, any signal entering
//! the tree at time `t` is known to every node by time `t + O(d + p)`
//! (the latency bound used by Lemma 3.7).

use serde::{Deserialize, Serialize};

/// The periodic wake schedule of one cluster tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterSchedule {
    /// The period `p` (for a level-`j` cluster of a layered cover the paper
    /// uses `p = B^j`).
    pub period: u64,
    /// The depth of the cluster tree.
    pub depth: u64,
}

impl ClusterSchedule {
    /// Creates a schedule with the given period and tree depth.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: u64, depth: u64) -> Self {
        assert!(period > 0, "the period must be positive");
        ClusterSchedule { period, depth }
    }

    /// Returns `true` if a node at `node_depth` is awake for the
    /// *convergecast* process at `round`.
    pub fn convergecast_awake(&self, node_depth: u64, round: u64) -> bool {
        // Awake at rounds k*p - node_depth - 1 and k*p - node_depth, k >= 1.
        let p = self.period;
        let a = round + node_depth + 1; // equals k*p in the first case
        let b = round + node_depth; // equals k*p in the second case
        (a >= p && a % p == 0) || (b >= p && b % p == 0)
    }

    /// Returns `true` if a node at `node_depth` is awake for the *broadcast*
    /// process at `round`.
    pub fn broadcast_awake(&self, node_depth: u64, round: u64) -> bool {
        // Awake at rounds k*p + node_depth and k*p + node_depth + 1, k >= 0.
        if round < node_depth {
            return false;
        }
        let r = round - node_depth;
        r % self.period == 0 || (r > 0 && (r - 1) % self.period == 0)
    }

    /// Returns `true` if a node at `node_depth` is awake for either process.
    pub fn is_awake(&self, node_depth: u64, round: u64) -> bool {
        self.convergecast_awake(node_depth, round) || self.broadcast_awake(node_depth, round)
    }

    /// An upper bound on the number of rounds from the moment any active node
    /// receives a signal until all active nodes of the cluster know it:
    /// one convergecast up (≤ depth + period rounds to start moving plus depth
    /// to reach the root) plus one broadcast down.
    pub fn propagation_latency(&self) -> u64 {
        2 * self.depth + 2 * self.period + 2
    }

    /// The number of rounds a node at `node_depth` is awake within the
    /// half-open round interval `[from, to)`.
    pub fn awake_rounds_in(&self, node_depth: u64, from: u64, to: u64) -> u64 {
        if to <= from {
            return 0;
        }
        // 4 awake rounds per period window (2 for convergecast, 2 for
        // broadcast), counted exactly.
        (from..to).filter(|&r| self.is_awake(node_depth, r)).count() as u64
    }

    /// A closed-form upper bound on [`ClusterSchedule::awake_rounds_in`]:
    /// at most `4 ⌈(to - from) / period⌉ + 4` awake rounds, and never more
    /// than the window length itself.
    pub fn awake_rounds_bound(&self, from: u64, to: u64) -> u64 {
        if to <= from {
            return 0;
        }
        let window = to - from;
        (4 * (window / self.period + 1) + 4).min(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awake_fraction_is_about_four_per_period() {
        let s = ClusterSchedule::new(32, 5);
        for depth in [0, 3, 5] {
            let awake = s.awake_rounds_in(depth, 0, 3200);
            // 3200 rounds = 100 periods, 4 awake rounds each (2 convergecast +
            // 2 broadcast), possibly overlapping, so between 2 and 4 per period.
            assert!(awake <= 4 * 100 + 4, "awake {awake}");
            assert!(awake >= 2 * 100 - 4, "awake {awake}");
            assert!(awake <= s.awake_rounds_bound(0, 3200));
        }
    }

    #[test]
    fn convergecast_rounds_match_definition() {
        let s = ClusterSchedule::new(10, 4);
        // Node at depth 2: awake at k*10 - 3 and k*10 - 2 => rounds 7, 8, 17, 18, ...
        assert!(s.convergecast_awake(2, 7));
        assert!(s.convergecast_awake(2, 8));
        assert!(!s.convergecast_awake(2, 9));
        assert!(s.convergecast_awake(2, 17));
        assert!(!s.convergecast_awake(2, 6));
    }

    #[test]
    fn broadcast_rounds_match_definition() {
        let s = ClusterSchedule::new(10, 4);
        // Node at depth 3: awake at k*10 + 3 and k*10 + 4 => rounds 3, 4, 13, 14, ...
        assert!(s.broadcast_awake(3, 3));
        assert!(s.broadcast_awake(3, 4));
        assert!(!s.broadcast_awake(3, 5));
        assert!(s.broadcast_awake(3, 13));
        assert!(!s.broadcast_awake(3, 2));
    }

    #[test]
    fn adjacent_depths_overlap_for_relaying() {
        // For convergecast, a node at depth d must be awake in a round in
        // which its child (depth d+1) was awake the round before, so that the
        // child's message can be passed on: child awake at k*p - d - 2, parent
        // awake at k*p - d - 1.
        let s = ClusterSchedule::new(16, 6);
        for k in 1..5u64 {
            for d in 0..5u64 {
                let child_round = k * 16 - d - 2;
                let parent_round = child_round + 1;
                assert!(s.convergecast_awake(d + 1, child_round));
                assert!(s.convergecast_awake(d, parent_round));
            }
        }
        // Same for broadcast downward: parent (depth d) awake at k*p + d,
        // child (depth d+1) awake at k*p + d + 1.
        for k in 0..4u64 {
            for d in 0..5u64 {
                let parent_round = k * 16 + d;
                let child_round = parent_round + 1;
                assert!(s.broadcast_awake(d, parent_round));
                assert!(s.broadcast_awake(d + 1, child_round));
            }
        }
    }

    #[test]
    fn latency_bound_is_positive_and_monotone() {
        let a = ClusterSchedule::new(4, 2);
        let b = ClusterSchedule::new(4, 10);
        let c = ClusterSchedule::new(64, 10);
        assert!(a.propagation_latency() < b.propagation_latency());
        assert!(b.propagation_latency() < c.propagation_latency());
    }

    #[test]
    fn empty_interval_has_zero_awake_rounds() {
        let s = ClusterSchedule::new(8, 3);
        assert_eq!(s.awake_rounds_in(2, 100, 100), 0);
        assert_eq!(s.awake_rounds_in(2, 100, 50), 0);
        assert_eq!(s.awake_rounds_bound(100, 100), 0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_is_rejected() {
        let _ = ClusterSchedule::new(0, 3);
    }
}
