//! Layered sparse covers (Definition 3.4 of the paper): a hierarchy of sparse
//! `B^j`-covers in which every cluster has a *parent* cluster one level up
//! that contains it together with a `B^{j+1}/2`-neighborhood.
//!
//! The base `B` must exceed twice the realized stretch of the level-`j`
//! covers so that Observation 3.3 applies; [`LayeredCover::recommended_base`]
//! computes a suitable value from `n`.

use congest_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

use crate::cluster::ClusterId;
use crate::decomposition::multi_source_hops;
use crate::sparse_cover::{CoverError, SparseCover};

/// A layered sparse `D`-cover: sparse `B^j`-covers for `j = 0..levels`, with
/// parent links from every level-`j` cluster to a level-`j+1` cluster that
/// contains it and its `B^{j+1}/2`-neighborhood.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayeredCover {
    /// The base `B` of the hierarchy.
    pub base: u64,
    /// The target distance `D` the hierarchy must reach (`B^top >= 2D`, or the
    /// top level has a cluster spanning each connected component).
    pub target: u64,
    /// The sparse covers, `levels[j]` having radius `B^j`.
    pub levels: Vec<SparseCover>,
    /// `parents[j][c]` is the parent (level `j+1`) cluster of cluster `c` at
    /// level `j`; the last level has no parent entries.
    pub parents: Vec<Vec<ClusterId>>,
}

impl LayeredCover {
    /// A base `B` large enough for the parent-containment property with the
    /// ball-carving construction of this crate. A `d`-cover cluster reaches at
    /// most `(2d+1)·⌈log₂ n⌉ + d` hops from its center, so requiring
    /// `(2B^j+1)·⌈log₂ n⌉ + B^j + B^{j+1}/2 ≤ B^{j+1}` for all `j ≥ 0` is
    /// satisfied by `B = 6·⌈log₂ n⌉ + 6`. (The paper uses `B = Θ(log³ n)` to
    /// accommodate the Rozhon–Ghaffari stretch; the smaller value here
    /// reflects the smaller realized stretch and is recorded per experiment.)
    pub fn recommended_base(n: u32) -> u64 {
        let log = (n.max(2) as f64).log2().ceil() as u64;
        6 * log + 6
    }

    /// The radius of level `j` (`B^j`).
    pub fn radius(&self, level: usize) -> u64 {
        self.base.pow(level as u32)
    }

    /// The number of levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The parent cluster of `(level, cluster)`, if the level is not the top.
    pub fn parent_of(&self, level: usize, cluster: ClusterId) -> Option<ClusterId> {
        self.parents.get(level).and_then(|p| p.get(cluster.index()).copied())
    }

    /// Constructs a layered sparse `target`-cover of `g` with the given base.
    ///
    /// Levels are built until `B^j >= 2 * target` or until every connected
    /// component is fully contained in single clusters of the current level
    /// (the stopping rule of Theorem 3.13).
    ///
    /// # Panics
    ///
    /// Panics if `base < 2` or `target == 0`.
    pub fn construct(g: &Graph, target: u64, base: u64) -> LayeredCover {
        assert!(base >= 2, "the base must be at least 2");
        assert!(target >= 1, "the target distance must be positive");
        let mut levels = Vec::new();
        let mut radius: u64 = 1;
        loop {
            let cover = SparseCover::construct(g, radius);
            let spans_components = components_spanned(g, &cover);
            levels.push(cover);
            if radius >= 2 * target || spans_components {
                break;
            }
            radius = radius.saturating_mul(base);
        }
        // Parent links: the parent of a level-j cluster C is the level-(j+1)
        // home cluster of C's center; by the cover property that home cluster
        // contains the whole B^{j+1}-ball of the center, which contains C and
        // its B^{j+1}/2-neighborhood whenever the base is large enough.
        let mut parents = Vec::new();
        for j in 0..levels.len().saturating_sub(1) {
            let upper = &levels[j + 1];
            let links: Vec<ClusterId> =
                levels[j].clusters.iter().map(|c| upper.home[c.center.index()]).collect();
            parents.push(links);
        }
        LayeredCover { base, target, levels, parents }
    }

    /// Constructs a layered cover with [`LayeredCover::recommended_base`].
    pub fn construct_default(g: &Graph, target: u64) -> LayeredCover {
        Self::construct(g, target, Self::recommended_base(g.node_count()))
    }

    /// Validates every level plus the parent-containment property
    /// (Observation 3.3 / Definition 3.4): each cluster's parent contains the
    /// cluster and its `B^{j+1}/2`-neighborhood.
    ///
    /// # Errors
    ///
    /// Returns the first violated property.
    pub fn validate(&self, g: &Graph) -> Result<(), CoverError> {
        for level in &self.levels {
            level.validate(g)?;
        }
        for (j, links) in self.parents.iter().enumerate() {
            let upper = &self.levels[j + 1];
            let reach = self.radius(j + 1) / 2;
            for (c, &pid) in self.levels[j].clusters.iter().zip(links) {
                let parent = upper.cluster(pid);
                let dist = multi_source_hops(g, &c.members);
                for u in g.nodes() {
                    if dist[u.index()].is_some_and(|x| x <= reach) && !parent.contains(u) {
                        return Err(CoverError::BallNotCovered { node: c.center, missing: u });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Returns `true` if every connected component of `g` is fully contained in a
/// single cluster of `cover` (so no further levels are needed).
fn components_spanned(g: &Graph, cover: &SparseCover) -> bool {
    let components = congest_graph::sequential::connected_components(g);
    for comp in 0..components.component_count {
        let members: Vec<NodeId> = components.members(comp);
        let Some(&first) = members.first() else { continue };
        let home = cover.home_of(first);
        if !members.iter().all(|&v| home.contains(v)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    #[test]
    fn layered_cover_of_path() {
        let g = generators::path(40, 1);
        let lc = LayeredCover::construct_default(&g, 39);
        lc.validate(&g).expect("layered cover is valid");
        assert!(lc.level_count() >= 1);
        assert_eq!(lc.radius(0), 1);
        // Parent links exist for every non-top level.
        assert_eq!(lc.parents.len(), lc.level_count() - 1);
    }

    #[test]
    fn layered_cover_of_grid() {
        let g = generators::grid(6, 6, 1);
        let lc = LayeredCover::construct_default(&g, 10);
        lc.validate(&g).expect("layered cover is valid");
        for j in 0..lc.level_count().saturating_sub(1) {
            for c in &lc.levels[j].clusters {
                assert!(lc.parent_of(j, c.id).is_some());
            }
        }
    }

    #[test]
    fn layered_cover_of_random_graph() {
        let g = generators::random_connected(50, 70, 3);
        let lc = LayeredCover::construct_default(&g, 20);
        lc.validate(&g).expect("layered cover is valid");
    }

    #[test]
    fn layered_cover_of_disconnected_graph() {
        let g = generators::disjoint_copies(&generators::path(10, 1), 2);
        let lc = LayeredCover::construct_default(&g, 9);
        lc.validate(&g).expect("layered cover is valid");
    }

    #[test]
    fn stops_when_a_cluster_spans_each_component() {
        // A small cycle is swallowed by level 0 or 1 long before B^j >= 2D.
        let g = generators::cycle(6, 1);
        let lc = LayeredCover::construct(&g, 1_000_000, 16);
        let top = lc.levels.last().unwrap();
        assert!(components_spanned(&g, top));
        assert!(lc.level_count() <= 3);
    }

    #[test]
    fn recommended_base_grows_with_n() {
        assert!(LayeredCover::recommended_base(16) < LayeredCover::recommended_base(1 << 20));
        assert!(LayeredCover::recommended_base(2) >= 2);
    }

    #[test]
    fn radii_are_powers_of_the_base() {
        let g = generators::path(20, 1);
        let lc = LayeredCover::construct(&g, 19, 8);
        for j in 0..lc.level_count() {
            assert_eq!(lc.radius(j), 8u64.pow(j as u32));
        }
    }

    #[test]
    #[should_panic(expected = "base must be at least 2")]
    fn tiny_base_is_rejected() {
        let g = generators::path(4, 1);
        let _ = LayeredCover::construct(&g, 3, 1);
    }
}
