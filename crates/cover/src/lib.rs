//! Deterministic clustering machinery of Section 3 of the paper: separated
//! weak-diameter network decompositions, sparse neighborhood `d`-covers,
//! layered sparse covers, and the periodic convergecast/broadcast wake
//! schedules that the low-energy algorithms coordinate with.
//!
//! # Contents
//!
//! * [`decomposition`] — a deterministic `(2d+1)`-separated weak-diameter
//!   network decomposition with `O(log n)` colors (the role played by
//!   Rozhon–Ghaffari \[RG20\] in the paper, Theorem 3.10). Built by
//!   deterministic ball carving; all output properties required downstream
//!   are validated by [`sparse_cover::CoverStats`].
//! * [`sparse_cover`] — sparse `d`-covers obtained by expanding every
//!   decomposition cluster by its `d`-neighborhood (Theorem 3.11), together
//!   with property validation.
//! * [`layered`] — layered sparse `D`-covers (Definition 3.4): a hierarchy of
//!   sparse `B^j`-covers with parent links such that a parent cluster contains
//!   its child cluster plus a `B^{j+1}/2`-neighborhood (Observation 3.3).
//! * [`schedule`] — the periodic convergecast/broadcast wake schedule of
//!   Section 3.1.1, with its latency and energy accounting.
//!
//! # Example
//!
//! ```
//! use congest_graph::generators;
//! use congest_cover::sparse_cover::SparseCover;
//!
//! let g = generators::grid(8, 8, 1);
//! let cover = SparseCover::construct(&g, 2);
//! let stats = cover.validate(&g).expect("a freshly built cover is valid");
//! // Every node's 2-neighborhood is fully inside some cluster, and no node
//! // is in more clusters than there are colors.
//! assert!(stats.max_membership as u32 <= cover.color_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod decomposition;
pub mod layered;
pub mod schedule;
pub mod sparse_cover;

pub use cluster::{Cluster, ClusterId, ClusterTree};
pub use decomposition::{separated_decomposition, Decomposition};
pub use layered::LayeredCover;
pub use schedule::ClusterSchedule;
pub use sparse_cover::{geometric_levels, CoverError, CoverStats, SparseCover};
