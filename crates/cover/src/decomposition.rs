//! Deterministic `k`-separated weak-diameter network decomposition.
//!
//! This plays the role of the Rozhon–Ghaffari decomposition \[RG20\] in the
//! paper (Theorem 3.10). We use deterministic *ball carving*: repeatedly grow
//! a hop-distance ball from the smallest-id unassigned node in steps of `k`
//! hops until the next `k`-hop shell would not double the ball, claim the
//! interior as a cluster of the current color, and defer the shell to later
//! colors. This yields:
//!
//! * `O(log n)` colors (each color clusters at least half of the nodes that
//!   reach it),
//! * clusters of the same color at hop distance `> k` from each other in `G`,
//! * weak diameter `O(k log n)` per cluster, witnessed by a rooted BFS
//!   (Steiner) tree of depth `O(k log n)`.
//!
//! These are exactly the output properties the paper's sparse-cover and
//! low-energy constructions rely on; the substitution (a different
//! deterministic construction with the same guarantees, measured and
//! validated rather than cited) is documented in `DESIGN.md`.

use std::collections::VecDeque;

use congest_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

use crate::cluster::{Cluster, ClusterId, ClusterTree};

/// A `k`-separated weak-diameter network decomposition: a partition of the
/// nodes into clusters, grouped into color classes, such that same-color
/// clusters are more than `k` hops apart.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decomposition {
    /// The separation parameter `k` the decomposition was built for.
    pub separation: u64,
    /// All clusters, indexed by [`ClusterId`].
    pub clusters: Vec<Cluster>,
    /// `colors[c]` lists the clusters of color `c`.
    pub colors: Vec<Vec<ClusterId>>,
    /// `home[v]` is the cluster node `v` was assigned to (the decomposition
    /// is a partition, so every node has exactly one home cluster).
    pub home: Vec<ClusterId>,
}

impl Decomposition {
    /// Number of colors used.
    pub fn color_count(&self) -> u32 {
        self.colors.len() as u32
    }

    /// The cluster with the given id.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// The home cluster of node `v`.
    pub fn home_of(&self, v: NodeId) -> &Cluster {
        self.cluster(self.home[v.index()])
    }

    /// The maximum Steiner-tree depth over all clusters (the realized weak
    /// radius; the paper's analysis allows `O(k log n)`).
    pub fn max_tree_depth(&self) -> u64 {
        self.clusters.iter().map(|c| c.tree.max_depth()).max().unwrap_or(0)
    }
}

/// Hop-distance BFS that also returns parents (for building Steiner trees).
fn hop_bfs_with_parents(g: &Graph, source: NodeId) -> (Vec<Option<u64>>, Vec<Option<NodeId>>) {
    let mut dist = vec![None; g.node_count() as usize];
    let mut parent = vec![None; g.node_count() as usize];
    dist[source.index()] = Some(0);
    let mut q = VecDeque::from([source]);
    while let Some(v) = q.pop_front() {
        let dv = dist[v.index()].expect("queued nodes have distances");
        for adj in g.neighbors(v) {
            if dist[adj.neighbor.index()].is_none() {
                dist[adj.neighbor.index()] = Some(dv + 1);
                parent[adj.neighbor.index()] = Some(v);
                q.push_back(adj.neighbor);
            }
        }
    }
    (dist, parent)
}

/// Builds the Steiner tree of a cluster: the union of BFS-tree paths from the
/// center to every member, using whatever intermediate nodes the BFS went
/// through (Steiner nodes).
fn build_steiner_tree(
    center: NodeId,
    members: &[NodeId],
    dist: &[Option<u64>],
    parent: &[Option<NodeId>],
) -> ClusterTree {
    let mut tree = ClusterTree::singleton(center);
    for &member in members {
        let mut v = member;
        // Walk up to the first node already in the tree.
        let mut path = Vec::new();
        while !tree.contains(v) {
            path.push(v);
            v = parent[v.index()].expect("members are reachable from the center");
        }
        // Insert the path (from the tree boundary downward).
        for &node in path.iter().rev() {
            let p = parent[node.index()].expect("non-center nodes have parents");
            tree.parent.insert(node, Some(p));
            tree.depth.insert(node, dist[node.index()].expect("reachable"));
        }
    }
    tree
}

/// Computes a deterministic `k`-separated weak-diameter network decomposition
/// of `g` (hop distances).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn separated_decomposition(g: &Graph, k: u64) -> Decomposition {
    assert!(k > 0, "the separation parameter must be positive");
    let n = g.node_count() as usize;
    let mut assigned = vec![false; n];
    let mut home = vec![ClusterId(0); n];
    let mut clusters: Vec<Cluster> = Vec::new();
    let mut colors: Vec<Vec<ClusterId>> = Vec::new();
    let mut remaining = n;

    while remaining > 0 {
        let color = colors.len() as u32;
        let mut this_color: Vec<ClusterId> = Vec::new();
        // Nodes deferred to a later color because they fell into a shell.
        let mut deferred = vec![false; n];
        // Nodes claimed by a cluster of this color (subset of assigned).
        for center_idx in 0..n {
            if assigned[center_idx] || deferred[center_idx] {
                continue;
            }
            let center = NodeId(center_idx as u32);
            let (dist, parent) = hop_bfs_with_parents(g, center);
            // A node is claimable if it is unassigned, not deferred, and
            // reachable from the center.
            let claimable: Vec<bool> =
                (0..n).map(|v| !assigned[v] && !deferred[v] && dist[v].is_some()).collect();
            // Grow the radius in steps of k until the next shell does not
            // double the claimable ball.
            let mut radius = 0u64;
            loop {
                let inside = (0..n)
                    .filter(|&v| claimable[v] && dist[v].unwrap_or(u64::MAX) <= radius)
                    .count();
                let expanded = (0..n)
                    .filter(|&v| claimable[v] && dist[v].unwrap_or(u64::MAX) <= radius + k)
                    .count();
                if expanded > 2 * inside {
                    radius += k;
                } else {
                    break;
                }
            }
            // Claim the interior, defer the shell.
            let members: Vec<NodeId> = (0..n)
                .filter(|&v| claimable[v] && dist[v].unwrap_or(u64::MAX) <= radius)
                .map(|v| NodeId(v as u32))
                .collect();
            debug_assert!(!members.is_empty(), "the center itself is always claimable");
            for v in 0..n {
                if claimable[v] {
                    let d = dist[v].unwrap_or(u64::MAX);
                    if d > radius && d <= radius + k {
                        deferred[v] = true;
                    }
                }
            }
            let id = ClusterId(clusters.len() as u32);
            for &v in &members {
                assigned[v.index()] = true;
                home[v.index()] = id;
                remaining -= 1;
            }
            let tree = build_steiner_tree(center, &members, &dist, &parent);
            clusters.push(Cluster { id, color, center, members, tree });
            this_color.push(id);
        }
        colors.push(this_color);
        // Safety: each color must make progress (it always clusters at least
        // the smallest-id remaining node), so this loop terminates.
    }

    Decomposition { separation: k, clusters, colors, home }
}

/// Multi-source hop-distance BFS used by consumers of the decomposition.
pub(crate) fn multi_source_hops(g: &Graph, sources: &[NodeId]) -> Vec<Option<u64>> {
    let mut dist = vec![None; g.node_count() as usize];
    let mut q = VecDeque::new();
    for &s in sources {
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            q.push_back(s);
        }
    }
    while let Some(v) = q.pop_front() {
        let dv = dist[v.index()].expect("queued nodes have distances");
        for adj in g.neighbors(v) {
            if dist[adj.neighbor.index()].is_none() {
                dist[adj.neighbor.index()] = Some(dv + 1);
                q.push_back(adj.neighbor);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    /// Checks the three defining properties of the decomposition.
    fn check_decomposition(g: &Graph, k: u64, d: &Decomposition) {
        let n = g.node_count() as usize;
        // 1. It is a partition.
        let mut seen = vec![false; n];
        for c in &d.clusters {
            for &v in &c.members {
                assert!(!seen[v.index()], "node {v} in two clusters");
                seen[v.index()] = true;
                assert_eq!(d.home[v.index()], c.id);
            }
        }
        assert!(seen.iter().all(|&s| s), "every node must be clustered");
        // 2. Same-color clusters are more than k apart (hop distance in G).
        for color in &d.colors {
            for (i, &a) in color.iter().enumerate() {
                for &b in &color[i + 1..] {
                    let ca = d.cluster(a);
                    let cb = d.cluster(b);
                    let dist = multi_source_hops(g, &ca.members);
                    let min_gap =
                        cb.members.iter().filter_map(|v| dist[v.index()]).min().unwrap_or(u64::MAX);
                    assert!(
                        min_gap > k,
                        "same-color clusters {a} and {b} are only {min_gap} <= {k} apart"
                    );
                }
            }
        }
        // 3. Cluster trees are consistent, rooted at the center, span the
        //    members, and have depth O(k log n).
        let bound = 2 * k * ((n as f64).log2().ceil() as u64 + 2);
        for c in &d.clusters {
            assert!(c.tree.is_consistent());
            assert_eq!(c.tree.root, c.center);
            for &v in &c.members {
                assert!(c.tree.contains(v));
            }
            assert!(
                c.tree.max_depth() <= bound,
                "tree depth {} exceeds O(k log n) bound {}",
                c.tree.max_depth(),
                bound
            );
        }
        // 4. O(log n) colors.
        assert!(
            (d.color_count() as u64) <= ((n as f64).log2().ceil() as u64 + 2),
            "too many colors: {}",
            d.color_count()
        );
    }

    #[test]
    fn decomposition_of_path() {
        let g = generators::path(40, 1);
        let d = separated_decomposition(&g, 3);
        check_decomposition(&g, 3, &d);
    }

    #[test]
    fn decomposition_of_grid() {
        let g = generators::grid(8, 8, 1);
        for k in [1, 2, 5] {
            let d = separated_decomposition(&g, k);
            check_decomposition(&g, k, &d);
        }
    }

    #[test]
    fn decomposition_of_random_graphs() {
        for seed in 0..4 {
            let g = generators::random_connected(60, 90, seed);
            let d = separated_decomposition(&g, 3);
            check_decomposition(&g, 3, &d);
        }
    }

    #[test]
    fn decomposition_of_disconnected_graph() {
        let g = generators::disjoint_copies(&generators::cycle(7, 1), 3);
        let d = separated_decomposition(&g, 2);
        check_decomposition(&g, 2, &d);
    }

    #[test]
    fn decomposition_is_deterministic() {
        let g = generators::random_connected(50, 80, 9);
        let a = separated_decomposition(&g, 4);
        let b = separated_decomposition(&g, 4);
        assert_eq!(a, b, "the construction uses no randomness");
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::empty(1);
        let d = separated_decomposition(&g, 5);
        assert_eq!(d.clusters.len(), 1);
        assert_eq!(d.color_count(), 1);
        assert_eq!(d.cluster(ClusterId(0)).members, vec![NodeId(0)]);
    }

    #[test]
    fn large_separation_gives_whole_component_clusters() {
        let g = generators::cycle(12, 1);
        // With k larger than the diameter, the ball swallows the whole cycle.
        let d = separated_decomposition(&g, 50);
        assert_eq!(d.clusters.len(), 1);
        assert_eq!(d.cluster(ClusterId(0)).len(), 12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_separation_is_rejected() {
        let g = generators::path(3, 1);
        let _ = separated_decomposition(&g, 0);
    }
}
