//! Clusters and their (Steiner) trees.

use std::collections::BTreeMap;

use congest_graph::NodeId;
use serde::{Deserialize, Serialize};

/// A handle to a cluster within a decomposition, cover, or layered cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A rooted tree spanning a cluster's members, possibly through *Steiner*
/// nodes that are not members themselves (Theorem 3.10 of the paper: each
/// cluster has a Steiner tree whose terminal set is the cluster).
///
/// The tree stores, for every node it touches, the node's parent (or `None`
/// for the root) and its depth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTree {
    /// The root node of the tree.
    pub root: NodeId,
    /// `parent[v]` for every tree node `v` (root maps to `None`).
    pub parent: BTreeMap<NodeId, Option<NodeId>>,
    /// `depth[v]` for every tree node `v` (root has depth 0).
    pub depth: BTreeMap<NodeId, u64>,
}

impl ClusterTree {
    /// Creates a single-node tree.
    pub fn singleton(root: NodeId) -> Self {
        let mut parent = BTreeMap::new();
        let mut depth = BTreeMap::new();
        parent.insert(root, None);
        depth.insert(root, 0);
        ClusterTree { root, parent, depth }
    }

    /// The maximum depth of any tree node.
    pub fn max_depth(&self) -> u64 {
        self.depth.values().copied().max().unwrap_or(0)
    }

    /// Number of nodes touched by the tree (members plus Steiner nodes).
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if `v` is part of the tree (as member or Steiner node).
    pub fn contains(&self, v: NodeId) -> bool {
        self.parent.contains_key(&v)
    }

    /// The depth of `v` in the tree, if it is a tree node.
    pub fn depth_of(&self, v: NodeId) -> Option<u64> {
        self.depth.get(&v).copied()
    }

    /// Iterates over the undirected edges `(child, parent)` of the tree.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.parent.iter().filter_map(|(&v, &p)| p.map(|p| (v, p)))
    }

    /// Checks structural sanity: the root has depth 0, every non-root node's
    /// depth is its parent's depth plus one, and every parent is a tree node.
    pub fn is_consistent(&self) -> bool {
        if self.depth.get(&self.root) != Some(&0) {
            return false;
        }
        if self.parent.get(&self.root) != Some(&None) {
            return false;
        }
        for (&v, &p) in &self.parent {
            match p {
                None => {
                    if v != self.root {
                        return false;
                    }
                }
                Some(p) => {
                    let (Some(&dv), Some(&dp)) = (self.depth.get(&v), self.depth.get(&p)) else {
                        return false;
                    };
                    if dv != dp + 1 {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// A cluster: a set of member nodes plus a rooted Steiner tree spanning them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// The cluster's id within its owning structure.
    pub id: ClusterId,
    /// The color class this cluster belongs to (same-color clusters are
    /// well separated in the decomposition).
    pub color: u32,
    /// The node the cluster was grown from.
    pub center: NodeId,
    /// The member (terminal) nodes, sorted by id.
    pub members: Vec<NodeId>,
    /// The rooted Steiner tree spanning the members.
    pub tree: ClusterTree,
}

impl Cluster {
    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the cluster has no members (never produced by the
    /// constructions in this crate, but part of the API contract).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Returns `true` if `v` is a member (terminal) of this cluster.
    pub fn contains(&self, v: NodeId) -> bool {
        self.members.binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> ClusterTree {
        let mut t = ClusterTree::singleton(NodeId(0));
        t.parent.insert(NodeId(1), Some(NodeId(0)));
        t.depth.insert(NodeId(1), 1);
        t.parent.insert(NodeId(2), Some(NodeId(1)));
        t.depth.insert(NodeId(2), 2);
        t
    }

    #[test]
    fn singleton_tree_is_consistent() {
        let t = ClusterTree::singleton(NodeId(5));
        assert!(t.is_consistent());
        assert_eq!(t.max_depth(), 0);
        assert_eq!(t.node_count(), 1);
        assert!(t.contains(NodeId(5)));
        assert_eq!(t.depth_of(NodeId(5)), Some(0));
        assert_eq!(t.edges().count(), 0);
    }

    #[test]
    fn chain_tree_depths_and_edges() {
        let t = small_tree();
        assert!(t.is_consistent());
        assert_eq!(t.max_depth(), 2);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.edges().count(), 2);
        assert_eq!(t.depth_of(NodeId(2)), Some(2));
        assert!(!t.contains(NodeId(9)));
    }

    #[test]
    fn inconsistent_tree_is_detected() {
        let mut t = small_tree();
        t.depth.insert(NodeId(2), 5); // wrong depth
        assert!(!t.is_consistent());
        let mut t = small_tree();
        t.parent.insert(NodeId(3), Some(NodeId(9))); // parent not in tree
        assert!(!t.is_consistent());
    }

    #[test]
    fn cluster_membership_queries() {
        let c = Cluster {
            id: ClusterId(3),
            color: 1,
            center: NodeId(0),
            members: vec![NodeId(0), NodeId(2), NodeId(4)],
            tree: ClusterTree::singleton(NodeId(0)),
        };
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(c.contains(NodeId(2)));
        assert!(!c.contains(NodeId(3)));
        assert_eq!(c.id.to_string(), "C3");
        assert_eq!(c.id.index(), 3);
    }
}
