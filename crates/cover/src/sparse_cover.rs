//! Sparse neighborhood `d`-covers (Definition 3.2 / Theorem 3.11 of the
//! paper), built by expanding every cluster of a separated decomposition by
//! its `d`-neighborhood.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use congest_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

use crate::cluster::{Cluster, ClusterId, ClusterTree};
use crate::decomposition::{multi_source_hops, separated_decomposition};

/// A sparse `d`-cover of a graph (Definition 3.2):
///
/// * each cluster has a rooted tree of depth `O(d log n)` spanning it,
/// * each node is in `O(log n)` clusters (at most one per color),
/// * for every node `v`, some cluster contains the whole ball `B_d(v)` —
///   namely the expansion of `v`'s *home* cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseCover {
    /// The cover radius `d`.
    pub d: u64,
    /// All clusters of the cover, indexed by [`ClusterId`].
    pub clusters: Vec<Cluster>,
    /// `membership[v]` lists the clusters containing node `v`.
    pub membership: Vec<Vec<ClusterId>>,
    /// `home[v]` is the cluster guaranteed to contain `B_d(v)`.
    pub home: Vec<ClusterId>,
    /// Number of colors of the underlying decomposition.
    colors: u32,
}

/// Validation failures of a claimed sparse cover.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoverError {
    /// Some node's `d`-ball is not contained in its home cluster.
    BallNotCovered {
        /// The node whose ball is not covered.
        node: NodeId,
        /// A ball node missing from the home cluster.
        missing: NodeId,
    },
    /// A node appears in more than one cluster of the same color.
    DuplicateColorMembership {
        /// The offending node.
        node: NodeId,
        /// The color with duplicate membership.
        color: u32,
    },
    /// A cluster tree is structurally inconsistent or does not span the
    /// cluster members.
    BrokenTree {
        /// The offending cluster.
        cluster: ClusterId,
    },
    /// The membership index disagrees with the cluster member lists.
    InconsistentMembership {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::BallNotCovered { node, missing } => {
                write!(f, "the d-ball of {node} is not covered: {missing} is missing from its home cluster")
            }
            CoverError::DuplicateColorMembership { node, color } => {
                write!(f, "node {node} appears in two clusters of color {color}")
            }
            CoverError::BrokenTree { cluster } => write!(f, "cluster {cluster} has a broken tree"),
            CoverError::InconsistentMembership { node } => {
                write!(f, "membership index of node {node} disagrees with cluster members")
            }
        }
    }
}

impl Error for CoverError {}

/// Measured quality statistics of a sparse cover (reported by experiment E8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverStats {
    /// The cover radius `d`.
    pub d: u64,
    /// Number of clusters.
    pub cluster_count: usize,
    /// Number of colors.
    pub colors: u32,
    /// Maximum number of clusters any node belongs to.
    pub max_membership: usize,
    /// Mean number of clusters per node.
    pub mean_membership: f64,
    /// Maximum cluster-tree depth (the realized stretch is `max_depth / d`).
    pub max_tree_depth: u64,
    /// Maximum number of cluster trees any single edge participates in.
    pub max_edge_tree_load: usize,
}

impl SparseCover {
    /// Builds a sparse `d`-cover of `g` deterministically: a `(2d+1)`-separated
    /// decomposition followed by `d`-neighborhood expansion of every cluster
    /// (the construction of Theorem 3.11).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` is combined with an empty graph only in degenerate
    /// ways; `d = 0` itself is allowed (clusters are the decomposition
    /// clusters themselves).
    pub fn construct(g: &Graph, d: u64) -> SparseCover {
        let decomposition = separated_decomposition(g, 2 * d + 1);
        let n = g.node_count() as usize;
        let mut clusters = Vec::with_capacity(decomposition.clusters.len());
        let mut membership: Vec<Vec<ClusterId>> = vec![Vec::new(); n];
        for c in &decomposition.clusters {
            let (members, tree) = expand_cluster(g, c, d);
            let id = c.id;
            for &v in &members {
                membership[v.index()].push(id);
            }
            clusters.push(Cluster { id, color: c.color, center: c.center, members, tree });
        }
        SparseCover {
            d,
            clusters,
            membership,
            home: decomposition.home.clone(),
            colors: decomposition.color_count(),
        }
    }

    /// Number of colors of the underlying decomposition (the upper bound on
    /// any node's membership count).
    pub fn color_count(&self) -> u32 {
        self.colors
    }

    /// The cluster with the given id.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// The cluster guaranteed to contain the `d`-ball of `v`.
    pub fn home_of(&self, v: NodeId) -> &Cluster {
        self.cluster(self.home[v.index()])
    }

    /// The clusters containing `v`.
    pub fn clusters_of(&self, v: NodeId) -> &[ClusterId] {
        &self.membership[v.index()]
    }

    /// The maximum cluster-tree depth.
    pub fn max_tree_depth(&self) -> u64 {
        self.clusters.iter().map(|c| c.tree.max_depth()).max().unwrap_or(0)
    }

    /// Computes quality statistics (used by experiment E8 and the validation
    /// tests).
    pub fn stats(&self) -> CoverStats {
        let n = self.membership.len().max(1);
        let max_membership = self.membership.iter().map(|m| m.len()).max().unwrap_or(0);
        let mean_membership =
            self.membership.iter().map(|m| m.len()).sum::<usize>() as f64 / n as f64;
        // Edge load: how many cluster trees use each (undirected) edge. A
        // BTreeMap keeps the tally structure deterministic end to end.
        let mut edge_load: std::collections::BTreeMap<(NodeId, NodeId), usize> =
            std::collections::BTreeMap::new();
        for c in &self.clusters {
            for (child, parent) in c.tree.edges() {
                let key = if child < parent { (child, parent) } else { (parent, child) };
                *edge_load.entry(key).or_insert(0) += 1;
            }
        }
        CoverStats {
            d: self.d,
            cluster_count: self.clusters.len(),
            colors: self.colors,
            max_membership,
            mean_membership,
            max_tree_depth: self.max_tree_depth(),
            max_edge_tree_load: edge_load.values().copied().max().unwrap_or(0),
        }
    }

    /// Validates the defining sparse-cover properties against the graph.
    ///
    /// # Errors
    ///
    /// Returns the first violated property, or the cover's [`CoverStats`] if
    /// everything holds.
    pub fn validate(&self, g: &Graph) -> Result<CoverStats, CoverError> {
        let n = g.node_count() as usize;
        // Membership index agrees with cluster member lists.
        for c in &self.clusters {
            if !c.tree.is_consistent() {
                return Err(CoverError::BrokenTree { cluster: c.id });
            }
            for &v in &c.members {
                if !c.tree.contains(v) {
                    return Err(CoverError::BrokenTree { cluster: c.id });
                }
                if !self.membership[v.index()].contains(&c.id) {
                    return Err(CoverError::InconsistentMembership { node: v });
                }
            }
        }
        // At most one cluster per color per node.
        for v in 0..n {
            let mut colors_seen = std::collections::BTreeSet::new();
            for &cid in &self.membership[v] {
                let color = self.cluster(cid).color;
                if !colors_seen.insert(color) {
                    return Err(CoverError::DuplicateColorMembership {
                        node: NodeId(v as u32),
                        color,
                    });
                }
            }
        }
        // d-ball coverage by the home cluster.
        for v in g.nodes() {
            let home = self.home_of(v);
            let dist = multi_source_hops(g, &[v]);
            for u in g.nodes() {
                if dist[u.index()].is_some_and(|x| x <= self.d) && !home.contains(u) {
                    return Err(CoverError::BallNotCovered { node: v, missing: u });
                }
            }
        }
        Ok(self.stats())
    }

    /// `true` when every cluster spans a whole connected component of `g`
    /// (no graph edge leaves any cluster's member set). From such a cover
    /// on, a larger radius cannot change the clustering — the distance
    /// oracle's geometric level construction stops at the first component
    /// cover (see `congest_oracle`).
    pub fn is_component_cover(&self, g: &Graph) -> bool {
        self.clusters.iter().all(|c| {
            c.members.iter().all(|&v| g.neighbors(v).iter().all(|a| c.contains(a.neighbor)))
        })
    }
}

/// The geometric radius sequence `d = 1, 2, 4, …` used by distance-oracle
/// level construction: doubles until it reaches `limit` (the final radius is
/// `>= limit`, so a ball of `limit` hops fits inside the last level). A
/// `limit` of 0 still yields `[1]` — an oracle always has at least one level.
pub fn geometric_levels(limit: u64) -> Vec<u64> {
    let mut ds = vec![1u64];
    while *ds.last().expect("non-empty by construction") < limit {
        let next = ds.last().expect("non-empty by construction").saturating_mul(2);
        ds.push(next);
    }
    ds
}

/// Expands a decomposition cluster by its `d`-neighborhood and extends its
/// Steiner tree along the expansion BFS.
fn expand_cluster(g: &Graph, c: &Cluster, d: u64) -> (Vec<NodeId>, ClusterTree) {
    let n = g.node_count() as usize;
    // Multi-source BFS from the cluster members.
    let mut dist = vec![None; n];
    let mut parent = vec![None; n];
    let mut q = VecDeque::new();
    for &s in &c.members {
        dist[s.index()] = Some(0u64);
        q.push_back(s);
    }
    while let Some(v) = q.pop_front() {
        let dv = dist[v.index()].expect("queued nodes have distances");
        if dv >= d {
            continue;
        }
        for adj in g.neighbors(v) {
            if dist[adj.neighbor.index()].is_none() {
                dist[adj.neighbor.index()] = Some(dv + 1);
                parent[adj.neighbor.index()] = Some(v);
                q.push_back(adj.neighbor);
            }
        }
    }
    let members: Vec<NodeId> =
        (0..n).filter(|&v| dist[v].is_some_and(|x| x <= d)).map(|v| NodeId(v as u32)).collect();
    // Extend the tree: new nodes hang below the member they were discovered
    // from (depths continue below that member's tree depth).
    let mut tree = c.tree.clone();
    for &v in &members {
        if tree.contains(v) {
            continue;
        }
        // Walk back to the first node already in the tree, then attach.
        let mut chain = Vec::new();
        let mut cur = v;
        while !tree.contains(cur) {
            chain.push(cur);
            cur = parent[cur.index()].expect("expansion nodes have parents toward the cluster");
        }
        for &node in chain.iter().rev() {
            let p = parent[node.index()].expect("non-root expansion nodes have parents");
            let pd = tree.depth_of(p).expect("parent inserted before child");
            tree.parent.insert(node, Some(p));
            tree.depth.insert(node, pd + 1);
        }
    }
    (members, tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;

    fn check(g: &Graph, d: u64) -> CoverStats {
        let cover = SparseCover::construct(g, d);
        let stats = cover.validate(g).expect("constructed covers are valid");
        assert!(stats.max_membership as u32 <= cover.color_count());
        stats
    }

    #[test]
    fn cover_of_path() {
        let g = generators::path(30, 1);
        for d in [1, 2, 4] {
            check(&g, d);
        }
    }

    #[test]
    fn cover_of_grid() {
        let g = generators::grid(7, 7, 1);
        let stats = check(&g, 2);
        assert!(stats.cluster_count >= 1);
        assert!(stats.max_tree_depth >= 2);
    }

    #[test]
    fn cover_of_random_graphs() {
        for seed in 0..3 {
            let g = generators::random_connected(50, 70, seed);
            check(&g, 2);
        }
    }

    #[test]
    fn cover_of_disconnected_graph() {
        let g = generators::disjoint_copies(&generators::path(8, 1), 3);
        check(&g, 2);
    }

    #[test]
    fn cover_with_d_zero_is_the_decomposition() {
        let g = generators::cycle(12, 1);
        let cover = SparseCover::construct(&g, 0);
        cover.validate(&g).unwrap();
        // With d = 0, clusters partition the nodes (each node in exactly one).
        assert!(cover.membership.iter().all(|m| m.len() == 1));
    }

    #[test]
    fn cover_radius_larger_than_diameter_gives_single_cluster_membership() {
        let g = generators::cycle(10, 1);
        let cover = SparseCover::construct(&g, 20);
        cover.validate(&g).unwrap();
        // Every cluster expands to the whole cycle; home cluster covers all.
        assert!(cover.home_of(NodeId(0)).len() == 10);
    }

    #[test]
    fn home_cluster_contains_ball() {
        let g = generators::grid(6, 6, 1);
        let cover = SparseCover::construct(&g, 3);
        for v in g.nodes() {
            let home = cover.home_of(v);
            let dist = multi_source_hops(&g, &[v]);
            for u in g.nodes() {
                if dist[u.index()].is_some_and(|x| x <= 3) {
                    assert!(home.contains(u));
                }
            }
        }
    }

    #[test]
    fn stats_are_plausible() {
        let g = generators::random_connected(60, 120, 5);
        let cover = SparseCover::construct(&g, 2);
        let stats = cover.stats();
        assert_eq!(stats.d, 2);
        assert_eq!(stats.cluster_count, cover.clusters.len());
        assert!(stats.mean_membership >= 1.0);
        assert!(stats.max_membership >= 1);
        assert!(stats.max_edge_tree_load >= 1);
    }

    #[test]
    fn construction_is_deterministic() {
        let g = generators::random_connected(40, 60, 2);
        assert_eq!(SparseCover::construct(&g, 3), SparseCover::construct(&g, 3));
    }

    #[test]
    fn validation_detects_corruption() {
        let g = generators::path(12, 1);
        let mut cover = SparseCover::construct(&g, 2);
        // Corrupt: drop a member from some node's home cluster.
        let home = cover.home[0].index();
        cover.clusters[home].members.retain(|&v| v != NodeId(1));
        assert!(cover.validate(&g).is_err());
    }

    #[test]
    fn cover_error_display() {
        let e = CoverError::BallNotCovered { node: NodeId(1), missing: NodeId(2) };
        assert!(e.to_string().contains("v1"));
        let e = CoverError::DuplicateColorMembership { node: NodeId(1), color: 3 };
        assert!(e.to_string().contains("color 3"));
        let e = CoverError::BrokenTree { cluster: ClusterId(5) };
        assert!(e.to_string().contains("C5"));
        let e = CoverError::InconsistentMembership { node: NodeId(7) };
        assert!(e.to_string().contains("v7"));
    }

    #[test]
    fn geometric_levels_double_to_the_limit() {
        assert_eq!(geometric_levels(0), [1]);
        assert_eq!(geometric_levels(1), [1]);
        assert_eq!(geometric_levels(5), [1, 2, 4, 8]);
        assert_eq!(geometric_levels(8), [1, 2, 4, 8]);
        let ds = geometric_levels(u64::MAX);
        assert_eq!(*ds.last().unwrap(), u64::MAX, "saturates instead of overflowing");
    }

    #[test]
    fn component_cover_detection() {
        let g = generators::path(8, 1);
        // Radius 1 on a path: clusters are small balls, edges leave them.
        let small = SparseCover::construct(&g, 1);
        assert!(!small.is_component_cover(&g));
        // A radius covering the whole path: one cluster per component.
        let full = SparseCover::construct(&g, 8);
        assert!(full.is_component_cover(&g));
        full.validate(&g).expect("component covers are valid covers");
    }
}
