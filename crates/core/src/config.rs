//! Tunable constants of the algorithms.
//!
//! Every polylogarithmic constant the paper leaves implicit is an explicit
//! field here so that experiments can report exactly which constants were
//! used (see `EXPERIMENTS.md`).

use serde::{Deserialize, Serialize};

use congest_sim::SimConfig;

/// Configuration for the low-congestion CSSP/SSSP/APSP algorithms of
/// Section 2 of the paper and for the low-energy algorithms of Section 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgoConfig {
    /// The approximation parameter `ε ∈ (0, 1)` of the cutter (Lemma 2.1).
    /// The paper fixes `ε = 0.5` in the recursion (Section 2.3, step 3).
    pub epsilon_inverse: u64,
    /// Threshold below which the recursion switches to the one-round base
    /// case (the paper uses `D = 1`).
    pub base_case_threshold: u64,
    /// Simulator model configuration used for the protocol phases.
    pub sim: SimConfig,
    /// Record per-round edge-usage traces of protocol phases (needed when the
    /// run will be fed to the APSP random-delay scheduler).
    pub record_traces: bool,

    // --- Sleeping-model (Section 3) constants -------------------------------
    /// The BFS wavefront in the low-energy BFS advances one hop every
    /// `bfs_slowdown` rounds, so that cluster activation (which travels
    /// through cluster trees) stays ahead of it (Lemma 3.7). The paper uses
    /// `Θ(log³ n)`; the default here is the measured cover stretch plus a
    /// safety factor, applied per instance by the algorithm.
    pub min_bfs_slowdown: u64,
    /// Extra multiplicative safety factor on the slowdown.
    pub slowdown_safety_factor: u64,
    /// Rounds charged per level of layered-cover construction, as a multiple
    /// of `B^j · log² n` (Theorem 3.12 charges `O(B^j log^15 n)`; we charge
    /// the measured BFS work times this factor — see DESIGN.md §6).
    pub cover_build_round_factor: u64,
    /// Awake rounds charged to every node per level of layered-cover
    /// construction, as a multiple of `log² n` (Theorem 3.12 charges
    /// `O(log^25 n)`; see DESIGN.md §6).
    pub cover_build_energy_factor: u64,
}

impl Default for AlgoConfig {
    fn default() -> Self {
        AlgoConfig {
            epsilon_inverse: 2,
            base_case_threshold: 1,
            sim: SimConfig::default(),
            record_traces: false,
            min_bfs_slowdown: 2,
            slowdown_safety_factor: 2,
            cover_build_round_factor: 4,
            cover_build_energy_factor: 4,
        }
    }
}

impl AlgoConfig {
    /// The approximation parameter as a float (`1 / epsilon_inverse`).
    pub fn epsilon(&self) -> f64 {
        1.0 / self.epsilon_inverse as f64
    }

    /// Enables trace recording (for APSP scheduling experiments).
    pub fn with_traces(mut self) -> Self {
        self.record_traces = true;
        self.sim.record_edge_trace = true;
        self
    }

    /// Installs a fault plan on the underlying simulator (see
    /// [`congest_sim::FaultPlan`] and `docs/FAULT_MODEL.md`). The default is
    /// [`congest_sim::FaultPlan::none`], which leaves every run bit-identical
    /// to the fault-free simulator.
    pub fn with_faults(mut self, faults: congest_sim::FaultPlan) -> Self {
        self.sim.faults = faults;
        self
    }

    /// Sets the worker-thread count on the underlying simulator (see
    /// [`congest_sim::SimConfig::threads`]): `1` is the sequential engine,
    /// `0` resolves to the host's available parallelism, `k > 1` shards the
    /// nodes across `k` workers. Results are bit-identical at every thread
    /// count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.sim.threads = threads;
        self
    }

    /// Sets the cutter approximation parameter to `1 / inverse`.
    ///
    /// # Panics
    ///
    /// Panics if `inverse == 0`.
    pub fn with_epsilon_inverse(mut self, inverse: u64) -> Self {
        assert!(inverse > 0, "epsilon_inverse must be positive");
        self.epsilon_inverse = inverse;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_epsilon_is_half() {
        let c = AlgoConfig::default();
        assert_eq!(c.epsilon(), 0.5);
        assert_eq!(c.base_case_threshold, 1);
    }

    #[test]
    fn with_traces_enables_sim_traces_too() {
        let c = AlgoConfig::default().with_traces();
        assert!(c.record_traces);
        assert!(c.sim.record_edge_trace);
    }

    #[test]
    fn epsilon_inverse_builder() {
        let c = AlgoConfig::default().with_epsilon_inverse(4);
        assert_eq!(c.epsilon(), 0.25);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_epsilon_inverse_rejected() {
        let _ = AlgoConfig::default().with_epsilon_inverse(0);
    }

    #[test]
    fn with_threads_plumbs_to_the_simulator() {
        let c = AlgoConfig::default();
        assert_eq!(c.sim.threads, 1, "default stays sequential");
        assert_eq!(c.with_threads(4).sim.threads, 4);
    }

    #[test]
    fn with_faults_installs_the_plan_on_the_simulator() {
        use congest_sim::FaultPlan;
        let c = AlgoConfig::default();
        assert!(c.sim.faults.is_none());
        let plan = FaultPlan::none().with_seed(9).with_drop_ppm(1000);
        let c = c.with_faults(plan.clone());
        assert_eq!(c.sim.faults, plan);
    }
}
