//! Error types for the algorithms in this crate.

use std::error::Error;
use std::fmt;

use congest_graph::{EdgeId, NodeId};
use congest_sim::SimError;

/// Errors produced by the distributed algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AlgoError {
    /// The source set was empty.
    EmptySourceSet,
    /// A source node id was out of range for the graph.
    SourceOutOfRange {
        /// The offending node.
        node: NodeId,
    },
    /// A per-edge weight map did not have one entry per edge.
    WeightMapMismatch {
        /// Expected number of entries (the graph's edge count).
        expected: usize,
        /// Number of entries supplied.
        found: usize,
    },
    /// A zero edge weight was passed to a subroutine that requires positive
    /// weights (zero weights are handled by contraction at the API boundary,
    /// Theorem 2.7).
    ZeroWeightNotSupported {
        /// The offending edge.
        edge: EdgeId,
    },
    /// The underlying simulation failed (round limit or CONGEST violation).
    Simulation(SimError),
    /// A [`crate::solver::SolverRequest`] combined an algorithm with an
    /// option the algorithm does not support (for example a distance
    /// threshold on a baseline, or multiple sources on APSP). The capability
    /// flags of [`crate::solver::registry`] describe what each algorithm
    /// accepts.
    UnsupportedRequest {
        /// The registry name of the algorithm.
        algorithm: &'static str,
        /// The unsupported option.
        reason: &'static str,
    },
    /// The low-energy BFS wake schedule could not keep ahead of the BFS
    /// wavefront (the invariant of Lemma 3.7 was violated); indicates the
    /// configured slowdown constants are too aggressive for this instance.
    WakeScheduleViolation {
        /// The cluster level at which the violation occurred.
        level: usize,
        /// The round at which the BFS reached the cluster.
        reached_at: u64,
        /// The round at which the cluster only became fully awake.
        awake_at: u64,
    },
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::EmptySourceSet => write!(f, "the source set must be non-empty"),
            AlgoError::SourceOutOfRange { node } => {
                write!(f, "source node {node} is out of range")
            }
            AlgoError::WeightMapMismatch { expected, found } => {
                write!(f, "weight map has {found} entries but the graph has {expected} edges")
            }
            AlgoError::ZeroWeightNotSupported { edge } => {
                write!(f, "edge {edge} has weight zero, which this subroutine does not accept")
            }
            AlgoError::Simulation(e) => write!(f, "simulation failed: {e}"),
            AlgoError::UnsupportedRequest { algorithm, reason } => {
                write!(f, "algorithm {algorithm} does not support {reason}")
            }
            AlgoError::WakeScheduleViolation { level, reached_at, awake_at } => write!(
                f,
                "wake schedule violated at level {level}: BFS arrived at round {reached_at} before the cluster was awake at round {awake_at}"
            ),
        }
    }
}

impl Error for AlgoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AlgoError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for AlgoError {
    fn from(e: SimError) -> Self {
        AlgoError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AlgoError::EmptySourceSet.to_string().contains("non-empty"));
        assert!(AlgoError::SourceOutOfRange { node: NodeId(3) }.to_string().contains("v3"));
        assert!(AlgoError::WeightMapMismatch { expected: 4, found: 2 }
            .to_string()
            .contains("2 entries"));
        assert!(AlgoError::ZeroWeightNotSupported { edge: EdgeId(1) }.to_string().contains("e1"));
        let sim =
            AlgoError::Simulation(SimError::RoundLimitExceeded { limit: 5, unhalted_nodes: 1 });
        assert!(sim.to_string().contains("simulation failed"));
        assert!(Error::source(&sim).is_some());
        let wake = AlgoError::WakeScheduleViolation { level: 1, reached_at: 10, awake_at: 20 };
        assert!(wake.to_string().contains("level 1"));
        let unsupported =
            AlgoError::UnsupportedRequest { algorithm: "bellman-ford", reason: "a threshold" };
        assert!(unsupported.to_string().contains("bellman-ford"));
        assert!(unsupported.to_string().contains("a threshold"));
    }

    #[test]
    fn sim_error_converts() {
        let e: AlgoError = SimError::RoundLimitExceeded { limit: 1, unhalted_nodes: 2 }.into();
        assert!(matches!(e, AlgoError::Simulation(_)));
    }
}
