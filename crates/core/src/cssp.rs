//! The public entry points for low-congestion exact CSSP and SSSP
//! (Theorems 2.6 and 2.7 of the paper).
//!
//! [`cssp`] computes `dist(S, v)` for every node `v` in `Õ(n)` rounds with
//! `poly(log n)` congestion per edge; [`sssp`] is the single-source special
//! case. Zero-weight edges are handled by contracting their connected
//! components before running the recursion (the standard device behind
//! Theorem 2.7).

use std::collections::BTreeMap;

use congest_graph::{Distance, EdgeId, Graph, NodeId};
use congest_sim::Metrics;

use crate::result::{AlgoRun, DistanceOutput, SourceOffset};
use crate::thresholded::{thresholded_cssp, RecursionStats, ThresholdedRun};
use crate::{AlgoConfig, AlgoError};

/// The result of a full CSSP/SSSP run: distances, metrics, and the recursion
/// instrumentation of the underlying thresholded computation.
#[derive(Debug, Clone, PartialEq)]
pub struct CsspRun {
    /// Exact distances from the source set (infinite for unreachable nodes).
    pub output: DistanceOutput,
    /// Complexity measurements.
    pub metrics: Metrics,
    /// Recursion-tree instrumentation (Lemma 2.4 / Corollary 2.5).
    pub stats: RecursionStats,
}

impl CsspRun {
    /// The distance of node `v`.
    pub fn distance(&self, v: NodeId) -> Distance {
        self.output.distance(v)
    }

    /// Converts into the generic [`AlgoRun`].
    pub fn into_algo_run(self) -> AlgoRun {
        AlgoRun { output: self.output, metrics: self.metrics, trace: None }
    }
}

/// Computes exact closest-source shortest paths `dist(S, v)` for every node
/// (Theorem 2.6; with zero weights allowed, Theorem 2.7).
///
/// # Errors
///
/// Returns an error if `sources` is empty, a source is out of range, or the
/// underlying simulation fails.
pub fn cssp(g: &Graph, sources: &[NodeId], config: &AlgoConfig) -> Result<CsspRun, AlgoError> {
    if sources.is_empty() {
        return Err(AlgoError::EmptySourceSet);
    }
    for &s in sources {
        if !g.contains_node(s) {
            return Err(AlgoError::SourceOutOfRange { node: s });
        }
    }
    let offsets: Vec<SourceOffset> = sources.iter().map(|&s| SourceOffset::plain(s)).collect();

    if g.edges().iter().all(|e| e.w > 0) {
        let threshold = g.distance_upper_bound().max(1);
        let run = thresholded_cssp(g, &offsets, threshold, config)?;
        return Ok(finish(run));
    }

    // Zero-weight edges: contract each connected component of the zero-weight
    // subgraph into a supernode, solve on the contracted graph, and read the
    // supernode's distance back for every original node (Theorem 2.7).
    let contraction = contract_zero_weight(g);
    let super_sources: Vec<SourceOffset> = {
        let mut seen = std::collections::BTreeSet::new();
        sources
            .iter()
            .filter_map(|&s| {
                let sup = contraction.super_of[s.index()];
                seen.insert(sup).then(|| SourceOffset::plain(sup))
            })
            .collect()
    };
    let threshold = contraction.graph.distance_upper_bound().max(1);
    let run = thresholded_cssp(&contraction.graph, &super_sources, threshold, config)?;

    // Distances: every original node inherits its supernode's distance.
    let distances: Vec<Distance> =
        g.nodes().map(|v| run.output.distance(contraction.super_of[v.index()])).collect();
    // Metrics: attribute supernode costs to representative original nodes and
    // contracted-edge costs to the original edge they came from.
    let metrics = run.metrics.remap(
        &contraction.representative,
        &contraction.edge_origin,
        g.node_count() as usize,
        g.edge_count() as usize,
    );
    let stats = RecursionStats {
        subproblems: run.stats.subproblems,
        participation: {
            let mut p = vec![0; g.node_count() as usize];
            for v in g.nodes() {
                p[v.index()] = run.stats.participation[contraction.super_of[v.index()].index()];
            }
            p
        },
        total_subproblem_size: run.stats.total_subproblem_size,
        levels: run.stats.levels,
    };
    Ok(CsspRun { output: DistanceOutput { distances }, metrics, stats })
}

/// Computes exact single-source shortest paths from `source` (the SSSP of
/// Theorem 1.1's congestion part).
///
/// # Errors
///
/// Same conditions as [`cssp`].
pub fn sssp(g: &Graph, source: NodeId, config: &AlgoConfig) -> Result<CsspRun, AlgoError> {
    cssp(g, &[source], config)
}

fn finish(run: ThresholdedRun) -> CsspRun {
    CsspRun { output: run.output, metrics: run.metrics, stats: run.stats }
}

/// The result of contracting zero-weight components.
struct Contraction {
    /// The contracted graph (all weights positive).
    graph: Graph,
    /// `super_of[v]` is the supernode of original node `v`.
    super_of: Vec<NodeId>,
    /// `representative[s]` is an original node represented by supernode `s`.
    representative: Vec<NodeId>,
    /// `edge_origin[e]` is the original edge that produced contracted edge `e`.
    edge_origin: Vec<EdgeId>,
}

/// Contracts the connected components of the zero-weight subgraph.
fn contract_zero_weight(g: &Graph) -> Contraction {
    let n = g.node_count() as usize;
    // Union-find over zero-weight edges.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for e in g.edges() {
        if e.w == 0 {
            let (a, b) = (find(&mut parent, e.u.index()), find(&mut parent, e.v.index()));
            if a != b {
                parent[a] = b;
            }
        }
    }
    // Dense supernode ids.
    let mut super_index: BTreeMap<usize, u32> = BTreeMap::new();
    let mut representative: Vec<NodeId> = Vec::new();
    let mut super_of = vec![NodeId(0); n];
    for (v, sup) in super_of.iter_mut().enumerate() {
        let root = find(&mut parent, v);
        let next_id = super_index.len() as u32;
        let id = *super_index.entry(root).or_insert_with(|| {
            representative.push(NodeId(root as u32));
            next_id
        });
        *sup = NodeId(id);
    }
    let mut builder = Graph::builder(super_index.len() as u32);
    let mut edge_origin = Vec::new();
    for e in g.edge_ids() {
        let edge = g.edge(e);
        if edge.w == 0 {
            continue;
        }
        let (su, sv) = (super_of[edge.u.index()], super_of[edge.v.index()]);
        if su != sv {
            builder.add_edge(su.0, sv.0, edge.w).expect("contracted edges are valid");
            edge_origin.push(e);
        }
    }
    Contraction { graph: builder.build(), super_of, representative, edge_origin }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    fn check_cssp(g: &Graph, sources: &[NodeId]) -> CsspRun {
        let run = cssp(g, sources, &AlgoConfig::default()).unwrap();
        let truth = sequential::dijkstra(g, sources);
        for v in g.nodes() {
            assert_eq!(run.distance(v), truth.distance(v), "node {v}");
        }
        run
    }

    #[test]
    fn sssp_matches_dijkstra_on_weighted_random_graphs() {
        for seed in 0..5 {
            let g = generators::with_random_weights(
                &generators::random_connected(35, 60, seed),
                12,
                seed,
            );
            check_cssp(&g, &[NodeId(0)]);
        }
    }

    #[test]
    fn cssp_with_many_sources() {
        let g = generators::with_random_weights(&generators::grid(6, 6, 1), 7, 4);
        check_cssp(&g, &[NodeId(0), NodeId(35), NodeId(17), NodeId(5)]);
    }

    #[test]
    fn sssp_on_unit_weights() {
        let g = generators::random_connected(50, 100, 8);
        check_cssp(&g, &[NodeId(3)]);
    }

    #[test]
    fn sssp_on_paths_and_cycles() {
        check_cssp(&generators::path(40, 5), &[NodeId(0)]);
        check_cssp(&generators::cycle(30, 3), &[NodeId(7)]);
        check_cssp(&generators::star(25, 9), &[NodeId(12)]);
    }

    #[test]
    fn disconnected_graphs_yield_infinite_distances() {
        let g = generators::disjoint_copies(&generators::path(6, 2), 3);
        let run = check_cssp(&g, &[NodeId(0)]);
        assert_eq!(run.output.reached_count(), 6);
    }

    #[test]
    fn zero_weight_edges_are_contracted_correctly() {
        // 0 -0- 1 -5- 2 -0- 3 -2- 4: dist(0, .) = [0, 0, 5, 5, 7].
        let g = Graph::from_edges(5, [(0, 1, 0), (1, 2, 5), (2, 3, 0), (3, 4, 2)]).unwrap();
        let run = check_cssp(&g, &[NodeId(0)]);
        assert_eq!(run.distance(NodeId(1)), Distance::ZERO);
        assert_eq!(run.distance(NodeId(4)).finite(), Some(7));
    }

    #[test]
    fn zero_weight_random_graphs_match_dijkstra() {
        for seed in 0..3 {
            let g = generators::with_random_weights_zero(
                &generators::random_connected(30, 50, seed),
                6,
                seed,
            );
            check_cssp(&g, &[NodeId(0), NodeId(10)]);
        }
    }

    #[test]
    fn all_zero_graph() {
        let g = generators::with_random_weights_zero(&generators::path(6, 1), 0, 1);
        let run = check_cssp(&g, &[NodeId(2)]);
        assert_eq!(run.output.reached_count(), 6);
        assert!(run.output.distances.iter().all(|&d| d == Distance::ZERO));
    }

    #[test]
    fn metrics_have_original_graph_dimensions() {
        let g = Graph::from_edges(4, [(0, 1, 0), (1, 2, 3), (2, 3, 1)]).unwrap();
        let run = check_cssp(&g, &[NodeId(0)]);
        assert_eq!(run.metrics.node_energy.len(), 4);
        assert_eq!(run.metrics.edge_congestion.len(), 3);
    }

    #[test]
    fn congestion_is_polylogarithmic_on_long_paths() {
        // Per recursion level an edge carries O(log n) forest messages plus
        // O(1) cutter messages, and there are O(log D) levels, so the per-edge
        // congestion is O(log n · log D) — it must grow far slower than n.
        let g = generators::path(128, 2);
        let run = check_cssp(&g, &[NodeId(0)]);
        let levels = (64 - g.distance_upper_bound().next_power_of_two().leading_zeros()) as u64;
        let log_n = (g.node_count() as f64).log2().ceil() as u64;
        let bound = levels * (5 * log_n + 10);
        assert!(
            run.metrics.max_congestion() <= bound,
            "congestion {} exceeds the O(log n · log D) bound {}",
            run.metrics.max_congestion(),
            bound
        );
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let g = generators::path(4, 1);
        assert!(matches!(cssp(&g, &[], &AlgoConfig::default()), Err(AlgoError::EmptySourceSet)));
        assert!(matches!(
            sssp(&g, NodeId(9), &AlgoConfig::default()),
            Err(AlgoError::SourceOutOfRange { .. })
        ));
    }
}
