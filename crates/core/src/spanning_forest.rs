//! Distributed maximal spanning forest via Boruvka-style fragment merging
//! (Theorem 2.2, and its low-energy adaptation, Theorem 3.1).
//!
//! The algorithm proceeds in `O(log n)` merge phases. In each phase every
//! fragment finds an arbitrary outgoing edge (we deterministically pick the
//! smallest edge id, mirroring the deterministic tie-breaking the paper needs)
//! by exchanging fragment identifiers across every edge and convergecasting
//! the candidates up the fragment tree; fragments connected by chosen edges
//! then merge. After `O(log n)` phases no outgoing edges remain and the chosen
//! edges form a maximal spanning forest.
//!
//! The merging itself is computed by the orchestrator (exactly the same object
//! a distributed execution would compute); the *costs* are charged per phase
//! following the paper's accounting:
//!
//! * **time**: `2 · (max fragment tree depth) + 4` rounds per phase
//!   (fragment-id exchange, convergecast up, broadcast down, merge
//!   announcements),
//! * **congestion**: 2 messages per edge for the id exchange plus 3 per tree
//!   edge for convergecast/broadcast/merge,
//! * **energy**: in the always-awake variant every node is awake for the whole
//!   phase; in the low-energy variant (Theorem 3.1) nodes follow a periodic
//!   convergecast schedule and are awake `O(1)` rounds per phase.

use congest_graph::{EdgeId, Graph, NodeId};
use congest_sim::Metrics;
use serde::{Deserialize, Serialize};

/// A rooted maximal spanning forest computed by the distributed algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributedForest {
    /// The edges selected into the forest.
    pub tree_edges: Vec<EdgeId>,
    /// `parents[v]` in the rooted forest (`None` for roots).
    pub parents: Vec<Option<NodeId>>,
    /// `roots[v]` is the root of `v`'s tree (the smallest node id of its
    /// component, giving a deterministic orientation).
    pub roots: Vec<NodeId>,
    /// `depths[v]` in the rooted forest.
    pub depths: Vec<u64>,
    /// `component_of[v]` is a dense component label.
    pub component_of: Vec<usize>,
    /// Number of connected components.
    pub component_count: usize,
    /// Number of Boruvka merge phases executed.
    pub phases: u64,
}

impl DistributedForest {
    /// The maximum tree depth over all components.
    pub fn max_depth(&self) -> u64 {
        self.depths.iter().copied().max().unwrap_or(0)
    }
}

/// Computes a maximal spanning forest of `g` distributedly (Boruvka phases)
/// and returns it together with the charged complexity [`Metrics`].
///
/// With `low_energy = false` the accounting follows Theorem 2.2 (every node
/// awake for the whole run); with `low_energy = true` it follows Theorem 3.1
/// (periodic convergecast schedules, `O(1)` awake rounds per node per phase).
pub fn spanning_forest(g: &Graph, low_energy: bool) -> (DistributedForest, Metrics) {
    let n = g.node_count() as usize;
    let m = g.edge_count() as usize;
    let mut metrics = Metrics::zero(n, m);
    if n == 0 {
        let forest = DistributedForest {
            tree_edges: vec![],
            parents: vec![],
            roots: vec![],
            depths: vec![],
            component_of: vec![],
            component_count: 0,
            phases: 0,
        };
        return (forest, metrics);
    }

    // Fragment id per node (initially its own id) and accumulated tree edges.
    let mut fragment: Vec<u32> = (0..n as u32).collect();
    let mut tree_edges: Vec<EdgeId> = Vec::new();
    let mut phases = 0u64;

    loop {
        // Current forest adjacency (for depth computation and convergecast
        // cost accounting).
        let depth_now = forest_max_depth(g, n, &tree_edges);

        // Each fragment picks its smallest-id outgoing edge. Only edges that
        // still cross fragments are probed (an edge whose endpoints merged in
        // an earlier phase is known to be internal and stays silent).
        let mut choice: std::collections::BTreeMap<u32, EdgeId> = std::collections::BTreeMap::new();
        let mut probed_edges: Vec<EdgeId> = Vec::new();
        for e in g.edge_ids() {
            let edge = g.edge(e);
            let (fu, fv) = (fragment[edge.u.index()], fragment[edge.v.index()]);
            if fu == fv {
                continue;
            }
            probed_edges.push(e);
            for f in [fu, fv] {
                let entry = choice.entry(f).or_insert(e);
                if e < *entry {
                    *entry = e;
                }
            }
        }
        if choice.is_empty() {
            break;
        }
        phases += 1;

        // Merge fragments along chosen edges (and add the chosen edges to the
        // forest, skipping duplicates chosen by both endpoints' fragments).
        let mut newly_chosen: Vec<EdgeId> = choice.values().copied().collect();
        newly_chosen.sort();
        newly_chosen.dedup();
        for &e in &newly_chosen {
            let edge = g.edge(e);
            let (fu, fv) = (fragment[edge.u.index()], fragment[edge.v.index()]);
            if fu == fv {
                continue; // already merged transitively within this phase
            }
            tree_edges.push(e);
            // Relabel the smaller fragment-id group to the larger's label (any
            // deterministic rule works; a distributed implementation floods
            // the winning label through the merged fragment).
            let (winner, loser) = if fu < fv { (fu, fv) } else { (fv, fu) };
            for f in fragment.iter_mut() {
                if *f == loser {
                    *f = winner;
                }
            }
        }

        // Charge the phase costs. The convergecast that finds the outgoing
        // edge runs over the pre-merge fragment trees; announcing and
        // installing the merge floods the post-merge fragment trees.
        let depth_after = forest_max_depth(g, n, &tree_edges);
        let phase_rounds = 2 * depth_now + 2 * depth_after + 4;
        metrics.rounds += phase_rounds;
        for &e in &probed_edges {
            // Fragment-id exchange across every still-crossing edge (both
            // directions).
            metrics.edge_congestion[e.index()] += 2;
            metrics.messages += 2;
        }
        for &e in &tree_edges {
            // Convergecast + broadcast + merge announcement on tree edges.
            metrics.edge_congestion[e.index()] += 3;
            metrics.messages += 3;
        }
        for v in 0..n {
            metrics.node_energy[v] += if low_energy { 4 } else { phase_rounds };
        }
    }

    // Root every component at its smallest node id and orient the tree.
    let (parents, roots, depths, component_of, component_count) = orient_forest(g, n, &tree_edges);
    let forest = DistributedForest {
        tree_edges,
        parents,
        roots,
        depths,
        component_of,
        component_count,
        phases,
    };
    (forest, metrics)
}

/// Maximum depth of the current forest when each component is rooted at its
/// smallest node id.
fn forest_max_depth(g: &Graph, n: usize, tree_edges: &[EdgeId]) -> u64 {
    let (_, _, depths, _, _) = orient_forest(g, n, tree_edges);
    depths.iter().copied().max().unwrap_or(0)
}

#[allow(clippy::type_complexity)]
fn orient_forest(
    g: &Graph,
    n: usize,
    tree_edges: &[EdgeId],
) -> (Vec<Option<NodeId>>, Vec<NodeId>, Vec<u64>, Vec<usize>, usize) {
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &e in tree_edges {
        let edge = g.edge(e);
        adj[edge.u.index()].push(edge.v);
        adj[edge.v.index()].push(edge.u);
    }
    let mut parents = vec![None; n];
    let mut roots: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let mut depths = vec![0u64; n];
    let mut component_of = vec![usize::MAX; n];
    let mut count = 0usize;
    for start in 0..n {
        if component_of[start] != usize::MAX {
            continue;
        }
        let root = NodeId(start as u32);
        component_of[start] = count;
        roots[start] = root;
        let mut q = std::collections::VecDeque::from([root]);
        while let Some(v) = q.pop_front() {
            for &u in &adj[v.index()] {
                if component_of[u.index()] == usize::MAX {
                    component_of[u.index()] = count;
                    parents[u.index()] = Some(v);
                    roots[u.index()] = root;
                    depths[u.index()] = depths[v.index()] + 1;
                    q.push_back(u);
                }
            }
        }
        count += 1;
    }
    (parents, roots, depths, component_of, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    fn check_forest(g: &Graph) -> (DistributedForest, Metrics) {
        let (forest, metrics) = spanning_forest(g, false);
        let expected = sequential::connected_components(g);
        assert_eq!(forest.component_count, expected.component_count);
        // The forest has exactly n - #components edges and spans components.
        assert_eq!(forest.tree_edges.len(), g.node_count() as usize - expected.component_count);
        for v in g.nodes() {
            assert!(expected.same_component(v, forest.roots[v.index()]));
            match forest.parents[v.index()] {
                Some(p) => {
                    assert!(g.has_edge(v, p));
                    assert_eq!(forest.depths[v.index()], forest.depths[p.index()] + 1);
                }
                None => {
                    assert_eq!(forest.roots[v.index()], v);
                    assert_eq!(forest.depths[v.index()], 0);
                }
            }
        }
        (forest, metrics)
    }

    #[test]
    fn forest_of_connected_random_graphs() {
        for seed in 0..4 {
            let g = generators::random_connected(50, 80, seed);
            let (forest, _) = check_forest(&g);
            assert_eq!(forest.component_count, 1);
        }
    }

    #[test]
    fn forest_of_disconnected_graph() {
        let g = generators::disjoint_copies(&generators::random_connected(15, 20, 1), 4);
        let (forest, _) = check_forest(&g);
        assert_eq!(forest.component_count, 4);
    }

    #[test]
    fn forest_of_edgeless_graph() {
        let g = Graph::empty(6);
        let (forest, metrics) = spanning_forest(&g, false);
        assert_eq!(forest.component_count, 6);
        assert_eq!(forest.tree_edges.len(), 0);
        assert_eq!(forest.phases, 0);
        assert_eq!(metrics.rounds, 0);
    }

    #[test]
    fn phase_count_is_logarithmic() {
        let g = generators::random_connected(128, 300, 7);
        let (forest, _) = check_forest(&g);
        assert!(
            forest.phases <= 9,
            "Boruvka should finish in <= log2(n) + 2 phases, took {}",
            forest.phases
        );
    }

    #[test]
    fn congestion_is_polylogarithmic() {
        let g = generators::random_connected(200, 600, 5);
        let (forest, metrics) = spanning_forest(&g, false);
        // At most 5 messages per edge per phase.
        assert!(metrics.max_congestion() <= 5 * forest.phases);
        assert!(metrics.max_congestion() <= 5 * 10);
    }

    #[test]
    fn low_energy_variant_caps_node_energy_per_phase() {
        let g = generators::random_connected(100, 200, 3);
        let (forest_hi, hi) = spanning_forest(&g, false);
        let (forest_lo, lo) = spanning_forest(&g, true);
        assert_eq!(forest_hi.tree_edges, forest_lo.tree_edges, "same deterministic forest");
        assert!(lo.max_energy() <= 4 * forest_lo.phases);
        assert!(lo.max_energy() <= hi.max_energy());
    }

    #[test]
    fn deterministic_output() {
        let g = generators::random_connected(60, 90, 11);
        let (a, _) = spanning_forest(&g, false);
        let (b, _) = spanning_forest(&g, false);
        assert_eq!(a, b);
    }

    #[test]
    fn path_forest_depth_equals_length() {
        let g = generators::path(20, 1);
        let (forest, metrics) = check_forest(&g);
        assert_eq!(forest.max_depth(), 19);
        assert!(metrics.rounds >= forest.max_depth());
    }
}
