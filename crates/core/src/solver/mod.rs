//! The unified solver facade: one request/run API over every SSSP/BFS/APSP
//! algorithm in this crate.
//!
//! The paper's pipeline is one family of interchangeable distance solvers —
//! the exact recursion, its thresholded/approximate layers, the sleeping-model
//! variants, the baselines, and the APSP composition. This module exposes them
//! uniformly:
//!
//! * [`Algorithm`] enumerates the solvers; [`registry`] describes each one's
//!   capabilities (weighted? multi-source? sleeping-model? approximate?
//!   all-pairs? thresholded?), so callers can iterate solvers generically.
//! * [`Solver::on`] starts a [`SolverRequest`] builder;
//!   [`SolverRequest::run`] executes it and returns one [`SolverRun`] with
//!   the distances, a unified [`RunReport`] (including energy/awake-round and
//!   recursion/scheduling sections where applicable), and an optional trace.
//!
//! The per-algorithm free functions ([`crate::cssp::cssp`],
//! [`crate::energy::low_energy_bfs`], …) remain available as the stable
//! under-the-hood entry points the facade delegates to; new consumers should
//! prefer the facade.
//!
//! ```
//! use congest_graph::{generators, NodeId};
//! use congest_sssp::{registry, Algorithm, Solver};
//!
//! # fn main() -> Result<(), congest_sssp::AlgoError> {
//! let g = generators::with_random_weights(&generators::grid(4, 4, 1), 8, 7);
//! // One specific solver…
//! let run = Solver::on(&g).algorithm(Algorithm::Cssp).source(NodeId(0)).run()?;
//! assert!(run.report.max_congestion > 0);
//! // …or every exact weighted solver, generically.
//! for info in registry().iter().filter(|i| i.weighted && i.exact() && !i.all_pairs) {
//!     let r = Solver::on(&g).algorithm(info.algorithm).source(NodeId(0)).run()?;
//!     assert_eq!(r.output.distances, run.output.distances, "{}", info.name);
//! }
//! # Ok(())
//! # }
//! ```

mod registry;

pub use registry::{registry, Algorithm, AlgorithmInfo};

use congest_graph::{Distance, Graph, NodeId};
use congest_sim::EdgeUsageTrace;

use crate::approx::approximate_cssp;
use crate::apsp::{apsp, ApspConfig};
use crate::baseline::{distributed_bellman_ford, distributed_dijkstra};
use crate::bfs::thresholded_bfs;
use crate::cssp::cssp;
use crate::energy::{low_energy_bfs, low_energy_cssp};
use crate::oracle::{build_oracle, OracleConfig};
use crate::result::{
    DistanceOutput, RecursionReport, RunReport, ScheduleReport, SleepingReport, SourceOffset,
};
use crate::seq_recursive::seq_recursive;
use crate::thresholded::thresholded_cssp;
use crate::{AlgoConfig, AlgoError};

/// Entry point of the facade: [`Solver::on`] starts a request on a graph.
#[derive(Debug, Clone, Copy)]
pub struct Solver;

impl Solver {
    /// Starts a [`SolverRequest`] on `g` (algorithm [`Algorithm::Cssp`], no
    /// sources, default [`AlgoConfig`]).
    pub fn on(g: &Graph) -> SolverRequest<'_> {
        SolverRequest {
            graph: g,
            algorithm: Algorithm::Cssp,
            sources: Vec::new(),
            threshold: None,
            config: AlgoConfig::default(),
            apsp_config: ApspConfig::default(),
            oracle_config: OracleConfig::default(),
        }
    }
}

/// A buildable request against one graph: pick an [`Algorithm`], sources, an
/// optional threshold, and configuration, then [`SolverRequest::run`] it.
#[derive(Debug, Clone)]
pub struct SolverRequest<'g> {
    graph: &'g Graph,
    algorithm: Algorithm,
    sources: Vec<SourceOffset>,
    threshold: Option<u64>,
    config: AlgoConfig,
    apsp_config: ApspConfig,
    oracle_config: OracleConfig,
}

impl SolverRequest<'_> {
    /// Selects the algorithm to run.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Adds one plain source node.
    pub fn source(mut self, source: NodeId) -> Self {
        self.sources.push(SourceOffset::plain(source));
        self
    }

    /// Replaces the source set with `sources` (all plain, offset 0).
    pub fn sources(mut self, sources: &[NodeId]) -> Self {
        self.sources = sources.iter().map(|&s| SourceOffset::plain(s)).collect();
        self
    }

    /// Replaces the source set with offset sources (the recursion's
    /// "imaginary node" device; only the thresholded CSSP family accepts
    /// non-zero offsets).
    pub fn source_offsets(mut self, sources: &[SourceOffset]) -> Self {
        self.sources = sources.to_vec();
        self
    }

    /// Sets the distance threshold (weighted solvers) or hop limit (BFS
    /// solvers). Only algorithms with [`AlgorithmInfo::thresholded`] accept
    /// one; the default is a bound that never truncates (hop limit `n`,
    /// distance limit [`Graph::distance_upper_bound`]).
    pub fn threshold(mut self, threshold: u64) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// Sets the algorithm configuration.
    pub fn config(mut self, config: AlgoConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the APSP scheduling configuration ([`Algorithm::Apsp`] and the
    /// exact fallback of [`Algorithm::DistanceOracle`]; ignored by every
    /// other algorithm).
    pub fn apsp_config(mut self, apsp_config: ApspConfig) -> Self {
        self.apsp_config = apsp_config;
        self
    }

    /// Sets the oracle construction policy ([`Algorithm::DistanceOracle`]
    /// only; ignored by every other algorithm).
    pub fn oracle_config(mut self, oracle_config: OracleConfig) -> Self {
        self.oracle_config = oracle_config;
        self
    }

    /// Validates the request against the algorithm's capability flags and
    /// runs it.
    ///
    /// # Errors
    ///
    /// [`AlgoError::UnsupportedRequest`] if an option the algorithm does not
    /// support was set (see [`registry`]); otherwise whatever the underlying
    /// algorithm reports (empty/out-of-range sources, zero weights where
    /// unsupported, simulation failures).
    pub fn run(self) -> Result<SolverRun, AlgoError> {
        let info = self.algorithm.info();
        if !info.all_pairs && self.sources.is_empty() {
            return Err(AlgoError::EmptySourceSet);
        }
        if self.sources.len() > 1 && !info.multi_source {
            return Err(AlgoError::UnsupportedRequest {
                algorithm: info.name,
                reason: "more than one source",
            });
        }
        if self.threshold.is_some() && !info.thresholded {
            return Err(AlgoError::UnsupportedRequest {
                algorithm: info.name,
                reason: "a distance threshold",
            });
        }
        let has_offsets = self.sources.iter().any(|s| s.offset > 0);
        if has_offsets && !matches!(self.algorithm, Algorithm::Cssp | Algorithm::ApproximateCssp) {
            return Err(AlgoError::UnsupportedRequest {
                algorithm: info.name,
                reason: "offset sources",
            });
        }

        let g = self.graph;
        let nodes: Vec<NodeId> = self.sources.iter().map(|s| s.node).collect();
        let full_distance = g.distance_upper_bound().max(1);
        match self.algorithm {
            Algorithm::Cssp => {
                if self.threshold.is_none() && !has_offsets {
                    let run = cssp(g, &nodes, &self.config)?;
                    let mut report = RunReport::new(self.algorithm, g, &run.metrics, &run.output);
                    report.recursion = Some(RecursionReport::from(&run.stats));
                    Ok(SolverRun { output: run.output, all_pairs: None, report, trace: None })
                } else {
                    let d = self.threshold.unwrap_or(full_distance);
                    let run = thresholded_cssp(g, &self.sources, d, &self.config)?;
                    let mut report = RunReport::new(self.algorithm, g, &run.metrics, &run.output);
                    report.recursion = Some(RecursionReport::from(&run.stats));
                    Ok(SolverRun { output: run.output, all_pairs: None, report, trace: None })
                }
            }
            Algorithm::ApproximateCssp => {
                let w = self.threshold.unwrap_or(full_distance);
                if w == 0 {
                    return Err(AlgoError::UnsupportedRequest {
                        algorithm: info.name,
                        reason: "a zero threshold",
                    });
                }
                let out = approximate_cssp(g, &self.sources, w, &self.config)?;
                let output = DistanceOutput { distances: out.estimates };
                let mut report = RunReport::new(self.algorithm, g, &out.metrics, &output);
                report.error_bound = Some(out.error_bound);
                Ok(SolverRun { output, all_pairs: None, report, trace: out.trace })
            }
            Algorithm::Bfs => {
                let limit = self.threshold.unwrap_or(g.node_count() as u64);
                let run = thresholded_bfs(g, &nodes, limit, &self.config)?;
                let report = RunReport::new(self.algorithm, g, &run.metrics, &run.output);
                Ok(SolverRun { output: run.output, all_pairs: None, report, trace: run.trace })
            }
            Algorithm::LowEnergyBfs => {
                let limit = self.threshold.unwrap_or(g.node_count() as u64);
                let run = low_energy_bfs(g, &nodes, limit, &self.config)?;
                let mut report = RunReport::new(self.algorithm, g, &run.metrics, &run.output);
                report.sleeping = Some(SleepingReport {
                    slowdown: run.slowdown,
                    megaround: run.megaround,
                    cover_levels: run.cover_levels as u64,
                });
                Ok(SolverRun { output: run.output, all_pairs: None, report, trace: None })
            }
            Algorithm::LowEnergyCssp => {
                let run = low_energy_cssp(g, &nodes, &self.config)?;
                let mut report = RunReport::new(self.algorithm, g, &run.metrics, &run.output);
                report.sleeping = Some(SleepingReport {
                    slowdown: 0,
                    megaround: run.megaround,
                    cover_levels: run.cover_levels as u64,
                });
                report.recursion = Some(RecursionReport::from(&run.stats));
                Ok(SolverRun { output: run.output, all_pairs: None, report, trace: None })
            }
            Algorithm::Dijkstra => {
                let run = distributed_dijkstra(g, &nodes, &self.config)?;
                let report = RunReport::new(self.algorithm, g, &run.metrics, &run.output);
                Ok(SolverRun { output: run.output, all_pairs: None, report, trace: run.trace })
            }
            Algorithm::BellmanFord => {
                let run = distributed_bellman_ford(g, &nodes, &self.config)?;
                let report = RunReport::new(self.algorithm, g, &run.metrics, &run.output);
                Ok(SolverRun { output: run.output, all_pairs: None, report, trace: run.trace })
            }
            Algorithm::SeqRecursive => {
                // The sequential rival settles distances <= the (inclusive)
                // bound; the default bound never truncates.
                let bound = self.threshold.unwrap_or(full_distance);
                let run = seq_recursive(g, &nodes, bound, &self.config)?;
                let mut report = RunReport::new(self.algorithm, g, &run.metrics, &run.output);
                report.recursion = Some(RecursionReport::from(&run.stats));
                Ok(SolverRun { output: run.output, all_pairs: None, report, trace: None })
            }
            Algorithm::Apsp => {
                let row = nodes.first().copied().unwrap_or(NodeId(0));
                if !g.contains_node(row) {
                    return Err(AlgoError::SourceOutOfRange { node: row });
                }
                let run = apsp(g, &self.config, &self.apsp_config)?;
                let output = DistanceOutput { distances: run.distances[row.index()].clone() };
                let schedule = ScheduleReport {
                    makespan: run.schedule.makespan,
                    model_rounds: run.schedule.model_rounds,
                    // The schedule's realized per-round capacity; a schedule
                    // with no messages still ran under a budget >= 1.
                    edge_budget: (run.schedule.model_rounds / run.schedule.makespan.max(1)).max(1),
                    sequential_rounds: run.sequential_rounds,
                    max_instance_congestion: run.max_instance_congestion,
                };
                // The composition measures schedule-level quantities only:
                // per-node energy and sleeping-model loss are not tracked
                // across the superimposed instances, so those fields are 0
                // (unmeasured, not "measured zero") — see `RunReport` docs.
                let report = RunReport {
                    algorithm: self.algorithm,
                    n: g.node_count(),
                    m: g.edge_count(),
                    rounds: run.schedule.model_rounds,
                    messages: run.total_messages,
                    messages_lost: 0,
                    fault_drops: 0,
                    fault_delays: 0,
                    crashes: 0,
                    restarts: 0,
                    max_congestion: run.schedule.congestion,
                    max_energy: 0,
                    mean_energy: 0.0,
                    reached: output.reached_count() as u64,
                    error_bound: None,
                    sleeping: None,
                    recursion: None,
                    schedule: Some(schedule),
                    oracle: None,
                };
                Ok(SolverRun { output, all_pairs: Some(run.distances), report, trace: None })
            }
            Algorithm::DistanceOracle => {
                let source = nodes.first().copied().unwrap_or(NodeId(0));
                if !g.contains_node(source) {
                    return Err(AlgoError::SourceOutOfRange { node: source });
                }
                let build = build_oracle(g, &self.config, &self.oracle_config, &self.apsp_config)?;
                // The reported row: one query per node from `source`. The
                // oracle itself stays queryable for every other pair.
                let distances: Vec<Distance> =
                    g.nodes().map(|v| build.oracle.query(source, v)).collect();
                let output = DistanceOutput { distances };
                // Multiplicative stretch `est <= s·t` restated additively for
                // the unified report: `t >= est/s`, so the additive error of
                // any estimate is at most `est·(s-1)/s`, maximized over the
                // reported row.
                let s = build.report.stretch_bound.max(1) as u128;
                let error_bound = output
                    .distances
                    .iter()
                    .filter_map(|d| d.finite())
                    .map(|est| ((est as u128 * (s - 1)).div_ceil(s)) as u64)
                    .max()
                    .unwrap_or(0);
                // Like APSP, preprocessing composes many runs: per-node
                // energy and sleeping-model loss are not tracked across them
                // and report 0 (unmeasured).
                let report = RunReport {
                    algorithm: self.algorithm,
                    n: g.node_count(),
                    m: g.edge_count(),
                    rounds: build.rounds,
                    messages: build.messages,
                    messages_lost: 0,
                    fault_drops: 0,
                    fault_delays: 0,
                    crashes: 0,
                    restarts: 0,
                    max_congestion: build.max_congestion,
                    max_energy: 0,
                    mean_energy: 0.0,
                    reached: output.reached_count() as u64,
                    error_bound: Some(error_bound),
                    sleeping: None,
                    recursion: None,
                    schedule: None,
                    oracle: Some(build.report),
                };
                Ok(SolverRun { output, all_pairs: None, report, trace: None })
            }
        }
    }
}

/// One completed solver run, uniform over every [`Algorithm`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolverRun {
    /// Distances from the requested source set (for [`Algorithm::Apsp`], the
    /// row of the first requested source, default node 0).
    pub output: DistanceOutput,
    /// The full distance matrix (all-pairs algorithms only).
    pub all_pairs: Option<Vec<Vec<Distance>>>,
    /// The unified complexity report.
    pub report: RunReport,
    /// Per-round edge usage trace, where the algorithm records one and
    /// [`AlgoConfig::record_traces`] was enabled.
    pub trace: Option<EdgeUsageTrace>,
}

impl SolverRun {
    /// The distance of node `v`.
    pub fn distance(&self, v: NodeId) -> Distance {
        self.output.distance(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    fn weighted(n: u32, seed: u64) -> Graph {
        generators::with_random_weights(
            &generators::random_connected(n, 2 * n as u64, seed),
            9,
            seed,
        )
    }

    #[test]
    fn facade_matches_the_free_functions() {
        let g = weighted(24, 3);
        let cfg = AlgoConfig::default();
        let via_facade = Solver::on(&g)
            .algorithm(Algorithm::Cssp)
            .source(NodeId(0))
            .config(cfg.clone())
            .run()
            .unwrap();
        let direct = cssp(&g, &[NodeId(0)], &cfg).unwrap();
        assert_eq!(via_facade.output, direct.output);
        assert_eq!(via_facade.report.rounds, direct.metrics.rounds);
        assert_eq!(via_facade.report.messages, direct.metrics.messages);
        assert_eq!(via_facade.report.max_congestion, direct.metrics.max_congestion());
        let rec = via_facade.report.recursion.expect("recursion section present");
        assert_eq!(rec.subproblems, direct.stats.subproblems);
        assert_eq!(rec.max_participation, direct.stats.max_participation());
    }

    #[test]
    fn every_exact_weighted_solver_agrees_with_dijkstra() {
        let g = weighted(18, 11);
        let truth = sequential::dijkstra(&g, &[NodeId(2)]);
        for info in registry().iter().filter(|i| i.weighted && i.exact()) {
            let run = Solver::on(&g).algorithm(info.algorithm).source(NodeId(2)).run().unwrap();
            assert_eq!(run.output.distances, truth.distances, "{}", info.name);
            assert_eq!(run.report.algorithm, info.algorithm);
            assert_eq!(run.report.n, g.node_count());
            assert_eq!(run.report.reached, g.node_count() as u64);
        }
    }

    #[test]
    fn bfs_solvers_compute_hop_distances() {
        let g = weighted(20, 5);
        let truth = sequential::bfs(&g, &[NodeId(1)]);
        for info in registry().iter().filter(|i| !i.weighted) {
            let run = Solver::on(&g).algorithm(info.algorithm).source(NodeId(1)).run().unwrap();
            assert_eq!(run.output.distances, truth.distances, "{}", info.name);
            assert_eq!(run.report.sleeping.is_some(), info.sleeping_model, "{}", info.name);
        }
    }

    #[test]
    fn threshold_dispatches_to_the_thresholded_recursion() {
        let g = generators::path(16, 4); // distances 0, 4, 8, ..., 60
        let run = Solver::on(&g)
            .algorithm(Algorithm::Cssp)
            .source(NodeId(0))
            .threshold(20)
            .run()
            .unwrap();
        // Threshold rounds up to a power of two internally (32 here), exactly
        // like calling thresholded_cssp directly.
        let direct =
            thresholded_cssp(&g, &[SourceOffset::plain(NodeId(0))], 20, &AlgoConfig::default())
                .unwrap();
        assert_eq!(run.output, direct.output);
        assert!(run.report.reached < g.node_count() as u64, "threshold truncates");
    }

    #[test]
    fn offset_sources_reach_the_recursion() {
        let g = generators::path(10, 2);
        let sources = [SourceOffset { node: NodeId(0), offset: 3 }];
        let run = Solver::on(&g).algorithm(Algorithm::Cssp).source_offsets(&sources).run().unwrap();
        let direct =
            thresholded_cssp(&g, &sources, g.distance_upper_bound().max(1), &AlgoConfig::default())
                .unwrap();
        assert_eq!(run.output, direct.output);
        assert_eq!(run.distance(NodeId(0)).finite(), Some(3));
    }

    #[test]
    fn approximate_solver_reports_its_error_bound() {
        let g = weighted(20, 7);
        let w = g.distance_upper_bound() / 4 + 1;
        let run = Solver::on(&g)
            .algorithm(Algorithm::ApproximateCssp)
            .source(NodeId(0))
            .threshold(w)
            .run()
            .unwrap();
        let bound = run.report.error_bound.expect("error bound present");
        let truth = sequential::dijkstra(&g, &[NodeId(0)]);
        for v in g.nodes() {
            if let (Some(est), Some(t)) = (run.distance(v).finite(), truth.distance(v).finite()) {
                assert!(t <= est && est <= t + bound, "node {v}: {est} vs {t} (+{bound})");
            }
        }
    }

    #[test]
    fn apsp_returns_the_full_matrix_and_schedule_section() {
        let g = weighted(12, 9);
        let run = Solver::on(&g)
            .algorithm(Algorithm::Apsp)
            .source(NodeId(3))
            .apsp_config(ApspConfig { seed: 4, ..ApspConfig::default() })
            .run()
            .unwrap();
        let truth = sequential::all_pairs(&g);
        let matrix = run.all_pairs.as_ref().expect("all-pairs matrix present");
        assert_eq!(matrix, &truth);
        assert_eq!(run.output.distances, truth[3]);
        let sched = run.report.schedule.expect("schedule section present");
        assert!(sched.makespan > 0 && sched.edge_budget > 0);
        assert!(sched.speedup() > 1.0);
        assert_eq!(run.report.rounds, sched.model_rounds);
    }

    #[test]
    fn distance_oracle_reports_construction_and_respects_stretch() {
        let g = weighted(20, 13);
        let truth = sequential::dijkstra(&g, &[NodeId(2)]);
        // n = 20 is at or below the default fallback threshold: the oracle is
        // an exact matrix with stretch 1 and additive error 0.
        let run =
            Solver::on(&g).algorithm(Algorithm::DistanceOracle).source(NodeId(2)).run().unwrap();
        let section = run.report.oracle.as_ref().expect("oracle section present");
        assert!(section.fallback);
        assert_eq!(section.stretch_bound, 1);
        assert_eq!(run.report.error_bound, Some(0));
        assert_eq!(run.output.distances, truth.distances);
        assert!(run.all_pairs.is_none(), "queryable without materializing the matrix");

        // Forcing the cover path keeps every estimate within the reported
        // additive bound derived from the proven stretch.
        let run = Solver::on(&g)
            .algorithm(Algorithm::DistanceOracle)
            .source(NodeId(2))
            .oracle_config(OracleConfig::default().with_fallback_threshold(0))
            .run()
            .unwrap();
        let section = run.report.oracle.as_ref().expect("oracle section present");
        assert!(!section.fallback && section.levels > 0);
        assert!(section.bytes > 0 && section.exact_matrix_bytes > 0);
        let bound = run.report.error_bound.expect("error bound present");
        for v in g.nodes() {
            let est = run.distance(v).expect_finite();
            let t = truth.distance(v).expect_finite();
            assert!(t <= est && est <= t + bound, "node {v}: {est} vs {t} (+{bound})");
        }
    }

    #[test]
    fn unsupported_requests_are_rejected_with_the_algorithm_name() {
        let g = generators::path(6, 1);
        let cases = [
            Solver::on(&g).algorithm(Algorithm::BellmanFord).source(NodeId(0)).threshold(4).run(),
            Solver::on(&g).algorithm(Algorithm::Apsp).sources(&[NodeId(0), NodeId(1)]).run(),
            Solver::on(&g)
                .algorithm(Algorithm::Dijkstra)
                .source_offsets(&[SourceOffset { node: NodeId(0), offset: 2 }])
                .run(),
            Solver::on(&g)
                .algorithm(Algorithm::ApproximateCssp)
                .source(NodeId(0))
                .threshold(0)
                .run(),
        ];
        for case in cases {
            assert!(matches!(case, Err(AlgoError::UnsupportedRequest { .. })), "{case:?}");
        }
        assert!(matches!(
            Solver::on(&g).algorithm(Algorithm::Cssp).run(),
            Err(AlgoError::EmptySourceSet)
        ));
        assert!(matches!(
            Solver::on(&g).algorithm(Algorithm::Apsp).source(NodeId(9)).run(),
            Err(AlgoError::SourceOutOfRange { .. })
        ));
    }

    #[test]
    fn every_algorithm_is_reachable_via_the_facade() {
        let g = weighted(10, 1);
        for info in registry() {
            let run = Solver::on(&g).algorithm(info.algorithm).source(NodeId(0)).run().unwrap();
            assert_eq!(run.report.algorithm, info.algorithm, "{}", info.name);
            assert!(run.report.rounds > 0, "{}", info.name);
            assert_eq!(run.all_pairs.is_some(), info.all_pairs, "{}", info.name);
        }
    }
}
