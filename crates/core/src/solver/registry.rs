//! The algorithm registry: every distance solver in this crate, enumerable
//! with its capability flags so that callers (experiment harnesses, sweeps,
//! differential tests) can iterate solvers generically instead of
//! hand-wiring each entry point.

use serde::{Deserialize, Serialize};

/// Every distance algorithm reachable through the [`crate::solver::Solver`]
/// facade. One SSSP/BFS/APSP family per variant; the thresholded and
/// offset-source recursion layers are reached by setting
/// [`crate::solver::SolverRequest::threshold`] /
/// [`crate::solver::SolverRequest::source_offsets`] on the variant that
/// supports them (see [`AlgorithmInfo::thresholded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// The paper's low-congestion recursive exact CSSP/SSSP (Theorems 2.6,
    /// 2.7); with a threshold, the `D`-thresholded recursion of Section 2.3.
    Cssp,
    /// The approximate cutter (Lemma 2.1): additive-error estimates within a
    /// distance threshold `W`.
    ApproximateCssp,
    /// Always-awake multi-source BFS (hop distances), optionally thresholded.
    Bfs,
    /// The sleeping-model low-energy BFS (Theorems 3.8, 3.13, 3.14).
    LowEnergyBfs,
    /// The sleeping-model low-energy weighted exact CSSP (Theorem 3.15).
    LowEnergyCssp,
    /// The distributed-Dijkstra baseline (`O(n · D)` rounds).
    Dijkstra,
    /// The distributed Bellman–Ford baseline (`Θ(n)` congestion worst case).
    BellmanFord,
    /// The *sequential* BMSSP-style recursive bounded-multi-source solver
    /// (see [`crate::seq_recursive`]): an exact centralized rival baseline
    /// charged with sequential-work metrics instead of CONGEST rounds.
    SeqRecursive,
    /// APSP via `n` SSSP instances under random-delay scheduling
    /// (Section 1.1).
    Apsp,
    /// The sparse-cover distance oracle (see `congest_oracle`): sublinear
    /// space, every pair queryable with a proven stretch bound, exact APSP
    /// below the fallback threshold. Answers all-pairs *queries* without
    /// materializing the all-pairs *matrix*.
    DistanceOracle,
}

/// Capability flags and identity of one registry entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlgorithmInfo {
    /// The algorithm this entry describes.
    pub algorithm: Algorithm,
    /// Stable kebab-case identifier (CLI argument, JSON key).
    pub name: &'static str,
    /// Human-oriented label used in experiment tables.
    pub label: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Solves weighted graphs (false: computes hop distances).
    pub weighted: bool,
    /// Accepts more than one source.
    pub multi_source: bool,
    /// Runs in the sleeping model (reports meaningful low energy).
    pub sleeping_model: bool,
    /// Outputs estimates with a bounded additive error instead of exact
    /// distances.
    pub approximate: bool,
    /// Computes all-pairs distances (sources select the reported row only).
    pub all_pairs: bool,
    /// Accepts a distance/hop threshold and offset sources.
    pub thresholded: bool,
    /// Serves point-to-point queries for *every* pair after one run (the
    /// all-pairs matrix or a distance oracle). `all_pairs` additionally
    /// means the full matrix is materialized; the distance oracle is
    /// queryable without being all-pairs-materializing.
    pub queryable: bool,
}

impl AlgorithmInfo {
    /// Whether the finite output distances are exact.
    pub fn exact(&self) -> bool {
        !self.approximate
    }
}

/// The registry: one entry per [`Algorithm`] variant, in display order.
static REGISTRY: [AlgorithmInfo; 10] = [
    AlgorithmInfo {
        algorithm: Algorithm::Cssp,
        name: "recursive-cssp",
        label: "recursive-cssp (paper)",
        summary: "low-congestion recursive exact CSSP/SSSP (Sec. 2)",
        weighted: true,
        multi_source: true,
        sleeping_model: false,
        approximate: false,
        all_pairs: false,
        thresholded: true,
        queryable: false,
    },
    AlgorithmInfo {
        algorithm: Algorithm::ApproximateCssp,
        name: "approx-cutter",
        label: "approx-cutter (paper)",
        summary: "additive-error cutter within threshold W (Lemma 2.1)",
        weighted: true,
        multi_source: true,
        sleeping_model: false,
        approximate: true,
        all_pairs: false,
        thresholded: true,
        queryable: false,
    },
    AlgorithmInfo {
        algorithm: Algorithm::Bfs,
        name: "bfs",
        label: "always-awake-bfs",
        summary: "always-awake multi-source BFS (hop distances)",
        weighted: false,
        multi_source: true,
        sleeping_model: false,
        approximate: false,
        all_pairs: false,
        thresholded: true,
        queryable: false,
    },
    AlgorithmInfo {
        algorithm: Algorithm::LowEnergyBfs,
        name: "low-energy-bfs",
        label: "low-energy-bfs (paper)",
        summary: "sleeping-model BFS over layered covers (Thm. 3.13)",
        weighted: false,
        multi_source: true,
        sleeping_model: true,
        approximate: false,
        all_pairs: false,
        thresholded: true,
        queryable: false,
    },
    AlgorithmInfo {
        algorithm: Algorithm::LowEnergyCssp,
        name: "low-energy-cssp",
        label: "low-energy-cssp (paper)",
        summary: "sleeping-model exact weighted CSSP (Thm. 3.15)",
        weighted: true,
        multi_source: true,
        sleeping_model: true,
        approximate: false,
        all_pairs: false,
        thresholded: false,
        queryable: false,
    },
    AlgorithmInfo {
        algorithm: Algorithm::Dijkstra,
        name: "distributed-dijkstra",
        label: "distributed-dijkstra",
        summary: "global-minimum Dijkstra baseline (O(n·D) rounds)",
        weighted: true,
        multi_source: true,
        sleeping_model: false,
        approximate: false,
        all_pairs: false,
        thresholded: false,
        queryable: false,
    },
    AlgorithmInfo {
        algorithm: Algorithm::BellmanFord,
        name: "bellman-ford",
        label: "bellman-ford",
        summary: "distributed Bellman-Ford baseline (Θ(n) congestion)",
        weighted: true,
        multi_source: true,
        sleeping_model: false,
        approximate: false,
        all_pairs: false,
        thresholded: false,
        queryable: false,
    },
    AlgorithmInfo {
        algorithm: Algorithm::SeqRecursive,
        name: "seq-bmssp",
        label: "seq-bmssp (rival)",
        summary: "sequential BMSSP-style recursive bounded multi-source SSSP",
        weighted: true,
        multi_source: true,
        sleeping_model: false,
        approximate: false,
        all_pairs: false,
        thresholded: true,
        queryable: false,
    },
    AlgorithmInfo {
        algorithm: Algorithm::Apsp,
        name: "apsp-scheduling",
        label: "apsp-scheduling (paper)",
        summary: "APSP: n SSSP instances under random-delay scheduling",
        weighted: true,
        multi_source: false,
        sleeping_model: false,
        approximate: false,
        all_pairs: true,
        thresholded: false,
        queryable: true,
    },
    AlgorithmInfo {
        algorithm: Algorithm::DistanceOracle,
        name: "distance-oracle",
        label: "distance-oracle (covers)",
        summary: "sparse-cover distance oracle: sublinear space, bounded stretch",
        weighted: true,
        multi_source: false,
        sleeping_model: false,
        approximate: true,
        all_pairs: false,
        thresholded: false,
        queryable: true,
    },
];

/// Enumerates every algorithm with its capability flags, in display order.
pub fn registry() -> &'static [AlgorithmInfo] {
    &REGISTRY
}

impl Algorithm {
    /// Every variant, in registry (display) order.
    pub const ALL: [Algorithm; 10] = [
        Algorithm::Cssp,
        Algorithm::ApproximateCssp,
        Algorithm::Bfs,
        Algorithm::LowEnergyBfs,
        Algorithm::LowEnergyCssp,
        Algorithm::Dijkstra,
        Algorithm::BellmanFord,
        Algorithm::SeqRecursive,
        Algorithm::Apsp,
        Algorithm::DistanceOracle,
    ];

    /// This algorithm's registry entry.
    pub fn info(self) -> &'static AlgorithmInfo {
        REGISTRY.iter().find(|i| i.algorithm == self).expect("every variant is registered")
    }

    /// Stable kebab-case identifier.
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// Human-oriented label used in experiment tables.
    pub fn label(self) -> &'static str {
        self.info().label
    }

    /// Looks an algorithm up by its registry [`AlgorithmInfo::name`].
    pub fn from_name(name: &str) -> Option<Algorithm> {
        REGISTRY.iter().find(|i| i.name == name).map(|i| i.algorithm)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_is_registered_exactly_once() {
        assert_eq!(registry().len(), Algorithm::ALL.len());
        for (entry, &algo) in registry().iter().zip(Algorithm::ALL.iter()) {
            assert_eq!(entry.algorithm, algo, "registry order matches Algorithm::ALL");
        }
        let mut names: Vec<&str> = registry().iter().map(|i| i.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry().len(), "names are unique");
    }

    #[test]
    fn names_round_trip() {
        for &algo in &Algorithm::ALL {
            assert_eq!(Algorithm::from_name(algo.name()), Some(algo));
            assert_eq!(algo.to_string(), algo.name());
        }
        assert_eq!(Algorithm::from_name("no-such-solver"), None);
    }

    #[test]
    fn capability_flags_are_consistent() {
        for info in registry() {
            assert_eq!(info.exact(), !info.approximate);
            // All-pairs implies single-source selection of the reported row.
            if info.all_pairs {
                assert!(!info.multi_source);
            }
            // Sleeping-model and approximate never coincide in this suite.
            assert!(!(info.sleeping_model && info.approximate));
            // A materialized all-pairs matrix always serves queries.
            if info.all_pairs {
                assert!(info.queryable);
            }
        }
        assert!(Algorithm::Apsp.info().all_pairs);
        // The distance oracle is queryable without materializing the matrix.
        let oracle = Algorithm::DistanceOracle.info();
        assert!(oracle.queryable && oracle.approximate && !oracle.all_pairs);
        assert!(!Algorithm::Bfs.info().weighted);
        assert!(Algorithm::LowEnergyCssp.info().sleeping_model);
        assert!(Algorithm::ApproximateCssp.info().approximate);
        // E1-E3's comparison set: exactly the always-awake exact weighted
        // single-source-set algorithms.
        let comparison: Vec<&str> = registry()
            .iter()
            .filter(|i| i.weighted && i.exact() && !i.sleeping_model && !i.all_pairs)
            .map(|i| i.name)
            .collect();
        assert_eq!(
            comparison,
            ["recursive-cssp", "distributed-dijkstra", "bellman-ford", "seq-bmssp"]
        );
        // The sequential rival is exact, thresholded, and multi-source.
        let rival = Algorithm::SeqRecursive.info();
        assert!(rival.weighted && rival.exact() && rival.thresholded && rival.multi_source);
        assert!(!rival.sleeping_model && !rival.all_pairs && !rival.queryable);
    }
}
