//! All-Pairs Shortest Paths in `Õ(n)` rounds (Section 1.1 of the paper):
//! run one low-congestion SSSP instance per source, then schedule all `n`
//! instances concurrently with random start delays. Because every instance
//! sends only `poly(log n)` messages over each edge, the random-delay
//! schedule completes in `O(congestion + dilation · log n) = Õ(n)` rounds —
//! as opposed to the trivial sequential composition, which costs the sum of
//! the instances' running times (`Θ(n²)`-ish).
//!
//! ## Simulation methodology
//!
//! Each SSSP instance is executed on its own (which preserves its
//! correctness) and produces per-edge message counts and a round count. The
//! instances' edge usage is then spread evenly over their duration to form
//! per-round usage traces, and the traces are superimposed by the
//! random-delay queueing scheduler of [`congest_sim::scheduler`]. The
//! reported makespan is the realized completion time under a per-round
//! per-edge message budget. See DESIGN.md §6.

use congest_graph::{Distance, EdgeId, Graph};
use congest_sim::scheduler::{random_delay_schedule, ScheduleConfig, ScheduleOutcome};
use congest_sim::EdgeUsageTrace;
use serde::{Deserialize, Serialize};

use crate::cssp::sssp;
use crate::{AlgoConfig, AlgoError};

/// The result of an APSP computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApspRun {
    /// `distances[s][v]` is the exact distance from source `s` to node `v`.
    pub distances: Vec<Vec<Distance>>,
    /// Rounds of each individual SSSP instance.
    pub instance_rounds: Vec<u64>,
    /// Maximum per-edge congestion of any single instance.
    pub max_instance_congestion: u64,
    /// The scheduling outcome when all instances run concurrently with random
    /// delays (the paper's APSP): `schedule.makespan` is the APSP time.
    pub schedule: ScheduleOutcome,
    /// The cost of the trivial sequential composition (sum of instance
    /// rounds), for comparison.
    pub sequential_rounds: u64,
    /// Total messages over all instances.
    pub total_messages: u64,
}

/// Configuration of the APSP scheduling experiment.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApspConfig {
    /// Per-round per-edge message budget of the concurrent schedule (the
    /// `O(log n)` factor of the scheduling theorem).
    pub edge_budget_per_round: u32,
    /// Random start delays are drawn from `0..max_delay`; `None` uses the
    /// scheduling-theorem default of `n` rounds.
    pub max_delay: Option<u64>,
    /// Seed for the random delays (the only randomness in the whole APSP
    /// algorithm, as the paper emphasizes).
    pub seed: u64,
}

/// Computes APSP: one SSSP per source plus random-delay scheduling.
///
/// With `apsp_config.edge_budget_per_round == 0` the budget defaults to
/// `⌈log₂ n⌉ + 1`.
///
/// # Errors
///
/// Propagates any SSSP failure.
pub fn apsp(
    g: &Graph,
    config: &AlgoConfig,
    apsp_config: &ApspConfig,
) -> Result<ApspRun, AlgoError> {
    let n = g.node_count();
    let mut distances = Vec::with_capacity(n as usize);
    let mut traces = Vec::with_capacity(n as usize);
    let mut instance_rounds = Vec::with_capacity(n as usize);
    let mut max_instance_congestion = 0u64;
    let mut total_messages = 0u64;

    for s in g.nodes() {
        let run = sssp(g, s, config)?;
        instance_rounds.push(run.metrics.rounds);
        max_instance_congestion = max_instance_congestion.max(run.metrics.max_congestion());
        total_messages += run.metrics.messages;
        traces.push(spread_trace(&run.metrics.edge_congestion, run.metrics.rounds));
        distances.push(run.output.distances);
    }

    let budget = if apsp_config.edge_budget_per_round == 0 {
        ((n.max(2) as f64).log2().ceil() as u32) + 1
    } else {
        apsp_config.edge_budget_per_round
    };
    let max_delay = apsp_config.max_delay.unwrap_or(n as u64).max(1);
    let schedule = random_delay_schedule(
        &traces,
        &ScheduleConfig { edge_capacity_per_round: budget, max_delay, seed: apsp_config.seed },
    );
    let sequential_rounds = instance_rounds.iter().sum();

    Ok(ApspRun {
        distances,
        instance_rounds,
        max_instance_congestion,
        schedule,
        sequential_rounds,
        total_messages,
    })
}

/// Spreads each edge's total message count evenly over the instance's
/// duration, producing a per-round usage trace consistent with the measured
/// congestion and dilation.
fn spread_trace(edge_congestion: &[u64], rounds: u64) -> EdgeUsageTrace {
    let rounds = rounds.max(1) as usize;
    let mut per_round: Vec<Vec<(EdgeId, u32)>> = vec![Vec::new(); rounds];
    for (e, &total) in edge_congestion.iter().enumerate() {
        if total == 0 {
            continue;
        }
        for k in 0..total {
            let r = ((k as u128 * rounds as u128) / total as u128) as usize;
            per_round[r.min(rounds - 1)].push((EdgeId(e as u32), 1));
        }
    }
    // Coalesce duplicates within a round.
    for round in &mut per_round {
        round.sort_by_key(|&(e, _)| e);
        let mut merged: Vec<(EdgeId, u32)> = Vec::with_capacity(round.len());
        for &(e, c) in round.iter() {
            if let Some(last) = merged.last_mut() {
                if last.0 == e {
                    last.1 += c;
                    continue;
                }
            }
            merged.push((e, c));
        }
        *round = merged;
    }
    EdgeUsageTrace { rounds: per_round }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    #[test]
    fn apsp_distances_match_sequential_all_pairs() {
        let g = generators::with_random_weights(&generators::random_connected(16, 24, 2), 6, 2);
        let run = apsp(&g, &AlgoConfig::default(), &ApspConfig::default()).unwrap();
        let truth = sequential::all_pairs(&g);
        for s in g.nodes() {
            for v in g.nodes() {
                assert_eq!(run.distances[s.index()][v.index()], truth[s.index()][v.index()]);
            }
        }
    }

    #[test]
    fn concurrent_schedule_beats_sequential_composition() {
        let g = generators::random_connected(24, 60, 5);
        let run = apsp(&g, &AlgoConfig::default(), &ApspConfig::default()).unwrap();
        assert!(
            run.schedule.makespan < run.sequential_rounds,
            "concurrent makespan {} should beat sequential {}",
            run.schedule.makespan,
            run.sequential_rounds
        );
    }

    #[test]
    fn per_instance_congestion_is_small() {
        let g = generators::random_connected(24, 48, 1);
        let run = apsp(&g, &AlgoConfig::default(), &ApspConfig::default()).unwrap();
        // Every instance has polylog congestion; far below n.
        assert!(run.max_instance_congestion < g.node_count() as u64 * 4);
        assert!(run.total_messages > 0);
        assert_eq!(run.instance_rounds.len(), g.node_count() as usize);
    }

    #[test]
    fn schedule_is_reproducible_for_a_seed() {
        let g = generators::random_connected(12, 20, 9);
        let cfg = ApspConfig { seed: 7, ..ApspConfig::default() };
        let a = apsp(&g, &AlgoConfig::default(), &cfg).unwrap();
        let b = apsp(&g, &AlgoConfig::default(), &cfg).unwrap();
        assert_eq!(a.schedule.makespan, b.schedule.makespan);
        assert_eq!(a.schedule.delays, b.schedule.delays);
    }

    #[test]
    fn spread_trace_preserves_totals() {
        let trace = spread_trace(&[3, 0, 7], 5);
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.total_messages(), 10);
        assert_eq!(trace.max_edge_total(), 7);
    }
}
