//! All-Pairs Shortest Paths in `Õ(n)` rounds (Section 1.1 of the paper):
//! run one low-congestion SSSP instance per source, then schedule all `n`
//! instances concurrently with random start delays. Because every instance
//! sends only `poly(log n)` messages over each edge, the random-delay
//! schedule completes in `O(congestion + dilation · log n) = Õ(n)` rounds —
//! as opposed to the trivial sequential composition, which costs the sum of
//! the instances' running times (`Θ(n²)`-ish).
//!
//! ## Simulation methodology
//!
//! Each SSSP instance is executed on its own (which preserves its
//! correctness) and produces per-edge message counts and a round count. The
//! instance's edge usage is spread evenly over its duration to form a
//! per-round usage trace, and the traces are superimposed by the
//! random-delay queueing scheduler of [`congest_sim::scheduler`]. The
//! reported makespan is the realized completion time under a per-round
//! per-edge message budget. See DESIGN.md §6.
//!
//! ## Execution pipeline and cost
//!
//! [`apsp`] runs the `n` independent SSSP instances **in parallel across OS
//! threads** (`std::thread::scope`; instances are handed out one source at a
//! time from a shared atomic counter, so threads stay load-balanced), and
//! **streams** each finished instance's trace into the event-driven
//! [`ScheduleBuilder`] instead of materializing all `n` traces: results flow
//! back over a channel, a small reorder buffer replays them **in source-index
//! order**, each trace is folded into the scheduler's arrival buckets, and
//! then dropped. Distances, instance statistics, the delay stream, and hence
//! the entire [`ApspRun`] are therefore **bit-identical regardless of thread
//! count** — parallelism changes wall-clock time only. Peak memory beyond the
//! `O(n²)` distance matrix is `O(m + makespan)` (arrival buckets + dense
//! per-edge scheduler state) instead of the former `O(n · m)` trace pile.
//!
//! The pre-rework driver — sequential instance loop, all traces
//! materialized, round-by-round reference scheduler — is retained as
//! [`apsp_reference`], the oracle for differential tests and the baseline of
//! the APSP-throughput experiment (`EXPERIMENTS.md`, E12).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc;

use congest_graph::{Distance, EdgeId, Graph, NodeId};
use congest_sim::scheduler::{draw_delay, schedule_reference, ScheduleBuilder, ScheduleOutcome};
use congest_sim::EdgeUsageTrace;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::cssp::sssp;
use crate::{AlgoConfig, AlgoError};

/// The result of an APSP computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApspRun {
    /// `distances[s][v]` is the exact distance from source `s` to node `v`.
    pub distances: Vec<Vec<Distance>>,
    /// Rounds of each individual SSSP instance.
    pub instance_rounds: Vec<u64>,
    /// Maximum per-edge congestion of any single instance.
    pub max_instance_congestion: u64,
    /// The scheduling outcome when all instances run concurrently with random
    /// delays (the paper's APSP): `schedule.makespan` is the APSP time.
    pub schedule: ScheduleOutcome,
    /// The cost of the trivial sequential composition (sum of instance
    /// rounds), for comparison.
    pub sequential_rounds: u64,
    /// Total messages over all instances.
    pub total_messages: u64,
}

/// Configuration of the APSP scheduling experiment.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApspConfig {
    /// Per-round per-edge message budget of the concurrent schedule (the
    /// `O(log n)` factor of the scheduling theorem).
    pub edge_budget_per_round: u32,
    /// Random start delays are drawn from `0..max_delay`; `None` uses the
    /// scheduling-theorem default of `n` rounds.
    pub max_delay: Option<u64>,
    /// Seed for the random delays (the only randomness in the whole APSP
    /// algorithm, as the paper emphasizes).
    pub seed: u64,
    /// Number of OS threads to run SSSP instances on: `0` uses the host's
    /// available parallelism, `1` forces the in-thread sequential path. The
    /// result is bit-identical for every value — threads only change
    /// wall-clock time.
    pub threads: usize,
}

/// Everything one SSSP instance contributes to the APSP composition.
struct InstanceRun {
    distances: Vec<Distance>,
    trace: EdgeUsageTrace,
    rounds: u64,
    max_congestion: u64,
    messages: u64,
}

/// Runs the SSSP instance for one source and packages its contribution.
fn run_instance(g: &Graph, source: NodeId, config: &AlgoConfig) -> Result<InstanceRun, AlgoError> {
    let run = sssp(g, source, config)?;
    Ok(InstanceRun {
        trace: spread_trace(&run.metrics.edge_congestion, run.metrics.rounds),
        rounds: run.metrics.rounds,
        max_congestion: run.metrics.max_congestion(),
        messages: run.metrics.messages,
        distances: run.output.distances,
    })
}

/// Accumulates instance results *in source-index order*: draws the
/// instance's delay (one PRNG draw per instance, in order, so the stream is
/// identical to the sequential driver's), streams the trace into the
/// scheduler's arrival buckets, and records the per-instance statistics. The
/// trace is dropped right after the fold.
struct Assembly {
    rng: ChaCha8Rng,
    max_delay: u64,
    builder: ScheduleBuilder,
    distances: Vec<Vec<Distance>>,
    instance_rounds: Vec<u64>,
    max_instance_congestion: u64,
    total_messages: u64,
}

impl Assembly {
    fn new(n: usize, budget: u32, max_delay: u64, seed: u64) -> Assembly {
        Assembly {
            rng: ChaCha8Rng::seed_from_u64(seed),
            max_delay,
            builder: ScheduleBuilder::new(budget),
            distances: vec![Vec::new(); n],
            instance_rounds: vec![0; n],
            max_instance_congestion: 0,
            total_messages: 0,
        }
    }

    fn consume(&mut self, index: usize, run: InstanceRun) {
        let delay = draw_delay(&mut self.rng, self.max_delay);
        self.builder.push_trace(&run.trace, delay);
        self.distances[index] = run.distances;
        self.instance_rounds[index] = run.rounds;
        self.max_instance_congestion = self.max_instance_congestion.max(run.max_congestion);
        self.total_messages += run.messages;
    }

    fn finish(self) -> ApspRun {
        let sequential_rounds = self.instance_rounds.iter().sum();
        ApspRun {
            distances: self.distances,
            instance_rounds: self.instance_rounds,
            max_instance_congestion: self.max_instance_congestion,
            schedule: self.builder.finish(),
            sequential_rounds,
            total_messages: self.total_messages,
        }
    }
}

/// The number of OS threads [`apsp`] will actually use for the given
/// configuration on a graph of `n` nodes: the configured `threads` (with `0`
/// resolving to the host's available parallelism), capped by the instance
/// count. Exposed so measurement harnesses can report the true thread count
/// instead of re-deriving it.
pub fn planned_threads(apsp_config: &ApspConfig, n: u32) -> usize {
    resolve_threads(apsp_config.threads, n as usize)
}

/// Resolves the configured thread count against the host and the workload.
fn resolve_threads(requested: usize, instances: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        requested
    };
    threads.min(instances.max(1))
}

/// The effective per-round edge budget for a graph of `n` nodes.
fn effective_budget(n: u32, configured: u32) -> u32 {
    if configured == 0 {
        ((n.max(2) as f64).log2().ceil() as u32) + 1
    } else {
        configured
    }
}

/// Computes APSP: one SSSP per source plus random-delay scheduling.
///
/// With `apsp_config.edge_budget_per_round == 0` the budget defaults to
/// `⌈log₂ n⌉ + 1`. Instances run on `apsp_config.threads` OS threads (`0` =
/// available parallelism); the result is bit-identical for every thread
/// count, see the module docs.
///
/// # Errors
///
/// Propagates any SSSP failure (the first one in source order observed).
pub fn apsp(
    g: &Graph,
    config: &AlgoConfig,
    apsp_config: &ApspConfig,
) -> Result<ApspRun, AlgoError> {
    let n = g.node_count();
    let budget = effective_budget(n, apsp_config.edge_budget_per_round);
    let max_delay = apsp_config.max_delay.unwrap_or(n as u64).max(1);
    let threads = resolve_threads(apsp_config.threads, n as usize);
    let mut assembly = Assembly::new(n as usize, budget, max_delay, apsp_config.seed);

    assemble(n, threads, &mut assembly, |i| run_instance(g, NodeId(i), config))?;
    Ok(assembly.finish())
}

/// Runs instances `0..n` through `run` on `threads` OS threads and feeds the
/// results into `assembly` in index order. With one thread everything happens
/// on the calling thread; otherwise workers self-schedule indices off an
/// atomic counter and send results over a channel, and the assembler replays
/// them through a reorder buffer.
///
/// The buffer is kept at `O(threads)` entries even under skewed instance
/// durations: a worker may only *start* instance `i` once the assembler's
/// consumption watermark is within `2 × threads` of `i`, so completed
/// results can never pile up behind one slow straggler — at most
/// `window + threads` instance results (each `O(m)`) exist at once, which is
/// what keeps the streaming pipeline's memory at `O(m + makespan)`.
fn assemble<F>(n: u32, threads: usize, assembly: &mut Assembly, run: F) -> Result<(), AlgoError>
where
    F: Fn(u32) -> Result<InstanceRun, AlgoError> + Sync,
{
    if threads <= 1 {
        for i in 0..n {
            assembly.consume(i as usize, run(i)?);
        }
        return Ok(());
    }

    /// Sets the abort flag if its thread unwinds, so a panic in one instance
    /// releases the workers parked on the backpressure watermark (the scope
    /// join then re-raises the panic) instead of deadlocking the assembler.
    struct AbortOnUnwind<'a>(&'a AtomicBool);
    impl Drop for AbortOnUnwind<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.store(true, Ordering::Relaxed);
            }
        }
    }

    let window = 2 * threads as u32;
    let next_index = AtomicU32::new(0);
    let consumed = AtomicU32::new(0);
    let abort = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(u32, Result<InstanceRun, AlgoError>)>();
    let mut first_error: Option<(u32, AlgoError)> = None;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next_index = &next_index;
            let consumed = &consumed;
            let abort = &abort;
            let run = &run;
            scope.spawn(move || {
                let _guard = AbortOnUnwind(abort);
                'work: loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next_index.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Backpressure: wait until the assembler has caught up
                    // to within the window. The instance holding up the
                    // watermark is always an index below ours, so it is
                    // already running on some thread and the watermark
                    // eventually advances (or the run aborts).
                    while i >= consumed.load(Ordering::Acquire).saturating_add(window) {
                        if abort.load(Ordering::Relaxed) {
                            break 'work;
                        }
                        std::thread::park_timeout(std::time::Duration::from_millis(1));
                    }
                    let result = run(i);
                    if result.is_err() {
                        abort.store(true, Ordering::Relaxed);
                    }
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        let mut pending: BTreeMap<u32, InstanceRun> = BTreeMap::new();
        let mut next_consume = 0u32;
        for (index, result) in rx {
            match result {
                Ok(instance) => {
                    pending.insert(index, instance);
                    while let Some(instance) = pending.remove(&next_consume) {
                        assembly.consume(next_consume as usize, instance);
                        next_consume += 1;
                    }
                    consumed.store(next_consume, Ordering::Release);
                }
                Err(e) => match &first_error {
                    // Keep the error of the smallest failing index, matching
                    // what the sequential loop would have surfaced first.
                    Some((seen, _)) if *seen <= index => {}
                    _ => first_error = Some((index, e)),
                },
            }
        }
    });
    match first_error {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

/// The pre-rework APSP driver, retained as the differential oracle and the
/// E12 baseline: runs the instances sequentially on the calling thread,
/// materializes all `n` traces, and schedules them through the
/// round-by-round [`schedule_reference`] loop.
///
/// Produces an [`ApspRun`] identical to [`apsp`]'s on every input.
///
/// # Errors
///
/// Propagates any SSSP failure.
pub fn apsp_reference(
    g: &Graph,
    config: &AlgoConfig,
    apsp_config: &ApspConfig,
) -> Result<ApspRun, AlgoError> {
    let n = g.node_count();
    let mut distances = Vec::with_capacity(n as usize);
    let mut traces = Vec::with_capacity(n as usize);
    let mut instance_rounds = Vec::with_capacity(n as usize);
    let mut max_instance_congestion = 0u64;
    let mut total_messages = 0u64;

    for s in g.nodes() {
        let run = run_instance(g, s, config)?;
        instance_rounds.push(run.rounds);
        max_instance_congestion = max_instance_congestion.max(run.max_congestion);
        total_messages += run.messages;
        traces.push(run.trace);
        distances.push(run.distances);
    }

    let budget = effective_budget(n, apsp_config.edge_budget_per_round);
    let max_delay = apsp_config.max_delay.unwrap_or(n as u64).max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(apsp_config.seed);
    let delays: Vec<u64> = traces.iter().map(|_| draw_delay(&mut rng, max_delay)).collect();
    let schedule = schedule_reference(&traces, &delays, budget);
    let sequential_rounds = instance_rounds.iter().sum();

    Ok(ApspRun {
        distances,
        instance_rounds,
        max_instance_congestion,
        schedule,
        sequential_rounds,
        total_messages,
    })
}

/// Spreads each edge's total message count evenly over the instance's
/// duration, producing a per-round usage trace consistent with the measured
/// congestion and dilation.
///
/// The partition assigns message `k` of an edge's `total` to round
/// `⌊k·R/total⌋` over the instance's `R` rounds, with per-round counts
/// computed directly in `O(min(total, R))` per edge instead of pushing (and
/// then coalescing) one entry per message:
///
/// * `total ≤ R`: consecutive messages land `R/total ≥ 1` rounds apart, so
///   every occupied round carries exactly one message — emit the `total`
///   rounds `⌊k·R/total⌋` directly.
/// * `total > R`: every round is occupied and round `r` carries
///   `ceil((r+1)·total/R) - ceil(r·total/R)` messages — walk the `R` round
///   boundaries.
fn spread_trace(edge_congestion: &[u64], rounds: u64) -> EdgeUsageTrace {
    let rounds = rounds.max(1) as usize;
    let mut per_round: Vec<Vec<(EdgeId, u32)>> = vec![Vec::new(); rounds];
    let r128 = rounds as u128;
    for (e, &total) in edge_congestion.iter().enumerate() {
        if total == 0 {
            continue;
        }
        let edge = EdgeId(e as u32);
        let t128 = total as u128;
        if t128 <= r128 {
            for k in 0..total {
                let r = ((k as u128 * r128) / t128) as usize;
                per_round[r].push((edge, 1));
            }
        } else {
            let mut lo = 0u128; // ceil(0 * t / R)
            for (r, bucket) in per_round.iter_mut().enumerate() {
                let hi = ((r as u128 + 1) * t128).div_ceil(r128);
                let count =
                    u32::try_from(hi - lo).expect("per-round share fits the trace count type");
                bucket.push((edge, count));
                lo = hi;
            }
        }
    }
    EdgeUsageTrace { rounds: per_round }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    #[test]
    fn apsp_distances_match_sequential_all_pairs() {
        let g = generators::with_random_weights(&generators::random_connected(16, 24, 2), 6, 2);
        let run = apsp(&g, &AlgoConfig::default(), &ApspConfig::default()).unwrap();
        let truth = sequential::all_pairs(&g);
        for s in g.nodes() {
            for v in g.nodes() {
                assert_eq!(run.distances[s.index()][v.index()], truth[s.index()][v.index()]);
            }
        }
    }

    #[test]
    fn concurrent_schedule_beats_sequential_composition() {
        let g = generators::random_connected(24, 60, 5);
        let run = apsp(&g, &AlgoConfig::default(), &ApspConfig::default()).unwrap();
        assert!(
            run.schedule.makespan < run.sequential_rounds,
            "concurrent makespan {} should beat sequential {}",
            run.schedule.makespan,
            run.sequential_rounds
        );
    }

    #[test]
    fn per_instance_congestion_is_small() {
        let g = generators::random_connected(24, 48, 1);
        let run = apsp(&g, &AlgoConfig::default(), &ApspConfig::default()).unwrap();
        // Every instance has polylog congestion; far below n.
        assert!(run.max_instance_congestion < g.node_count() as u64 * 4);
        assert!(run.total_messages > 0);
        assert_eq!(run.instance_rounds.len(), g.node_count() as usize);
    }

    #[test]
    fn schedule_is_reproducible_for_a_seed() {
        let g = generators::random_connected(12, 20, 9);
        let cfg = ApspConfig { seed: 7, ..ApspConfig::default() };
        let a = apsp(&g, &AlgoConfig::default(), &cfg).unwrap();
        let b = apsp(&g, &AlgoConfig::default(), &cfg).unwrap();
        assert_eq!(a.schedule.makespan, b.schedule.makespan);
        assert_eq!(a.schedule.delays, b.schedule.delays);
    }

    #[test]
    fn parallel_and_sequential_drivers_are_bit_identical() {
        let g = generators::with_random_weights(&generators::random_connected(18, 30, 4), 8, 11);
        let algo = AlgoConfig::default();
        let base = ApspConfig { seed: 13, ..ApspConfig::default() };
        let reference = apsp_reference(&g, &algo, &base).unwrap();
        for threads in [1usize, 2, 3, 7] {
            let cfg = ApspConfig { threads, ..base.clone() };
            let run = apsp(&g, &algo, &cfg).unwrap();
            assert_eq!(run, reference, "driver diverged at {threads} threads");
        }
    }

    #[test]
    fn parallel_assembly_surfaces_instance_errors_and_stops() {
        // Instances past index 5 fail: the parallel assembler must abort,
        // drain cleanly, and surface the error instead of hanging.
        use std::sync::atomic::{AtomicU32, Ordering};
        let attempts = AtomicU32::new(0);
        let run = |i: u32| -> Result<InstanceRun, AlgoError> {
            attempts.fetch_add(1, Ordering::Relaxed);
            if i >= 5 {
                return Err(AlgoError::EmptySourceSet);
            }
            Ok(InstanceRun {
                distances: Vec::new(),
                trace: EdgeUsageTrace::default(),
                rounds: 1,
                max_congestion: 0,
                messages: 0,
            })
        };
        let mut assembly = Assembly::new(64, 1, 1, 0);
        assert!(matches!(assemble(64, 3, &mut assembly, run), Err(AlgoError::EmptySourceSet)));
        // The abort flag keeps workers from grinding through all 64 indices.
        assert!(attempts.load(Ordering::Relaxed) < 64);
        // The sequential path surfaces the same error.
        let mut assembly = Assembly::new(64, 1, 1, 0);
        assert!(assemble(64, 1, &mut assembly, run).is_err());
    }

    #[test]
    fn parallel_assembly_stays_bounded_under_skewed_instances() {
        // Index 0 is a straggler: every other instance finishes instantly,
        // so without backpressure the reorder buffer would absorb nearly all
        // of the other 63 results while 0 runs. The consumption-watermark
        // window forbids that: while 0 is unfinished the watermark is 0, so
        // no index >= window may even start.
        use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
        let threads = 4usize;
        let window = 2 * threads as u32;
        let zero_done = AtomicBool::new(false);
        let max_started_while_blocked = AtomicU32::new(0);
        let run = |i: u32| -> Result<InstanceRun, AlgoError> {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(40));
                zero_done.store(true, Ordering::SeqCst);
            } else if !zero_done.load(Ordering::SeqCst) {
                max_started_while_blocked.fetch_max(i, Ordering::SeqCst);
            }
            Ok(InstanceRun {
                distances: vec![Distance::Finite(i as u64)],
                trace: EdgeUsageTrace { rounds: vec![vec![(EdgeId(0), 1)]] },
                rounds: i as u64,
                max_congestion: 1,
                messages: 1,
            })
        };
        let n = 64u32;
        let mut parallel = Assembly::new(n as usize, 2, 17, 9);
        assemble(n, threads, &mut parallel, run).unwrap();
        zero_done.store(false, Ordering::SeqCst); // irrelevant for 1 thread
        let mut sequential = Assembly::new(n as usize, 2, 17, 9);
        assemble(n, 1, &mut sequential, run).unwrap();
        assert_eq!(parallel.finish(), sequential.finish());
        let peak = max_started_while_blocked.load(Ordering::SeqCst);
        assert!(peak < window, "index {peak} started while the watermark was held at 0");
    }

    #[test]
    #[should_panic] // scope re-raises with its own "a scoped thread panicked" payload
    fn parallel_assembly_propagates_instance_panics() {
        // A panicking instance must bring the whole call down (via the scope
        // join), not deadlock workers parked on the backpressure watermark.
        // A regression here shows up as this test hanging.
        let run = |i: u32| -> Result<InstanceRun, AlgoError> {
            if i == 7 {
                panic!("instance 7 exploded");
            }
            Ok(InstanceRun {
                distances: Vec::new(),
                trace: EdgeUsageTrace::default(),
                rounds: 1,
                max_congestion: 0,
                messages: 0,
            })
        };
        let mut assembly = Assembly::new(64, 1, 1, 0);
        let _ = assemble(64, 3, &mut assembly, run);
    }

    #[test]
    fn planned_threads_reports_the_resolved_count() {
        let auto = ApspConfig::default();
        let host = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        assert_eq!(planned_threads(&auto, 1024), host.min(1024));
        let fixed = ApspConfig { threads: 3, ..ApspConfig::default() };
        assert_eq!(planned_threads(&fixed, 1024), 3);
        assert_eq!(planned_threads(&fixed, 2), 2, "capped by the instance count");
    }

    #[test]
    fn parallel_assembly_consumes_in_index_order() {
        // Deterministic assembly: regardless of which thread finishes first,
        // instance i must land at index i with the delay stream drawn in
        // index order. Distinguishable instances (rounds = i) pin this.
        let run = |i: u32| -> Result<InstanceRun, AlgoError> {
            Ok(InstanceRun {
                distances: vec![Distance::Finite(i as u64)],
                trace: EdgeUsageTrace { rounds: vec![vec![(EdgeId(0), 1)]] },
                rounds: i as u64,
                max_congestion: 1,
                messages: 1,
            })
        };
        let mut sequential = Assembly::new(40, 2, 17, 9);
        assemble(40, 1, &mut sequential, run).unwrap();
        let mut parallel = Assembly::new(40, 2, 17, 9);
        assemble(40, 4, &mut parallel, run).unwrap();
        assert_eq!(parallel.finish(), sequential.finish());
    }

    #[test]
    fn spread_trace_preserves_totals() {
        let trace = spread_trace(&[3, 0, 7], 5);
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.total_messages(), 10);
        assert_eq!(trace.max_edge_total(), 7);
    }

    #[test]
    fn spread_trace_matches_the_per_message_partition() {
        // The direct per-round counts must equal assigning message k to round
        // floor(k * R / total) and coalescing — the pre-rework construction.
        for (total, rounds) in
            [(1u64, 1u64), (3, 5), (5, 3), (7, 7), (10, 4), (1, 9), (100, 13), (13, 100)]
        {
            let direct = spread_trace(&[total], rounds);
            let r = rounds.max(1) as usize;
            let mut naive = vec![0u32; r];
            for k in 0..total {
                let slot = ((k as u128 * r as u128) / total as u128) as usize;
                naive[slot.min(r - 1)] += 1;
            }
            let expected: Vec<Vec<(EdgeId, u32)>> = naive
                .into_iter()
                .map(|c| if c > 0 { vec![(EdgeId(0), c)] } else { Vec::new() })
                .collect();
            assert_eq!(
                direct.rounds, expected,
                "partition mismatch for total {total} over {rounds} rounds"
            );
            assert_eq!(direct.total_messages(), total);
        }
    }
}
