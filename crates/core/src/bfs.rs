//! Distributed multi-source (thresholded) BFS as a CONGEST protocol.
//!
//! This is the always-awake building block used by the Section-2 algorithms
//! and as the "naive" energy baseline: every node stays awake until the depth
//! limit has certainly been reached, so the energy per node equals the time.
//! Each node broadcasts its distance exactly once, so the congestion is at
//! most one message per edge per direction.

use congest_graph::{Distance, Graph, NodeId};
use congest_sim::{Engine, Message, NodeCtx, Protocol};

use crate::result::{AlgoRun, DistanceOutput};
use crate::{AlgoConfig, AlgoError};

/// Per-node state of the BFS protocol.
#[derive(Debug, Clone)]
pub struct BfsNode {
    /// The hop distance from the nearest source (what the node outputs).
    pub dist: Distance,
    is_source: bool,
    announced: bool,
    limit: u64,
}

impl Protocol for BfsNode {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.is_source {
            self.dist = Distance::ZERO;
            self.announced = true;
            if self.limit > 0 {
                ctx.broadcast(&[0]);
            }
        }
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        for msg in inbox {
            let cand = Distance::Finite(msg.word(0) + 1);
            if cand < self.dist {
                self.dist = cand;
            }
        }
        if !self.announced {
            if let Some(d) = self.dist.finite() {
                // In synchronous BFS a node first hears of the wavefront in
                // exactly the round equal to its hop distance.
                debug_assert_eq!(d, ctx.round());
                self.announced = true;
                if d < self.limit {
                    ctx.broadcast(&[d]);
                }
            }
        }
        // The wavefront cannot travel further than one hop per round, so by
        // round `limit + 1` everything within the threshold has been reached.
        if ctx.round() > self.limit {
            ctx.halt();
        }
    }
}

/// Runs multi-source BFS from `sources` up to hop distance `limit`
/// (a *`limit`-thresholded BFS* in the paper's terminology): nodes at hop
/// distance greater than `limit` output [`Distance::Infinite`].
///
/// # Errors
///
/// Returns an error if the source list is empty, a source id is out of range,
/// or the simulation exceeds its round limit.
pub fn thresholded_bfs(
    g: &Graph,
    sources: &[NodeId],
    limit: u64,
    config: &AlgoConfig,
) -> Result<AlgoRun, AlgoError> {
    if sources.is_empty() {
        return Err(AlgoError::EmptySourceSet);
    }
    for &s in sources {
        if !g.contains_node(s) {
            return Err(AlgoError::SourceOutOfRange { node: s });
        }
    }
    let is_source: Vec<bool> = {
        let mut v = vec![false; g.node_count() as usize];
        for &s in sources {
            v[s.index()] = true;
        }
        v
    };
    let mut sim = config.sim.clone();
    sim.max_rounds = sim.max_rounds.max(limit + 10);
    let run = Engine::new(g, sim).run(|id| BfsNode {
        dist: Distance::Infinite,
        is_source: is_source[id.index()],
        announced: false,
        limit,
    })?;
    let distances = run.states.iter().map(|s| s.dist).collect();
    Ok(AlgoRun { output: DistanceOutput { distances }, metrics: run.metrics, trace: run.trace })
}

/// Runs multi-source BFS with no threshold (limit `n`, which always suffices).
///
/// # Errors
///
/// Same conditions as [`thresholded_bfs`].
pub fn bfs(g: &Graph, sources: &[NodeId], config: &AlgoConfig) -> Result<AlgoRun, AlgoError> {
    thresholded_bfs(g, sources, g.node_count() as u64, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    #[test]
    fn bfs_matches_sequential_on_random_graphs() {
        let cfg = AlgoConfig::default();
        for seed in 0..4 {
            let g = generators::random_connected(40, 60, seed);
            let run = bfs(&g, &[NodeId(0)], &cfg).unwrap();
            let expected = sequential::bfs(&g, &[NodeId(0)]);
            for v in g.nodes() {
                assert_eq!(run.distance(v), expected.distance(v), "seed {seed} node {v}");
            }
        }
    }

    #[test]
    fn multi_source_bfs_matches_sequential() {
        let cfg = AlgoConfig::default();
        let g = generators::grid(6, 7, 1);
        let sources = [NodeId(0), NodeId(41), NodeId(20)];
        let run = bfs(&g, &sources, &cfg).unwrap();
        let expected = sequential::bfs(&g, &sources);
        assert_eq!(run.output.distances, expected.distances);
    }

    #[test]
    fn thresholded_bfs_cuts_at_the_limit() {
        let cfg = AlgoConfig::default();
        let g = generators::path(20, 1);
        let run = thresholded_bfs(&g, &[NodeId(0)], 5, &cfg).unwrap();
        for v in g.nodes() {
            if v.0 <= 5 {
                assert_eq!(run.distance(v).finite(), Some(v.0 as u64));
            } else {
                assert!(run.distance(v).is_infinite(), "node {v} is beyond the threshold");
            }
        }
        // Time is proportional to the threshold, not the diameter.
        assert!(run.metrics.rounds <= 5 + 3);
    }

    #[test]
    fn congestion_is_at_most_two_per_edge() {
        let cfg = AlgoConfig::default();
        let g = generators::random_connected(50, 120, 3);
        let run = bfs(&g, &[NodeId(0)], &cfg).unwrap();
        // One announcement per endpoint per edge.
        assert!(run.metrics.max_congestion() <= 2);
        assert!(run.metrics.messages <= 2 * g.edge_count() as u64);
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        let cfg = AlgoConfig::default();
        let g = generators::disjoint_copies(&generators::path(5, 1), 2);
        let run = bfs(&g, &[NodeId(0)], &cfg).unwrap();
        assert!(run.distance(NodeId(7)).is_infinite());
        assert_eq!(run.output.reached_count(), 5);
    }

    #[test]
    fn empty_sources_are_rejected() {
        let cfg = AlgoConfig::default();
        let g = generators::path(4, 1);
        assert!(matches!(bfs(&g, &[], &cfg), Err(AlgoError::EmptySourceSet)));
        assert!(matches!(
            bfs(&g, &[NodeId(9)], &cfg),
            Err(AlgoError::SourceOutOfRange { node: NodeId(9) })
        ));
    }

    #[test]
    fn zero_limit_reaches_only_sources() {
        let cfg = AlgoConfig::default();
        let g = generators::star(6, 1);
        let run = thresholded_bfs(&g, &[NodeId(0)], 0, &cfg).unwrap();
        assert_eq!(run.output.reached_count(), 1);
    }
}
