//! The approximate cutter of Lemma 2.1: additive-error distance estimates via
//! Nanongkai's weight-rounding trick plus one waiting BFS.
//!
//! Given a threshold `W` and `ε = 1/epsilon_inverse`, the cutter rescales
//! every weight to `w' = ⌈w · ε⁻¹ · n / W⌉`, runs a waiting BFS on the
//! rescaled weights for `O(n/ε)` rounds, and converts the rescaled distances
//! back. The output `dist'` satisfies (Lemma 2.1, with integer-rounding slack
//! made explicit):
//!
//! * if `dist'(S, v) ≠ ∞` then `dist(S, v) ≤ dist'(S, v) ≤ dist(S, v) + err`
//!   where `err =` [`CutterOutcome::error_bound`] `= ⌈W/ε⁻¹⌉ + 2 ≈ εW`,
//! * if `dist'(S, v) = ∞` then `dist(S, v) > 2W`.
//!
//! The run takes `O(ε⁻¹ · n)` rounds and sends `O(1)` messages per edge.

use congest_graph::{Distance, Graph, Weight};
use congest_sim::Metrics;

use crate::result::{AlgoRun, SourceOffset};
use crate::weighted_bfs::waiting_bfs;
use crate::{AlgoConfig, AlgoError};

/// The result of one cutter invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CutterOutcome {
    /// Per-node distance estimates (infinite means `dist > 2W`).
    pub estimates: Vec<Distance>,
    /// The additive error bound of the finite estimates.
    pub error_bound: u64,
    /// Complexity measurements of the underlying waiting BFS.
    pub metrics: Metrics,
    /// Optional edge-usage trace of the underlying waiting BFS.
    pub trace: Option<congest_sim::EdgeUsageTrace>,
}

impl CutterOutcome {
    /// The threshold below which a node is included in `V₁` when cutting at
    /// distance `cut`: estimates `≤ cut + error_bound` (every node with true
    /// distance `≤ cut` qualifies).
    pub fn inclusion_threshold(&self, cut: u64) -> Distance {
        Distance::Finite(cut.saturating_add(self.error_bound))
    }
}

/// Runs the approximate cutter on `g` from `sources` with threshold `w_max`
/// (the `W` of Lemma 2.1). Edge weights must be positive.
///
/// # Errors
///
/// Propagates the waiting-BFS errors (empty sources, out-of-range sources,
/// zero weights, simulation failure).
///
/// # Panics
///
/// Panics if `w_max == 0`.
pub fn approximate_cssp(
    g: &Graph,
    sources: &[SourceOffset],
    w_max: u64,
    config: &AlgoConfig,
) -> Result<CutterOutcome, AlgoError> {
    assert!(w_max > 0, "the cutter threshold W must be positive");
    let n = g.node_count().max(2) as u64;
    let inv = config.epsilon_inverse.max(1);
    // Scale factor: scaled = ceil(value * inv * n / w_max).
    let scale = |value: Weight| -> Weight {
        // ceil(value * inv * n / w_max), computed in u128 to avoid overflow.
        let num = value as u128 * inv as u128 * n as u128;
        num.div_ceil(w_max as u128) as u64
    };
    let unscale = |scaled: Weight| -> Weight {
        // ceil(scaled * w_max / (inv * n)).
        let num = scaled as u128 * w_max as u128;
        num.div_ceil(inv as u128 * n as u128) as u64
    };
    let weights: Vec<Weight> = g.edges().iter().map(|e| scale(e.w)).collect();
    let scaled_sources: Vec<SourceOffset> =
        sources.iter().map(|s| SourceOffset { node: s.node, offset: scale(s.offset) }).collect();
    // Nodes with true (offset) distance <= 2W have scaled distance at most
    // 2*inv*n + n + 1 (one +1 per path edge plus one for the offset), so this
    // round limit retains all of them.
    let limit = (2 * inv + 1) * n + 2;
    let run: AlgoRun = waiting_bfs(g, &scaled_sources, &weights, limit, config)?;
    let estimates = run
        .output
        .distances
        .iter()
        .map(|d| match d {
            Distance::Finite(s) => Distance::Finite(unscale(*s)),
            Distance::Infinite => Distance::Infinite,
        })
        .collect();
    let error_bound = w_max.div_ceil(inv) + 2;
    Ok(CutterOutcome { estimates, error_bound, metrics: run.metrics, trace: run.trace })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential, NodeId};

    /// Checks the two Lemma 2.1 guarantees against sequential ground truth.
    fn check_cutter(g: &Graph, sources: &[NodeId], w_max: u64, cfg: &AlgoConfig) -> CutterOutcome {
        let offsets: Vec<SourceOffset> = sources.iter().map(|&s| SourceOffset::plain(s)).collect();
        let out = approximate_cssp(g, &offsets, w_max, cfg).unwrap();
        let truth = sequential::dijkstra(g, sources);
        for v in g.nodes() {
            match out.estimates[v.index()] {
                Distance::Finite(est) => {
                    let d = truth.distance(v);
                    assert!(
                        Distance::Finite(est) >= d,
                        "estimate {est} underestimates {d} at node {v}"
                    );
                    assert!(
                        est <= d.expect_finite() + out.error_bound,
                        "estimate {est} exceeds dist {} + err {} at node {v}",
                        d.expect_finite(),
                        out.error_bound
                    );
                }
                Distance::Infinite => {
                    assert!(
                        truth.distance(v) > Distance::Finite(2 * w_max),
                        "node {v} with dist {} was dropped despite being within 2W = {}",
                        truth.distance(v),
                        2 * w_max
                    );
                }
            }
        }
        out
    }

    #[test]
    fn cutter_guarantees_on_random_weighted_graphs() {
        let cfg = AlgoConfig::default();
        for seed in 0..4 {
            let g = generators::with_random_weights(
                &generators::random_connected(30, 50, seed),
                20,
                seed,
            );
            let w_max = g.distance_upper_bound() / 4 + 1;
            check_cutter(&g, &[NodeId(0)], w_max, &cfg);
        }
    }

    #[test]
    fn cutter_with_multiple_sources() {
        let cfg = AlgoConfig::default();
        let g = generators::with_random_weights(&generators::grid(5, 6, 1), 9, 3);
        check_cutter(&g, &[NodeId(0), NodeId(29), NodeId(14)], 20, &cfg);
    }

    #[test]
    fn cutter_with_small_threshold_drops_far_nodes() {
        let cfg = AlgoConfig::default();
        let g = generators::path(30, 10); // distances 0, 10, ..., 290
        let out = check_cutter(&g, &[NodeId(0)], 50, &cfg);
        // Nodes beyond distance 100 (= 2W) must be infinite.
        assert!(out.estimates[15].is_infinite());
        // Nodes within W are retained.
        assert!(out.estimates[4].is_finite());
    }

    #[test]
    fn cutter_congestion_is_constant() {
        let cfg = AlgoConfig::default();
        let g = generators::with_random_weights(&generators::random_connected(40, 120, 9), 50, 9);
        let offsets = [SourceOffset::plain(NodeId(0))];
        let out = approximate_cssp(&g, &offsets, g.distance_upper_bound() / 2 + 1, &cfg).unwrap();
        assert!(out.metrics.max_congestion() <= 2);
    }

    #[test]
    fn cutter_rounds_scale_with_n_over_eps_not_with_weights() {
        let cfg = AlgoConfig::default();
        let g = generators::path(20, 1_000_000);
        let out =
            approximate_cssp(&g, &[SourceOffset::plain(NodeId(0))], 20_000_000, &cfg).unwrap();
        // 5n + small slack rounds, despite the huge weighted diameter.
        assert!(out.metrics.rounds <= 5 * 20 + 10, "rounds = {}", out.metrics.rounds);
    }

    #[test]
    fn error_bound_halves_with_smaller_epsilon() {
        let g = generators::path(10, 5);
        let a = approximate_cssp(
            &g,
            &[SourceOffset::plain(NodeId(0))],
            100,
            &AlgoConfig::default().with_epsilon_inverse(2),
        )
        .unwrap();
        let b = approximate_cssp(
            &g,
            &[SourceOffset::plain(NodeId(0))],
            100,
            &AlgoConfig::default().with_epsilon_inverse(10),
        )
        .unwrap();
        assert!(b.error_bound < a.error_bound);
        assert!(b.metrics.rounds > a.metrics.rounds, "smaller epsilon costs more rounds");
    }

    #[test]
    fn source_offsets_are_respected() {
        let cfg = AlgoConfig::default();
        let g = generators::path(6, 4);
        let sources = [SourceOffset { node: NodeId(5), offset: 7 }];
        let out = approximate_cssp(&g, &sources, 60, &cfg).unwrap();
        // True offset distance of node 0 is 7 + 5*4 = 27.
        match out.estimates[0] {
            Distance::Finite(e) => {
                assert!(e >= 27 && e <= 27 + out.error_bound);
            }
            Distance::Infinite => panic!("node 0 is well within 2W"),
        }
    }

    #[test]
    fn inclusion_threshold_adds_error_bound() {
        let out = CutterOutcome {
            estimates: vec![],
            error_bound: 13,
            metrics: Metrics::zero(0, 0),
            trace: None,
        };
        assert_eq!(out.inclusion_threshold(100), Distance::Finite(113));
    }
}
