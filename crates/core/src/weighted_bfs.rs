//! "Waiting BFS": a weighted BFS protocol in which the wavefront takes `w`
//! rounds to cross an edge of (integer, positive) weight `w`.
//!
//! This is the distributed engine behind the rounding-based approximate
//! cutter of Lemma 2.1 — after rounding, the weighted distance range becomes
//! `O(n/ε)`, so waiting BFS finishes in `O(n/ε)` rounds — and each node
//! announces its final distance exactly once, so the congestion is `O(1)`
//! per edge.

use std::sync::Arc;

use congest_graph::{Distance, Graph, NodeId, Weight};
use congest_sim::{Engine, Message, NodeCtx, Protocol};

use crate::result::{AlgoRun, DistanceOutput, SourceOffset};
use crate::{AlgoConfig, AlgoError};

/// Per-node state of the waiting-BFS protocol.
#[derive(Debug, Clone)]
pub struct WaitingBfsNode {
    /// The weighted distance from the source set (under the protocol's weight
    /// map), or infinity if beyond the round limit.
    pub dist: Distance,
    best: Distance,
    finalized: bool,
    limit: u64,
    /// Rounded weight per edge id (shared, read-only).
    weights: Arc<Vec<Weight>>,
}

impl WaitingBfsNode {
    fn maybe_finalize(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.finalized {
            return;
        }
        if let Some(b) = self.best.finite() {
            if b == ctx.round() {
                self.finalized = true;
                self.dist = self.best;
                if b < self.limit {
                    ctx.broadcast(&[b]);
                }
            }
        }
    }
}

impl Protocol for WaitingBfsNode {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        // `best` was pre-set to the source offset by the factory (or left
        // infinite for non-sources). A source with offset 0 finalizes now.
        self.maybe_finalize(ctx);
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        for msg in inbox {
            let w = self.weights[msg.edge.index()];
            let cand = Distance::Finite(msg.word(0) + w);
            if cand < self.best {
                self.best = cand;
            }
        }
        self.maybe_finalize(ctx);
        if ctx.round() >= self.limit {
            ctx.halt();
        }
    }
}

/// Runs waiting BFS from `sources` (with initial offsets) using the given
/// per-edge weights, for `limit` rounds. Nodes whose weighted distance under
/// `weights` exceeds `limit` output [`Distance::Infinite`].
///
/// The `weights` slice overrides the graph's own weights (the cutter passes
/// rounded weights); every entry must be at least 1.
///
/// # Errors
///
/// Returns an error if the source set is empty, a source is out of range, a
/// weight is zero, or the simulation exceeds its round limit.
pub fn waiting_bfs(
    g: &Graph,
    sources: &[SourceOffset],
    weights: &[Weight],
    limit: u64,
    config: &AlgoConfig,
) -> Result<AlgoRun, AlgoError> {
    if sources.is_empty() {
        return Err(AlgoError::EmptySourceSet);
    }
    if weights.len() != g.edge_count() as usize {
        return Err(AlgoError::WeightMapMismatch {
            expected: g.edge_count() as usize,
            found: weights.len(),
        });
    }
    if let Some(idx) = weights.iter().position(|&w| w == 0) {
        return Err(AlgoError::ZeroWeightNotSupported { edge: congest_graph::EdgeId(idx as u32) });
    }
    let mut offsets = vec![Distance::Infinite; g.node_count() as usize];
    for s in sources {
        if !g.contains_node(s.node) {
            return Err(AlgoError::SourceOutOfRange { node: s.node });
        }
        let d = Distance::Finite(s.offset);
        if d < offsets[s.node.index()] {
            offsets[s.node.index()] = d;
        }
    }
    let weights = Arc::new(weights.to_vec());
    let mut sim = config.sim.clone();
    sim.max_rounds = sim.max_rounds.max(limit + 10);
    let run = Engine::new(g, sim).run(|id: NodeId| WaitingBfsNode {
        dist: Distance::Infinite,
        best: offsets[id.index()],
        finalized: false,
        limit,
        weights: Arc::clone(&weights),
    })?;
    let distances = run.states.iter().map(|s| s.dist).collect();
    Ok(AlgoRun { output: DistanceOutput { distances }, metrics: run.metrics, trace: run.trace })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    fn graph_weights(g: &Graph) -> Vec<Weight> {
        g.edges().iter().map(|e| e.w).collect()
    }

    #[test]
    fn waiting_bfs_computes_weighted_distances() {
        let cfg = AlgoConfig::default();
        for seed in 0..3 {
            let g = generators::with_random_weights(
                &generators::random_connected(25, 35, seed),
                6,
                seed,
            );
            let limit = g.distance_upper_bound() + 1;
            let run =
                waiting_bfs(&g, &[SourceOffset::plain(NodeId(0))], &graph_weights(&g), limit, &cfg)
                    .unwrap();
            let expected = sequential::dijkstra(&g, &[NodeId(0)]);
            for v in g.nodes() {
                assert_eq!(run.distance(v), expected.distance(v), "seed {seed} node {v}");
            }
        }
    }

    #[test]
    fn offsets_shift_source_distances() {
        let cfg = AlgoConfig::default();
        let g = generators::path(6, 2);
        let sources = [
            SourceOffset { node: NodeId(0), offset: 5 },
            SourceOffset { node: NodeId(5), offset: 0 },
        ];
        let run = waiting_bfs(&g, &sources, &graph_weights(&g), 100, &cfg).unwrap();
        // Node 0: min(5, 0 + 5 edges * 2) = 5. Node 2: min(5 + 4, 0 + 6) = 6.
        assert_eq!(run.distance(NodeId(0)).finite(), Some(5));
        assert_eq!(run.distance(NodeId(2)).finite(), Some(6));
    }

    #[test]
    fn limit_truncates_far_nodes() {
        let cfg = AlgoConfig::default();
        let g = generators::path(10, 3);
        let run = waiting_bfs(&g, &[SourceOffset::plain(NodeId(0))], &graph_weights(&g), 9, &cfg)
            .unwrap();
        assert_eq!(run.distance(NodeId(3)).finite(), Some(9));
        assert!(run.distance(NodeId(4)).is_infinite());
        assert!(run.metrics.rounds <= 12);
    }

    #[test]
    fn congestion_is_constant_per_edge() {
        let cfg = AlgoConfig::default();
        let g = generators::with_random_weights(&generators::random_connected(40, 100, 7), 4, 7);
        let run = waiting_bfs(
            &g,
            &[SourceOffset::plain(NodeId(0))],
            &graph_weights(&g),
            g.distance_upper_bound(),
            &cfg,
        )
        .unwrap();
        assert!(run.metrics.max_congestion() <= 2, "each endpoint announces at most once");
    }

    #[test]
    fn custom_weight_map_overrides_graph_weights() {
        let cfg = AlgoConfig::default();
        let g = generators::path(4, 100);
        // Override all weights to 1: distances become hop counts.
        let run = waiting_bfs(&g, &[SourceOffset::plain(NodeId(0))], &[1, 1, 1], 10, &cfg).unwrap();
        assert_eq!(run.distance(NodeId(3)).finite(), Some(3));
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let cfg = AlgoConfig::default();
        let g = generators::path(4, 1);
        assert!(matches!(
            waiting_bfs(&g, &[], &[1, 1, 1], 10, &cfg),
            Err(AlgoError::EmptySourceSet)
        ));
        assert!(matches!(
            waiting_bfs(&g, &[SourceOffset::plain(NodeId(0))], &[1, 1], 10, &cfg),
            Err(AlgoError::WeightMapMismatch { expected: 3, found: 2 })
        ));
        assert!(matches!(
            waiting_bfs(&g, &[SourceOffset::plain(NodeId(0))], &[1, 0, 1], 10, &cfg),
            Err(AlgoError::ZeroWeightNotSupported { .. })
        ));
        assert!(matches!(
            waiting_bfs(&g, &[SourceOffset::plain(NodeId(7))], &[1, 1, 1], 10, &cfg),
            Err(AlgoError::SourceOutOfRange { .. })
        ));
    }
}
