//! Low-energy `D`-thresholded BFS (Theorems 3.8, 3.13, 3.14).
//!
//! Nodes coordinate their sleep/wake schedules through a layered sparse cover
//! (Definition 3.4): clusters of the level-`j` cover run the periodic
//! convergecast/broadcast schedule of Section 3.1.1 with period `B^j`, and a
//! cluster is *activated* only once the BFS wavefront has reached its parent
//! cluster. Because the parent contains the `B^{j+1}/2`-neighborhood of the
//! cluster and the wavefront advances only one hop every `slowdown` rounds,
//! the activation signal always arrives before the wavefront does — this is
//! the invariant of Lemma 3.7, and this implementation *checks it
//! computationally on every run* (returning
//! [`AlgoError::WakeScheduleViolation`] if the configured constants ever
//! violate it).
//!
//! ## Simulation methodology
//!
//! The wavefront itself and the cover structures are computed exactly; the
//! per-node awake-round accounting is derived from the measured cover
//! (periods, tree depths, activation windows) using the closed-form awake
//! bound of [`ClusterSchedule`], and the megaround factor (Section 3.1.3) is
//! the *measured* maximum number of cluster trees sharing an edge. See
//! DESIGN.md §6 for why this substitution preserves the claimed behaviour.

use congest_cover::{ClusterSchedule, LayeredCover};
use congest_graph::{Distance, Graph, NodeId};
use congest_sim::Metrics;
use serde::{Deserialize, Serialize};

use crate::result::DistanceOutput;
use crate::{AlgoConfig, AlgoError};

/// The outcome of a low-energy BFS run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyBfsRun {
    /// Hop distances from the source set (infinite beyond `limit`).
    pub output: DistanceOutput,
    /// Complexity measurements in the sleeping model.
    pub metrics: Metrics,
    /// The BFS slowdown used (rounds per wavefront hop).
    pub slowdown: u64,
    /// The megaround width used (maximum cluster trees sharing one edge).
    pub megaround: u64,
    /// Number of levels of the layered cover.
    pub cover_levels: usize,
    /// Rounds charged to constructing the layered cover (Theorems 3.12/3.13).
    pub cover_build_rounds: u64,
}

impl EnergyBfsRun {
    /// The distance of node `v`.
    pub fn distance(&self, v: NodeId) -> Distance {
        self.output.distance(v)
    }
}

/// Runs low-energy `limit`-thresholded BFS from scratch: constructs the
/// layered cover (charging its cost per Theorem 3.12/3.13) and then runs the
/// covered BFS (Theorem 3.8).
///
/// # Errors
///
/// Returns an error for an empty or out-of-range source set, or if the wake
/// schedule invariant (Lemma 3.7) is violated by the configured constants.
pub fn low_energy_bfs(
    g: &Graph,
    sources: &[NodeId],
    limit: u64,
    config: &AlgoConfig,
) -> Result<EnergyBfsRun, AlgoError> {
    let cover = LayeredCover::construct_default(g, limit.max(1));
    low_energy_bfs_with_cover(g, sources, limit, &cover, true, config)
}

/// Runs low-energy `limit`-thresholded BFS with a pre-built layered cover.
/// Set `charge_cover_build` to also charge the cover-construction cost
/// (Theorem 3.13); pass `false` when the cover is reused across many BFS
/// calls (as the CSSP recursion does).
///
/// # Errors
///
/// Same conditions as [`low_energy_bfs`].
pub fn low_energy_bfs_with_cover(
    g: &Graph,
    sources: &[NodeId],
    limit: u64,
    cover: &LayeredCover,
    charge_cover_build: bool,
    config: &AlgoConfig,
) -> Result<EnergyBfsRun, AlgoError> {
    if sources.is_empty() {
        return Err(AlgoError::EmptySourceSet);
    }
    for &s in sources {
        if !g.contains_node(s) {
            return Err(AlgoError::SourceOutOfRange { node: s });
        }
    }
    let n = g.node_count() as usize;
    let m = g.edge_count() as usize;
    let mut metrics = Metrics::zero(n, m);

    // What the BFS computes (exactly the classic wavefront).
    let truth = congest_graph::sequential::bfs(g, sources);
    let distances: Vec<Distance> = truth
        .distances
        .iter()
        .map(|&d| if d <= Distance::Finite(limit) { d } else { Distance::Infinite })
        .collect();

    let levels = cover.level_count();
    // Megaround width: maximum number of cluster trees sharing one edge,
    // summed over levels (Section 3.1.3: all tree subroutines share edges).
    let megaround: u64 =
        cover.levels.iter().map(|lvl| lvl.stats().max_edge_tree_load as u64).sum::<u64>().max(1);

    // Slowdown: the wavefront must advance slowly enough that an activation
    // signal (latency of the parent cluster's schedule) always beats the
    // wavefront across the B^{j+1}/2 buffer zone (Lemma 3.7).
    let mut slowdown = config.min_bfs_slowdown.max(1);
    for j in 1..levels {
        let period = cover.radius(j);
        let depth = cover.levels[j].max_tree_depth();
        let latency = ClusterSchedule::new(period, depth).propagation_latency();
        let buffer = (cover.radius(j) / 2).max(1);
        slowdown = slowdown.max(latency.div_ceil(buffer));
    }
    slowdown = slowdown.saturating_mul(config.slowdown_safety_factor.max(1));

    // Initialization: one convergecast/broadcast cycle over every cluster
    // (Section 3.3 "Initialization"): O(max tree depth + top period) rounds,
    // every node awake a constant number of rounds per cluster it belongs to.
    let init_rounds = cover
        .levels
        .iter()
        .enumerate()
        .map(|(j, lvl)| 2 * lvl.max_tree_depth() + 2 * cover.radius(j) + 2)
        .max()
        .unwrap_or(2);
    let init_end = init_rounds;
    let t_end = init_end + limit.saturating_mul(slowdown) + slowdown;

    // Per-cluster relevance, activation, and reached times.
    // reached(C) (in rounds) = init_end + slowdown * min member hop distance.
    let mut cluster_relevant: Vec<Vec<bool>> = Vec::with_capacity(levels);
    let mut cluster_active_from: Vec<Vec<u64>> = Vec::with_capacity(levels);
    let mut cluster_reached: Vec<Vec<Option<u64>>> = Vec::with_capacity(levels);
    let is_source = {
        let mut v = vec![false; n];
        for &s in sources {
            v[s.index()] = true;
        }
        v
    };
    // Top level first (relevance flows downward).
    for j in (0..levels).rev() {
        let lvl = &cover.levels[j];
        let mut relevant = vec![false; lvl.clusters.len()];
        let mut reached = vec![None; lvl.clusters.len()];
        let mut active_from = vec![init_end; lvl.clusters.len()];
        for (ci, c) in lvl.clusters.iter().enumerate() {
            // Reached time: first member hit by the (thresholded) wavefront.
            let first_hit = c.members.iter().filter_map(|&v| distances[v.index()].finite()).min();
            reached[ci] = first_hit.map(|h| init_end + h * slowdown);
            if j + 1 == levels {
                relevant[ci] = c.members.iter().any(|&v| is_source[v.index()]);
                active_from[ci] = init_end;
            } else {
                let parent = cover.parent_of(j, c.id).expect("non-top clusters have parents");
                let p_idx = parent.index();
                relevant[ci] = cluster_relevant[levels - 1 - (j + 1)][p_idx];
                let parent_lvl = &cover.levels[j + 1];
                let parent_sched = ClusterSchedule::new(
                    cover.radius(j + 1),
                    parent_lvl.cluster(parent).tree.max_depth(),
                );
                // Activated once the parent detects the wavefront and tells us
                // (or at initialization if the parent holds a source).
                let parent_holds_source =
                    parent_lvl.cluster(parent).members.iter().any(|&v| is_source[v.index()]);
                active_from[ci] = if parent_holds_source {
                    init_end
                } else {
                    match cluster_reached[levels - 1 - (j + 1)][p_idx] {
                        Some(r) => r + parent_sched.propagation_latency(),
                        None => t_end, // parent never reached: stays dormant
                    }
                };
            }
        }
        cluster_relevant.push(relevant);
        cluster_reached.push(reached);
        cluster_active_from.push(active_from);
    }
    // The vectors above are stored top level first; re-index helper.
    let rel = |j: usize, c: usize| cluster_relevant[levels - 1 - j][c];
    let act = |j: usize, c: usize| cluster_active_from[levels - 1 - j][c];
    let rch = |j: usize, c: usize| cluster_reached[levels - 1 - j][c];

    // Lemma 3.7 check: every relevant cluster is fully awake before the
    // wavefront reaches any of its members.
    for j in 0..levels {
        for (ci, _c) in cover.levels[j].clusters.iter().enumerate() {
            if !rel(j, ci) {
                continue;
            }
            if let Some(reached) = rch(j, ci) {
                let awake_at = act(j, ci);
                if awake_at > reached {
                    return Err(AlgoError::WakeScheduleViolation {
                        level: j,
                        reached_at: reached,
                        awake_at,
                    });
                }
            }
        }
    }

    // Energy and message accounting.
    // Init: 1 awake round for the very first round plus a constant number of
    // awake rounds per cluster membership for the initialization cycle.
    for v in 0..n {
        metrics.node_energy[v] += 1;
        let memberships: usize =
            (0..levels).map(|j| cover.levels[j].clusters_of(NodeId(v as u32)).len()).sum();
        metrics.node_energy[v] += 4 * memberships as u64;
    }
    // Cluster-tree traffic and awake windows.
    for j in 0..levels {
        let lvl = &cover.levels[j];
        let period = cover.radius(j);
        for (ci, c) in lvl.clusters.iter().enumerate() {
            if !rel(j, ci) {
                continue;
            }
            let sched = ClusterSchedule::new(period, c.tree.max_depth());
            let from = act(j, ci);
            // The cluster deactivates once all of its reached members have
            // been passed by the wavefront and the fact has propagated, or at
            // the global end of the BFS, whichever is earlier.
            let last_hit = c
                .members
                .iter()
                .filter_map(|&v| distances[v.index()].finite())
                .max()
                .map(|h| init_end + h * slowdown)
                .unwrap_or(from);
            let to = (last_hit + sched.propagation_latency()).min(t_end);
            if to <= from {
                continue;
            }
            let awake = sched.awake_rounds_bound(from, to);
            for (&node, &depth) in c.tree.depth.iter() {
                let _ = depth; // every tree node follows the schedule
                metrics.node_energy[node.index()] += awake;
            }
            // Convergecast/broadcast messages: 2 per tree edge per period.
            let periods = (to - from) / period + 1;
            for (child, parent) in c.tree.edges() {
                if let Some(eid) = edge_between(g, child, parent) {
                    metrics.edge_congestion[eid.index()] += 4 * periods;
                    metrics.messages += 4 * periods;
                }
            }
        }
    }
    // Wavefront traffic: each reached node announces its distance once over
    // each incident edge, and is awake O(1) rounds to do so.
    for v in g.nodes() {
        if distances[v.index()].is_finite() {
            metrics.node_energy[v.index()] += 2;
            for adj in g.neighbors(v) {
                metrics.edge_congestion[adj.edge.index()] += 1;
                metrics.messages += 1;
            }
        }
    }

    // Megarounds: every simulated round stands for `megaround` model rounds
    // and awake nodes stay awake for the full megaround (Section 3.1.3).
    metrics.rounds = t_end;
    metrics.charge_megaround(megaround);

    // Cover construction cost (Theorems 3.12/3.13), charged analytically from
    // the measured level radii: each level costs `factor · B^j · log² n`
    // rounds and `factor · log² n` awake rounds per node.
    let mut cover_build_rounds = 0;
    if charge_cover_build {
        let log2n = ((n.max(2)) as f64).log2().ceil() as u64;
        for j in 0..levels {
            let level_rounds = config.cover_build_round_factor * cover.radius(j) * log2n * log2n;
            cover_build_rounds += level_rounds;
            for v in 0..n {
                metrics.node_energy[v] += config.cover_build_energy_factor * log2n * log2n;
            }
        }
        metrics.rounds += cover_build_rounds;
    }

    // The awake-round accounting uses closed-form upper bounds with additive
    // slack; physically a node can never be awake for more rounds than the
    // execution has, so clamp (this only matters on tiny instances).
    for e in metrics.node_energy.iter_mut() {
        *e = (*e).min(metrics.rounds);
    }

    Ok(EnergyBfsRun {
        output: DistanceOutput { distances },
        metrics,
        slowdown,
        megaround,
        cover_levels: levels,
        cover_build_rounds,
    })
}

/// Finds an edge of `g` between two adjacent nodes (cluster-tree edges are
/// always graph edges because the trees are BFS trees).
fn edge_between(g: &Graph, a: NodeId, b: NodeId) -> Option<congest_graph::EdgeId> {
    g.neighbors(a).iter().find(|adj| adj.neighbor == b).map(|adj| adj.edge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    fn check(g: &Graph, sources: &[NodeId], limit: u64) -> EnergyBfsRun {
        let cfg = AlgoConfig::default();
        let run = low_energy_bfs(g, sources, limit, &cfg).unwrap();
        let truth = sequential::bfs(g, sources);
        for v in g.nodes() {
            let t = truth.distance(v);
            if t <= Distance::Finite(limit) {
                assert_eq!(run.distance(v), t, "node {v}");
            } else {
                assert!(run.distance(v).is_infinite(), "node {v}");
            }
        }
        run
    }

    #[test]
    fn distances_match_bfs_on_various_graphs() {
        check(&generators::path(40, 1), &[NodeId(0)], 40);
        check(&generators::grid(6, 6, 1), &[NodeId(0)], 12);
        check(&generators::random_connected(50, 80, 3), &[NodeId(5)], 50);
        check(&generators::cycle(24, 1), &[NodeId(0), NodeId(12)], 24);
    }

    #[test]
    fn threshold_truncates_far_nodes() {
        let g = generators::path(30, 1);
        let run = check(&g, &[NodeId(0)], 10);
        assert_eq!(run.output.reached_count(), 11);
    }

    #[test]
    fn energy_scales_sublinearly_with_the_diameter() {
        // On a path the always-awake BFS costs Θ(D) energy per node, so
        // quadrupling the path length quadruples its energy. The low-energy
        // BFS's energy is polylogarithmic (times measured cover constants),
        // so its growth factor must be much smaller. (At simulatable sizes the
        // polylog constants still exceed D in absolute terms — see
        // EXPERIMENTS.md E5 — which is why the comparison is about growth.)
        let cfg = AlgoConfig::default();
        let small = generators::path(128, 1);
        let large = generators::path(1024, 1);
        let low_small = low_energy_bfs(&small, &[NodeId(0)], 128, &cfg).unwrap();
        let low_large = low_energy_bfs(&large, &[NodeId(0)], 1024, &cfg).unwrap();
        let naive_small = crate::bfs::bfs(&small, &[NodeId(0)], &cfg).unwrap();
        let naive_large = crate::bfs::bfs(&large, &[NodeId(0)], &cfg).unwrap();
        let low_ratio =
            low_large.metrics.max_energy() as f64 / low_small.metrics.max_energy() as f64;
        let naive_ratio =
            naive_large.metrics.max_energy() as f64 / naive_small.metrics.max_energy() as f64;
        assert!(
            naive_ratio >= 6.0,
            "the always-awake baseline scales with D (ratio {naive_ratio})"
        );
        assert!(
            low_ratio < naive_ratio,
            "low-energy growth {low_ratio} must be below the baseline's {naive_ratio}"
        );
        // Time is allowed to be (polylog-)larger but still finite and bounded.
        assert!(low_large.metrics.rounds >= naive_large.metrics.rounds);
    }

    #[test]
    fn wake_schedule_invariant_holds_with_default_constants() {
        for seed in 0..3 {
            let g = generators::random_connected(60, 100, seed);
            let cfg = AlgoConfig::default();
            assert!(low_energy_bfs(&g, &[NodeId(0)], 60, &cfg).is_ok());
        }
    }

    #[test]
    fn wake_schedule_violation_is_detected_with_absurd_constants() {
        // Force a slowdown of effectively 1 with no safety factor on a long
        // path: the activation signal cannot keep up on deep cluster trees.
        let g = generators::path(120, 1);
        let cfg =
            AlgoConfig { min_bfs_slowdown: 1, slowdown_safety_factor: 1, ..AlgoConfig::default() };
        // Build a cover whose top level is tiny so that latencies are huge
        // relative to the buffer: base 2 gives shallow buffers.
        let cover = LayeredCover::construct(&g, 119, 2);
        let r = low_energy_bfs_with_cover(&g, &[NodeId(0)], 119, &cover, false, &cfg);
        // Either the invariant is violated (expected) or, if the tiny base
        // happens to still satisfy it, the run succeeds; both are acceptable,
        // but a violation must be reported as the dedicated error.
        if let Err(e) = r {
            assert!(matches!(e, AlgoError::WakeScheduleViolation { .. }));
        }
    }

    #[test]
    fn reusing_a_cover_skips_the_build_charge() {
        let g = generators::grid(5, 5, 1);
        let cfg = AlgoConfig::default();
        let cover = LayeredCover::construct_default(&g, 8);
        let with_build =
            low_energy_bfs_with_cover(&g, &[NodeId(0)], 8, &cover, true, &cfg).unwrap();
        let without_build =
            low_energy_bfs_with_cover(&g, &[NodeId(0)], 8, &cover, false, &cfg).unwrap();
        assert!(with_build.metrics.rounds > without_build.metrics.rounds);
        assert_eq!(without_build.cover_build_rounds, 0);
    }

    #[test]
    fn rejects_bad_sources() {
        let g = generators::path(4, 1);
        let cfg = AlgoConfig::default();
        assert!(matches!(low_energy_bfs(&g, &[], 3, &cfg), Err(AlgoError::EmptySourceSet)));
        assert!(matches!(
            low_energy_bfs(&g, &[NodeId(9)], 3, &cfg),
            Err(AlgoError::SourceOutOfRange { .. })
        ));
    }

    #[test]
    fn disconnected_components_stay_asleep() {
        let g = generators::disjoint_copies(&generators::path(20, 1), 2);
        let cfg = AlgoConfig::default();
        let run = low_energy_bfs(&g, &[NodeId(0)], 40, &cfg).unwrap();
        assert_eq!(run.output.reached_count(), 20);
        // Nodes of the sourceless component belong only to irrelevant
        // clusters: their energy is the initialization cost only, strictly
        // below the reached component's nodes.
        let reached_max = (0..20).map(|v| run.metrics.node_energy[v]).max().unwrap();
        let dormant_max = (20..40).map(|v| run.metrics.node_energy[v]).max().unwrap();
        assert!(dormant_max <= reached_max);
    }
}
