//! The sleeping-model ("energy") algorithms of Section 3 of the paper.
//!
//! * [`bfs`] — `D`-thresholded BFS with `poly(log n)` energy per node and
//!   `Õ(D)` time, coordinated through a layered sparse cover
//!   (Theorems 3.8, 3.13, 3.14).
//! * [`cssp`] — weighted closest-source shortest paths with `Õ(n)` time and
//!   `poly(log n)` energy (Theorem 3.15), obtained by plugging the low-energy
//!   BFS and the low-energy spanning forest into the Section-2 recursion.

pub mod bfs;
pub mod cssp;

pub use bfs::{low_energy_bfs, low_energy_bfs_with_cover, EnergyBfsRun};
pub use cssp::{low_energy_cssp, EnergyCsspRun};
