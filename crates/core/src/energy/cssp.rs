//! Low-energy weighted closest-source shortest paths (Theorem 3.15):
//! `Õ(n)` time and `poly(log n)` energy per node.
//!
//! The algorithm is the Section-2 recursion with its two energy-consuming
//! components swapped out (exactly as the paper describes):
//!
//! * the approximate-cutter BFSs become low-energy thresholded BFSs
//!   (Theorem 3.14),
//! * the spanning-forest computation becomes the low-energy Boruvka variant
//!   (Theorem 3.1).
//!
//! ## Simulation methodology
//!
//! The recursion structure (which node participates in which subproblem, and
//! each subproblem's size) is taken from the measured run of
//! [`crate::thresholded::thresholded_cssp`]; the sleeping-model cost of each
//! subproblem is then charged from the measured parameters of a layered
//! sparse cover of the graph (levels, periods, tree depths, megaround width),
//! using the same accounting as [`crate::energy::bfs`]. This keeps the
//! per-node energy tied to the actually-constructed covers and the actually
//! executed recursion rather than to a closed-form formula in `n`.
//! See DESIGN.md §6.

use congest_cover::{ClusterSchedule, LayeredCover};
use congest_graph::{Distance, Graph, NodeId};
use congest_sim::Metrics;
use serde::{Deserialize, Serialize};

use crate::result::{DistanceOutput, SourceOffset};
use crate::spanning_forest::spanning_forest;
use crate::thresholded::{thresholded_cssp, RecursionStats};
use crate::{AlgoConfig, AlgoError};

/// The outcome of a low-energy CSSP run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyCsspRun {
    /// Exact distances from the source set.
    pub output: DistanceOutput,
    /// Sleeping-model complexity measurements.
    pub metrics: Metrics,
    /// Recursion instrumentation inherited from the underlying recursion.
    pub stats: RecursionStats,
    /// The per-subproblem awake-round charge applied to each participating
    /// node (derived from the measured cover).
    pub per_subproblem_energy: u64,
    /// The megaround width used.
    pub megaround: u64,
    /// Number of levels of the layered cover.
    pub cover_levels: usize,
}

impl EnergyCsspRun {
    /// The distance of node `v`.
    pub fn distance(&self, v: NodeId) -> Distance {
        self.output.distance(v)
    }
}

/// Runs low-energy exact CSSP from `sources` (Theorem 3.15). Edge weights
/// must be positive.
///
/// # Errors
///
/// Returns an error for an empty/out-of-range source set, zero edge weights,
/// or a failure of the underlying recursion.
pub fn low_energy_cssp(
    g: &Graph,
    sources: &[NodeId],
    config: &AlgoConfig,
) -> Result<EnergyCsspRun, AlgoError> {
    if sources.is_empty() {
        return Err(AlgoError::EmptySourceSet);
    }
    let offsets: Vec<SourceOffset> = sources.iter().map(|&s| SourceOffset::plain(s)).collect();
    let threshold = g.distance_upper_bound().max(1);
    // The recursion: correctness, per-edge congestion, message counts, and
    // participation structure all come from here.
    let base = thresholded_cssp(g, &offsets, threshold, config)?;

    let n = g.node_count() as usize;
    let m = g.edge_count() as usize;
    let log2n = ((n.max(2)) as f64).log2().ceil() as u64;

    // One layered cover of the whole graph, built for hop radius n (every
    // BFS the recursion performs is a thresholded BFS over at most n hops in
    // the rounded graph). Its measured parameters drive the energy charges.
    let cover = LayeredCover::construct_default(g, g.node_count() as u64);
    let levels = cover.level_count();
    let megaround: u64 =
        cover.levels.iter().map(|lvl| lvl.stats().max_edge_tree_load as u64).sum::<u64>().max(1);
    // Awake rounds a node spends per low-energy thresholded BFS: a constant
    // number of awake rounds per period per cluster it belongs to, over the
    // activation window of O(B) periods at each level, plus initialization —
    // the same accounting as `energy::bfs`, aggregated per level.
    let mut per_bfs_energy: u64 = 0;
    for j in 0..levels {
        let lvl = &cover.levels[j];
        let stats = lvl.stats();
        let period = cover.radius(j);
        let sched = ClusterSchedule::new(period, stats.max_tree_depth);
        // A cluster stays active for O(parent diameter) wavefront steps.
        let window = if j + 1 < levels {
            2 * cover.levels[j + 1].max_tree_depth() + 2 * cover.radius(j + 1)
        } else {
            2 * stats.max_tree_depth + 2 * period
        };
        per_bfs_energy += stats.max_membership as u64 * sched.awake_rounds_bound(0, window.max(1));
        per_bfs_energy += 4 * stats.max_membership as u64; // initialization cycle
    }
    per_bfs_energy = per_bfs_energy.max(1).saturating_mul(megaround);
    // Each subproblem performs O(log n) thresholded BFSs (the rounded waiting
    // BFS is simulated as O(1) thresholded BFS sweeps with ε = 1/2) plus one
    // low-energy forest phase of O(log n) convergecasts.
    let per_subproblem_energy = per_bfs_energy + 4 * log2n * megaround;

    // Time: each subproblem of size n' costs O(ε⁻¹ · n') wavefront steps times
    // the slowdown and megaround width, plus the forest time.
    let mut slowdown = config.min_bfs_slowdown.max(1);
    for j in 1..levels {
        let latency = ClusterSchedule::new(cover.radius(j), cover.levels[j].max_tree_depth())
            .propagation_latency();
        slowdown = slowdown.max(latency.div_ceil((cover.radius(j) / 2).max(1)));
    }
    slowdown = slowdown.saturating_mul(config.slowdown_safety_factor.max(1));
    let cutter_steps_per_node = 2 * config.epsilon_inverse + 1;
    let rounds = base
        .stats
        .total_subproblem_size
        .saturating_mul(cutter_steps_per_node)
        .saturating_mul(slowdown)
        .saturating_mul(megaround);
    // Cover construction (Theorem 3.13 bootstrap), charged once.
    let cover_build_rounds: u64 = (0..levels)
        .map(|j| config.cover_build_round_factor * cover.radius(j) * log2n * log2n)
        .sum();
    let cover_build_energy = config.cover_build_energy_factor * log2n * log2n * levels as u64;

    // Low-energy forest of the whole graph (Theorem 3.1) contributes its own
    // measured metrics once per recursion level.
    let (_forest, forest_metrics) = spanning_forest(g, true);

    let mut metrics = Metrics::zero(n, m);
    metrics.rounds = rounds + cover_build_rounds + forest_metrics.rounds * base.stats.levels as u64;
    metrics.messages = base.metrics.messages;
    // The fault counters are facts about what the fault plan did to the
    // simulated recursion underneath, not charged quantities — carry them
    // through so faulty runs don't report a clean fabric.
    metrics.fault_drops = base.metrics.fault_drops;
    metrics.fault_delays = base.metrics.fault_delays;
    metrics.crashes = base.metrics.crashes;
    metrics.restarts = base.metrics.restarts;
    metrics.edge_congestion = base.metrics.edge_congestion.clone();
    // Add the cluster-tree traffic to the congestion: each cluster-tree edge
    // carries a constant number of messages per period per BFS.
    for (e, c) in metrics.edge_congestion.iter_mut().enumerate() {
        let _ = e;
        *c += 4 * levels as u64;
    }
    for v in 0..n {
        metrics.node_energy[v] = base.stats.participation[v]
            .saturating_mul(per_subproblem_energy)
            .saturating_add(cover_build_energy)
            .saturating_add(forest_metrics.node_energy[v] * base.stats.levels as u64)
            // A node can never be awake for more rounds than the execution has.
            .min(metrics.rounds);
    }

    Ok(EnergyCsspRun {
        output: base.output,
        metrics,
        stats: base.stats,
        per_subproblem_energy,
        megaround,
        cover_levels: levels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    fn check(g: &Graph, sources: &[NodeId]) -> EnergyCsspRun {
        let run = low_energy_cssp(g, sources, &AlgoConfig::default()).unwrap();
        let truth = sequential::dijkstra(g, sources);
        for v in g.nodes() {
            assert_eq!(run.distance(v), truth.distance(v), "node {v}");
        }
        run
    }

    #[test]
    fn distances_are_exact() {
        for seed in 0..3 {
            let g = generators::with_random_weights(
                &generators::random_connected(30, 45, seed),
                8,
                seed,
            );
            check(&g, &[NodeId(0)]);
        }
    }

    #[test]
    fn multi_source_distances_are_exact() {
        let g = generators::with_random_weights(&generators::grid(5, 5, 1), 5, 1);
        check(&g, &[NodeId(0), NodeId(24)]);
    }

    #[test]
    fn energy_grows_with_participation_not_with_n() {
        // The energy of every node is (participation) × (polylog charge): it
        // must stay far below the always-awake cost of Θ(n) per node once n is
        // moderately large.
        let g = generators::path(128, 2);
        let run = check(&g, &[NodeId(0)]);
        let always_awake = run.metrics.rounds; // what a naive node would pay
        assert!(run.metrics.max_energy() < always_awake);
        assert!(run.per_subproblem_energy > 0);
        assert!(run.megaround >= 1);
        assert!(run.cover_levels >= 1);
    }

    #[test]
    fn rejects_zero_weights_and_empty_sources() {
        let cfg = AlgoConfig::default();
        let g = Graph::from_edges(3, [(0, 1, 0), (1, 2, 1)]).unwrap();
        assert!(matches!(
            low_energy_cssp(&g, &[NodeId(0)], &cfg),
            Err(AlgoError::ZeroWeightNotSupported { .. })
        ));
        let g = generators::path(3, 1);
        assert!(matches!(low_energy_cssp(&g, &[], &cfg), Err(AlgoError::EmptySourceSet)));
    }
}
