//! A *sequential* BMSSP-style recursive bounded-multi-source shortest-path
//! solver — the centralized rival baseline ([`crate::solver::Algorithm::SeqRecursive`],
//! registry name `seq-bmssp`).
//!
//! The paper's distributed recursion (Section 2.3) divides on *distance*:
//! solve the near band exactly, then restart from the band boundary. The
//! fastest known sequential SSSP algorithms beyond Dijkstra (the
//! bounded-multi-source recursion of Duan et al.'s BMSSP line) share that
//! skeleton, so this module implements it as an exact sequential registry
//! entrant every experiment table can compare against:
//!
//! * `rec(F, lo, hi)` is handed a frontier `F` of `(tentative, node)` seeds —
//!   exactly the relaxations that crossed into `[lo, hi)` from nodes settled
//!   below `lo` — and must settle every node whose true distance lies in
//!   `[lo, hi)`, returning the relaxations that cross `hi` as *pending* seeds
//!   for later bands.
//! * Wide bands split at `mid`: recurse on `[lo, mid)`, merge the returned
//!   crossings with the frontier entries already in `[mid, hi)` (dropping
//!   stale and settled entries, deduplicating each node to its minimum — the
//!   pivot-reduction step), then recurse on `[mid, hi)`.
//! * Narrow bands run a bounded Dijkstra on the workspace's monotone
//!   [`RadixHeap`]: settle while the key is below `hi`, record crossings.
//!
//! Exactness is the band-completeness invariant: every shortest path enters a
//! band either through a frontier seed carrying its exact value (the crossing
//! relaxation from its settled predecessor) or through an in-band relaxation,
//! and the base case's Dijkstra completes all in-band chains. The registry
//! differential proptests (`tests/solver_registry.rs`) and the E17 gate pin
//! this against both sequential Dijkstra oracles on every generator family.
//!
//! Being centralized, the solver charges *sequential-work* metrics rather
//! than CONGEST rounds: `rounds` counts heap pops, `messages` and per-edge
//! congestion count edge relaxations, and per-node energy counts settlements
//! — so its rows remain comparable in every table without pretending it paid
//! distributed coordination costs.

use congest_graph::{Distance, Graph, NodeId, RadixHeap};
use congest_sim::Metrics;

use crate::result::DistanceOutput;
use crate::thresholded::RecursionStats;
use crate::{AlgoConfig, AlgoError};

/// The recursion splits the initial distance range into at most this many
/// base-width bands (a 6-level tree), so merge overhead stays bounded while
/// the recursion structure remains observable in the E10-style stats. The
/// base case is *width*-based, never frontier-size-based: the whole point of
/// the banded recursion is that even a one-node frontier must not run an
/// unbounded Dijkstra.
const TARGET_LEAVES: u64 = 64;

/// The result of a [`seq_recursive`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqRecursiveRun {
    /// Exact distances for every node with `dist(S, v) <= bound`; `Infinite`
    /// for nodes beyond the bound or unreachable.
    pub output: DistanceOutput,
    /// Sequential-work accounting (see the module docs).
    pub metrics: Metrics,
    /// Recursion-tree shape, comparable with the distributed recursion's
    /// [`crate::result::RecursionReport`].
    pub stats: RecursionStats,
}

struct Rec<'g> {
    g: &'g Graph,
    dist: Vec<Distance>,
    settled: Vec<bool>,
    heap: RadixHeap,
    metrics: Metrics,
    stats: RecursionStats,
    base_width: u64,
}

impl Rec<'_> {
    /// Settles every node whose true distance from the source set lies in
    /// `[lo, hi)`, given `frontier` = all crossing relaxations into the band,
    /// and returns the relaxations that cross `hi`.
    fn rec(&mut self, frontier: Vec<(u64, u32)>, lo: u64, hi: u64, depth: u32) -> Vec<(u64, u32)> {
        if frontier.is_empty() {
            return frontier;
        }
        self.stats.subproblems += 1;
        self.stats.total_subproblem_size += frontier.len() as u64;
        self.stats.levels = self.stats.levels.max(depth + 1);
        for &(_, v) in &frontier {
            self.stats.participation[v as usize] += 1;
        }
        if hi - lo <= self.base_width {
            return self.base_case(frontier, hi);
        }
        let mid = lo + (hi - lo) / 2;
        let mut low = Vec::with_capacity(frontier.len());
        let mut high = Vec::new();
        for e in frontier {
            if e.0 < mid {
                low.push(e);
            } else {
                high.push(e);
            }
        }
        let pending_low = self.rec(low, lo, mid, depth + 1);
        // Pivot reduction: merge the lower band's crossings with the original
        // upper-band seeds, drop stale/settled entries, and deduplicate each
        // node to its minimum tentative value.
        high.extend(pending_low);
        let mut upper = Vec::with_capacity(high.len());
        let mut beyond = Vec::new();
        for (d, v) in high {
            if self.settled[v as usize] || Distance::Finite(d) > self.dist[v as usize] {
                continue;
            }
            if d < hi {
                upper.push((v, d));
            } else {
                beyond.push((d, v));
            }
        }
        upper.sort_unstable();
        upper.dedup_by_key(|e| e.0);
        let upper: Vec<(u64, u32)> = upper.into_iter().map(|(v, d)| (d, v)).collect();
        beyond.extend(self.rec(upper, mid, hi, depth + 1));
        beyond
    }

    /// Bounded Dijkstra: settles keys `< hi`, records crossings `>= hi`.
    fn base_case(&mut self, frontier: Vec<(u64, u32)>, hi: u64) -> Vec<(u64, u32)> {
        self.heap.clear();
        for &(d, v) in &frontier {
            if !self.settled[v as usize] && Distance::Finite(d) == self.dist[v as usize] {
                self.heap.push(d, v);
            }
        }
        let mut pending = Vec::new();
        while let Some((d, v)) = self.heap.pop() {
            self.metrics.rounds += 1;
            let vi = v as usize;
            if self.settled[vi] || Distance::Finite(d) > self.dist[vi] {
                continue;
            }
            debug_assert!(d < hi, "settle keys stay inside the band");
            self.settled[vi] = true;
            self.metrics.node_energy[vi] += 1;
            for adj in self.g.neighbors(NodeId(v)) {
                self.metrics.messages += 1;
                self.metrics.edge_congestion[adj.edge.index()] += 1;
                let ni = adj.neighbor.index();
                let nd = d.saturating_add(adj.weight);
                if !self.settled[ni] && Distance::Finite(nd) < self.dist[ni] {
                    self.dist[ni] = Distance::Finite(nd);
                    if nd < hi {
                        self.heap.push(nd, adj.neighbor.0);
                    } else {
                        pending.push((nd, adj.neighbor.0));
                    }
                }
            }
        }
        pending
    }
}

/// Runs the sequential BMSSP-style recursion from `sources`, settling exactly
/// the nodes with `dist(sources, v) <= bound` (pass
/// [`Graph::distance_upper_bound`] for an untruncated run).
///
/// # Errors
///
/// Returns an error if the source set is empty or a source is out of range.
pub fn seq_recursive(
    g: &Graph,
    sources: &[NodeId],
    bound: u64,
    _config: &AlgoConfig,
) -> Result<SeqRecursiveRun, AlgoError> {
    if sources.is_empty() {
        return Err(AlgoError::EmptySourceSet);
    }
    for &s in sources {
        if !g.contains_node(s) {
            return Err(AlgoError::SourceOutOfRange { node: s });
        }
    }
    let n = g.node_count() as usize;
    let m = g.edge_count() as usize;
    // Exclusive upper bound: settle keys <= bound.
    let hi = bound.saturating_add(1);
    let mut rec = Rec {
        g,
        dist: vec![Distance::Infinite; n],
        settled: vec![false; n],
        heap: RadixHeap::new(),
        metrics: Metrics::zero(n, m),
        stats: RecursionStats {
            subproblems: 0,
            participation: vec![0; n],
            total_subproblem_size: 0,
            levels: 0,
        },
        base_width: (hi / TARGET_LEAVES).max(1),
    };
    let mut frontier = Vec::with_capacity(sources.len());
    for &s in sources {
        if rec.dist[s.index()].is_infinite() {
            rec.dist[s.index()] = Distance::ZERO;
            frontier.push((0, s.0));
        }
    }
    let _beyond_bound = rec.rec(frontier, 0, hi, 0);
    let distances = rec
        .dist
        .iter()
        .zip(&rec.settled)
        .map(|(&d, &s)| if s { d } else { Distance::Infinite })
        .collect();
    Ok(SeqRecursiveRun {
        output: DistanceOutput { distances },
        metrics: rec.metrics,
        stats: rec.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    fn untruncated(g: &Graph, sources: &[NodeId]) -> SeqRecursiveRun {
        seq_recursive(g, sources, g.distance_upper_bound().max(1), &AlgoConfig::default()).unwrap()
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..6 {
            let g = generators::with_random_weights(
                &generators::random_connected(40, 80, seed),
                50,
                seed,
            );
            let run = untruncated(&g, &[NodeId(0)]);
            let truth = sequential::dijkstra(&g, &[NodeId(0)]);
            assert_eq!(run.output.distances, truth.distances, "seed {seed}");
            assert!(run.metrics.rounds > 0 && run.metrics.messages > 0);
            assert!(run.stats.subproblems > 0);
        }
    }

    #[test]
    fn matches_dijkstra_on_killer_families() {
        let cases = [
            generators::wrong_dijkstra_killer(48),
            generators::spfa_killer(24),
            generators::grid_swirl(7),
            generators::almost_line(64, 3),
            generators::max_dense(24, 5),
            generators::max_dense_zero(20, 5),
        ];
        for (i, g) in cases.iter().enumerate() {
            let run = untruncated(g, &[NodeId(0)]);
            let truth = sequential::dijkstra(g, &[NodeId(0)]);
            assert_eq!(run.output.distances, truth.distances, "killer case {i}");
        }
    }

    #[test]
    fn multi_source_and_zero_weights() {
        let g =
            generators::with_random_weights_zero(&generators::random_connected(30, 60, 9), 7, 9);
        let sources = [NodeId(0), NodeId(17), NodeId(17)];
        let run = untruncated(&g, &sources);
        let truth = sequential::dijkstra(&g, &sources);
        assert_eq!(run.output.distances, truth.distances);
    }

    #[test]
    fn disconnected_nodes_stay_infinite() {
        let g = generators::disjoint_copies(&generators::path(5, 2), 2);
        let run = untruncated(&g, &[NodeId(1)]);
        assert_eq!(run.output.reached_count(), 5);
        assert!(run.output.distances[7].is_infinite());
    }

    #[test]
    fn bound_truncates_exactly() {
        let g = generators::path(10, 3); // distances 0, 3, 6, ..., 27
        let run = seq_recursive(&g, &[NodeId(0)], 9, &AlgoConfig::default()).unwrap();
        for v in 0..10 {
            let expect = 3 * v as u64;
            if expect <= 9 {
                assert_eq!(run.output.distances[v].finite(), Some(expect));
            } else {
                assert!(run.output.distances[v].is_infinite(), "node {v} beyond bound");
            }
        }
        // Zero bound settles exactly the source (no zero-weight edges here).
        let run = seq_recursive(&g, &[NodeId(4)], 0, &AlgoConfig::default()).unwrap();
        assert_eq!(run.output.reached_count(), 1);
    }

    #[test]
    fn recursion_actually_recurses_on_wide_ranges() {
        let g = generators::with_random_weights(&generators::random_connected(60, 160, 4), 1000, 4);
        let run = untruncated(&g, &[NodeId(0)]);
        assert!(run.stats.levels > 1, "wide range must split: {:?}", run.stats.levels);
        assert!(run.stats.subproblems > 1);
        assert!(run.stats.max_participation() >= 1);
        assert_eq!(run.output.distances, sequential::dijkstra(&g, &[NodeId(0)]).distances);
    }

    #[test]
    fn rejects_bad_input() {
        let g = generators::path(3, 1);
        let cfg = AlgoConfig::default();
        assert!(matches!(seq_recursive(&g, &[], 10, &cfg), Err(AlgoError::EmptySourceSet)));
        assert!(matches!(
            seq_recursive(&g, &[NodeId(9)], 10, &cfg),
            Err(AlgoError::SourceOutOfRange { .. })
        ));
    }
}
