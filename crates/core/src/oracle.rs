//! Builds the sparse-cover distance oracle of `congest_oracle` on top of this
//! crate's solver facade.
//!
//! Preprocessing runs a geometric sequence of sparse covers (radius `d = 1,
//! 2, 4, …`) and, for every cluster, one ordinary [`Algorithm::Cssp`] run
//! from the cluster center on the cluster's induced subgraph — the oracle
//! reuses the registry's solvers rather than carrying a private shortest-path
//! implementation, so its preprocessing cost is measured in the same
//! rounds/messages/congestion currency as every other algorithm. Graphs at or
//! below [`OracleConfig::fallback_threshold`] nodes skip the hierarchy and
//! materialize exact APSP through the registry's own random-delay
//! composition.
//!
//! The level loop stops as soon as one cover's clusters contain whole
//! connected components ([`SparseCover::is_component_cover`]): at that level
//! every connected pair already shares a cluster, so larger radii add space
//! without adding answers.

use std::collections::BTreeSet;

use congest_cover::{geometric_levels, CoverStats, SparseCover};
use congest_graph::{Distance, Graph, NodeId};

pub use congest_oracle::{DistanceOracle, LevelBuilder, OracleConfig, OracleLevel, OracleStats};

use crate::apsp::{apsp, ApspConfig};
use crate::result::OracleReport;
use crate::solver::{Algorithm, Solver};
use crate::{AlgoConfig, AlgoError};

/// A built [`DistanceOracle`] together with the measured cost of building it
/// and the construction report the facade embeds into its
/// [`crate::RunReport`].
#[derive(Debug, Clone)]
pub struct OracleBuild {
    /// The query-ready oracle.
    pub oracle: DistanceOracle,
    /// Total simulated rounds of preprocessing (summed over the per-cluster
    /// SSSP runs, or the APSP schedule's model rounds on the fallback).
    pub rounds: u64,
    /// Total messages of preprocessing.
    pub messages: u64,
    /// Maximum per-edge congestion of any single preprocessing run.
    pub max_congestion: u64,
    /// Space/stretch accounting plus validated per-level cover statistics.
    pub report: OracleReport,
}

/// Builds a [`DistanceOracle`] for `g`.
///
/// # Errors
///
/// Whatever the underlying [`Algorithm::Cssp`] / APSP runs report (zero
/// weights, simulation failures); the cover construction itself is
/// deterministic and infallible.
pub fn build_oracle(
    g: &Graph,
    config: &AlgoConfig,
    oracle_config: &OracleConfig,
    apsp_config: &ApspConfig,
) -> Result<OracleBuild, AlgoError> {
    let n = g.node_count();
    if n <= oracle_config.fallback_threshold {
        let run = apsp(g, config, apsp_config)?;
        let rounds = run.schedule.model_rounds;
        let max_congestion = run.schedule.congestion;
        let messages = run.total_messages;
        let oracle = DistanceOracle::exact(n, run.distances);
        let report = report_of(&oracle, Vec::new());
        return Ok(OracleBuild { oracle, rounds, messages, max_congestion, report });
    }

    let mut levels = Vec::new();
    let mut level_stats = Vec::new();
    let mut rounds = 0u64;
    let mut messages = 0u64;
    let mut max_congestion = 0u64;
    for d in geometric_levels(u64::from(n.saturating_sub(1)).max(1)) {
        let cover = SparseCover::construct(g, d);
        let stats = cover.validate(g).expect("constructed cover validates");
        let mut builder = LevelBuilder::new(n, d);
        for cluster in &cover.clusters {
            if cluster.members.len() == 1 {
                builder.push_cluster(&cluster.members, &[Distance::ZERO]);
                continue;
            }
            let keep: BTreeSet<NodeId> = cluster.members.iter().copied().collect();
            let (sub, new_to_old) = g.induced_subgraph(&keep);
            let center =
                new_to_old.binary_search(&cluster.center).expect("cluster center is a member");
            let run = Solver::on(&sub)
                .algorithm(Algorithm::Cssp)
                .source(NodeId(center as u32))
                .config(config.clone())
                .run()?;
            rounds += run.report.rounds;
            messages += run.report.messages;
            max_congestion = max_congestion.max(run.report.max_congestion);
            builder.push_cluster(&new_to_old, &run.output.distances);
        }
        levels.push(builder.finish());
        level_stats.push(stats);
        if cover.is_component_cover(g) {
            break;
        }
    }

    let oracle = DistanceOracle::from_levels(n, levels);
    let report = report_of(&oracle, level_stats);
    Ok(OracleBuild { oracle, rounds, messages, max_congestion, report })
}

fn report_of(oracle: &DistanceOracle, level_stats: Vec<CoverStats>) -> OracleReport {
    let stats = oracle.stats();
    OracleReport {
        fallback: stats.fallback,
        levels: stats.levels,
        clusters: stats.clusters,
        bytes: stats.bytes,
        exact_matrix_bytes: stats.exact_matrix_bytes,
        stretch_bound: stats.stretch_bound,
        max_membership: stats.max_membership,
        max_tree_depth: level_stats.iter().map(|s| s.max_tree_depth).max().unwrap_or(0),
        level_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    fn weighted(n: u32, seed: u64) -> Graph {
        generators::with_random_weights(
            &generators::random_connected(n, 2 * n as u64, seed),
            9,
            seed,
        )
    }

    #[test]
    fn fallback_oracle_is_exact() {
        let g = weighted(20, 3);
        let build = build_oracle(
            &g,
            &AlgoConfig::default(),
            &OracleConfig::default(),
            &ApspConfig::default(),
        )
        .unwrap();
        assert!(build.oracle.is_exact());
        assert!(build.report.fallback && build.report.level_stats.is_empty());
        assert!(build.rounds > 0 && build.messages > 0);
        let truth = sequential::all_pairs(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(build.oracle.query(u, v), truth[u.index()][v.index()]);
            }
        }
    }

    #[test]
    fn cover_oracle_respects_its_stretch_bound() {
        let g = weighted(30, 7);
        let build = build_oracle(
            &g,
            &AlgoConfig::default(),
            &OracleConfig::default().with_fallback_threshold(0),
            &ApspConfig::default(),
        )
        .unwrap();
        assert!(!build.oracle.is_exact());
        let report = &build.report;
        assert!(report.levels > 0 && report.levels as usize == report.level_stats.len());
        assert!(report.stretch_bound >= 1);
        assert!(build.rounds > 0 && build.messages > 0 && build.max_congestion > 0);
        let truth = sequential::all_pairs(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                let est = build.oracle.query(u, v).expect_finite();
                let t = truth[u.index()][v.index()].expect_finite();
                assert!(t <= est, "({u},{v}): underestimate {est} < {t}");
                assert!(
                    est <= t * report.stretch_bound,
                    "({u},{v}): {est} > {t} × {}",
                    report.stretch_bound
                );
            }
        }
    }

    #[test]
    fn disconnected_pairs_are_infinite() {
        // Two disjoint paths: the component-cover stop still terminates and
        // cross-component queries answer Infinite.
        let g = generators::disjoint_copies(&generators::path(4, 2), 2);
        let build = build_oracle(
            &g,
            &AlgoConfig::default(),
            &OracleConfig::default().with_fallback_threshold(0),
            &ApspConfig::default(),
        )
        .unwrap();
        assert!(build.oracle.query(NodeId(0), NodeId(7)).is_infinite());
        assert!(build.oracle.query(NodeId(0), NodeId(3)).is_finite());
    }
}
