//! Distributed shortest-path algorithms from *"A Near-Optimal Low-Energy
//! Deterministic Distributed SSSP with Ramifications on Congestion and APSP"*
//! (Ghaffari & Trygub, PODC 2024), implemented over the CONGEST / sleeping
//! model simulator of [`congest_sim`].
//!
//! # What is in here
//!
//! * **Low-congestion exact SSSP/CSSP** ([`cssp`], [`thresholded`],
//!   [`approx`], [`spanning_forest`]): the recursive "distributified
//!   Dijkstra" of Section 2 — `Õ(n)` rounds, `Õ(m)` messages, and only
//!   `poly(log n)` messages over any single edge (Theorems 2.6, 2.7).
//! * **APSP in `Õ(n)` rounds** ([`apsp`]): `n` independent SSSP instances
//!   composed with random-delay scheduling.
//! * **Low-energy BFS and CSSP** ([`energy`]): the sleeping-model algorithms
//!   of Section 3, coordinated through the deterministic sparse covers of
//!   [`congest_cover`] — `poly(log n)` awake rounds per node
//!   (Theorems 3.8, 3.13, 3.14, 3.15).
//! * **Baselines** ([`baseline`], [`bfs`]): distributed Bellman–Ford,
//!   distributed Dijkstra, and the always-awake BFS, for the experiments in
//!   `EXPERIMENTS.md`.
//! * **A sequential rival** ([`seq_recursive`]): a centralized BMSSP-style
//!   recursive bounded-multi-source solver (registry name `seq-bmssp`), so
//!   every table compares the paper's algorithms against a serious
//!   sequential baseline — see `docs/SEQ_BASELINES.md`.
//!
//! All of the above are reachable uniformly through the [`solver`] facade:
//! [`Solver::on`] builds a request, [`registry`] enumerates every algorithm
//! with its capability flags, and every run returns the same
//! [`SolverRun`]/[`RunReport`] pair. The per-algorithm free functions remain
//! as stable thin entry points the facade delegates to.
//!
//! # Quick start
//!
//! ```
//! use congest_graph::{generators, NodeId};
//! use congest_sssp::{Algorithm, Solver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::with_random_weights(&generators::grid(6, 6, 1), 10, 42);
//! let run = Solver::on(&g).algorithm(Algorithm::Cssp).source(NodeId(0)).run()?;
//! println!(
//!     "distance to the far corner: {}, rounds: {}, max congestion: {}",
//!     run.distance(NodeId(35)),
//!     run.report.rounds,
//!     run.report.max_congestion
//! );
//! # Ok(())
//! # }
//! ```
//!
//! Iterating solvers generically via the registry:
//!
//! ```
//! use congest_graph::{generators, NodeId};
//! use congest_sssp::{registry, Solver};
//!
//! # fn main() -> Result<(), congest_sssp::AlgoError> {
//! let g = generators::path(8, 1);
//! for info in registry().iter().filter(|i| i.exact() && !i.all_pairs) {
//!     let run = Solver::on(&g).algorithm(info.algorithm).source(NodeId(0)).run()?;
//!     assert_eq!(run.distance(NodeId(7)).finite(), Some(7), "{}", info.name);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod apsp;
pub mod baseline;
pub mod bfs;
mod config;
pub mod cssp;
pub mod energy;
mod error;
pub mod oracle;
mod result;
pub mod seq_recursive;
pub mod solver;
pub mod spanning_forest;
pub mod thresholded;
pub mod weighted_bfs;

pub use config::AlgoConfig;
pub use error::AlgoError;
pub use oracle::{build_oracle, DistanceOracle, OracleBuild, OracleConfig, OracleStats};
pub use result::{
    AlgoRun, DistanceOutput, OracleReport, RecursionReport, RunReport, ScheduleReport,
    SleepingReport, SourceOffset,
};
pub use solver::{registry, Algorithm, AlgorithmInfo, Solver, SolverRequest, SolverRun};

// Fault-injection surface, re-exported so experiment drivers can build chaos
// configurations without depending on `congest_sim` directly.
pub use congest_sim::{CrashEvent, FaultPlan};
