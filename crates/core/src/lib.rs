//! Distributed shortest-path algorithms from *"A Near-Optimal Low-Energy
//! Deterministic Distributed SSSP with Ramifications on Congestion and APSP"*
//! (Ghaffari & Trygub, PODC 2024), implemented over the CONGEST / sleeping
//! model simulator of [`congest_sim`].
//!
//! # What is in here
//!
//! * **Low-congestion exact SSSP/CSSP** ([`cssp`], [`thresholded`],
//!   [`approx`], [`spanning_forest`]): the recursive "distributified
//!   Dijkstra" of Section 2 — `Õ(n)` rounds, `Õ(m)` messages, and only
//!   `poly(log n)` messages over any single edge (Theorems 2.6, 2.7).
//! * **APSP in `Õ(n)` rounds** ([`apsp`]): `n` independent SSSP instances
//!   composed with random-delay scheduling.
//! * **Low-energy BFS and CSSP** ([`energy`]): the sleeping-model algorithms
//!   of Section 3, coordinated through the deterministic sparse covers of
//!   [`congest_cover`] — `poly(log n)` awake rounds per node
//!   (Theorems 3.8, 3.13, 3.14, 3.15).
//! * **Baselines** ([`baseline`], [`bfs`]): distributed Bellman–Ford,
//!   distributed Dijkstra, and the always-awake BFS, for the experiments in
//!   `EXPERIMENTS.md`.
//!
//! # Quick start
//!
//! ```
//! use congest_graph::{generators, NodeId};
//! use congest_sssp::cssp::sssp;
//! use congest_sssp::AlgoConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::with_random_weights(&generators::grid(6, 6, 1), 10, 42);
//! let run = sssp(&g, NodeId(0), &AlgoConfig::default())?;
//! println!(
//!     "distance to the far corner: {}, rounds: {}, max congestion: {}",
//!     run.distance(NodeId(35)),
//!     run.metrics.rounds,
//!     run.metrics.max_congestion()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod apsp;
pub mod baseline;
pub mod bfs;
mod config;
pub mod cssp;
pub mod energy;
mod error;
mod result;
pub mod spanning_forest;
pub mod thresholded;
pub mod weighted_bfs;

pub use config::AlgoConfig;
pub use error::AlgoError;
pub use result::{AlgoRun, DistanceOutput, SourceOffset};
