//! Baseline algorithms the paper's introduction compares against:
//!
//! * [`bellman_ford`] — the classic distributed Bellman–Ford: optimal `O(n)`
//!   time but `Θ(mn)` messages and `Θ(n)` congestion per edge.
//! * [`dijkstra`] — a direct distributed implementation of Dijkstra's
//!   algorithm: `O(n · D)` time and `O(n² + m)` messages because every
//!   iteration must locate the global minimum-estimate unvisited node.
//!
//! The always-awake BFS of [`crate::bfs`] doubles as the *energy* baseline
//! (every node is awake for the whole run).

pub mod bellman_ford;
pub mod dijkstra;

pub use bellman_ford::distributed_bellman_ford;
pub use dijkstra::distributed_dijkstra;
