//! The direct distributed Dijkstra baseline the paper's introduction rules
//! out: repeatedly find the minimum-estimate unvisited node *in the whole
//! network* (a global convergecast over a BFS tree of depth `D`), visit it,
//! and relax its edges. This costs `O(n · D)` rounds and `O(n² + m)` messages
//! — far from the paper's bounds — and is implemented here as the comparison
//! point for experiments E1–E3.
//!
//! The iteration structure (which node is visited when, which edges are
//! relaxed) is exactly what a distributed execution would compute; the
//! per-iteration coordination costs are charged following the textbook
//! accounting (one convergecast + one broadcast over the BFS tree per
//! iteration, plus one message per edge of the visited node).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use congest_graph::{Distance, Graph, NodeId};
use congest_sim::Metrics;

use crate::result::{AlgoRun, DistanceOutput};
use crate::{AlgoConfig, AlgoError};

/// Runs the distributed-Dijkstra baseline from `sources`.
///
/// # Errors
///
/// Returns an error if the source set is empty or a source is out of range.
pub fn distributed_dijkstra(
    g: &Graph,
    sources: &[NodeId],
    _config: &AlgoConfig,
) -> Result<AlgoRun, AlgoError> {
    if sources.is_empty() {
        return Err(AlgoError::EmptySourceSet);
    }
    for &s in sources {
        if !g.contains_node(s) {
            return Err(AlgoError::SourceOutOfRange { node: s });
        }
    }
    let n = g.node_count() as usize;
    let m = g.edge_count() as usize;
    let mut metrics = Metrics::zero(n, m);

    // Coordination tree: a BFS forest from the sources (what the "find the
    // global minimum" convergecast runs over). Its construction costs one BFS.
    let bfs = congest_graph::sequential::bfs(g, sources);
    let forest = congest_graph::sequential::spanning_forest(g);
    let tree_depth = bfs.distances.iter().filter_map(|d| d.finite()).max().unwrap_or(0).max(1);
    metrics.rounds += tree_depth + 1;
    for e in 0..m {
        metrics.edge_congestion[e] += 1;
        metrics.messages += 1;
    }
    for v in 0..n {
        metrics.node_energy[v] += tree_depth + 1;
    }

    // Dijkstra iterations. The *simulated* selection is still a global
    // minimum search (and is charged as one), but the host-side bookkeeping
    // finds that minimum with a lazy-deletion priority queue instead of an
    // O(n) scan per iteration: every improvement pushes a `(dist, node)`
    // entry, pops skip visited/stale entries, and the pop order is exactly
    // the scan's `min_by_key(|v| (dist[v], v))` order — so rounds, messages,
    // congestion, and energy are bit-identical to the reference scan
    // (pinned by `queue_selection_is_bit_identical_to_the_scan` below).
    let mut dist = vec![Distance::Infinite; n];
    let mut visited = vec![false; n];
    let mut queue: BinaryHeap<Reverse<(Distance, usize)>> = BinaryHeap::new();
    for &s in sources {
        dist[s.index()] = Distance::ZERO;
        queue.push(Reverse((Distance::ZERO, s.index())));
    }
    while let Some(Reverse((d, v))) = queue.pop() {
        if visited[v] || d > dist[v] {
            continue;
        }
        // Global minimum search: one convergecast + one broadcast over the
        // coordination tree (2 * depth rounds, 2 messages per tree edge, every
        // node awake for the duration).
        let coordination_rounds = 2 * tree_depth + 2;
        metrics.rounds += coordination_rounds;
        for e in &forest.edges {
            metrics.edge_congestion[e.index()] += 2;
            metrics.messages += 2;
        }
        for u in 0..n {
            metrics.node_energy[u] += coordination_rounds;
        }
        // Visit v and relax its incident edges (one round, one message per
        // incident edge).
        visited[v] = true;
        metrics.rounds += 1;
        let dv = dist[v];
        for adj in g.neighbors(NodeId(v as u32)) {
            metrics.edge_congestion[adj.edge.index()] += 1;
            metrics.messages += 1;
            let cand = dv.saturating_add(adj.weight);
            if cand < dist[adj.neighbor.index()] {
                dist[adj.neighbor.index()] = cand;
                queue.push(Reverse((cand, adj.neighbor.index())));
            }
        }
    }

    Ok(AlgoRun { output: DistanceOutput { distances: dist }, metrics, trace: None })
}

/// The pre-queue reference implementation: identical charging, but the next
/// node is found by an O(n) scan per iteration. Kept as the differential
/// oracle pinning that the priority-queue rewrite changed *nothing* about
/// the simulated execution — output and full metrics must stay bit-identical.
#[cfg(test)]
fn distributed_dijkstra_scan_reference(
    g: &Graph,
    sources: &[NodeId],
    _config: &AlgoConfig,
) -> Result<AlgoRun, AlgoError> {
    if sources.is_empty() {
        return Err(AlgoError::EmptySourceSet);
    }
    for &s in sources {
        if !g.contains_node(s) {
            return Err(AlgoError::SourceOutOfRange { node: s });
        }
    }
    let n = g.node_count() as usize;
    let m = g.edge_count() as usize;
    let mut metrics = Metrics::zero(n, m);

    let bfs = congest_graph::sequential::bfs(g, sources);
    let forest = congest_graph::sequential::spanning_forest(g);
    let tree_depth = bfs.distances.iter().filter_map(|d| d.finite()).max().unwrap_or(0).max(1);
    metrics.rounds += tree_depth + 1;
    for e in 0..m {
        metrics.edge_congestion[e] += 1;
        metrics.messages += 1;
    }
    for v in 0..n {
        metrics.node_energy[v] += tree_depth + 1;
    }

    let mut dist = vec![Distance::Infinite; n];
    let mut visited = vec![false; n];
    for &s in sources {
        dist[s.index()] = Distance::ZERO;
    }
    loop {
        let next =
            (0..n).filter(|&v| !visited[v] && dist[v].is_finite()).min_by_key(|&v| (dist[v], v));
        let Some(v) = next else { break };
        let coordination_rounds = 2 * tree_depth + 2;
        metrics.rounds += coordination_rounds;
        for e in &forest.edges {
            metrics.edge_congestion[e.index()] += 2;
            metrics.messages += 2;
        }
        for u in 0..n {
            metrics.node_energy[u] += coordination_rounds;
        }
        visited[v] = true;
        metrics.rounds += 1;
        let dv = dist[v];
        for adj in g.neighbors(NodeId(v as u32)) {
            metrics.edge_congestion[adj.edge.index()] += 1;
            metrics.messages += 1;
            let cand = dv.saturating_add(adj.weight);
            if cand < dist[adj.neighbor.index()] {
                dist[adj.neighbor.index()] = cand;
            }
        }
    }

    Ok(AlgoRun { output: DistanceOutput { distances: dist }, metrics, trace: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    #[test]
    fn distances_match_sequential_dijkstra() {
        let cfg = AlgoConfig::default();
        for seed in 0..3 {
            let g = generators::with_random_weights(
                &generators::random_connected(40, 70, seed),
                11,
                seed,
            );
            let run = distributed_dijkstra(&g, &[NodeId(0)], &cfg).unwrap();
            let truth = sequential::dijkstra(&g, &[NodeId(0)]);
            assert_eq!(run.output.distances, truth.distances, "seed {seed}");
        }
    }

    #[test]
    fn time_scales_with_n_times_diameter() {
        let cfg = AlgoConfig::default();
        let g = generators::path(50, 2);
        let run = distributed_dijkstra(&g, &[NodeId(0)], &cfg).unwrap();
        // 50 iterations, each costing ~2 * 49 rounds of coordination.
        assert!(run.metrics.rounds >= 50 * 49);
    }

    #[test]
    fn message_complexity_includes_n_squared_term() {
        let cfg = AlgoConfig::default();
        let g = generators::random_connected(60, 60, 2);
        let run = distributed_dijkstra(&g, &[NodeId(0)], &cfg).unwrap();
        // n iterations × Θ(n) tree messages dominates m.
        assert!(run.metrics.messages as usize > 10 * g.edge_count() as usize);
    }

    #[test]
    fn multi_source_works() {
        let cfg = AlgoConfig::default();
        let g = generators::with_random_weights(&generators::grid(5, 5, 1), 6, 1);
        let sources = [NodeId(0), NodeId(24)];
        let run = distributed_dijkstra(&g, &sources, &cfg).unwrap();
        assert_eq!(run.output.distances, sequential::dijkstra(&g, &sources).distances);
    }

    #[test]
    fn queue_selection_is_bit_identical_to_the_scan() {
        let cfg = AlgoConfig::default();
        let workloads = [
            generators::with_random_weights(&generators::random_connected(40, 70, 1), 11, 1),
            generators::with_random_weights_zero(&generators::random_connected(30, 50, 2), 5, 2),
            generators::path(25, 3),
            generators::with_random_weights(&generators::grid(6, 6, 1), 9, 4),
            generators::disjoint_copies(&generators::path(6, 2), 3),
            generators::wrong_dijkstra_killer(24),
            generators::spfa_killer(12),
        ];
        for (i, g) in workloads.iter().enumerate() {
            let sources: &[NodeId] =
                if i % 2 == 0 { &[NodeId(0)] } else { &[NodeId(0), NodeId(5)] };
            let fast = distributed_dijkstra(g, sources, &cfg).unwrap();
            let slow = distributed_dijkstra_scan_reference(g, sources, &cfg).unwrap();
            // Full AlgoRun equality: distances AND every metrics field
            // (rounds, messages, per-edge congestion, per-node energy).
            assert_eq!(fast, slow, "workload {i}: queue rewrite changed the execution");
        }
    }

    #[test]
    fn rejects_bad_input() {
        let cfg = AlgoConfig::default();
        let g = generators::path(3, 1);
        assert!(matches!(distributed_dijkstra(&g, &[], &cfg), Err(AlgoError::EmptySourceSet)));
        assert!(matches!(
            distributed_dijkstra(&g, &[NodeId(7)], &cfg),
            Err(AlgoError::SourceOutOfRange { .. })
        ));
    }
}
