//! The direct distributed Dijkstra baseline the paper's introduction rules
//! out: repeatedly find the minimum-estimate unvisited node *in the whole
//! network* (a global convergecast over a BFS tree of depth `D`), visit it,
//! and relax its edges. This costs `O(n · D)` rounds and `O(n² + m)` messages
//! — far from the paper's bounds — and is implemented here as the comparison
//! point for experiments E1–E3.
//!
//! The iteration structure (which node is visited when, which edges are
//! relaxed) is exactly what a distributed execution would compute; the
//! per-iteration coordination costs are charged following the textbook
//! accounting (one convergecast + one broadcast over the BFS tree per
//! iteration, plus one message per edge of the visited node).

use congest_graph::{Distance, Graph, NodeId};
use congest_sim::Metrics;

use crate::result::{AlgoRun, DistanceOutput};
use crate::{AlgoConfig, AlgoError};

/// Runs the distributed-Dijkstra baseline from `sources`.
///
/// # Errors
///
/// Returns an error if the source set is empty or a source is out of range.
pub fn distributed_dijkstra(
    g: &Graph,
    sources: &[NodeId],
    _config: &AlgoConfig,
) -> Result<AlgoRun, AlgoError> {
    if sources.is_empty() {
        return Err(AlgoError::EmptySourceSet);
    }
    for &s in sources {
        if !g.contains_node(s) {
            return Err(AlgoError::SourceOutOfRange { node: s });
        }
    }
    let n = g.node_count() as usize;
    let m = g.edge_count() as usize;
    let mut metrics = Metrics::zero(n, m);

    // Coordination tree: a BFS forest from the sources (what the "find the
    // global minimum" convergecast runs over). Its construction costs one BFS.
    let bfs = congest_graph::sequential::bfs(g, sources);
    let forest = congest_graph::sequential::spanning_forest(g);
    let tree_depth = bfs.distances.iter().filter_map(|d| d.finite()).max().unwrap_or(0).max(1);
    metrics.rounds += tree_depth + 1;
    for e in 0..m {
        metrics.edge_congestion[e] += 1;
        metrics.messages += 1;
    }
    for v in 0..n {
        metrics.node_energy[v] += tree_depth + 1;
    }

    // Dijkstra iterations.
    let mut dist = vec![Distance::Infinite; n];
    let mut visited = vec![false; n];
    for &s in sources {
        dist[s.index()] = Distance::ZERO;
    }
    loop {
        // Global minimum search: one convergecast + one broadcast over the
        // coordination tree (2 * depth rounds, 2 messages per tree edge, every
        // node awake for the duration).
        let next =
            (0..n).filter(|&v| !visited[v] && dist[v].is_finite()).min_by_key(|&v| (dist[v], v));
        let Some(v) = next else { break };
        let coordination_rounds = 2 * tree_depth + 2;
        metrics.rounds += coordination_rounds;
        for e in &forest.edges {
            metrics.edge_congestion[e.index()] += 2;
            metrics.messages += 2;
        }
        for u in 0..n {
            metrics.node_energy[u] += coordination_rounds;
        }
        // Visit v and relax its incident edges (one round, one message per
        // incident edge).
        visited[v] = true;
        metrics.rounds += 1;
        let dv = dist[v];
        for adj in g.neighbors(NodeId(v as u32)) {
            metrics.edge_congestion[adj.edge.index()] += 1;
            metrics.messages += 1;
            let cand = dv.saturating_add(adj.weight);
            if cand < dist[adj.neighbor.index()] {
                dist[adj.neighbor.index()] = cand;
            }
        }
    }

    Ok(AlgoRun { output: DistanceOutput { distances: dist }, metrics, trace: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    #[test]
    fn distances_match_sequential_dijkstra() {
        let cfg = AlgoConfig::default();
        for seed in 0..3 {
            let g = generators::with_random_weights(
                &generators::random_connected(40, 70, seed),
                11,
                seed,
            );
            let run = distributed_dijkstra(&g, &[NodeId(0)], &cfg).unwrap();
            let truth = sequential::dijkstra(&g, &[NodeId(0)]);
            assert_eq!(run.output.distances, truth.distances, "seed {seed}");
        }
    }

    #[test]
    fn time_scales_with_n_times_diameter() {
        let cfg = AlgoConfig::default();
        let g = generators::path(50, 2);
        let run = distributed_dijkstra(&g, &[NodeId(0)], &cfg).unwrap();
        // 50 iterations, each costing ~2 * 49 rounds of coordination.
        assert!(run.metrics.rounds >= 50 * 49);
    }

    #[test]
    fn message_complexity_includes_n_squared_term() {
        let cfg = AlgoConfig::default();
        let g = generators::random_connected(60, 60, 2);
        let run = distributed_dijkstra(&g, &[NodeId(0)], &cfg).unwrap();
        // n iterations × Θ(n) tree messages dominates m.
        assert!(run.metrics.messages as usize > 10 * g.edge_count() as usize);
    }

    #[test]
    fn multi_source_works() {
        let cfg = AlgoConfig::default();
        let g = generators::with_random_weights(&generators::grid(5, 5, 1), 6, 1);
        let sources = [NodeId(0), NodeId(24)];
        let run = distributed_dijkstra(&g, &sources, &cfg).unwrap();
        assert_eq!(run.output.distances, sequential::dijkstra(&g, &sources).distances);
    }

    #[test]
    fn rejects_bad_input() {
        let cfg = AlgoConfig::default();
        let g = generators::path(3, 1);
        assert!(matches!(distributed_dijkstra(&g, &[], &cfg), Err(AlgoError::EmptySourceSet)));
        assert!(matches!(
            distributed_dijkstra(&g, &[NodeId(7)], &cfg),
            Err(AlgoError::SourceOutOfRange { .. })
        ));
    }
}
