//! The distributed Bellman–Ford baseline (Section 1.1 of the paper): per
//! round every node relaxes its incident edges, so after `n − 1` rounds every
//! estimate is exact — at the cost of `Θ(mn)` messages in the worst case and
//! up to `Θ(n)` messages over a single edge.

use congest_graph::{Distance, Graph, NodeId};
use congest_sim::{Engine, Message, NodeCtx, Protocol};

use crate::result::{AlgoRun, DistanceOutput};
use crate::{AlgoConfig, AlgoError};

/// Per-node state of the Bellman–Ford protocol.
#[derive(Debug, Clone)]
pub struct BellmanFordNode {
    /// The current (eventually exact) distance estimate.
    pub dist: Distance,
    is_source: bool,
    rounds_total: u64,
}

impl Protocol for BellmanFordNode {
    fn init(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.is_source {
            self.dist = Distance::ZERO;
            ctx.broadcast(&[0]);
        }
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Message]) {
        let mut improved = false;
        for msg in inbox {
            // The candidate is the sender's estimate plus the weight of the
            // edge the message arrived on.
            let w = ctx
                .neighbors()
                .iter()
                .find(|a| a.edge == msg.edge)
                .map(|a| a.weight)
                .expect("messages arrive on incident edges");
            let cand = Distance::Finite(msg.word(0) + w);
            if cand < self.dist {
                self.dist = cand;
                improved = true;
            }
        }
        if improved {
            if let Some(d) = self.dist.finite() {
                ctx.broadcast(&[d]);
            }
        }
        // Estimates are exact after n - 1 relaxation rounds; everyone stops
        // at the globally known round n + 1.
        if ctx.round() > self.rounds_total {
            ctx.halt();
        }
    }
}

/// Runs the distributed Bellman–Ford baseline from `sources` and returns
/// exact distances together with its (deliberately large) complexity metrics.
///
/// # Errors
///
/// Returns an error if the source set is empty, a source is out of range, or
/// the simulation exceeds its round limit.
pub fn distributed_bellman_ford(
    g: &Graph,
    sources: &[NodeId],
    config: &AlgoConfig,
) -> Result<AlgoRun, AlgoError> {
    if sources.is_empty() {
        return Err(AlgoError::EmptySourceSet);
    }
    for &s in sources {
        if !g.contains_node(s) {
            return Err(AlgoError::SourceOutOfRange { node: s });
        }
    }
    let is_source: Vec<bool> = {
        let mut v = vec![false; g.node_count() as usize];
        for &s in sources {
            v[s.index()] = true;
        }
        v
    };
    let rounds_total = g.node_count() as u64 + 1;
    let mut sim = config.sim.clone();
    sim.max_rounds = sim.max_rounds.max(rounds_total + 10);
    let run = Engine::new(g, sim).run(|id: NodeId| BellmanFordNode {
        dist: Distance::Infinite,
        is_source: is_source[id.index()],
        rounds_total,
    })?;
    let distances = run.states.iter().map(|s| s.dist).collect();
    Ok(AlgoRun { output: DistanceOutput { distances }, metrics: run.metrics, trace: run.trace })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    #[test]
    fn bellman_ford_matches_dijkstra() {
        let cfg = AlgoConfig::default();
        for seed in 0..3 {
            let g = generators::with_random_weights(
                &generators::random_connected(30, 60, seed),
                9,
                seed,
            );
            let run = distributed_bellman_ford(&g, &[NodeId(0)], &cfg).unwrap();
            let truth = sequential::dijkstra(&g, &[NodeId(0)]);
            for v in g.nodes() {
                assert_eq!(run.distance(v), truth.distance(v));
            }
        }
    }

    #[test]
    fn time_and_energy_are_linear_in_n() {
        let n = 64u32;
        let g = generators::path(n, 1);
        let cfg = AlgoConfig::default();
        let run = distributed_bellman_ford(&g, &[NodeId(0)], &cfg).unwrap();
        // Time is Θ(n) regardless of the diameter being n - 1.
        assert!(run.metrics.rounds >= n as u64);
        // Every node is awake the whole time: energy Θ(n).
        assert!(run.metrics.max_energy() >= n as u64);
    }

    #[test]
    fn message_complexity_is_large_on_dense_graphs() {
        let cfg = AlgoConfig::default();
        let g = generators::with_random_weights(&generators::complete(24, 1), 50, 3);
        let run = distributed_bellman_ford(&g, &[NodeId(0)], &cfg).unwrap();
        // Many improvement waves per node: messages well above m.
        assert!(run.metrics.messages > g.edge_count() as u64);
    }

    #[test]
    fn multi_source_bellman_ford() {
        let cfg = AlgoConfig::default();
        let g = generators::with_random_weights(&generators::grid(5, 5, 1), 4, 2);
        let sources = [NodeId(0), NodeId(24)];
        let run = distributed_bellman_ford(&g, &sources, &cfg).unwrap();
        let truth = sequential::dijkstra(&g, &sources);
        assert_eq!(run.output.distances, truth.distances);
    }

    #[test]
    fn rejects_bad_sources() {
        let cfg = AlgoConfig::default();
        let g = generators::path(3, 1);
        assert!(matches!(distributed_bellman_ford(&g, &[], &cfg), Err(AlgoError::EmptySourceSet)));
        assert!(matches!(
            distributed_bellman_ford(&g, &[NodeId(5)], &cfg),
            Err(AlgoError::SourceOutOfRange { .. })
        ));
    }
}
