//! Result types shared by all algorithms in this crate, including the
//! unified [`RunReport`] every [`crate::solver::Solver`] run produces.

use congest_cover::CoverStats;
use congest_graph::{Distance, Graph, NodeId};
use congest_sim::{EdgeUsageTrace, Metrics};
use serde::{Deserialize, Serialize};

use crate::solver::Algorithm;
use crate::thresholded::RecursionStats;

/// The distance output of a CSSP/SSSP/BFS computation: one distance per node
/// (indexed by [`NodeId`]), `Infinite` for nodes that are unreachable or
/// beyond the requested threshold.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceOutput {
    /// `distances[v]` is the computed distance of node `v` from the source set.
    pub distances: Vec<Distance>,
}

impl DistanceOutput {
    /// An all-infinite output for `n` nodes.
    pub fn infinite(n: usize) -> Self {
        DistanceOutput { distances: vec![Distance::Infinite; n] }
    }

    /// The distance of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn distance(&self, v: NodeId) -> Distance {
        self.distances[v.index()]
    }

    /// Number of nodes with a finite distance.
    pub fn reached_count(&self) -> usize {
        self.distances.iter().filter(|d| d.is_finite()).count()
    }
}

/// A completed algorithm run: the distance output plus the complexity
/// measurements of the execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgoRun {
    /// The computed distances.
    pub output: DistanceOutput,
    /// Rounds, messages, per-edge congestion, per-node energy.
    pub metrics: Metrics,
    /// Optional per-round edge usage trace (for the APSP scheduler), present
    /// when [`crate::AlgoConfig::record_traces`] was enabled.
    pub trace: Option<EdgeUsageTrace>,
}

impl AlgoRun {
    /// Convenience accessor: the distance of node `v`.
    pub fn distance(&self, v: NodeId) -> Distance {
        self.output.distance(v)
    }
}

/// The unified complexity report of a [`crate::solver::Solver`] run: the
/// aggregate measurements every algorithm produces, plus optional sections
/// for the instrumentation only some algorithm families have (sleeping-model
/// accounting, recursion structure, APSP scheduling). Consumers that iterate
/// the [`crate::solver::registry`] can format any run from this one type
/// instead of knowing each algorithm's specialized run struct.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Which algorithm produced this run.
    pub algorithm: Algorithm,
    /// Number of nodes of the input graph.
    pub n: u32,
    /// Number of edges of the input graph.
    pub m: u32,
    /// Rounds (time complexity; for APSP, the model rounds of the schedule).
    pub rounds: u64,
    /// Total messages.
    pub messages: u64,
    /// Messages dropped on sleeping/halted recipients (sleeping-model
    /// accounting; fault-injected losses are in [`RunReport::fault_drops`]).
    pub messages_lost: u64,
    /// Messages destroyed by the fault plan: random in-transit drops plus
    /// deliveries addressed to crashed nodes (0 for fault-free runs).
    pub fault_drops: u64,
    /// Messages delayed in transit by fault-plan jitter.
    pub fault_delays: u64,
    /// Crash events applied by the fault plan.
    pub crashes: u64,
    /// Restart events applied by the fault plan.
    pub restarts: u64,
    /// Maximum per-edge congestion.
    pub max_congestion: u64,
    /// Maximum per-node energy (awake rounds). All-pairs compositions do
    /// not track per-node energy across the superimposed instances and
    /// report 0 here (unmeasured).
    pub max_energy: u64,
    /// Mean per-node energy (0 for all-pairs compositions, see
    /// [`RunReport::max_energy`]).
    pub mean_energy: f64,
    /// Number of nodes with a finite output distance.
    pub reached: u64,
    /// Additive error bound of the estimates (approximate algorithms only).
    pub error_bound: Option<u64>,
    /// Sleeping-model instrumentation (low-energy algorithms only).
    pub sleeping: Option<SleepingReport>,
    /// Recursion-tree instrumentation (the recursive CSSP family only).
    pub recursion: Option<RecursionReport>,
    /// Random-delay scheduling instrumentation (APSP only).
    pub schedule: Option<ScheduleReport>,
    /// Distance-oracle construction instrumentation
    /// ([`Algorithm::DistanceOracle`] only).
    pub oracle: Option<OracleReport>,
}

impl RunReport {
    /// Builds the aggregate part of a report from an algorithm's measured
    /// [`Metrics`] and distance output; the optional sections start empty.
    pub fn new(
        algorithm: Algorithm,
        g: &Graph,
        metrics: &Metrics,
        output: &DistanceOutput,
    ) -> RunReport {
        RunReport {
            algorithm,
            n: g.node_count(),
            m: g.edge_count(),
            rounds: metrics.rounds,
            messages: metrics.messages,
            messages_lost: metrics.messages_lost,
            fault_drops: metrics.fault_drops,
            fault_delays: metrics.fault_delays,
            crashes: metrics.crashes,
            restarts: metrics.restarts,
            max_congestion: metrics.max_congestion(),
            max_energy: metrics.max_energy(),
            mean_energy: metrics.mean_energy(),
            reached: output.reached_count() as u64,
            error_bound: None,
            sleeping: None,
            recursion: None,
            schedule: None,
            oracle: None,
        }
    }
}

/// Construction instrumentation of a distance-oracle run: the space/stretch
/// accounting of the built oracle plus the validated quality statistics of
/// every sparse-cover level it was assembled from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleReport {
    /// Whether construction fell back to the exact all-pairs matrix
    /// (graphs at or below the configured fallback threshold).
    pub fallback: bool,
    /// Number of cover levels (0 on the exact fallback).
    pub levels: u32,
    /// Total clusters across all levels.
    pub clusters: u64,
    /// Bytes of the oracle's distance storage.
    pub bytes: u64,
    /// Bytes an exact `n × n` distance matrix would occupy, for comparison.
    pub exact_matrix_bytes: u64,
    /// Proven multiplicative stretch bound of every query answer (1 on the
    /// exact fallback).
    pub stretch_bound: u64,
    /// Maximum number of (level, cluster) memberships of any single node.
    pub max_membership: u32,
    /// Deepest cluster tree across all levels (0 on the exact fallback).
    pub max_tree_depth: u64,
    /// Validated per-level cover statistics, in level order (empty on the
    /// exact fallback).
    pub level_stats: Vec<CoverStats>,
}

/// Sleeping-model instrumentation of a low-energy run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SleepingReport {
    /// Rounds per wavefront hop (0 where the algorithm has no wavefront).
    pub slowdown: u64,
    /// Megaround width (maximum cluster trees sharing one edge).
    pub megaround: u64,
    /// Levels of the layered sparse cover.
    pub cover_levels: u64,
}

/// Recursion-tree instrumentation of the recursive CSSP family
/// (Lemma 2.4 / Corollary 2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecursionReport {
    /// Recursion levels (`log₂ D`).
    pub levels: u32,
    /// Subproblems solved (recursion-tree nodes).
    pub subproblems: u64,
    /// Maximum subproblems any single node participated in.
    pub max_participation: u64,
    /// Sum of subproblem sizes over the whole tree.
    pub total_subproblem_size: u64,
}

impl From<&RecursionStats> for RecursionReport {
    fn from(stats: &RecursionStats) -> RecursionReport {
        RecursionReport {
            levels: stats.levels,
            subproblems: stats.subproblems,
            max_participation: stats.max_participation(),
            total_subproblem_size: stats.total_subproblem_size,
        }
    }
}

/// Random-delay scheduling instrumentation of an APSP run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// Makespan of the concurrent schedule, in scheduler rounds.
    pub makespan: u64,
    /// Makespan in model rounds (`makespan × edge budget`).
    pub model_rounds: u64,
    /// Per-round per-edge message budget of the schedule.
    pub edge_budget: u64,
    /// Cost of running the instances one after another, in simulated rounds.
    pub sequential_rounds: u64,
    /// Maximum per-edge congestion of any single SSSP instance.
    pub max_instance_congestion: u64,
}

impl ScheduleReport {
    /// Rounds saved by concurrent scheduling: `sequential / makespan`.
    pub fn speedup(&self) -> f64 {
        self.sequential_rounds as f64 / self.makespan.max(1) as f64
    }
}

/// A source node together with an initial distance offset. Plain sources have
/// offset 0; the recursion of Section 2.3 uses positive offsets to stand in
/// for the "imaginary" cut nodes on boundary edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourceOffset {
    /// The source node.
    pub node: NodeId,
    /// The initial distance of the source (0 for ordinary sources).
    pub offset: u64,
}

impl SourceOffset {
    /// An ordinary source with offset 0.
    pub fn plain(node: NodeId) -> Self {
        SourceOffset { node, offset: 0 }
    }
}

impl From<NodeId> for SourceOffset {
    fn from(node: NodeId) -> Self {
        SourceOffset::plain(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_output() {
        let o = DistanceOutput::infinite(3);
        assert_eq!(o.reached_count(), 0);
        assert!(o.distance(NodeId(2)).is_infinite());
    }

    #[test]
    fn source_offsets() {
        let s = SourceOffset::plain(NodeId(4));
        assert_eq!(s.offset, 0);
        let s: SourceOffset = NodeId(2).into();
        assert_eq!(s.node, NodeId(2));
    }

    #[test]
    fn algo_run_accessor() {
        let run = AlgoRun {
            output: DistanceOutput { distances: vec![Distance::Finite(3), Distance::Infinite] },
            metrics: Metrics::zero(2, 1),
            trace: None,
        };
        assert_eq!(run.distance(NodeId(0)).finite(), Some(3));
        assert_eq!(run.output.reached_count(), 1);
    }
}
