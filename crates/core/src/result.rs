//! Result types shared by all algorithms in this crate.

use congest_graph::{Distance, NodeId};
use congest_sim::{EdgeUsageTrace, Metrics};
use serde::{Deserialize, Serialize};

/// The distance output of a CSSP/SSSP/BFS computation: one distance per node
/// (indexed by [`NodeId`]), `Infinite` for nodes that are unreachable or
/// beyond the requested threshold.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceOutput {
    /// `distances[v]` is the computed distance of node `v` from the source set.
    pub distances: Vec<Distance>,
}

impl DistanceOutput {
    /// An all-infinite output for `n` nodes.
    pub fn infinite(n: usize) -> Self {
        DistanceOutput { distances: vec![Distance::Infinite; n] }
    }

    /// The distance of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn distance(&self, v: NodeId) -> Distance {
        self.distances[v.index()]
    }

    /// Number of nodes with a finite distance.
    pub fn reached_count(&self) -> usize {
        self.distances.iter().filter(|d| d.is_finite()).count()
    }
}

/// A completed algorithm run: the distance output plus the complexity
/// measurements of the execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgoRun {
    /// The computed distances.
    pub output: DistanceOutput,
    /// Rounds, messages, per-edge congestion, per-node energy.
    pub metrics: Metrics,
    /// Optional per-round edge usage trace (for the APSP scheduler), present
    /// when [`crate::AlgoConfig::record_traces`] was enabled.
    pub trace: Option<EdgeUsageTrace>,
}

impl AlgoRun {
    /// Convenience accessor: the distance of node `v`.
    pub fn distance(&self, v: NodeId) -> Distance {
        self.output.distance(v)
    }
}

/// A source node together with an initial distance offset. Plain sources have
/// offset 0; the recursion of Section 2.3 uses positive offsets to stand in
/// for the "imaginary" cut nodes on boundary edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourceOffset {
    /// The source node.
    pub node: NodeId,
    /// The initial distance of the source (0 for ordinary sources).
    pub offset: u64,
}

impl SourceOffset {
    /// An ordinary source with offset 0.
    pub fn plain(node: NodeId) -> Self {
        SourceOffset { node, offset: 0 }
    }
}

impl From<NodeId> for SourceOffset {
    fn from(node: NodeId) -> Self {
        SourceOffset::plain(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_output() {
        let o = DistanceOutput::infinite(3);
        assert_eq!(o.reached_count(), 0);
        assert!(o.distance(NodeId(2)).is_infinite());
    }

    #[test]
    fn source_offsets() {
        let s = SourceOffset::plain(NodeId(4));
        assert_eq!(s.offset, 0);
        let s: SourceOffset = NodeId(2).into();
        assert_eq!(s.node, NodeId(2));
    }

    #[test]
    fn algo_run_accessor() {
        let run = AlgoRun {
            output: DistanceOutput { distances: vec![Distance::Finite(3), Distance::Infinite] },
            metrics: Metrics::zero(2, 1),
            trace: None,
        };
        assert_eq!(run.distance(NodeId(0)).finite(), Some(3));
        assert_eq!(run.output.reached_count(), 1);
    }
}
