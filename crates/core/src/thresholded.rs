//! The `D`-thresholded CSSP recursion of Section 2.3 — the paper's
//! "distributified Dijkstra".
//!
//! Given a threshold `D`, the recursion:
//!
//! 1. builds a spanning forest of the active node set for per-component
//!    coordination ([`crate::spanning_forest`], Theorem 2.2),
//! 2. runs the approximate cutter (Lemma 2.1, [`crate::approx`]) with `W = D`
//!    and keeps `V₁ = {v : dist'(S, v) ≤ D + err}` — a superset of every node
//!    within distance `D`,
//! 3. recurses on `V₁` with threshold `D/2` from the original sources,
//! 4. charges the per-component convergecast that coordinates the start of
//!    the second half (`Θ(|V'|)` rounds, Section 2.3 step 4),
//! 5. forms the "cut": every node of `V₁ \ V₂` adjacent to the exactly-solved
//!    set `V₂ = {v : dist(S, v) ≤ D/2}` becomes a source of the second
//!    recursion with offset `dist(S, v) + w(v, u) − D/2` (this is the
//!    imaginary-node device of the paper, expressed as source offsets), and
//!    original sources whose own offset exceeds `D/2` are carried over with
//!    offset reduced by `D/2`,
//! 6. recurses on `V₁ \ V₂` with threshold `D/2` from the cut sources and
//!    combines: `dist(S, y) = D/2 + dist(X, y)`.
//!
//! Every distance-carrying step (the cutter's waiting BFS) executes as a real
//! CONGEST protocol on the induced subgraph; the recursion bookkeeping and
//! coordination costs are charged by the orchestrator following the paper's
//! own accounting (see DESIGN.md §6).

use std::collections::{BTreeMap, BTreeSet};

use congest_graph::{Distance, EdgeId, Graph, NodeId, Weight};
use congest_sim::Metrics;
use serde::{Deserialize, Serialize};

use crate::approx::approximate_cssp;
use crate::result::{AlgoRun, DistanceOutput, SourceOffset};
use crate::spanning_forest::spanning_forest;
use crate::{AlgoConfig, AlgoError};

/// Instrumentation of the recursion tree (used by experiment E10 to check
/// Lemma 2.4 / Corollary 2.5: every node appears in `O(log D)` subproblems).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecursionStats {
    /// Total number of subproblems solved (recursion-tree nodes).
    pub subproblems: u64,
    /// `participation[v]` is the number of subproblems whose active node set
    /// contained node `v`.
    pub participation: Vec<u64>,
    /// Sum of active-node-set sizes over all subproblems
    /// (`O(n log D)` by Corollary 2.5).
    pub total_subproblem_size: u64,
    /// The number of recursion levels (`log₂ D`).
    pub levels: u32,
}

impl RecursionStats {
    /// The maximum number of subproblems any single node participated in.
    pub fn max_participation(&self) -> u64 {
        self.participation.iter().copied().max().unwrap_or(0)
    }
}

/// The result of a thresholded CSSP run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdedRun {
    /// Distances of nodes within the threshold (infinite beyond it).
    pub output: DistanceOutput,
    /// Complexity measurements, attributed to the original graph's nodes and
    /// edges.
    pub metrics: Metrics,
    /// Recursion instrumentation.
    pub stats: RecursionStats,
}

impl ThresholdedRun {
    /// Converts into the generic [`AlgoRun`] (dropping the recursion stats).
    pub fn into_algo_run(self) -> AlgoRun {
        AlgoRun { output: self.output, metrics: self.metrics, trace: None }
    }
}

/// Accumulates metrics and instrumentation across the recursion.
struct Accumulator {
    metrics: Metrics,
    participation: Vec<u64>,
    subproblems: u64,
    total_size: u64,
}

impl Accumulator {
    fn new(n: usize, m: usize) -> Self {
        Accumulator {
            metrics: Metrics::zero(n, m),
            participation: vec![0; n],
            subproblems: 0,
            total_size: 0,
        }
    }

    fn register_subproblem(&mut self, nodes: &BTreeSet<NodeId>) {
        self.subproblems += 1;
        self.total_size += nodes.len() as u64;
        for &v in nodes {
            self.participation[v.index()] += 1;
        }
    }

    fn add_phase(&mut self, phase: &Metrics) {
        self.metrics.merge_sequential(phase);
    }

    /// Charges a coordination phase of `rounds` rounds in which every node of
    /// `nodes` is awake (spanning-tree convergecast / start-time agreement).
    fn charge_coordination(&mut self, nodes: &BTreeSet<NodeId>, rounds: u64) {
        self.metrics.rounds += rounds;
        for &v in nodes {
            self.metrics.node_energy[v.index()] += rounds;
        }
    }
}

/// Builds the induced subgraph of `keep` together with node and edge maps back
/// to the original graph.
fn induced_with_maps(g: &Graph, keep: &BTreeSet<NodeId>) -> (Graph, Vec<NodeId>, Vec<EdgeId>) {
    let mut old_to_new = vec![u32::MAX; g.node_count() as usize];
    let mut node_map = Vec::with_capacity(keep.len());
    for (idx, &v) in keep.iter().enumerate() {
        old_to_new[v.index()] = idx as u32;
        node_map.push(v);
    }
    let mut builder = Graph::builder(keep.len() as u32);
    let mut edge_map = Vec::new();
    for e in g.edge_ids() {
        let edge = g.edge(e);
        let (nu, nv) = (old_to_new[edge.u.index()], old_to_new[edge.v.index()]);
        if nu != u32::MAX && nv != u32::MAX {
            builder.add_edge(nu, nv, edge.w).expect("existing edges are valid");
            edge_map.push(e);
        }
    }
    (builder.build(), node_map, edge_map)
}

/// Runs the `threshold`-thresholded CSSP from `sources` (with offsets): every
/// node at (offset) distance at most `threshold` learns its exact distance,
/// every other node outputs [`Distance::Infinite`].
///
/// All edge weights must be positive (zero weights are contracted away by
/// [`crate::cssp::cssp`] before reaching this function).
///
/// # Errors
///
/// Returns an error for an empty source set, an out-of-range source, a zero
/// edge weight, or a simulation failure.
pub fn thresholded_cssp(
    g: &Graph,
    sources: &[SourceOffset],
    threshold: u64,
    config: &AlgoConfig,
) -> Result<ThresholdedRun, AlgoError> {
    if sources.is_empty() {
        return Err(AlgoError::EmptySourceSet);
    }
    for s in sources {
        if !g.contains_node(s.node) {
            return Err(AlgoError::SourceOutOfRange { node: s.node });
        }
    }
    if let Some(e) = g.edges().iter().position(|e| e.w == 0) {
        return Err(AlgoError::ZeroWeightNotSupported { edge: EdgeId(e as u32) });
    }
    let n = g.node_count() as usize;
    let m = g.edge_count() as usize;
    // Round the threshold up to a power of two so that halving stays exact
    // down to the base case D = 1 (the paper picks D = 2^L similarly).
    let threshold = threshold.max(1).next_power_of_two();
    let mut acc = Accumulator::new(n, m);
    let all_nodes: BTreeSet<NodeId> = g.nodes().collect();
    let solved = solve(g, &all_nodes, sources, threshold, config, &mut acc)?;

    let mut distances = vec![Distance::Infinite; n];
    for (v, d) in solved {
        distances[v.index()] = Distance::Finite(d);
    }
    let stats = RecursionStats {
        subproblems: acc.subproblems,
        participation: acc.participation,
        total_subproblem_size: acc.total_size,
        levels: threshold.trailing_zeros() + 1,
    };
    Ok(ThresholdedRun { output: DistanceOutput { distances }, metrics: acc.metrics, stats })
}

/// Solves one subproblem: distances (at most `d`) from `sources` within the
/// induced subgraph on `nodes`. Distances are keyed by original node id.
fn solve(
    g: &Graph,
    nodes: &BTreeSet<NodeId>,
    sources: &[SourceOffset],
    d: u64,
    config: &AlgoConfig,
    acc: &mut Accumulator,
) -> Result<BTreeMap<NodeId, Weight>, AlgoError> {
    // Keep only sources that are part of this subproblem.
    let sources: Vec<SourceOffset> =
        sources.iter().copied().filter(|s| nodes.contains(&s.node)).collect();
    if sources.is_empty() || nodes.is_empty() {
        return Ok(BTreeMap::new());
    }
    acc.register_subproblem(nodes);

    if d <= config.base_case_threshold.max(1) {
        return Ok(base_case(g, nodes, &sources, d, acc));
    }

    let (sub, node_map, edge_map) = induced_with_maps(g, nodes);
    let to_sub: BTreeMap<NodeId, NodeId> =
        node_map.iter().enumerate().map(|(i, &orig)| (orig, NodeId(i as u32))).collect();

    // Step 1: spanning forest for per-component coordination (Theorem 2.2).
    let (_forest, forest_metrics) = spanning_forest(&sub, false);
    acc.add_phase(&forest_metrics.remap(
        &node_map,
        &edge_map,
        g.node_count() as usize,
        g.edge_count() as usize,
    ));

    // Step 2: approximate cutter with W = d (Lemma 2.1).
    let sub_sources: Vec<SourceOffset> =
        sources.iter().map(|s| SourceOffset { node: to_sub[&s.node], offset: s.offset }).collect();
    let cut = approximate_cssp(&sub, &sub_sources, d, config)?;
    acc.add_phase(&cut.metrics.remap(
        &node_map,
        &edge_map,
        g.node_count() as usize,
        g.edge_count() as usize,
    ));

    // Step 3: V1 = nodes whose estimate is within d + err.
    let include = cut.inclusion_threshold(d);
    let v1: BTreeSet<NodeId> = node_map
        .iter()
        .enumerate()
        .filter(|&(i, _)| cut.estimates[i] <= include)
        .map(|(_, &orig)| orig)
        .collect();

    let d1 = d / 2;

    // Step 4: first half of the recursion — distances up to d1 from S.
    let first = solve(g, &v1, &sources, d1, config, acc)?;

    // Step 5: per-component convergecast to agree on the start of the second
    // half (charged as Θ(|V'|) rounds with the subproblem's nodes awake).
    acc.charge_coordination(nodes, 2 * nodes.len() as u64 + 2);

    // Step 6: second half — the cut sources.
    let v2: BTreeSet<NodeId> = first.keys().copied().collect();
    let rest: BTreeSet<NodeId> = v1.difference(&v2).copied().collect();
    let mut cut_offsets: BTreeMap<NodeId, Weight> = BTreeMap::new();
    for (&v, &dist_v) in &first {
        for adj in g.neighbors(v) {
            let u = adj.neighbor;
            if rest.contains(&u) {
                let through = dist_v + adj.weight;
                debug_assert!(through > d1, "u would have distance <= d1 and belong to V2");
                let offset = through - d1;
                cut_offsets.entry(u).and_modify(|o| *o = (*o).min(offset)).or_insert(offset);
            }
        }
    }
    // Original sources whose offset exceeds d1 still act as sources of the
    // second half, shifted by d1 (the "virtual edge" view of the offsets).
    for s in &sources {
        if s.offset > d1 && rest.contains(&s.node) {
            let offset = s.offset - d1;
            cut_offsets.entry(s.node).and_modify(|o| *o = (*o).min(offset)).or_insert(offset);
        }
    }
    let second_sources: Vec<SourceOffset> =
        cut_offsets.iter().map(|(&node, &offset)| SourceOffset { node, offset }).collect();
    let second = if second_sources.is_empty() {
        BTreeMap::new()
    } else {
        solve(g, &rest, &second_sources, d1, config, acc)?
    };

    // Combine: dist(S, y) = d1 + dist(X, y) for the second half.
    let mut out = first;
    for (v, r) in second {
        let total = d1 + r;
        debug_assert!(total <= d);
        out.entry(v).and_modify(|cur| *cur = (*cur).min(total)).or_insert(total);
    }
    Ok(out)
}

/// Base case `D ≤ 1`: only sources with offset `≤ D` and nodes adjacent to an
/// offset-0 source via an edge of weight `≤ D` are within distance `D`; one
/// round of local exchange settles it (Section 2.3, step 1).
fn base_case(
    g: &Graph,
    nodes: &BTreeSet<NodeId>,
    sources: &[SourceOffset],
    d: u64,
    acc: &mut Accumulator,
) -> BTreeMap<NodeId, Weight> {
    let mut out: BTreeMap<NodeId, Weight> = BTreeMap::new();
    for s in sources {
        if s.offset <= d {
            out.entry(s.node).and_modify(|cur| *cur = (*cur).min(s.offset)).or_insert(s.offset);
        }
    }
    for s in sources {
        for adj in g.neighbors(s.node) {
            if !nodes.contains(&adj.neighbor) {
                continue;
            }
            let through = s.offset + adj.weight;
            if through <= d {
                out.entry(adj.neighbor)
                    .and_modify(|cur| *cur = (*cur).min(through))
                    .or_insert(through);
            }
        }
    }
    // Charge one round of local exchange: every node in the subproblem is
    // awake for it and each internal edge carries one message per direction.
    acc.metrics.rounds += 1;
    for &v in nodes {
        acc.metrics.node_energy[v.index()] += 1;
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        if nodes.contains(&edge.u) && nodes.contains(&edge.v) {
            acc.metrics.edge_congestion[e.index()] += 2;
            acc.metrics.messages += 2;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, sequential};

    fn check_thresholded(g: &Graph, sources: &[NodeId], threshold: u64) -> ThresholdedRun {
        let cfg = AlgoConfig::default();
        let offsets: Vec<SourceOffset> = sources.iter().map(|&s| SourceOffset::plain(s)).collect();
        let run = thresholded_cssp(g, &offsets, threshold, &cfg).unwrap();
        let truth = sequential::dijkstra(g, sources);
        let effective = threshold.max(1).next_power_of_two();
        for v in g.nodes() {
            let t = truth.distance(v);
            if t <= Distance::Finite(effective) {
                assert_eq!(
                    run.output.distance(v),
                    t,
                    "node {v}: expected exact distance within the threshold"
                );
            } else {
                assert!(
                    run.output.distance(v).is_infinite(),
                    "node {v}: beyond the threshold must be infinite (dist {t}, got {})",
                    run.output.distance(v)
                );
            }
        }
        run
    }

    #[test]
    fn full_threshold_matches_dijkstra_on_random_graphs() {
        for seed in 0..4 {
            let g = generators::with_random_weights(
                &generators::random_connected(30, 45, seed),
                8,
                seed,
            );
            check_thresholded(&g, &[NodeId(0)], g.distance_upper_bound());
        }
    }

    #[test]
    fn multi_source_thresholded() {
        let g = generators::with_random_weights(&generators::grid(5, 6, 1), 6, 2);
        check_thresholded(&g, &[NodeId(0), NodeId(29)], g.distance_upper_bound());
    }

    #[test]
    fn small_threshold_truncates() {
        let g = generators::path(32, 3);
        // Threshold 16 (a power of two): nodes 0..=5 are within distance 15/16.
        let run = check_thresholded(&g, &[NodeId(0)], 16);
        assert!(run.output.reached_count() >= 5);
        assert!(run.output.reached_count() < 32);
    }

    #[test]
    fn unit_weight_graphs_match_bfs() {
        let g = generators::random_connected(40, 80, 6);
        check_thresholded(&g, &[NodeId(0)], g.node_count() as u64);
    }

    #[test]
    fn disconnected_graphs_leave_other_components_infinite() {
        let g = generators::disjoint_copies(&generators::path(8, 2), 2);
        let run = check_thresholded(&g, &[NodeId(0)], 100);
        assert_eq!(run.output.reached_count(), 8);
    }

    #[test]
    fn source_offsets_shift_distances() {
        let g = generators::path(10, 2);
        let cfg = AlgoConfig::default();
        let sources = vec![SourceOffset { node: NodeId(0), offset: 3 }];
        let run = thresholded_cssp(&g, &sources, 64, &cfg).unwrap();
        for v in g.nodes() {
            assert_eq!(run.output.distance(v).finite(), Some(3 + 2 * v.0 as u64));
        }
    }

    #[test]
    fn participation_is_logarithmic_in_threshold() {
        let g = generators::with_random_weights(&generators::random_connected(60, 120, 3), 16, 3);
        let run = check_thresholded(&g, &[NodeId(0)], g.distance_upper_bound());
        let d = g.distance_upper_bound().next_power_of_two();
        let levels = 64 - d.leading_zeros() as u64;
        // Lemma 2.4: every node appears in O(log D) subproblems; our
        // construction gives at most ~3 per level.
        assert!(
            run.stats.max_participation() <= 4 * (levels + 2),
            "max participation {} vs levels {}",
            run.stats.max_participation(),
            levels
        );
        assert!(run.stats.subproblems > 1);
        assert!(run.stats.total_subproblem_size >= g.node_count() as u64);
    }

    #[test]
    fn congestion_stays_polylogarithmic() {
        let g = generators::with_random_weights(&generators::random_connected(80, 160, 1), 10, 1);
        let run = check_thresholded(&g, &[NodeId(0)], g.distance_upper_bound());
        let d = g.distance_upper_bound().next_power_of_two();
        let levels = (64 - d.leading_zeros()) as u64;
        // Per level: forest (<= 5 log n per edge) + cutter (<= 2) + base cases.
        let n = g.node_count() as f64;
        let bound = levels * (5.0 * n.log2() + 8.0) as u64;
        assert!(
            run.metrics.max_congestion() <= bound,
            "congestion {} exceeds polylog bound {}",
            run.metrics.max_congestion(),
            bound
        );
    }

    #[test]
    fn zero_weights_are_rejected_here() {
        let g = Graph::from_edges(3, [(0, 1, 0), (1, 2, 1)]).unwrap();
        let cfg = AlgoConfig::default();
        let r = thresholded_cssp(&g, &[SourceOffset::plain(NodeId(0))], 10, &cfg);
        assert!(matches!(r, Err(AlgoError::ZeroWeightNotSupported { .. })));
    }

    #[test]
    fn empty_sources_rejected() {
        let g = generators::path(3, 1);
        let cfg = AlgoConfig::default();
        assert!(matches!(thresholded_cssp(&g, &[], 10, &cfg), Err(AlgoError::EmptySourceSet)));
    }
}
