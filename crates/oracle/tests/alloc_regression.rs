//! Allocation regression test for the batch-query hot path.
//!
//! A counting global allocator wraps [`std::alloc::System`] (the same probe
//! as `crates/sim/tests/alloc_regression.rs`). The contract of
//! [`DistanceOracle::query_into`]:
//!
//! * at `threads == 1` a batch of any size performs **zero** heap
//!   allocations — the kernel is a pure merge over the immutable structure;
//! * at `threads > 1` the allocation count is `O(threads)` (the scoped
//!   thread handles) and **independent of the batch size**.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use congest_graph::{Distance, NodeId};
use congest_oracle::{DistanceOracle, LevelBuilder};

/// Counts every allocation (alloc, alloc_zeroed, realloc); frees are not
/// interesting here — a free implies a matching earlier allocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: same contract as `System::alloc`, to which this delegates.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwards the caller's `Layout` contract unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `System::alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwards the caller's `Layout` contract unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: same contract as `System::realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwards the caller's pointer/layout contract unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: same contract as `System::dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwards the caller's pointer/layout contract unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A synthetic two-level oracle over a unit-weight cycle of `n` nodes:
/// level d=1 has one radius-1 ball per node, the top level one cluster
/// spanning the cycle (center 0, tree distances along the shorter arc).
/// The shapes (overlapping memberships, multi-level scan) exercise exactly
/// what a cover-built oracle exercises; no solver runs are needed here.
fn cycle_oracle(n: u32) -> DistanceOracle {
    let mut l1 = LevelBuilder::new(n, 1);
    for c in 0..n {
        let prev = (c + n - 1) % n;
        let next = (c + 1) % n;
        let mut members = [NodeId(prev), NodeId(c), NodeId(next)];
        members.sort();
        let dist: Vec<Distance> = members
            .iter()
            .map(|&m| if m == NodeId(c) { Distance::ZERO } else { Distance::Finite(1) })
            .collect();
        l1.push_cluster(&members, &dist);
    }
    let top_d = u64::from(n);
    let mut top = LevelBuilder::new(n, top_d);
    let members: Vec<NodeId> = (0..n).map(NodeId).collect();
    let dist: Vec<Distance> =
        (0..n).map(|v| Distance::Finite(u64::from(v.min(n - v) % n))).collect();
    top.push_cluster(&members, &dist);
    DistanceOracle::from_levels(n, vec![l1.finish(), top.finish()])
}

fn random_pairs(n: u32, count: usize, mut state: u64) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = (state >> 33) as u32 % n;
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = (state >> 33) as u32 % n;
        pairs.push((NodeId(u), NodeId(v)));
    }
    pairs
}

/// One test body for every assertion: tests in one binary run on parallel
/// threads by default, and a concurrently running test would pollute the
/// process-global allocation counter.
#[test]
fn batch_queries_allocate_nothing_per_query() {
    let n = 96;
    let oracle = cycle_oracle(n);
    let small = random_pairs(n, 500, 7);
    let large = random_pairs(n, 20_000, 11);
    let mut out_small = vec![Distance::Infinite; small.len()];
    let mut out_large = vec![Distance::Infinite; large.len()];

    // Warm up once (lazy runtime initialization must not count against the
    // steady state), then measure.
    oracle.query_into(&small, &mut out_small, 1);

    // Sequential batches: zero allocations, whatever the batch size.
    for (pairs, out) in [(&small, &mut out_small), (&large, &mut out_large)] {
        let before = allocations();
        oracle.query_into(pairs, out, 1);
        let delta = allocations() - before;
        assert_eq!(delta, 0, "a sequential batch of {} queries allocated {delta}x", pairs.len());
    }

    // Threaded batches: the per-call allocation overhead is the scoped
    // thread machinery — it must not grow with the batch size.
    let threads = 4;
    oracle.query_into(&small, &mut out_small, threads); // warm-up
    let before = allocations();
    oracle.query_into(&small, &mut out_small, threads);
    let small_delta = allocations() - before;
    let before = allocations();
    oracle.query_into(&large, &mut out_large, threads);
    let large_delta = allocations() - before;
    assert!(
        large_delta <= small_delta.max(1) * 2,
        "a 40x larger batch allocated {large_delta}x vs {small_delta}x at {threads} threads: \
         the threaded path must allocate O(threads), not O(queries)"
    );

    // The probe is honest: building an oracle allocates plenty.
    let before = allocations();
    let rebuilt = cycle_oracle(n);
    assert!(allocations() > before, "the probe is not observing the allocator");
    assert_eq!(rebuilt.stats().bytes, oracle.stats().bytes);

    // And the threaded outputs agree with the sequential ones bit for bit.
    let mut seq = vec![Distance::Infinite; large.len()];
    oracle.query_into(&large, &mut seq, 1);
    assert_eq!(seq, out_large);
}
