//! Approximate distance oracle with sublinear space, built on sparse covers.
//!
//! The paper's APSP ramification gives every node its full routing table, but
//! a *query service* cannot afford the `O(n²)` matrix. This crate is the
//! long-lived query layer: it is constructed **once** from a geometric
//! sequence of sparse `d`-covers (d = 1, 2, 4, … — see
//! `congest_cover::sparse_cover`), stores only each node's distances to the
//! centers of the `O(log n)`-ish clusters it belongs to per level, and then
//! answers point-to-point distance queries by scanning the shared clusters of
//! the `O(log n)` levels.
//!
//! # Structure and guarantee
//!
//! A level with radius `d` stores, for every node `u` and every cover cluster
//! `C ∋ u`, the exact weighted distance `dist_C(center(C), u)` *inside the
//! cluster's induced subgraph*. A query `(u, v)` returns
//!
//! ```text
//! est(u, v) = min over levels ℓ, min over clusters C with u, v ∈ C of
//!             dist_C(center(C), u) + dist_C(center(C), v)
//! ```
//!
//! * **Never an underestimate**: `dist_C(c, ·) ≥ dist_G(c, ·)`, so by the
//!   triangle inequality every candidate is `≥ dist_G(u, v)`.
//! * **Bounded stretch**: with edge weights `≥ 1`, a pair at true distance
//!   `t` whose shortest path has `h ≤ t` hops is covered by the first level
//!   with `d_ℓ ≥ h` (the cover property puts the whole `d_ℓ`-ball of `u`,
//!   hence `v`, inside `u`'s home cluster), where the estimate is at most
//!   twice the level's largest stored center distance. Chasing this through
//!   the geometric sequence yields the per-oracle bound computed by
//!   [`DistanceOracle::from_levels`] and reported as
//!   [`OracleStats::stretch_bound`]; [`DistanceOracle::query`] never returns
//!   more than `stretch_bound × dist_G(u, v)`.
//!
//! The construction driver lives in `congest_sssp::oracle`: it runs one
//! facade SSSP per cluster (reusing the registry's solvers rather than a
//! private shortest-path implementation) and feeds this crate's
//! [`LevelBuilder`]. Below a configurable node count
//! ([`OracleConfig::fallback_threshold`]) the driver materializes exact APSP
//! instead ([`DistanceOracle::exact`]) — at small `n` the matrix is cheap and
//! the answers become exact (`stretch_bound == 1`).
//!
//! Batch queries ([`DistanceOracle::query_into`]) are slice-in/slice-out with
//! zero per-query allocation (lint-enforced by the `simlint: hot-path` header
//! on the [`batch`] kernel and pinned by `tests/alloc_regression.rs`), and
//! shard a batch across threads by contiguous ranges — results are
//! bit-identical at every thread count because each query is a pure read.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;

use congest_graph::{Distance, NodeId};
use serde::{Deserialize, Serialize};

/// Internal sentinel for "no stored distance" (center unreachable inside the
/// cluster subgraph — defensive; covers built from connected expansions never
/// produce it).
pub(crate) const UNREACHED: u64 = u64::MAX;

/// Construction policy for a [`DistanceOracle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Graphs with at most this many nodes skip the cover hierarchy and
    /// materialize exact APSP instead ([`DistanceOracle::exact`]): below this
    /// size the `n²` matrix is smaller than the bookkeeping it replaces, and
    /// queries become exact.
    pub fallback_threshold: u32,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig { fallback_threshold: 64 }
    }
}

impl OracleConfig {
    /// Sets the exact-APSP fallback threshold.
    pub fn with_fallback_threshold(mut self, threshold: u32) -> Self {
        self.fallback_threshold = threshold;
        self
    }
}

/// Space and quality accounting of a built oracle, reported by
/// [`DistanceOracle::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleStats {
    /// Number of nodes the oracle serves.
    pub n: u32,
    /// `true` when the oracle is an exact APSP matrix (small-`n` fallback).
    pub fallback: bool,
    /// Number of cover levels (0 for the exact fallback).
    pub levels: u32,
    /// Total clusters across all levels.
    pub clusters: u64,
    /// Total stored `(cluster, center-distance)` entries across all levels.
    pub entries: u64,
    /// Resident bytes of the query structure (per-level offset arrays plus
    /// entry arrays, or `n²·8` for the exact fallback).
    pub bytes: u64,
    /// Bytes an exact all-pairs matrix would take (`n²·8`), for comparison.
    pub exact_matrix_bytes: u64,
    /// Proven multiplicative stretch bound: every finite
    /// [`DistanceOracle::query`] answer is within `stretch_bound ×` the true
    /// distance (`1` for the exact fallback).
    pub stretch_bound: u64,
    /// Maximum number of clusters any single node belongs to on one level.
    pub max_membership: u32,
}

/// One cover level of the oracle: for every node, its clusters on this level
/// and the exact in-cluster distance to each cluster's center, stored as a
/// CSR-style flattened array (per-node slices sorted by cluster id, so two
/// nodes' shared clusters are found by a linear merge without allocating).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleLevel {
    /// The cover radius `d` of this level.
    pub d: u64,
    /// Number of clusters on this level.
    pub clusters: u32,
    /// Largest finite stored center distance on this level (enters the
    /// stretch bound as the level's worst-case estimate `2 × max_center_dist`).
    pub max_center_dist: u64,
    offsets: Vec<u32>,
    cluster_ids: Vec<u32>,
    center_dist: Vec<u64>,
}

impl OracleLevel {
    /// The per-node membership slices of `v`: parallel `(cluster ids, center
    /// distances)`, sorted by cluster id.
    pub(crate) fn of(&self, v: usize) -> (&[u32], &[u64]) {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        (&self.cluster_ids[lo..hi], &self.center_dist[lo..hi])
    }

    /// Stored `(cluster, distance)` entries on this level.
    pub fn entries(&self) -> u64 {
        self.cluster_ids.len() as u64
    }

    /// Resident bytes of this level's arrays.
    pub fn bytes(&self) -> u64 {
        self.offsets.len() as u64 * 4 + self.entries() * 12
    }

    /// Maximum entries of any single node on this level.
    pub fn max_membership(&self) -> u32 {
        self.offsets.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0)
    }
}

/// Accumulates one [`OracleLevel`] cluster by cluster.
///
/// Clusters must be pushed in increasing id order (the natural iteration
/// order of `SparseCover::clusters`) so that every node's entry list comes
/// out sorted by cluster id — the merge-based query kernel relies on it.
#[derive(Debug)]
pub struct LevelBuilder {
    d: u64,
    clusters: u32,
    max_center_dist: u64,
    per_node: Vec<Vec<(u32, u64)>>,
}

impl LevelBuilder {
    /// Starts an empty level with radius `d` over `n` nodes.
    pub fn new(n: u32, d: u64) -> Self {
        LevelBuilder { d, clusters: 0, max_center_dist: 0, per_node: vec![Vec::new(); n as usize] }
    }

    /// Adds the next cluster: `members[i]` is a member node and `dist[i]` its
    /// exact distance from the cluster center inside the cluster's induced
    /// subgraph ([`Distance::Infinite`] is stored as a sentinel and skipped
    /// by queries).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or a member is out of range.
    pub fn push_cluster(&mut self, members: &[NodeId], dist: &[Distance]) {
        assert_eq!(members.len(), dist.len(), "one distance per member");
        let id = self.clusters;
        self.clusters += 1;
        for (&v, &dd) in members.iter().zip(dist.iter()) {
            let stored = match dd.finite() {
                Some(f) => {
                    self.max_center_dist = self.max_center_dist.max(f);
                    f
                }
                None => UNREACHED,
            };
            self.per_node[v.index()].push((id, stored));
        }
    }

    /// Flattens the accumulated memberships into the immutable level layout.
    pub fn finish(self) -> OracleLevel {
        let entries: usize = self.per_node.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(self.per_node.len() + 1);
        let mut cluster_ids = Vec::with_capacity(entries);
        let mut center_dist = Vec::with_capacity(entries);
        offsets.push(0u32);
        for list in &self.per_node {
            debug_assert!(list.windows(2).all(|w| w[0].0 < w[1].0), "sorted by cluster id");
            for &(c, dd) in list {
                cluster_ids.push(c);
                center_dist.push(dd);
            }
            offsets.push(cluster_ids.len() as u32);
        }
        OracleLevel {
            d: self.d,
            clusters: self.clusters,
            max_center_dist: self.max_center_dist,
            offsets,
            cluster_ids,
            center_dist,
        }
    }
}

/// The oracle's two storage backends.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum Backend {
    /// The sparse-cover hierarchy.
    Levels(Vec<OracleLevel>),
    /// Row-major exact `n × n` matrix (`u64::MAX` = unreachable), used below
    /// the fallback threshold.
    Exact(Vec<u64>),
}

/// A built distance oracle: answers point-to-point (and batch) distance
/// queries forever after a one-time construction. See the crate docs for the
/// guarantee and `congest_sssp::oracle` for the construction driver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceOracle {
    pub(crate) n: u32,
    pub(crate) backend: Backend,
    stats: OracleStats,
}

impl DistanceOracle {
    /// Assembles an oracle from finished cover levels and computes the proven
    /// stretch bound.
    ///
    /// The levels must have strictly increasing radii and must be *complete*:
    /// the last level's clusters each span a whole connected component (or
    /// its radius is at least `n − 1`), so that every connected pair shares a
    /// cluster somewhere. The construction driver guarantees this by doubling
    /// `d` until `SparseCover::is_component_cover` holds.
    ///
    /// The bound: a pair whose shortest path has `h` hops is covered by the
    /// first level with `d_ℓ ≥ h`, where the estimate is at most
    /// `2 × max_center_dist(ℓ)`; with weights `≥ 1` the true distance exceeds
    /// the previous level's radius, so level `ℓ` contributes stretch at most
    /// `⌈2 × max_center_dist(ℓ) / (d_{ℓ−1} + 1)⌉`, and the oracle's bound is
    /// the maximum over levels.
    ///
    /// # Panics
    ///
    /// Panics if the level radii are not strictly increasing.
    pub fn from_levels(n: u32, levels: Vec<OracleLevel>) -> Self {
        let mut stretch_bound: u64 = 1;
        let mut prev_d: u64 = 0;
        for lvl in &levels {
            assert!(lvl.d > prev_d, "strictly increasing radii");
            let worst_estimate = lvl.max_center_dist.saturating_mul(2);
            stretch_bound = stretch_bound.max(worst_estimate.div_ceil(prev_d + 1));
            prev_d = lvl.d;
        }
        let exact_matrix_bytes = n as u64 * n as u64 * 8;
        let stats = OracleStats {
            n,
            fallback: false,
            levels: levels.len() as u32,
            clusters: levels.iter().map(|l| l.clusters as u64).sum(),
            entries: levels.iter().map(OracleLevel::entries).sum(),
            bytes: levels.iter().map(OracleLevel::bytes).sum(),
            exact_matrix_bytes,
            stretch_bound,
            max_membership: levels.iter().map(OracleLevel::max_membership).max().unwrap_or(0),
        };
        DistanceOracle { n, backend: Backend::Levels(levels), stats }
    }

    /// Wraps an exact all-pairs matrix (the small-`n` fallback): queries are
    /// plain lookups and the stretch bound is 1.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `n × n`.
    pub fn exact(n: u32, matrix: Vec<Vec<Distance>>) -> Self {
        assert_eq!(matrix.len(), n as usize, "one row per node");
        let mut flat = Vec::with_capacity(n as usize * n as usize);
        for row in &matrix {
            assert_eq!(row.len(), n as usize, "square matrix");
            flat.extend(row.iter().map(|d| d.finite().unwrap_or(UNREACHED)));
        }
        let bytes = flat.len() as u64 * 8;
        let stats = OracleStats {
            n,
            fallback: true,
            levels: 0,
            clusters: 0,
            entries: 0,
            bytes,
            exact_matrix_bytes: bytes,
            stretch_bound: 1,
            max_membership: 0,
        };
        DistanceOracle { n, backend: Backend::Exact(flat), stats }
    }

    /// Number of nodes the oracle serves.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// `true` when answers are exact (the APSP fallback backend).
    pub fn is_exact(&self) -> bool {
        matches!(self.backend, Backend::Exact(_))
    }

    /// Space and quality accounting of the built structure.
    pub fn stats(&self) -> &OracleStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level_oracle() -> DistanceOracle {
        // Path 0-1-2-3, unit weights. Level d=1: clusters {0,1}, {1,2}, {2,3}
        // centered at 0, 1, 2 (radius-1 balls, simplified). Level d=4: one
        // cluster, whole path, centered at 0.
        let mut l1 = LevelBuilder::new(4, 1);
        l1.push_cluster(&[NodeId(0), NodeId(1)], &[Distance::ZERO, Distance::Finite(1)]);
        l1.push_cluster(
            &[NodeId(0), NodeId(1), NodeId(2)],
            &[Distance::Finite(1), Distance::ZERO, Distance::Finite(1)],
        );
        l1.push_cluster(
            &[NodeId(1), NodeId(2), NodeId(3)],
            &[Distance::Finite(1), Distance::ZERO, Distance::Finite(1)],
        );
        let mut l2 = LevelBuilder::new(4, 4);
        l2.push_cluster(
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            &[Distance::ZERO, Distance::Finite(1), Distance::Finite(2), Distance::Finite(3)],
        );
        DistanceOracle::from_levels(4, vec![l1.finish(), l2.finish()])
    }

    #[test]
    fn builder_flattens_sorted_and_counts() {
        let o = two_level_oracle();
        let s = o.stats();
        assert_eq!(s.n, 4);
        assert!(!s.fallback);
        assert_eq!(s.levels, 2);
        assert_eq!(s.clusters, 4);
        assert_eq!(s.entries, 8 + 4);
        assert_eq!(s.max_membership, 3);
        assert_eq!(s.exact_matrix_bytes, 4 * 4 * 8);
        let Backend::Levels(levels) = &o.backend else { panic!("level backend") };
        let (ids, dist) = levels[0].of(1);
        assert_eq!(ids, [0, 1, 2]);
        assert_eq!(dist, [1, 0, 1]);
    }

    #[test]
    fn stretch_bound_tracks_the_worst_level_ratio() {
        let o = two_level_oracle();
        // Level 1 (prev_d = 0): 2·1 / 1 = 2. Level 2 (prev_d = 1): 2·3 / 2 = 3.
        assert_eq!(o.stats().stretch_bound, 3);
    }

    #[test]
    fn exact_backend_reports_fallback_stats() {
        let matrix = vec![
            vec![Distance::ZERO, Distance::Finite(2)],
            vec![Distance::Finite(2), Distance::ZERO],
        ];
        let o = DistanceOracle::exact(2, matrix);
        assert!(o.is_exact());
        let s = o.stats();
        assert!(s.fallback);
        assert_eq!(s.stretch_bound, 1);
        assert_eq!(s.bytes, s.exact_matrix_bytes);
        assert_eq!(o.node_count(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing radii")]
    fn non_increasing_radii_rejected() {
        let l1 = LevelBuilder::new(2, 2).finish();
        let l2 = LevelBuilder::new(2, 2).finish();
        let _ = DistanceOracle::from_levels(2, vec![l1, l2]);
    }

    #[test]
    #[should_panic(expected = "one distance per member")]
    fn mismatched_cluster_slices_rejected() {
        let mut b = LevelBuilder::new(2, 1);
        b.push_cluster(&[NodeId(0)], &[]);
    }

    #[test]
    fn infinite_center_distances_are_sentineled() {
        let mut b = LevelBuilder::new(2, 1);
        b.push_cluster(&[NodeId(0), NodeId(1)], &[Distance::ZERO, Distance::Infinite]);
        let lvl = b.finish();
        assert_eq!(lvl.max_center_dist, 0);
        let (_, dist) = lvl.of(1);
        assert_eq!(dist, [UNREACHED]);
    }
}
