//! simlint: hot-path
//!
//! The query kernel: point-to-point and batch distance queries.
//!
//! This module is the oracle's steady state — a service answering millions of
//! queries against an immutable structure — so it must not allocate per
//! query (enforced statically by the `simlint: hot-path` header above and
//! dynamically by `tests/alloc_regression.rs`). Shared clusters of two nodes
//! are found by a linear merge of their sorted per-level membership slices;
//! batch queries shard the input across threads by contiguous ranges
//! (the same partitioning discipline as the simulator's sharded engine), and
//! because every query is a pure read of the immutable oracle the results
//! are bit-identical at any thread count by construction.

use congest_graph::{Distance, NodeId};

use crate::{Backend, DistanceOracle, OracleLevel, UNREACHED};

/// The best estimate for `(u, v)` on one level: minimum of
/// `dist(c, u) + dist(c, v)` over the clusters `c` shared by `u` and `v`,
/// found by merging the two sorted membership slices.
fn level_estimate(lvl: &OracleLevel, u: usize, v: usize) -> u64 {
    let (cu, du) = lvl.of(u);
    let (cv, dv) = lvl.of(v);
    let mut best = UNREACHED;
    let (mut i, mut j) = (0usize, 0usize);
    while i < cu.len() && j < cv.len() {
        match cu[i].cmp(&cv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if du[i] != UNREACHED && dv[j] != UNREACHED {
                    best = best.min(du[i] + dv[j]);
                }
                i += 1;
                j += 1;
            }
        }
    }
    best
}

/// The raw estimate for `(u, v)` as a `u64` (`UNREACHED` = no shared cluster
/// on any level, i.e. different components for complete level sets).
fn raw_query(oracle: &DistanceOracle, u: usize, v: usize) -> u64 {
    if u == v {
        return 0;
    }
    match &oracle.backend {
        Backend::Levels(levels) => {
            let mut best = UNREACHED;
            for lvl in levels {
                best = best.min(level_estimate(lvl, u, v));
            }
            best
        }
        Backend::Exact(matrix) => matrix[u * oracle.n as usize + v],
    }
}

fn to_distance(raw: u64) -> Distance {
    if raw == UNREACHED {
        Distance::Infinite
    } else {
        Distance::Finite(raw)
    }
}

impl DistanceOracle {
    /// The oracle's distance estimate for the pair `(u, v)`: exact on the
    /// fallback backend, otherwise within [`crate::OracleStats::stretch_bound`]
    /// times the true distance and never below it. [`Distance::Infinite`]
    /// means `u` and `v` share no cluster (different connected components).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn query(&self, u: NodeId, v: NodeId) -> Distance {
        assert!(u.index() < self.n as usize, "u out of range");
        assert!(v.index() < self.n as usize, "v out of range");
        to_distance(raw_query(self, u.index(), v.index()))
    }

    /// Batch queries, slice-in/slice-out: `out[i] = query(pairs[i])` with
    /// zero per-query allocation. `threads > 1` shards the batch into
    /// contiguous ranges answered concurrently (allocating only the `O(threads)`
    /// scoped-thread handles, independent of the batch size); results are
    /// bit-identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != pairs.len()` or any node is out of range.
    pub fn query_into(&self, pairs: &[(NodeId, NodeId)], out: &mut [Distance], threads: usize) {
        assert_eq!(pairs.len(), out.len(), "one output slot per pair");
        for &(u, v) in pairs {
            assert!(u.index() < self.n as usize, "u out of range");
            assert!(v.index() < self.n as usize, "v out of range");
        }
        let threads = threads.max(1).min(pairs.len().max(1));
        if threads == 1 {
            for (slot, &(u, v)) in out.iter_mut().zip(pairs.iter()) {
                *slot = to_distance(raw_query(self, u.index(), v.index()));
            }
            return;
        }
        let chunk = pairs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (pair_chunk, out_chunk) in pairs.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (slot, &(u, v)) in out_chunk.iter_mut().zip(pair_chunk.iter()) {
                        *slot = to_distance(raw_query(self, u.index(), v.index()));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LevelBuilder;

    /// The two-level oracle over the unit path 0-1-2-3 from the lib tests.
    fn path_oracle() -> DistanceOracle {
        let mut l1 = LevelBuilder::new(4, 1);
        l1.push_cluster(&[NodeId(0), NodeId(1)], &[Distance::ZERO, Distance::Finite(1)]);
        l1.push_cluster(
            &[NodeId(0), NodeId(1), NodeId(2)],
            &[Distance::Finite(1), Distance::ZERO, Distance::Finite(1)],
        );
        l1.push_cluster(
            &[NodeId(1), NodeId(2), NodeId(3)],
            &[Distance::Finite(1), Distance::ZERO, Distance::Finite(1)],
        );
        let mut l2 = LevelBuilder::new(4, 4);
        l2.push_cluster(
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            &[Distance::ZERO, Distance::Finite(1), Distance::Finite(2), Distance::Finite(3)],
        );
        DistanceOracle::from_levels(4, vec![l1.finish(), l2.finish()])
    }

    #[test]
    fn queries_never_underestimate_and_respect_the_bound() {
        let o = path_oracle();
        let truth = |u: u32, v: u32| u.abs_diff(v) as u64;
        let bound = o.stats().stretch_bound;
        for u in 0..4u32 {
            for v in 0..4u32 {
                let est = o.query(NodeId(u), NodeId(v)).expect_finite();
                let t = truth(u, v);
                assert!(est >= t, "({u},{v}): est {est} < truth {t}");
                assert!(est <= bound * t.max(1), "({u},{v}): est {est} > {bound}·{t}");
            }
        }
        // Adjacent pairs share a d=1 cluster whose center is one endpoint.
        assert_eq!(o.query(NodeId(0), NodeId(1)), Distance::Finite(1));
        // The far pair is only covered by the top level: 3 + 0 via center 0
        // is not available (0 and 3 share only the top cluster): 0 + 3.
        assert_eq!(o.query(NodeId(0), NodeId(3)), Distance::Finite(3));
        assert_eq!(o.query(NodeId(2), NodeId(2)), Distance::ZERO);
    }

    #[test]
    fn exact_backend_answers_are_lookups() {
        let matrix = vec![
            vec![Distance::ZERO, Distance::Finite(5), Distance::Infinite],
            vec![Distance::Finite(5), Distance::ZERO, Distance::Infinite],
            vec![Distance::Infinite, Distance::Infinite, Distance::ZERO],
        ];
        let o = DistanceOracle::exact(3, matrix);
        assert_eq!(o.query(NodeId(0), NodeId(1)), Distance::Finite(5));
        assert_eq!(o.query(NodeId(0), NodeId(2)), Distance::Infinite);
        assert_eq!(o.query(NodeId(2), NodeId(2)), Distance::ZERO);
    }

    #[test]
    fn batch_matches_single_queries_at_every_thread_count() {
        let o = path_oracle();
        let mut pairs = Vec::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                pairs.push((NodeId(u), NodeId(v)));
            }
        }
        let mut seq = vec![Distance::Infinite; pairs.len()];
        o.query_into(&pairs, &mut seq, 1);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(seq[i], o.query(u, v));
        }
        for threads in [2, 4, 7, 64] {
            let mut out = vec![Distance::Infinite; pairs.len()];
            o.query_into(&pairs, &mut out, threads);
            assert_eq!(out, seq, "threads = {threads}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let o = path_oracle();
        o.query_into(&[], &mut [], 4);
    }

    #[test]
    #[should_panic(expected = "one output slot per pair")]
    fn mismatched_batch_slices_rejected() {
        let o = path_oracle();
        let mut out = [Distance::Infinite];
        o.query_into(&[], &mut out, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_query_rejected() {
        let o = path_oracle();
        let _ = o.query(NodeId(9), NodeId(0));
    }
}
