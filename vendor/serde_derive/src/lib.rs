//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal substitute. The real derives generate `Serialize`/`Deserialize`
//! impls; nothing in this workspace consumes those impls through trait bounds
//! (JSON output is hand-rolled in `congest_bench::json`), so these derives
//! deliberately expand to nothing. Swapping in the real `serde` +
//! `serde_derive` later requires no source changes.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`. Accepts (and ignores)
/// `#[serde(...)]` attributes so annotated types still compile.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`. Accepts (and ignores)
/// `#[serde(...)]` attributes so annotated types still compile.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
