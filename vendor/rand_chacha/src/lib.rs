//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 counter-mode PRNG
//! implementing the vendored [`rand`] traits.
//!
//! The keystream is real ChaCha with 8 rounds, so streams are deterministic
//! per seed, statistically strong, and cheap to fork by seed arithmetic —
//! the properties the workload generators rely on. Seed expansion differs
//! from upstream `rand_chacha`, so streams do not bit-match the real crate
//! (no test depends on exact streams, only on determinism).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{splitmix64, RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
/// "expand 32-byte k", the standard ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 4..12 and nonce words 14..16 of the initial state.
    key: [u32; 8],
    nonce: [u32; 2],
    counter: u64,
    block: [u32; 16],
    /// Next unread word of `block`; 16 means "exhausted".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut s = state;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut s);
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        let nonce_word = splitmix64(&mut s);
        ChaCha8Rng {
            key,
            nonce: [nonce_word as u32, (nonce_word >> 32) as u32],
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_extremes() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v: usize = r.gen_range(0..8usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear: {seen:?}");
        for _ in 0..1_000 {
            let v = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = ChaCha8Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "~25% expected, got {hits}/10000");
    }
}
