//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Implements exactly the subset this workspace uses — [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`] — with the same call signatures, so the
//! source compiles unchanged against the real crate. Integer sampling uses
//! Lemire's widening-multiply method; it is uniform enough for workload
//! generation but does not bit-match upstream `rand` streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The core source of randomness: 32/64-bit output words.
pub trait RngCore {
    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that can be sampled uniformly; implemented for half-open and
/// inclusive integer ranges and half-open `f64` ranges.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(offset as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = ((rng.next_u64() as u128 * (span + 1) as u128) >> 64) as u64;
                start.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full internal seed is expanded from `state`
    /// (by SplitMix64, as in the real crate).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, used to expand small seeds into full key material.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices: this workspace only needs `shuffle`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}
